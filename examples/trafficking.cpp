// Fighting human trafficking (§6.4): structure Craigslist-style sex ads
// into a relational table (worker handle, price, city), then run the
// SQL-style analyses the paper describes — price statistics per city and
// trafficking warning signs (multi-city posting, anomalously low prices).
//
// Build & run:  ./build/examples/trafficking

#include <cstdio>
#include <map>
#include <set>

#include "core/pipeline.h"
#include "query/aggregates.h"
#include "testdata/ads_app.h"
#include "util/string_util.h"


int main() {
  dd::AdsCorpusOptions corpus_options;
  corpus_options.num_ads = 300;
  dd::AdsCorpus corpus = dd::GenerateAdsCorpus(corpus_options);

  dd::PipelineOptions options;
  options.learn.epochs = 200;
  options.learn.learning_rate = 0.05;
  options.threshold = 0.8;

  auto made = dd::MakeAdsPipeline(corpus, options);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  dd::DeepDivePipeline& pipeline = **made;
  dd::Status status = pipeline.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("=== DeepDive trafficking analysis (%zu ads) ===\n",
              corpus.ads.size());
  std::printf("graph: %zu vars, %zu factors, %zu evidence\n\n",
              pipeline.grounding_stats().num_variables,
              pipeline.grounding_stats().num_factors,
              pipeline.grounding_stats().num_evidence);

  // Assemble the structured table: ad -> (price, city, handle).
  std::map<std::string, int64_t> ad_price = dd::BestPricePerAd(pipeline,
                                                               options.threshold);
  std::map<std::string, std::string> ad_city;
  for (const dd::Tuple& row : (*pipeline.catalog()->GetTable("CityCandidate"))->Scan()) {
    ad_city[row.at(0).AsString()] = row.at(1).AsString();
  }
  std::map<std::string, std::string> ad_contact;
  for (const dd::Tuple& row : (*pipeline.catalog()->GetTable("Contact"))->Scan()) {
    ad_contact[row.at(0).AsString()] = row.at(1).AsString();
  }

  // Extraction accuracy against the planted truth.
  size_t price_correct = 0, price_total = 0;
  for (const dd::Ad& ad : corpus.ads) {
    auto it = ad_price.find(ad.id);
    if (it != ad_price.end()) {
      ++price_total;
      if (it->second == ad.price) ++price_correct;
    }
  }
  std::printf("price extraction: %zu/%zu ads structured, %.1f%% correct\n\n",
              price_total, corpus.ads.size(),
              100.0 * price_correct / (price_total ? price_total : 1));

  // Analysis 1 (§6.4): aggregate price statistics per city, run as an
  // OLAP GROUP BY over the structured output table — exactly the "use
  // the output with standard data management tools" story of §1.
  // The ad id column keeps rows unique under set semantics; GROUP BY
  // city ignores it.
  dd::Table by_city("by_city", dd::Schema({{"city", dd::ValueType::kString},
                                           {"price", dd::ValueType::kInt},
                                           {"ad", dd::ValueType::kString}}));
  for (const auto& [ad, price] : ad_price) {
    auto city = ad_city.find(ad);
    if (city == ad_city.end()) continue;
    (void)by_city.InsertUnchecked(dd::Tuple({dd::Value::String(city->second),
                                             dd::Value::Int(price),
                                             dd::Value::String(ad)}));
  }
  auto agg = dd::GroupBy(by_city, {"city"},
                         {{dd::AggFunc::kAvg, "price"},
                          {dd::AggFunc::kCount, ""},
                          {dd::AggFunc::kMin, "price"},
                          {dd::AggFunc::kMax, "price"}});
  std::printf("avg hourly price by city (OLAP GROUP BY over the output):\n");
  std::printf("  %-10s %-8s %-6s %-6s %s\n", "city", "avg", "ads", "min", "max");
  if (agg.ok()) {
    for (const dd::Tuple& row : *agg) {
      std::printf("  %-10s $%-7.0f %-6lld $%-5lld $%lld\n",
                  row.at(0).AsString().c_str(), row.at(1).AsDouble(),
                  static_cast<long long>(row.at(2).AsInt()),
                  static_cast<long long>(row.at(3).AsInt()),
                  static_cast<long long>(row.at(4).AsInt()));
    }
  }

  // Analysis 2: trafficking warning signs — multi-city posting handles.
  std::map<std::string, std::set<std::string>> handle_cities;
  for (const auto& [ad, handle] : ad_contact) {
    auto city = ad_city.find(ad);
    if (city != ad_city.end()) handle_cities[handle].insert(city->second);
  }
  std::printf("\nwarning sign: handles posting from 3+ cities\n");
  size_t flagged = 0, truly_multi = 0;
  std::set<std::string> truth_multi(corpus.multi_city_workers.begin(),
                                    corpus.multi_city_workers.end());
  for (const auto& [handle, cities] : handle_cities) {
    if (cities.size() >= 3) {
      ++flagged;
      if (truth_multi.count(handle) > 0) ++truly_multi;
      std::printf("  %s seen in %zu cities%s\n", handle.c_str(), cities.size(),
                  truth_multi.count(handle) ? "  [planted trafficking pattern]" : "");
    }
  }
  std::printf("flagged %zu handles; %zu/%zu planted multi-city workers found\n",
              flagged, truly_multi, truth_multi.size());
  return 0;
}
