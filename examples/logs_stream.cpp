// The log/telemetry KBC workload end to end through the streaming front
// end (DESIGN.md §14): a fleet of services emits `ts= host= service=
// level= code= msg=` lines; a few planted causal pairs make downstream
// services error right after their upstream does. The demo writes the
// synthetic stream to a real log file, ingests it back through the
// bounded-memory chunker/worker/merger pipeline (FileSource, 4 workers,
// 4 MB in-flight budget), then learns and infers which services cause
// which — recovering the planted pairs from nothing but the byte
// stream.
//
//   ./build/examples/logs_stream [path/to/logfile]
//
// With a path argument the file is streamed instead of the generated
// one (same line format; the distant-supervision KB still comes from
// the synthetic corpus).

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "stream/ingester.h"
#include "stream/stream.h"
#include "testdata/corpus_logs.h"
#include "testdata/logs_app.h"

int main(int argc, char** argv) {
  // --- Generate the corpus and put it on disk like a real log file.
  dd::LogsCorpusOptions corpus_options;
  corpus_options.num_windows = 120;
  corpus_options.seed = 31;
  dd::LogsCorpus corpus = dd::GenerateLogsCorpus(corpus_options);

  std::string path = "logs_stream_input.log";
  if (argc > 1) {
    path = argv[1];
  } else {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fwrite(corpus.text.data(), 1, corpus.text.size(), f);
    std::fclose(f);
  }
  std::printf("log stream: %s\n", path.c_str());
  std::printf("planted causal pairs:");
  for (const auto& [up, down] : corpus.causal_pairs) {
    std::printf("  %s->%s", up.c_str(), down.c_str());
  }
  std::printf("  (KB knows %zu of %zu)\n\n", corpus.kb_causes.size(),
              corpus.causal_pairs.size());

  // --- Pipeline: DDlog program + distant-supervision KB, then stream
  // the file through the bounded-memory ingester.
  dd::PipelineOptions options;
  options.learn.epochs = 200;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.strategy = dd::PipelineOptions::Strategy::kSampling;

  dd::DeepDivePipeline pipeline(options);
  if (!pipeline.LoadProgram(dd::LogsDdlog()).ok()) {
    std::fprintf(stderr, "DDlog program failed to load\n");
    return 1;
  }
  dd::LoadLogsKb(&pipeline, corpus);

  dd::StreamOptions stream_options;
  stream_options.chunk_bytes = 4 * 1024;
  stream_options.byte_budget = 4 * 1024 * 1024;
  stream_options.num_workers = 4;
  dd::StreamIngester ingester(stream_options, dd::MakeLogsStreamExtractor());
  dd::FileSource source(path);
  dd::Status status = pipeline.IngestStream(&ingester, &source);
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const dd::IngestStats& stats = ingester.stats();
  std::printf("ingested %llu records (%.2f MB) in %llu chunks, "
              "%.1f MB/s with %zu workers\n",
              static_cast<unsigned long long>(stats.records),
              static_cast<double>(stats.bytes_in) / 1e6,
              static_cast<unsigned long long>(stats.chunks),
              static_cast<double>(stats.bytes_in) / 1e6 / stats.seconds,
              stream_options.num_workers);
  std::printf("in-flight peak %zu of %zu budget bytes, %llu quarantined\n\n",
              stats.peak_in_flight_bytes, stats.byte_budget,
              static_cast<unsigned long long>(stats.records_quarantined));

  // --- Learn + infer, then read out the causal structure.
  status = pipeline.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto marginals = pipeline.Marginals("Causes");
  if (!marginals.ok()) {
    std::fprintf(stderr, "%s\n", marginals.status().ToString().c_str());
    return 1;
  }
  std::vector<std::pair<dd::Tuple, double>> ranked = *marginals;
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("Causes(upstream, downstream) by marginal probability:\n");
  for (const auto& [tuple, prob] : ranked) {
    const std::string up = tuple.at(0).AsString();
    const std::string down = tuple.at(1).AsString();
    bool planted = false;
    for (const auto& [u, d] : corpus.causal_pairs) {
      if (u == up && d == down) planted = true;
    }
    std::printf("  %-10s -> %-10s  p=%.3f%s\n", up.c_str(), down.c_str(),
                prob, planted ? "   (planted)" : "");
  }
  return 0;
}
