// ddlog_cli — a `deepdive run`-style command-line driver: a DDlog
// program plus TSV base relations in, probabilistic marginal tables out.
// This is the interface the open-source DeepDive shipped (program file +
// database tables), for users whose candidate extraction already
// happened upstream.
//
// Usage:
//   ddlog_cli --program app.ddl --data Rel=path.tsv [--data ...]
//             --output-dir out/ [--threshold 0.9] [--epochs 200]
//             [--holdout 0.25]
//   ddlog_cli --demo out/        # materialize + run a complete demo app
//
// Outputs <relation>__marginals.tsv per query relation, prints grounding
// stats, phase timings, and (with --holdout) the Fig. 5 calibration.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ddlog/parser.h"
#include "storage/tsv.h"
#include "testdata/spouse_app.h"
#include "util/string_util.h"

namespace {

struct CliOptions {
  std::string program_path;
  std::vector<std::pair<std::string, std::string>> data;  // relation, path
  std::string output_dir = ".";
  double threshold = 0.9;
  int epochs = 200;
  double holdout = 0.0;
  bool demo = false;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "ddlog_cli: %s\n", message.c_str());
  return 1;
}

dd::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return dd::Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Write a ready-to-run spouse application (program + TSV data) into
/// `dir` and return the CLI options that consume it.
dd::Result<CliOptions> MaterializeDemo(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return dd::Status::Internal("cannot create directory: " + dir);
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 100;
  corpus_options.seed = 5;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);
  dd::SpouseAppOptions app;

  // Program file.
  std::string program_path = dir + "/spouse.ddl";
  {
    std::ofstream out(program_path);
    if (!out) return dd::Status::Internal("cannot write " + program_path);
    out << dd::SpouseDdlog(app);
  }

  // Run the extractor offline to produce the base-relation TSVs (the
  // "upstream ETL" this CLI assumes).
  dd::Catalog catalog;
  auto parsed = dd::ParseDdlog(dd::SpouseDdlog(app));
  DD_RETURN_IF_ERROR(parsed.status());
  dd::Extractor extractor = dd::MakeSpouseExtractor(app);
  std::map<std::string, dd::Table*> tables;
  for (const char* relation : {"MentionPair", "PairFeature", "KbMarried",
                               "KbSiblings"}) {
    const dd::RelationDecl* decl = parsed->FindDecl(relation);
    DD_ASSIGN_OR_RETURN(dd::Table * table,
                        catalog.CreateTable(relation, decl->schema));
    tables[relation] = table;
  }
  for (const auto& [id, text] : corpus.documents) {
    dd::Document doc = dd::AnnotateDocument(id, text);
    dd::TupleEmitter emitter;
    DD_RETURN_IF_ERROR(extractor(doc, &emitter));
    for (const auto& [relation, tuples] : emitter.emitted()) {
      for (const dd::Tuple& t : tuples) {
        DD_RETURN_IF_ERROR(tables[relation]->Insert(t).status());
      }
    }
  }
  for (const auto& [a, b] : corpus.kb_married) {
    DD_RETURN_IF_ERROR(tables["KbMarried"]
                           ->Insert(dd::Tuple({dd::Value::String(a),
                                               dd::Value::String(b)}))
                           .status());
  }
  for (const auto& [a, b] : corpus.kb_siblings) {
    DD_RETURN_IF_ERROR(tables["KbSiblings"]
                           ->Insert(dd::Tuple({dd::Value::String(a),
                                               dd::Value::String(b)}))
                           .status());
  }

  CliOptions options;
  options.program_path = program_path;
  options.output_dir = dir;
  options.threshold = 0.7;
  options.holdout = 0.25;
  for (const auto& [relation, table] : tables) {
    std::string path = dir + "/" + relation + ".tsv";
    DD_RETURN_IF_ERROR(dd::WriteTsvFile(*table, path));
    options.data.emplace_back(relation, path);
  }
  std::printf("demo app materialized under %s\n", dir.c_str());
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      const char* v = next();
      if (!v) return Fail("--program needs a path");
      options.program_path = v;
    } else if (arg == "--data") {
      const char* v = next();
      if (!v) return Fail("--data needs Rel=path.tsv");
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return Fail("--data needs Rel=path.tsv");
      options.data.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--output-dir") {
      const char* v = next();
      if (!v) return Fail("--output-dir needs a path");
      options.output_dir = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return Fail("--threshold needs a number");
      options.threshold = std::strtod(v, nullptr);
    } else if (arg == "--epochs") {
      const char* v = next();
      if (!v) return Fail("--epochs needs a number");
      options.epochs = std::atoi(v);
    } else if (arg == "--holdout") {
      const char* v = next();
      if (!v) return Fail("--holdout needs a fraction");
      options.holdout = std::strtod(v, nullptr);
    } else if (arg == "--demo") {
      const char* v = next();
      if (!v) return Fail("--demo needs an output directory");
      options.demo = true;
      options.output_dir = v;
    } else {
      return Fail("unknown flag: " + arg);
    }
  }

  if (options.demo) {
    auto demo = MaterializeDemo(options.output_dir);
    if (!demo.ok()) return Fail(demo.status().ToString());
    options = std::move(demo).value();
  }
  if (options.program_path.empty()) {
    return Fail("--program is required (or use --demo DIR)");
  }

  auto program_text = ReadFile(options.program_path);
  if (!program_text.ok()) return Fail(program_text.status().ToString());

  dd::PipelineOptions pipeline_options;
  pipeline_options.learn.epochs = options.epochs;
  pipeline_options.learn.learning_rate = 0.05;
  pipeline_options.threshold = options.threshold;
  pipeline_options.holdout_fraction = options.holdout;
  dd::DeepDivePipeline pipeline(pipeline_options);

  dd::Status status = pipeline.LoadProgram(*program_text);
  if (!status.ok()) return Fail(status.ToString());

  // Load the TSV base relations straight into the catalog.
  auto parsed = dd::ParseDdlog(*program_text);
  for (const auto& [relation, path] : options.data) {
    const dd::RelationDecl* decl = parsed->FindDecl(relation);
    if (decl == nullptr) return Fail("undeclared relation in --data: " + relation);
    auto table = pipeline.catalog()->GetOrCreateTable(relation, decl->schema);
    if (!table.ok()) return Fail(table.status().ToString());
    auto loaded = dd::LoadTsvFile(*table, path);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    std::printf("loaded %-20s %6zu rows from %s\n", relation.c_str(), *loaded,
                path.c_str());
  }

  status = pipeline.Run();
  if (!status.ok()) return Fail(status.ToString());

  const dd::GroundingStats& stats = pipeline.grounding_stats();
  const dd::PhaseTimings& timings = pipeline.timings();
  std::printf("\ngrounded %zu variables, %zu factors, %zu weights "
              "(%zu evidence, %zu held out)\n",
              stats.num_variables, stats.num_factors, stats.num_weights,
              stats.num_evidence, stats.num_holdout);
  std::printf("phases: extract %.3fs  ground %.3fs  learn %.3fs  infer %.3fs\n",
              timings.extraction_seconds, timings.grounding_seconds,
              timings.learning_seconds, timings.inference_seconds);

  status = pipeline.WriteMarginalTables();
  if (!status.ok()) return Fail(status.ToString());
  for (const dd::RelationDecl& decl : parsed->declarations) {
    if (!decl.is_query) continue;
    std::string name = decl.name + "__marginals";
    auto table = pipeline.catalog()->GetTable(name);
    if (!table.ok()) continue;
    std::string path = options.output_dir + "/" + name + ".tsv";
    status = dd::WriteTsvFile(**table, path);
    if (!status.ok()) return Fail(status.ToString());
    auto extractions = pipeline.Extractions(decl.name);
    std::printf("wrote %-34s %6zu rows (%zu above threshold %.2f)\n", path.c_str(),
                (*table)->size(), extractions.ok() ? extractions->size() : 0,
                options.threshold);

    if (options.holdout > 0) {
      auto calibration = pipeline.Calibration(decl.name);
      if (calibration.ok() && calibration->num_test > 0) {
        std::printf("\n%s held-out calibration (%zu items):\n%s", decl.name.c_str(),
                    calibration->num_test, calibration->test.ToText().c_str());
      }
    }
  }
  return 0;
}
