// KBC serving daemon: answer fact/marginal/top-k queries from a
// published epoch directory, surviving epoch swaps without dropping a
// request (DESIGN.md §13).
//
// With --build, first runs the spouse pipeline end-to-end and publishes
// its marginals as the next epoch, so the demo is self-contained:
//
//   ./build/examples/serve_daemon --build
//
// Then reads commands from stdin (one per line):
//
//   marginal <relation> <row>          P(tuple) from the current epoch
//   fact <relation> <row> [threshold]  is it in the output KB?
//   top <relation> [k]                 k highest-probability rows
//   reload                             swap to the directory's CURRENT epoch
//   stats                              server counters
//   quit
//
// Re-run with --build from another terminal while the daemon is live,
// then `reload`: the swap is atomic, in-flight queries finish against
// the epoch they started on, and the answer epoch is visible per reply.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "serve/epoch.h"
#include "serve/server.h"
#include "testdata/spouse_app.h"

namespace {

int BuildAndPublish(const std::string& dir) {
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 40;
  corpus_options.seed = 21;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);

  dd::PipelineOptions options;
  options.learn.epochs = 120;
  options.strategy = dd::PipelineOptions::Strategy::kSampling;
  auto pipeline =
      dd::MakeSpousePipeline(corpus, dd::SpouseAppOptions(), options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  dd::Status status = (*pipeline)->Run();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = (*pipeline)->PublishEpoch(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

void PrintStats(const dd::ServerStats& stats) {
  std::printf("admitted=%llu completed=%llu shed_full=%llu shed_budget=%llu "
              "deadline=%llu\nswaps=%llu swap_rejected_stale=%llu "
              "swap_rejected_invalid=%llu cache_hits=%llu cache_misses=%llu\n",
              (unsigned long long)stats.admitted,
              (unsigned long long)stats.completed,
              (unsigned long long)stats.shed_queue_full,
              (unsigned long long)stats.shed_queue_budget,
              (unsigned long long)stats.deadline_exceeded,
              (unsigned long long)stats.swaps,
              (unsigned long long)stats.swap_rejected_stale,
              (unsigned long long)stats.swap_rejected_invalid,
              (unsigned long long)stats.cache_hits,
              (unsigned long long)stats.cache_misses);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "serve_epochs";
  bool build = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--build") == 0) {
      build = true;
    } else {
      dir = argv[i];
    }
  }
  if (build && BuildAndPublish(dir) != 0) return 1;

  dd::EpochDirectory epochs(dir);
  dd::KbcServer server;
  dd::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = server.LoadCurrent(epochs);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot load an epoch from '%s': %s\n"
                 "(run with --build to publish one first)\n",
                 dir.c_str(), status.ToString().c_str());
    return 1;
  }

  auto epoch = server.current_epoch();
  std::printf("serving epoch %llu from %s: %llu variables, relations:",
              (unsigned long long)server.current_epoch_id(), dir.c_str(),
              (unsigned long long)epoch->num_variables());
  for (const std::string& r : epoch->relations()) std::printf(" %s", r.c_str());
  std::printf("\ntype 'help' for commands\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf("marginal <rel> <row> | fact <rel> <row> [thresh] | "
                  "top <rel> [k] | reload | stats | quit\n");
      continue;
    }
    if (cmd == "stats") {
      PrintStats(server.stats());
      continue;
    }
    if (cmd == "reload") {
      auto current = epochs.CurrentEpochId();
      if (current.ok() && *current == server.current_epoch_id()) {
        std::printf("already serving epoch %llu (nothing newer published)\n",
                    (unsigned long long)*current);
        continue;
      }
      status = server.LoadCurrent(epochs);
      if (status.ok()) {
        std::printf("now serving epoch %llu\n",
                    (unsigned long long)server.current_epoch_id());
      } else {
        std::printf("reload failed, still serving epoch %llu: %s\n",
                    (unsigned long long)server.current_epoch_id(),
                    status.ToString().c_str());
      }
      continue;
    }

    dd::QueryRequest request;
    if (cmd == "marginal" || cmd == "fact") {
      request.kind =
          cmd == "fact" ? dd::QueryKind::kFact : dd::QueryKind::kMarginal;
      if (!(in >> request.relation >> request.row)) {
        std::printf("usage: %s <relation> <row> %s\n", cmd.c_str(),
                    cmd == "fact" ? "[threshold]" : "");
        continue;
      }
      in >> request.threshold;  // optional; keeps the 0.9 default on failure
    } else if (cmd == "top") {
      request.kind = dd::QueryKind::kTopK;
      if (!(in >> request.relation)) {
        std::printf("usage: top <relation> [k]\n");
        continue;
      }
      in >> request.k;
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
      continue;
    }

    auto response = server.Query(request);
    if (!response.ok()) {
      std::printf("error: %s\n", response.status().ToString().c_str());
      continue;
    }
    if (request.kind == dd::QueryKind::kTopK) {
      std::printf("epoch %llu, top %zu of %s:\n",
                  (unsigned long long)response->epoch, response->top.size(),
                  request.relation.c_str());
      for (const dd::TopKEntry& entry : response->top) {
        std::printf("  row %lld  p=%.6f\n", (long long)entry.row,
                    entry.probability);
      }
    } else if (request.kind == dd::QueryKind::kFact) {
      std::printf("epoch %llu: %s(%lld) %s the output KB (p=%.6f, "
                  "threshold %.2f)%s\n",
                  (unsigned long long)response->epoch,
                  request.relation.c_str(), (long long)request.row,
                  response->is_fact ? "IS IN" : "is NOT in",
                  response->probability, request.threshold,
                  response->from_cache ? " [cached]" : "");
    } else {
      std::printf("epoch %llu: P(%s(%lld)) = %.6f%s\n",
                  (unsigned long long)response->epoch,
                  request.relation.c_str(), (long long)request.row,
                  response->probability,
                  response->from_cache ? " [cached]" : "");
    }
  }
  server.Stop();
  return 0;
}
