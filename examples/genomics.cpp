// Medical genetics (§6.1): extract (gene, phenotype) associations from a
// synthetic research-paper corpus, supervised distantly by an incomplete
// OMIM-like curated database, and produce the error-analysis document of
// §5.2 against the planted ground truth.
//
// Build & run:  ./build/examples/genomics

#include <cstdio>

#include "core/calibration.h"
#include "core/error_analysis.h"
#include "testdata/genomics_app.h"

int main() {
  dd::GenomicsCorpusOptions corpus_options;
  corpus_options.num_abstracts = 150;
  dd::GenomicsCorpus corpus = dd::GenerateGenomicsCorpus(corpus_options);

  dd::PipelineOptions options;
  options.learn.epochs = 250;
  options.learn.learning_rate = 0.05;
  options.threshold = 0.8;

  auto pipeline = dd::MakeGenomicsPipeline(corpus, dd::GenomicsAppOptions(), options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  dd::Status status = (*pipeline)->Run();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("=== DeepDive genomics: gene-phenotype extraction ===\n");
  std::printf("corpus: %zu abstracts, %zu genes, %zu phenotypes; "
              "truth %zu associations, KB knows %zu\n",
              corpus.documents.size(), corpus.genes.size(),
              corpus.phenotypes.size(), corpus.association_truth.size(),
              corpus.kb_associations.size());
  std::printf("graph: %zu vars, %zu factors, %zu weights, %zu evidence\n\n",
              (*pipeline)->grounding_stats().num_variables,
              (*pipeline)->grounding_stats().num_factors,
              (*pipeline)->grounding_stats().num_weights,
              (*pipeline)->grounding_stats().num_evidence);

  // Error analysis against the planted truth (the §5.2 document).
  auto truth = dd::GenomicsTruthTuples(corpus);
  auto marginals = (*pipeline)->Marginals("Association");
  if (!marginals.ok()) {
    std::fprintf(stderr, "%s\n", marginals.status().ToString().c_str());
    return 1;
  }
  auto analysis = dd::ErrorAnalysis::Build(
      *marginals, options.threshold, truth,
      [&](const dd::Tuple& tuple, bool is_fp) -> std::string {
        if (!is_fp) {
          for (const auto& [t, p] : *marginals) {
            if (t == tuple) return "below threshold (weak features)";
          }
          return "never became a candidate (extractor miss)";
        }
        return "false extraction (negative context misread)";
      });
  std::printf("%s\n", analysis.ToText((*pipeline)->grounder(), 12).c_str());

  // Calibration diagrams (Fig. 5) against the planted truth.
  std::vector<double> probs;
  std::vector<int> labels;
  for (const auto& [tuple, prob] : *marginals) {
    probs.push_back(prob);
    labels.push_back(truth.count(tuple) > 0 ? 1 : 0);
  }
  auto calibration = dd::CalibrationReport::Build(probs, labels);
  std::printf("%s", calibration.ToText().c_str());
  std::printf("max calibration gap: %.3f; mass in extreme buckets: %.2f\n",
              calibration.MaxCalibrationGap(), calibration.ExtremeMassFraction());
  return 0;
}
