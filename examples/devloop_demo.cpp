// The DeepDive improvement iteration loop (§5, Figure 1), scripted.
//
// Each iteration plays the role of the knowledge engineer: produce the
// error-analysis document, diagnose the largest failure bucket, apply
// exactly one fix (a candidate-generator repair, a new feature family,
// or a new distant-supervision rule), and rerun the system. The paper's
// claim — quality improves reliably, like systematic performance
// debugging — shows up as a monotone-ish F1 column.
//
// Build & run:  ./build/examples/devloop_demo

#include <cstdio>

#include "core/devloop.h"
#include "core/error_analysis.h"
#include "testdata/spouse_app.h"

namespace {

dd::SpouseAppOptions AppAtIteration(int iteration) {
  dd::SpouseAppOptions app;
  // Start from the naive day-one extractor and switch fixes on one by one.
  app.min_name_tokens = 1;           // bug: "Ohio" counts as a person
  app.use_distance_features = true;  // the only day-one feature
  app.use_bow_features = false;
  app.use_phrase_features = false;
  app.use_pos_features = false;
  app.use_window_features = false;
  app.use_sibling_negatives = true;  // day-one negative labels
  app.use_closure_negatives = false;
  if (iteration >= 1) app.use_bow_features = true;
  if (iteration >= 2) app.min_name_tokens = 2;
  if (iteration >= 3) app.use_closure_negatives = true;
  if (iteration >= 4) app.use_phrase_features = true;
  if (iteration >= 5) {
    app.use_pos_features = true;
    app.use_window_features = true;
  }
  return app;
}

const char* kActions[] = {
    "day 1: distance feature, KB positives, sibling negatives",
    "error analysis: no usable features -> add bag-of-words between mentions",
    "error analysis: 'Ohio' extracted as person -> require 2-token names",
    "error analysis: few negative labels -> add KB-closure negatives",
    "error analysis: ambiguous contexts -> add phrase-between feature",
    "error analysis: remaining ambiguity -> add POS + window features",
};

}  // namespace

int main() {
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 120;
  corpus_options.seed = 21;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);

  dd::PipelineOptions pipeline_options;
  pipeline_options.learn.epochs = 150;
  pipeline_options.learn.learning_rate = 0.05;
  pipeline_options.inference.full_burn_in = 100;
  pipeline_options.inference.num_samples = 400;
  pipeline_options.threshold = 0.7;
  pipeline_options.strategy = dd::PipelineOptions::Strategy::kSampling;

  dd::DevelopmentLoop loop(
      [&](int iteration) {
        return dd::MakeSpousePipeline(corpus, AppAtIteration(iteration),
                                      pipeline_options);
      },
      "MarriedPair", dd::SpouseTruthTuples(corpus));

  std::printf("=== DeepDive development loop (spouse application) ===\n");
  std::printf("corpus: %zu documents; %zu true married pairs; KB knows %zu\n\n",
              corpus.documents.size(), corpus.married_truth.size(),
              corpus.kb_married.size());

  for (const char* action : kActions) {
    auto record = loop.RunIteration(action);
    if (!record.ok()) {
      std::fprintf(stderr, "iteration failed: %s\n",
                   record.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("%s\n", loop.ToText().c_str());

  // Drill into the final iteration's error analysis (§5.2's document).
  auto* pipeline = loop.last_pipeline();
  auto marginals = pipeline->Marginals("MarriedPair");
  if (marginals.ok()) {
    auto truth = dd::SpouseTruthTuples(corpus);
    auto analysis = dd::ErrorAnalysis::Build(
        *marginals, 0.7, truth, [](const dd::Tuple&, bool is_fp) {
          return is_fp ? std::string("false extraction")
                       : std::string("missed pair");
        });
    std::printf("\nfinal iteration error analysis:\n%s",
                analysis.ToText(pipeline->grounder(), 10).c_str());
  }
  return 0;
}
