// Sharded inference demo: partition a factor graph across forked worker
// processes, learn by model averaging, infer with boundary exchange, and
// survive a worker kill mid-run.
//
// The run demonstrates the full DESIGN.md §15 machinery:
//   1. greedy min-cut partitioning (cut size vs the random baseline),
//   2. one fork()ed shard worker per shard, wired to the coordinator
//      over the length-prefixed CRC'd frame protocol,
//   3. epoch-synchronous learning — every epoch each shard runs one
//      contrastive-divergence step and the coordinator averages the
//      weights (Zinkevich-style parameter mixing),
//   4. boundary-value exchange during sampling so cut factors see
//      fresh ghost values,
//   5. per-shard checkpoints: a crash-injected worker is respawned and
//      resumes bit-identically — the final marginals match a clean run.
//
// Build & run:  ./build/examples/dist_demo

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "testdata/synthetic_graphs.h"

namespace {

dd::FactorGraph MakeDemoGraph() {
  dd::SyntheticGraphOptions options;
  options.num_variables = 600;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.25;
  options.weight_scale = 0.5;
  options.num_weights = 24;
  options.seed = 42;
  dd::FactorGraph graph = dd::MakeRandomGraph(options);
  if (!graph.Finalize().ok()) {
    std::fprintf(stderr, "graph finalize failed\n");
    std::exit(1);
  }
  return graph;
}

dd::DistributedOptions DemoOptions(const std::string& checkpoint_dir) {
  dd::DistributedOptions options;
  options.num_shards = 4;
  options.launch = dd::DistLaunchMode::kForkedProcesses;
  options.epochs = 12;
  options.learning_rate = 0.05;
  options.burn_in = 100;
  options.num_samples = 1000;
  options.sweeps_per_exchange = 8;
  options.checkpoint_dir = checkpoint_dir;
  return options;
}

}  // namespace

int main() {
  std::printf("=== sharded inference across forked workers ===\n\n");
  dd::FactorGraph graph = MakeDemoGraph();
  std::printf("graph: %zu variables, %zu factors, %zu weights\n",
              graph.num_variables(), graph.num_factors(),
              graph.num_weights());

  const std::string dir = "/tmp/dd_dist_demo_";
  std::vector<double> clean_marginals;
  {
    dd::FactorGraph g = graph;
    auto result = dd::RunDistributed(&g, DemoOptions(dir + "clean"));
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\npartition (4 shards, greedy min-cut refinement):\n"
                "  cut edges:     %llu (random baseline %llu)\n"
                "  boundary vars: %zu of %zu\n",
                static_cast<unsigned long long>(result->cut_edges),
                static_cast<unsigned long long>(result->initial_cut_edges),
                result->boundary_vars, graph.num_variables());
    std::printf("run: %d learning epochs, %llu samples accumulated, "
                "%d worker restarts\n",
                result->epochs_run,
                static_cast<unsigned long long>(result->num_accumulated),
                result->restarts);
    double positive = 0;
    for (double m : result->marginals) positive += m > 0.5 ? 1 : 0;
    std::printf("marginals: %zu variables, %.0f%% above 0.5\n",
                result->marginals.size(),
                100.0 * positive / result->marginals.size());
    clean_marginals = result->marginals;
  }

  // Same run, but shard 2 is told to crash mid-learning. The
  // coordinator respawns it from its checkpoint; the replay is
  // bit-exact, so the marginals must match the clean run.
  std::printf("\n=== crash shard 2 mid-run, resume from checkpoint ===\n\n");
  {
    dd::FactorGraph g = graph;
    dd::DistributedOptions options = DemoOptions(dir + "faulty");
    options.shard_failpoints[2] = "dist.barrier=crash(skip=6,hits=1)";
    auto result = dd::RunDistributed(&g, options);
    if (!result.ok()) {
      std::fprintf(stderr, "faulty run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("run completed with %d worker restart(s)\n",
                result->restarts);
    if (result->marginals == clean_marginals) {
      std::printf("recovered marginals are bit-identical to the clean "
                  "run's — checkpoint resume is exact\n");
    } else {
      std::printf("ERROR: recovered marginals diverged from the clean "
                  "run\n");
      return 1;
    }
  }
  return 0;
}
