// Quickstart: extract a spouse relation from a handful of news snippets.
//
// Demonstrates the full DeepDive workflow of §3 in its smallest form:
//   1. declare the schema and rules in DDlog,
//   2. write a candidate-generation extractor (a C++ UDF),
//   3. supply a (deliberately incomplete) KB for distant supervision,
//   4. Run() and read calibrated probabilities back out.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "core/features.h"
#include "core/pipeline.h"
#include "nlp/ner.h"
#include "util/trace.h"

namespace {

constexpr char kProgram[] = R"(
  # Base relations, produced by the extractor below.
  MentionPair(doc: text, s: int, m1: int, m2: int, n1: text, n2: text).
  PairFeature(doc: text, s: int, m1: int, m2: int, f: text).
  # Distant-supervision KBs: pairs we KNOW are married / not married.
  KbMarried(e1: text, e2: text).
  KbNotMarried(e1: text, e2: text).

  # The aspirational relation: are these two mentions married?
  MarriedMention?(doc: text, s: int, m1: int, m2: int).
  MarriedMention_Ev(doc: text, s: int, m1: int, m2: int, label: bool).

  # R1 (candidate mapping), FE1 (features), S1 (supervision) — the three
  # rules of the paper's running example.
  MarriedMention(doc, s, m1, m2) :- MentionPair(doc, s, m1, m2, n1, n2).
  MarriedMention(doc, s, m1, m2) :-
      MentionPair(doc, s, m1, m2, n1, n2),
      PairFeature(doc, s, m1, m2, f) weight = identity(f).
  MarriedMention_Ev(doc, s, m1, m2, true) :-
      MentionPair(doc, s, m1, m2, n1, n2), KbMarried(n1, n2).
  MarriedMention_Ev(doc, s, m1, m2, false) :-
      MentionPair(doc, s, m1, m2, n1, n2), KbMarried(n1, other), other != n2.
  MarriedMention_Ev(doc, s, m1, m2, false) :-
      MentionPair(doc, s, m1, m2, n1, n2), KbNotMarried(n1, n2).
)";

const char* kDocuments[][2] = {
    {"d01", "Barack Obama and Michelle Obama were married Oct. 3, 1992. "
            "Malia Obama and Sasha Obama attended the state dinner."},
    {"d02", "Bill Clinton and his wife Hillary Clinton appeared together."},
    {"d03", "George Bush married Laura Bush in 1977."},
    {"d04", "Joe Biden debated Paul Ryan on live television."},
    {"d05", "Angela Merkel met Emmanuel Macron at the summit."},
    {"d06", "Franklin Roosevelt and his wife Eleanor Roosevelt hosted the gala."},
    {"d07", "Harry Truman succeeded Franklin Roosevelt as president."},
    {"d08", "John Kennedy and Jacqueline Kennedy celebrated their wedding anniversary."},
    {"d09", "Richard Nixon interviewed David Frost about the book."},
    {"d10", "Gerald Ford and his wife Betty Ford moved to California."},
};

// Pairs the KB already knows (note: NOT all of the married pairs above —
// distant supervision generalizes from these to the rest).
const char* kKnownMarried[][2] = {
    {"Barack Obama", "Michelle Obama"},
    {"Bill Clinton", "Hillary Clinton"},
    {"Eleanor Roosevelt", "Franklin Roosevelt"},
};

// Pairs the KB knows are NOT married (negative supervision; §3.2's
// "largely disjoint" relations).
const char* kKnownNotMarried[][2] = {
    {"David Frost", "Richard Nixon"},
    {"Franklin Roosevelt", "Harry Truman"},
};

dd::Status SpouseExtractor(const dd::Document& doc, dd::TupleEmitter* emitter) {
  using dd::Value;
  for (const dd::Sentence& sentence : doc.sentences) {
    auto mentions = dd::Gazetteer::FindPersonCandidates(sentence);
    // Person names in this domain are First + Last: drop 1-token runs
    // ("Oct", "California") — the classic bad-candidate bug of §5.2.
    std::erase_if(mentions, [](const dd::Mention& m) {
      return m.token_end - m.token_begin < 2;
    });
    for (size_t i = 0; i < mentions.size(); ++i) {
      for (size_t j = i + 1; j < mentions.size(); ++j) {
        const dd::Mention* a = &mentions[i];
        const dd::Mention* b = &mentions[j];
        if (b->text < a->text) std::swap(a, b);
        if (a->text == b->text) continue;
        dd::Tuple key({Value::String(doc.id), Value::Int(sentence.index),
                       Value::Int(a->token_begin), Value::Int(b->token_begin)});
        dd::Tuple pair = key;
        pair.Append(Value::String(a->text));
        pair.Append(Value::String(b->text));
        emitter->Emit("MentionPair", std::move(pair));
        for (const std::string& f :
             dd::RelationFeatureTemplates(sentence, *a, *b)) {
          dd::Tuple feat = key;
          feat.Append(Value::String(f));
          emitter->Emit("PairFeature", std::move(feat));
        }
      }
    }
  }
  return dd::Status::OK();
}

}  // namespace

int main() {
  dd::PipelineOptions options;
  options.learn.epochs = 300;
  options.learn.learning_rate = 0.05;
  options.threshold = 0.7;

  dd::DeepDivePipeline pipeline(options);
  dd::Status status = pipeline.LoadProgram(kProgram);
  if (!status.ok()) {
    std::fprintf(stderr, "program error: %s\n", status.ToString().c_str());
    return 1;
  }
  pipeline.RegisterExtractor(SpouseExtractor);
  for (const auto& [a, b] : kKnownMarried) {
    pipeline.QueueDelta(
        "KbMarried",
        dd::Tuple({dd::Value::String(a), dd::Value::String(b)}), 1);
  }
  for (const auto& [a, b] : kKnownNotMarried) {
    pipeline.QueueDelta(
        "KbNotMarried",
        dd::Tuple({dd::Value::String(a), dd::Value::String(b)}), 1);
  }
  for (const auto& [id, text] : kDocuments) {
    status = pipeline.AddDocument(id, text);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  status = pipeline.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "run error: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("=== DeepDive quickstart: spouse extraction ===\n");
  std::printf("grounded %zu variables, %zu factors, %zu weights "
              "(%zu with evidence)\n\n",
              pipeline.grounding_stats().num_variables,
              pipeline.grounding_stats().num_factors,
              pipeline.grounding_stats().num_weights,
              pipeline.grounding_stats().num_evidence);

  auto marginals = pipeline.Marginals("MarriedMention");
  if (!marginals.ok()) {
    std::fprintf(stderr, "%s\n", marginals.status().ToString().c_str());
    return 1;
  }
  std::printf("%-8s %-5s  %-48s %s\n", "doc", "sent", "mention pair", "P(married)");
  for (const auto& [tuple, prob] : *marginals) {
    // Tuple layout: (doc, s, m1, m2) — resolve the names via the catalog.
    std::string names = "?";
    auto table = pipeline.catalog()->GetTable("MentionPair");
    if (table.ok()) {
      for (const dd::Tuple& row : (*table)->Scan()) {
        bool match = true;
        for (size_t c = 0; c < 4; ++c) {
          if (!(row.at(c) == tuple.at(c))) {
            match = false;
            break;
          }
        }
        if (match) {
          names = row.at(4).AsString() + "  +  " + row.at(5).AsString();
          break;
        }
      }
    }
    std::printf("%-8s %-5lld  %-48s %.3f\n", tuple.at(0).AsString().c_str(),
                static_cast<long long>(tuple.at(1).AsInt()), names.c_str(), prob);
  }

  std::printf("\nOutput database (threshold %.2f):\n", 0.7);
  auto extractions = pipeline.Extractions("MarriedMention");
  std::printf("  %zu married-mention tuples extracted\n", extractions->size());

  // Per-run observability report: the Fig. 2 phase breakdown plus every
  // counter/gauge/histogram the run touched, as machine-readable JSON
  // ($DD_METRICS_JSON overrides the path) and a one-screen table.
  const char* metrics_path_env = std::getenv("DD_METRICS_JSON");
  const std::string metrics_path =
      metrics_path_env != nullptr && metrics_path_env[0] != '\0'
          ? metrics_path_env
          : "quickstart_metrics.json";
  status = dd::RunMetrics::WriteJsonFile(metrics_path);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics report error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\n%s\nwrote %s\n", dd::RunMetrics::ToTable().c_str(),
              metrics_path.c_str());
  return 0;
}
