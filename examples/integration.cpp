// Integrated processing (§2.4): extraction, cleaning, and integration in
// ONE program. The paper's motivating story: a book catalog built from
// review pages, where ~2% of extractions are actually movies (an NLP
// failure upstream). In a siloed architecture the integration team
// cannot fix the extractor; in DeepDive the fix is one declarative
// cleaning rule — filter candidates against a freely available movie
// dictionary — applied "where it is easiest to solve".
//
// Build & run:  ./build/examples/integration

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/error_analysis.h"
#include "core/pipeline.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

// The single integrated program. Note the two variants of the candidate
// rule: the "siloed" one keeps every extraction; the "integrated" one
// adds the cleaning join (!MovieTitle) and the integration signal
// (already-cataloged books get positive supervision).
const char* Program(bool with_cleaning) {
  static std::string program;
  program = R"(
    # Raw extractor output from the review pages (title, price-ish number).
    Extracted(page: text, title: text, price: int).
    # A free movie-title dictionary (the "easy fix" of the §2.4 story).
    MovieTitle(title: text).
    # The partial existing catalog to integrate with.
    Catalog(title: text).

    Book?(title: text, price: int).
    Book_Ev(title: text, price: int, label: bool).
  )";
  if (with_cleaning) {
    program += R"(
    # Cleaning rule: movie titles are not books, however well extracted.
    Book(title, price) :- Extracted(page, title, price), !MovieTitle(title).
    )";
  } else {
    program += R"(
    Book(title, price) :- Extracted(page, title, price).
    )";
  }
  program += R"(
    # Integration: the existing catalog supervises known books positively.
    Book_Ev(title, price, true) :-
        Extracted(page, title, price), Catalog(title).
    # A weak positive prior: extractions are mostly right (98% precision).
    Book(title, price) :- Extracted(page, title, price) weight = 2.0.
  )";
  return program.c_str();
}

}  // namespace

int main() {
  // Synthetic world: 60 real books (30 already cataloged), 8 movies that
  // the flawed extractor also emits.
  dd::Rng rng(7);
  std::vector<std::string> books, movies;
  for (int i = 0; i < 60; ++i) books.push_back(dd::StrFormat("Book Title %02d", i));
  for (int i = 0; i < 8; ++i) movies.push_back(dd::StrFormat("Movie Film %02d", i));

  for (bool with_cleaning : {false, true}) {
    dd::PipelineOptions options;
    options.learn.epochs = 150;
    options.threshold = 0.7;
    dd::DeepDivePipeline pipeline(options);
    dd::Status status = pipeline.LoadProgram(Program(with_cleaning));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    // Load the dictionary and catalog KBs.
    for (const std::string& movie : movies) {
      pipeline.QueueDelta("MovieTitle", dd::Tuple({dd::Value::String(movie)}), 1);
    }
    for (int i = 0; i < 30; ++i) {
      pipeline.QueueDelta("Catalog", dd::Tuple({dd::Value::String(books[i])}), 1);
    }
    // The "extractor": 98% of its output is books, 2%-ish movies.
    dd::Rng page_rng(9);
    for (int page = 0; page < 200; ++page) {
      bool is_movie = page_rng.NextBernoulli(0.1);
      const std::string& title =
          is_movie ? movies[page_rng.NextBounded(movies.size())]
                   : books[page_rng.NextBounded(books.size())];
      pipeline.QueueDelta(
          "Extracted",
          dd::Tuple({dd::Value::String(dd::StrFormat("page%03d", page)),
                     dd::Value::String(title),
                     dd::Value::Int(10 + static_cast<int64_t>(
                                             page_rng.NextBounded(40)))}),
          1);
    }
    status = pipeline.Run();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    auto extractions = pipeline.Extractions("Book");
    if (!extractions.ok()) return 1;
    size_t movie_leaks = 0;
    std::set<std::string> extracted_titles;
    for (const dd::Tuple& t : *extractions) {
      const std::string& title = t.at(0).AsString();
      extracted_titles.insert(title);
      if (title.rfind("Movie", 0) == 0) ++movie_leaks;
    }
    size_t book_titles_found = 0;
    for (const std::string& book : books) {
      if (extracted_titles.count(book) > 0) ++book_titles_found;
    }
    std::printf("%s pipeline: %zu (title, price) tuples in the catalog; "
                "%zu/%zu book titles covered; %zu movie rows leaked\n",
                with_cleaning ? "integrated (with cleaning rule)"
                              : "siloed     (no cleaning rule) ",
                extractions->size(), book_titles_found, books.size(), movie_leaks);
  }
  std::printf("\nThe fix is ONE datalog line joining a free dictionary — possible\n"
              "only because extraction, cleaning, and integration live in the\n"
              "same program judged by end-to-end quality (the point of §2.4).\n");
  return 0;
}
