# Empty dependencies file for bench_incremental_grounding.
# This may be replaced when dependencies are built.
