file(REMOVE_RECURSE
  "../bench/bench_incremental_grounding"
  "../bench/bench_incremental_grounding.pdb"
  "CMakeFiles/bench_incremental_grounding.dir/bench_incremental_grounding.cc.o"
  "CMakeFiles/bench_incremental_grounding.dir/bench_incremental_grounding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
