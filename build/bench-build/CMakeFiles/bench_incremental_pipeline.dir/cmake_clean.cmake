file(REMOVE_RECURSE
  "../bench/bench_incremental_pipeline"
  "../bench/bench_incremental_pipeline.pdb"
  "CMakeFiles/bench_incremental_pipeline.dir/bench_incremental_pipeline.cc.o"
  "CMakeFiles/bench_incremental_pipeline.dir/bench_incremental_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
