# Empty compiler generated dependencies file for bench_incremental_pipeline.
# This may be replaced when dependencies are built.
