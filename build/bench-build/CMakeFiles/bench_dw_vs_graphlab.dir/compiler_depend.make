# Empty compiler generated dependencies file for bench_dw_vs_graphlab.
# This may be replaced when dependencies are built.
