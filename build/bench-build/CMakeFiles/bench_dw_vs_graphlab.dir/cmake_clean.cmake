file(REMOVE_RECURSE
  "../bench/bench_dw_vs_graphlab"
  "../bench/bench_dw_vs_graphlab.pdb"
  "CMakeFiles/bench_dw_vs_graphlab.dir/bench_dw_vs_graphlab.cc.o"
  "CMakeFiles/bench_dw_vs_graphlab.dir/bench_dw_vs_graphlab.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dw_vs_graphlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
