file(REMOVE_RECURSE
  "../bench/bench_incremental_inference"
  "../bench/bench_incremental_inference.pdb"
  "CMakeFiles/bench_incremental_inference.dir/bench_incremental_inference.cc.o"
  "CMakeFiles/bench_incremental_inference.dir/bench_incremental_inference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
