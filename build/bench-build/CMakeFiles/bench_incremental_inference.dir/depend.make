# Empty dependencies file for bench_incremental_inference.
# This may be replaced when dependencies are built.
