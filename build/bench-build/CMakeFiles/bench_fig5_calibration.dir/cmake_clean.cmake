file(REMOVE_RECURSE
  "../bench/bench_fig5_calibration"
  "../bench/bench_fig5_calibration.pdb"
  "CMakeFiles/bench_fig5_calibration.dir/bench_fig5_calibration.cc.o"
  "CMakeFiles/bench_fig5_calibration.dir/bench_fig5_calibration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
