file(REMOVE_RECURSE
  "../bench/bench_numa_sampler"
  "../bench/bench_numa_sampler.pdb"
  "CMakeFiles/bench_numa_sampler.dir/bench_numa_sampler.cc.o"
  "CMakeFiles/bench_numa_sampler.dir/bench_numa_sampler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numa_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
