# Empty dependencies file for bench_numa_sampler.
# This may be replaced when dependencies are built.
