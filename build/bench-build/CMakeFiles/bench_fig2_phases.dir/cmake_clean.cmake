file(REMOVE_RECURSE
  "../bench/bench_fig2_phases"
  "../bench/bench_fig2_phases.pdb"
  "CMakeFiles/bench_fig2_phases.dir/bench_fig2_phases.cc.o"
  "CMakeFiles/bench_fig2_phases.dir/bench_fig2_phases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
