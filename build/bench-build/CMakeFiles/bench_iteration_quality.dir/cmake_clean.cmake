file(REMOVE_RECURSE
  "../bench/bench_iteration_quality"
  "../bench/bench_iteration_quality.pdb"
  "CMakeFiles/bench_iteration_quality.dir/bench_iteration_quality.cc.o"
  "CMakeFiles/bench_iteration_quality.dir/bench_iteration_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iteration_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
