# Empty dependencies file for bench_iteration_quality.
# This may be replaced when dependencies are built.
