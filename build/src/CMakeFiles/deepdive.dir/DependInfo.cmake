
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cc" "src/CMakeFiles/deepdive.dir/core/calibration.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/calibration.cc.o.d"
  "/root/repo/src/core/devloop.cc" "src/CMakeFiles/deepdive.dir/core/devloop.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/devloop.cc.o.d"
  "/root/repo/src/core/diagnostics.cc" "src/CMakeFiles/deepdive.dir/core/diagnostics.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/diagnostics.cc.o.d"
  "/root/repo/src/core/error_analysis.cc" "src/CMakeFiles/deepdive.dir/core/error_analysis.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/error_analysis.cc.o.d"
  "/root/repo/src/core/feature_selection.cc" "src/CMakeFiles/deepdive.dir/core/feature_selection.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/feature_selection.cc.o.d"
  "/root/repo/src/core/features.cc" "src/CMakeFiles/deepdive.dir/core/features.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/features.cc.o.d"
  "/root/repo/src/core/mindtagger.cc" "src/CMakeFiles/deepdive.dir/core/mindtagger.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/mindtagger.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/deepdive.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/udf.cc" "src/CMakeFiles/deepdive.dir/core/udf.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/core/udf.cc.o.d"
  "/root/repo/src/ddlog/lexer.cc" "src/CMakeFiles/deepdive.dir/ddlog/lexer.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/ddlog/lexer.cc.o.d"
  "/root/repo/src/ddlog/parser.cc" "src/CMakeFiles/deepdive.dir/ddlog/parser.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/ddlog/parser.cc.o.d"
  "/root/repo/src/factor/graph.cc" "src/CMakeFiles/deepdive.dir/factor/graph.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/factor/graph.cc.o.d"
  "/root/repo/src/factor/io.cc" "src/CMakeFiles/deepdive.dir/factor/io.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/factor/io.cc.o.d"
  "/root/repo/src/grounding/grounder.cc" "src/CMakeFiles/deepdive.dir/grounding/grounder.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/grounding/grounder.cc.o.d"
  "/root/repo/src/inference/convergence.cc" "src/CMakeFiles/deepdive.dir/inference/convergence.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/convergence.cc.o.d"
  "/root/repo/src/inference/exact.cc" "src/CMakeFiles/deepdive.dir/inference/exact.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/exact.cc.o.d"
  "/root/repo/src/inference/gibbs.cc" "src/CMakeFiles/deepdive.dir/inference/gibbs.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/gibbs.cc.o.d"
  "/root/repo/src/inference/hogwild.cc" "src/CMakeFiles/deepdive.dir/inference/hogwild.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/hogwild.cc.o.d"
  "/root/repo/src/inference/incremental.cc" "src/CMakeFiles/deepdive.dir/inference/incremental.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/incremental.cc.o.d"
  "/root/repo/src/inference/learner.cc" "src/CMakeFiles/deepdive.dir/inference/learner.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/learner.cc.o.d"
  "/root/repo/src/inference/map.cc" "src/CMakeFiles/deepdive.dir/inference/map.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/map.cc.o.d"
  "/root/repo/src/inference/meanfield.cc" "src/CMakeFiles/deepdive.dir/inference/meanfield.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/meanfield.cc.o.d"
  "/root/repo/src/inference/numa.cc" "src/CMakeFiles/deepdive.dir/inference/numa.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/inference/numa.cc.o.d"
  "/root/repo/src/nlp/document.cc" "src/CMakeFiles/deepdive.dir/nlp/document.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/nlp/document.cc.o.d"
  "/root/repo/src/nlp/html.cc" "src/CMakeFiles/deepdive.dir/nlp/html.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/nlp/html.cc.o.d"
  "/root/repo/src/nlp/ner.cc" "src/CMakeFiles/deepdive.dir/nlp/ner.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/nlp/ner.cc.o.d"
  "/root/repo/src/nlp/pos.cc" "src/CMakeFiles/deepdive.dir/nlp/pos.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/nlp/pos.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "src/CMakeFiles/deepdive.dir/nlp/tokenizer.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/nlp/tokenizer.cc.o.d"
  "/root/repo/src/query/aggregates.cc" "src/CMakeFiles/deepdive.dir/query/aggregates.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/query/aggregates.cc.o.d"
  "/root/repo/src/query/datalog.cc" "src/CMakeFiles/deepdive.dir/query/datalog.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/query/datalog.cc.o.d"
  "/root/repo/src/query/dred.cc" "src/CMakeFiles/deepdive.dir/query/dred.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/query/dred.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/CMakeFiles/deepdive.dir/query/evaluator.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/query/evaluator.cc.o.d"
  "/root/repo/src/query/rule.cc" "src/CMakeFiles/deepdive.dir/query/rule.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/query/rule.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/deepdive.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/deepdive.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/deepdive.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/tsv.cc" "src/CMakeFiles/deepdive.dir/storage/tsv.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/storage/tsv.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/deepdive.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/storage/tuple.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/deepdive.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/storage/value.cc.o.d"
  "/root/repo/src/testdata/ads_app.cc" "src/CMakeFiles/deepdive.dir/testdata/ads_app.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/testdata/ads_app.cc.o.d"
  "/root/repo/src/testdata/corpus_ads.cc" "src/CMakeFiles/deepdive.dir/testdata/corpus_ads.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/testdata/corpus_ads.cc.o.d"
  "/root/repo/src/testdata/corpus_genomics.cc" "src/CMakeFiles/deepdive.dir/testdata/corpus_genomics.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/testdata/corpus_genomics.cc.o.d"
  "/root/repo/src/testdata/corpus_spouse.cc" "src/CMakeFiles/deepdive.dir/testdata/corpus_spouse.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/testdata/corpus_spouse.cc.o.d"
  "/root/repo/src/testdata/genomics_app.cc" "src/CMakeFiles/deepdive.dir/testdata/genomics_app.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/testdata/genomics_app.cc.o.d"
  "/root/repo/src/testdata/spouse_app.cc" "src/CMakeFiles/deepdive.dir/testdata/spouse_app.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/testdata/spouse_app.cc.o.d"
  "/root/repo/src/testdata/synthetic_graphs.cc" "src/CMakeFiles/deepdive.dir/testdata/synthetic_graphs.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/testdata/synthetic_graphs.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/deepdive.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/util/logging.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/deepdive.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/deepdive.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/deepdive.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
