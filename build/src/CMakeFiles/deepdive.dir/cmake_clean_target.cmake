file(REMOVE_RECURSE
  "libdeepdive.a"
)
