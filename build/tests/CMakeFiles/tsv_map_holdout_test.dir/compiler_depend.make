# Empty compiler generated dependencies file for tsv_map_holdout_test.
# This may be replaced when dependencies are built.
