file(REMOVE_RECURSE
  "CMakeFiles/tsv_map_holdout_test.dir/tsv_map_holdout_test.cc.o"
  "CMakeFiles/tsv_map_holdout_test.dir/tsv_map_holdout_test.cc.o.d"
  "tsv_map_holdout_test"
  "tsv_map_holdout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsv_map_holdout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
