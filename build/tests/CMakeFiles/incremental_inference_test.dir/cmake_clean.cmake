file(REMOVE_RECURSE
  "CMakeFiles/incremental_inference_test.dir/incremental_inference_test.cc.o"
  "CMakeFiles/incremental_inference_test.dir/incremental_inference_test.cc.o.d"
  "incremental_inference_test"
  "incremental_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
