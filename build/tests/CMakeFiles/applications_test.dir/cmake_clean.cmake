file(REMOVE_RECURSE
  "CMakeFiles/applications_test.dir/applications_test.cc.o"
  "CMakeFiles/applications_test.dir/applications_test.cc.o.d"
  "applications_test"
  "applications_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applications_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
