file(REMOVE_RECURSE
  "CMakeFiles/testdata_test.dir/testdata_test.cc.o"
  "CMakeFiles/testdata_test.dir/testdata_test.cc.o.d"
  "testdata_test"
  "testdata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
