file(REMOVE_RECURSE
  "CMakeFiles/factor_graph_test.dir/factor_graph_test.cc.o"
  "CMakeFiles/factor_graph_test.dir/factor_graph_test.cc.o.d"
  "factor_graph_test"
  "factor_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
