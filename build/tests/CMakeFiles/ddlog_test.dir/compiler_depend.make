# Empty compiler generated dependencies file for ddlog_test.
# This may be replaced when dependencies are built.
