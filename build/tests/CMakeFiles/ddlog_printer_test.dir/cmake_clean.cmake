file(REMOVE_RECURSE
  "CMakeFiles/ddlog_printer_test.dir/ddlog_printer_test.cc.o"
  "CMakeFiles/ddlog_printer_test.dir/ddlog_printer_test.cc.o.d"
  "ddlog_printer_test"
  "ddlog_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddlog_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
