# Empty compiler generated dependencies file for ddlog_cli.
# This may be replaced when dependencies are built.
