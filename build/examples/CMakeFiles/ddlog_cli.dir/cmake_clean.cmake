file(REMOVE_RECURSE
  "CMakeFiles/ddlog_cli.dir/ddlog_cli.cpp.o"
  "CMakeFiles/ddlog_cli.dir/ddlog_cli.cpp.o.d"
  "ddlog_cli"
  "ddlog_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddlog_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
