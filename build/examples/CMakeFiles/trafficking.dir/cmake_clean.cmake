file(REMOVE_RECURSE
  "CMakeFiles/trafficking.dir/trafficking.cpp.o"
  "CMakeFiles/trafficking.dir/trafficking.cpp.o.d"
  "trafficking"
  "trafficking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trafficking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
