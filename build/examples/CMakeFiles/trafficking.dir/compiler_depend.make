# Empty compiler generated dependencies file for trafficking.
# This may be replaced when dependencies are built.
