# Empty compiler generated dependencies file for devloop_demo.
# This may be replaced when dependencies are built.
