file(REMOVE_RECURSE
  "CMakeFiles/devloop_demo.dir/devloop_demo.cpp.o"
  "CMakeFiles/devloop_demo.dir/devloop_demo.cpp.o.d"
  "devloop_demo"
  "devloop_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devloop_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
