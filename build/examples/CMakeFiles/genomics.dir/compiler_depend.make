# Empty compiler generated dependencies file for genomics.
# This may be replaced when dependencies are built.
