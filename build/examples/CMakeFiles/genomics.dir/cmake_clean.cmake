file(REMOVE_RECURSE
  "CMakeFiles/genomics.dir/genomics.cpp.o"
  "CMakeFiles/genomics.dir/genomics.cpp.o.d"
  "genomics"
  "genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
