#ifndef DEEPDIVE_STORAGE_TABLE_H_
#define DEEPDIVE_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

/// An in-memory relation with set semantics (datalog's natural model).
/// Rows are stored densely; a hash index from tuple to row id provides
/// O(1) membership tests and deduplicating inserts. Deletion uses
/// tombstones so row ids stay stable for the lifetime of the table
/// (grounding assigns factor-graph variable ids from row ids).
///
/// Concurrency contract: the table is not internally synchronized, but
/// every const method (Find/Contains/row/is_live/capacity/Scan/...) is a
/// pure read with no lazy caching, so any number of threads may call
/// them concurrently as long as no thread mutates the table. The morsel-
/// parallel grounding scans rely on exactly this "frozen during fan-out"
/// discipline: all inserts/erases are buffered per-morsel and applied by
/// the coordinating thread after workers have joined (DESIGN.md §10).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live (non-deleted) rows.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Total slots including tombstones; valid row ids are [0, capacity()).
  size_t capacity() const { return rows_.size(); }

  /// Insert with type checking against the schema. Returns the row id of
  /// the (new or existing) tuple; second=true if newly inserted.
  Result<std::pair<int64_t, bool>> Insert(Tuple tuple);

  /// Insert without schema validation (hot path for internal operators
  /// whose output types are known by construction).
  std::pair<int64_t, bool> InsertUnchecked(Tuple tuple);

  /// Remove a tuple. Returns true if it was present.
  bool Erase(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const;

  /// Row id for a tuple, or -1 if absent/deleted.
  int64_t Find(const Tuple& tuple) const;

  /// Row id for a tuple even if tombstoned (-1 only if never inserted).
  /// Row ids are stable across Erase/re-Insert, so callers tracking
  /// per-row state (e.g. factor-graph variable ids) can re-identify
  /// deleted tuples.
  int64_t FindIncludingDeleted(const Tuple& tuple) const;

  /// Access by row id. The id must be < capacity().
  const Tuple& row(int64_t id) const { return rows_[static_cast<size_t>(id)]; }
  bool is_live(int64_t id) const { return live_[static_cast<size_t>(id)]; }

  /// Snapshot of all live tuples (copy).
  std::vector<Tuple> Scan() const;

  /// Remove all rows but keep the schema.
  void Clear();

  /// Validate a tuple against this table's schema (arity and types;
  /// kNull is accepted in any column, modeling SQL NULL).
  Status CheckTuple(const Tuple& tuple) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<bool> live_;
  std::unordered_map<Tuple, int64_t, TupleHash> index_;
  size_t live_count_ = 0;
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_TABLE_H_
