#ifndef DEEPDIVE_STORAGE_TABLE_H_
#define DEEPDIVE_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

class RowRef;

/// An in-memory relation with set semantics (datalog's natural model).
///
/// Storage is columnar (struct-of-arrays): one ColumnVector per schema
/// column — a contiguous 8-byte payload array plus a 1-byte tag array —
/// a word-addressed liveness Bitmap, and a per-row precomputed hash.
/// Morsel scans therefore walk cache-contiguous arrays and materialize
/// nothing per row (RowRef hands out 16-byte Values straight from the
/// column arrays); the flat arrays are also exactly what the binary
/// snapshot writes and what MappedSnapshot reads in place (DESIGN.md §12).
///
/// Membership is an open-addressing hash index keyed by the stored row
/// hashes: inserts hash the tuple once and reuse that hash for probing,
/// growth, and later RowHash() reads. Deletion uses tombstones so row ids
/// stay stable for the lifetime of the table (grounding assigns
/// factor-graph variable ids from row ids).
///
/// Concurrency contract: the table is not internally synchronized, but
/// every const method (Find/Contains/row/is_live/capacity/Scan/...) is a
/// pure read with no lazy caching, so any number of threads may call
/// them concurrently as long as no thread mutates the table. The morsel-
/// parallel grounding scans rely on exactly this "frozen during fan-out"
/// discipline: all inserts/erases are buffered per-morsel and applied by
/// the coordinating thread after workers have joined (DESIGN.md §10).
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live (non-deleted) rows.
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Total slots including tombstones; valid row ids are [0, capacity()).
  size_t capacity() const { return num_rows_; }

  /// Insert with type checking against the schema. Returns the row id of
  /// the (new or existing) tuple; second=true if newly inserted.
  Result<std::pair<int64_t, bool>> Insert(Tuple tuple);

  /// Insert without schema validation (hot path for internal operators
  /// whose output types are known by construction). The arity must still
  /// match the schema — columnar storage has exactly one array per
  /// schema column.
  std::pair<int64_t, bool> InsertUnchecked(const Tuple& tuple);

  /// Pre-size storage and the hash index for `rows` total rows; use when
  /// the insert count is known (e.g. IncrementalEngine re-materialization)
  /// to avoid rehash-and-grow churn.
  void Reserve(size_t rows);

  /// Snapshot-load append: store `tuple` as the next row id with an
  /// explicit liveness flag, reproducing tombstones byte-for-byte (row
  /// ids must survive a save/load cycle because grounding derives
  /// factor-graph variable ids from them). Corruption if the row is
  /// already present — a well-formed snapshot never repeats a row.
  Status RestoreRow(const Tuple& tuple, bool live);

  /// Remove a tuple. Returns true if it was present.
  bool Erase(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const;

  /// Row id for a tuple, or -1 if absent/deleted.
  int64_t Find(const Tuple& tuple) const;

  /// Row id for a tuple even if tombstoned (-1 only if never inserted).
  /// Row ids are stable across Erase/re-Insert, so callers tracking
  /// per-row state (e.g. factor-graph variable ids) can re-identify
  /// deleted tuples.
  int64_t FindIncludingDeleted(const Tuple& tuple) const;

  /// Materialize row `id` as a Tuple (by value: rows no longer exist
  /// contiguously in memory). Hot paths should use ref()/ValueAt()
  /// instead, which read the column arrays without allocating.
  Tuple row(int64_t id) const;

  /// Zero-copy cell read. id < capacity(), col < schema().num_columns().
  Value ValueAt(int64_t id, size_t col) const {
    return columns_[col].at(static_cast<size_t>(id));
  }

  /// Precomputed hash of row `id`; equal to row(id).Hash().
  uint64_t RowHash(int64_t id) const {
    return hashes_[static_cast<size_t>(id)];
  }

  /// Zero-allocation handle on row `id` (see RowRef below).
  inline RowRef ref(int64_t id) const;

  bool is_live(int64_t id) const { return live_.Get(static_cast<size_t>(id)); }

  /// Column-level access for scans, benches, and snapshot encoding.
  const ColumnVector& column(size_t col) const { return columns_[col]; }
  const Bitmap& live_bitmap() const { return live_; }

  /// Snapshot of all live tuples (copy).
  std::vector<Tuple> Scan() const;

  /// Remove all rows but keep the schema.
  void Clear();

  /// Validate a tuple against this table's schema (arity and types;
  /// kNull is accepted in any column, modeling SQL NULL).
  Status CheckTuple(const Tuple& tuple) const;

  /// Bytes held by column arrays, bitmap, hashes, and the index; for
  /// RSS accounting in bench_storage.
  size_t MemoryBytes() const;

 private:
  /// True if row `id` has the same cells as `tuple` (arity already known
  /// to match the schema for stored rows).
  bool RowEqualsTuple(int64_t id, const Tuple& tuple) const;

  /// Probe for `tuple` with hash `h`. Returns the bucket holding its row,
  /// or the first empty bucket if absent (distinguished by buckets_ value).
  size_t ProbeBucket(uint64_t h, const Tuple& tuple) const;

  /// Grow buckets_ to `want` slots (power of two) and reinsert all rows.
  void Rehash(size_t want);
  void MaybeGrow();

  std::string name_;
  Schema schema_;
  std::vector<ColumnVector> columns_;  // one per schema column
  Bitmap live_;
  std::vector<uint64_t> hashes_;  // per-row, set once at insert
  std::vector<int64_t> buckets_;  // open addressing; -1 = empty
  size_t num_rows_ = 0;
  size_t live_count_ = 0;
};

/// A non-owning, zero-allocation view of one row: either a (table, row id)
/// pair reading straight from the column arrays, or a wrapper over a
/// materialized Tuple (delta sets hand out these). The referenced storage
/// must outlive the ref — both forms are stable under the frozen-during-
/// fan-out contract (tables aren't mutated mid-scan; delta-map keys don't
/// move).
class RowRef {
 public:
  RowRef() = default;
  RowRef(const Table* table, int64_t row) : table_(table), row_(row) {}
  explicit RowRef(const Tuple* tuple) : tuple_(tuple) {}

  size_t size() const {
    return tuple_ ? tuple_->size() : table_->schema().num_columns();
  }
  Value at(size_t i) const {
    return tuple_ ? tuple_->at(i) : table_->ValueAt(row_, i);
  }
  uint64_t Hash() const {
    return tuple_ ? tuple_->Hash() : table_->RowHash(row_);
  }

  /// Backing row id when table-backed, -1 for tuple-backed refs.
  int64_t row_id() const { return row_; }

  /// Materialize (allocates; boundary use only).
  Tuple ToTuple() const;
  std::string ToString() const { return ToTuple().ToString(); }

 private:
  const Table* table_ = nullptr;
  const Tuple* tuple_ = nullptr;
  int64_t row_ = -1;
};

inline RowRef Table::ref(int64_t id) const { return RowRef(this, id); }

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_TABLE_H_
