#include "storage/column.h"

#include <bit>

namespace dd {

size_t Bitmap::PopCount() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

}  // namespace dd
