#ifndef DEEPDIVE_STORAGE_DICTIONARY_H_
#define DEEPDIVE_STORAGE_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dd {

/// Process-wide string interning dictionary. Every distinct string the
/// pipeline touches (mentions, features, entity names, weight keys) is
/// stored exactly once and addressed by a dense uint32_t id assigned in
/// first-insertion order. Value carries the id instead of a heap string,
/// which is what makes it a 16-byte non-allocating tagged union and makes
/// table columns fixed-width (DESIGN.md §12).
///
/// Determinism: ids are handed out under a mutex in strict first-Intern
/// order, so a deterministic pipeline (and the serial grounding oracle)
/// observes identical ids run-to-run. Snapshots never persist global ids
/// directly — encoders remap to snapshot-local first-reference order — so
/// on-disk bytes stay byte-identical even if a future caller interns from
/// worker threads in nondeterministic order.
///
/// Concurrency: Intern serializes on a mutex; Get/HashOf/size are
/// lock-free. Entries live in fixed-size chunks that are never moved or
/// freed, and a release-store of size_ publishes each fully-constructed
/// entry; readers acquire-load size_ before touching entries, giving a
/// happens-before edge that keeps the fast path TSan-clean.
///
/// Interned strings are never freed: the dictionary models the working
/// vocabulary of a corpus, which the paper's workloads hold in memory for
/// the life of the run anyway (features repeat heavily across mentions).
class StringDictionary {
 public:
  static constexpr uint32_t kInvalidId = 0xffffffffu;

  /// The process-global dictionary backing Value::String.
  static StringDictionary& Global();

  StringDictionary();
  ~StringDictionary();
  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;

  /// Id for `s`, interning it on first sight. Ids are dense from 0 in
  /// first-insertion order.
  uint32_t Intern(std::string_view s);

  /// Text for an id previously returned by Intern. The reference is
  /// stable for the life of the process (entries are never moved).
  const std::string& Get(uint32_t id) const;

  /// Precomputed Fnv1a(text) for an interned id; equals Fnv1a(Get(id))
  /// but costs one load. Value::Hash for strings must match the
  /// content hash bit-for-bit (map iteration orders depend on it).
  uint64_t HashOf(uint32_t id) const;

  /// Id for `s` if already interned, kInvalidId otherwise. Takes the
  /// intern mutex (the lookup map is not safe to read during an Intern).
  uint32_t Find(std::string_view s) const;

  /// Number of interned strings; ids [0, size()) are valid.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Bytes of text + entry bookkeeping, for RSS accounting in benches.
  size_t MemoryBytes() const;

 private:
  struct Entry {
    std::string text;
    uint64_t hash = 0;
  };

  // 2^16 entries per chunk keeps the chunk directory small (2^16 chunks
  // covers the full 2^32 id space) while bounding the up-front allocation.
  static constexpr size_t kChunkBits = 16;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = size_t{1} << (32 - kChunkBits);

  const Entry& EntryFor(uint32_t id) const;

  // Chunk directory: fixed-size array of atomic pointers so readers never
  // race a vector reallocation. Chunks are allocated under mu_ and
  // published with a release store.
  std::unique_ptr<std::atomic<Entry*>[]> chunks_;
  std::atomic<size_t> size_{0};

  mutable std::mutex mu_;
  // Views point into chunk entries, which never move.
  std::unordered_map<std::string_view, uint32_t> lookup_;
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_DICTIONARY_H_
