#ifndef DEEPDIVE_STORAGE_CATALOG_H_
#define DEEPDIVE_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

/// The database: a name → table map. All DeepDive state — documents,
/// sentences, candidates, features, evidence, marginals — lives in here,
/// mirroring the paper's "all data is stored in a relational database".
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Create an empty table. Fails with AlreadyExists on a duplicate name.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Create if absent; returns the existing table if schemas match, a
  /// TypeError if the existing schema differs.
  Result<Table*> GetOrCreateTable(const std::string& name, const Schema& schema);

  /// Lookup; NotFound if absent.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }

  Status DropTable(const std::string& name);

  /// Table names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_CATALOG_H_
