#ifndef DEEPDIVE_STORAGE_SCHEMA_H_
#define DEEPDIVE_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace dd {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered column list for a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int FindColumn(const std::string& name) const;

  bool operator==(const Schema& other) const { return columns_ == other.columns_; }

  /// "(name type, name type, ...)" rendering for error messages.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_SCHEMA_H_
