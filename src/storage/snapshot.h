#ifndef DEEPDIVE_STORAGE_SNAPSHOT_H_
#define DEEPDIVE_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "factor/graph.h"
#include "factor/io.h"
#include "storage/catalog.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

/// ---- Binary snapshot sections readable in place -----------------------
///
/// The DDSN container (factor/io.h) is the envelope: per-section CRC32C,
/// strict terminator, temp+fsync+rename writes. This module defines the
/// *binary* section payloads that make a snapshot loadable without
/// deserialization:
///
///   DICT  string pool: u64 count, u64 blob_len, u32 offsets[count+1],
///         zero-pad to 8, blob. Ids are snapshot-local, assigned in
///         first-reference order during encode, so the bytes are
///         deterministic regardless of global intern order.
///   GRBN  factor graph as flat arrays (layout in snapshot.cc): counts
///         header, evidence words, weight values/desc-ids/fixed flags,
///         factor funcs/weights, literal CSR offsets, literal words.
///   COLS  catalog of tables as columnar arrays: a directory (names,
///         schemas, row counts), then per table the liveness bitmap
///         words, per-row hashes, and per-column payload+tag arrays —
///         byte-for-byte the arrays Table holds in memory, with string
///         cells remapped to DICT-local ids.
///
/// Every multi-byte integer is little-endian. Each binary section's
/// payload starts with a one-byte pad-length prefix and zero padding
/// sized so the section *content* lands on an 8-byte file offset; an
/// mmap of the file (page-aligned base) therefore exposes 8-byte-aligned
/// arrays. All readers go through bounds-checked cursors and per-element
/// memcpy accessors — on aligned mapped data these compile to single
/// loads, and on unaligned heap copies they are still well-defined.
/// Malformed input (bad counts, out-of-range ids, non-monotone offsets,
/// nonzero padding, trailing bytes) yields Status::Corruption, never UB.

/// ---- Alignment padding ------------------------------------------------

/// Wrap `content` as [u8 pad_len][pad_len zero bytes][content] with
/// pad_len chosen so content begins at a file offset divisible by 8.
/// `payload_file_offset` is where the payload will start in the file
/// (SectionLayout::NextPayloadOffset()).
std::string WithAlignmentPad(size_t payload_file_offset, std::string content);

/// Validate and strip the pad prefix; Corruption on wrong pad length or
/// nonzero pad bytes.
Result<std::string_view> StripAlignmentPad(size_t payload_file_offset,
                                           std::string_view payload);

/// Tracks file offsets while sections are appended to a SnapshotWriter:
/// container header is 8 bytes, each section adds 12 (tag+len) + payload
/// + 4 (CRC).
class SectionLayout {
 public:
  /// File offset at which the *next* section's payload will start.
  size_t NextPayloadOffset() const { return total_ + 12; }
  void Add(size_t payload_len) { total_ += 12 + payload_len + 4; }

 private:
  size_t total_ = 8;
};

/// ---- String pool (DICT) -----------------------------------------------

/// Deduplicating builder; ids are dense and assigned in first-reference
/// order, making the encoded bytes a pure function of the reference
/// sequence.
class StringPoolBuilder {
 public:
  uint32_t IdFor(std::string_view s);
  size_t size() const { return strings_.size(); }

  /// DICT section content (before alignment padding).
  std::string EncodeContent() const;

 private:
  std::vector<std::string> strings_;
  std::vector<uint32_t> ids_by_probe_;  // open addressing over strings_
  size_t ProbeFor(std::string_view s) const;
  void MaybeGrow();
};

/// Validated zero-copy view over DICT content. Holds views into the
/// caller's buffer; the buffer must outlive the view.
class StringPoolView {
 public:
  StringPoolView() = default;
  static Result<StringPoolView> Parse(std::string_view content);

  size_t size() const { return count_; }

  /// id < size() required (callers validate ids during section parse).
  std::string_view String(uint32_t id) const {
    uint32_t begin = OffsetAt(id);
    uint32_t end = OffsetAt(id + 1);
    return blob_.substr(begin, end - begin);
  }

 private:
  uint32_t OffsetAt(size_t i) const {
    uint32_t v;
    std::memcpy(&v, offsets_ + 4 * i, 4);
    return v;
  }

  size_t count_ = 0;
  const char* offsets_ = nullptr;  // (count_+1) little-endian u32s
  std::string_view blob_;
};

/// ---- Binary factor graph (GRBN) ---------------------------------------

/// Typed view over validated GRBN content: element counts plus byte
/// offsets of each flat array. Accessors memcpy one element — zero-copy
/// in the sense that no array is ever materialized; on an mmap'ed
/// snapshot the bytes read are the file's pages.
struct BinaryGraphView {
  std::string_view content;
  uint64_t num_variables = 0;
  uint64_t num_evidence = 0;
  uint64_t num_weights = 0;
  uint64_t num_factors = 0;
  uint64_t num_literals = 0;
  size_t evidence_off = 0;         // num_evidence u64s: var | value<<32
  size_t weight_values_off = 0;    // num_weights doubles (IEEE bits)
  size_t weight_desc_off = 0;      // num_weights u32 pool ids
  size_t weight_fixed_off = 0;     // num_weights u8 flags
  size_t factor_funcs_off = 0;     // num_factors u8
  size_t factor_weights_off = 0;   // num_factors u32
  size_t literal_offsets_off = 0;  // (num_factors+1) u64 CSR offsets
  size_t literals_off = 0;         // num_literals u64s: var | positive<<32

  uint64_t EvidenceWord(size_t i) const { return U64(evidence_off + 8 * i); }
  double WeightValue(size_t i) const {
    uint64_t bits = U64(weight_values_off + 8 * i);
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  }
  uint32_t WeightDescId(size_t i) const { return U32(weight_desc_off + 4 * i); }
  bool WeightFixed(size_t i) const {
    return content[weight_fixed_off + i] != 0;
  }
  FactorFunc FactorFuncAt(size_t i) const {
    return static_cast<FactorFunc>(
        static_cast<uint8_t>(content[factor_funcs_off + i]));
  }
  uint32_t FactorWeight(size_t i) const { return U32(factor_weights_off + 4 * i); }
  uint64_t LiteralOffset(size_t i) const {
    return U64(literal_offsets_off + 8 * i);
  }
  uint64_t LiteralWord(size_t i) const { return U64(literals_off + 8 * i); }

 private:
  uint64_t U64(size_t off) const {
    uint64_t v;
    std::memcpy(&v, content.data() + off, 8);
    return v;
  }
  uint32_t U32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, content.data() + off, 4);
    return v;
  }
};

/// Encode `graph` as GRBN content; weight descriptions are interned into
/// `pool` (callers append the pool's DICT section after all encoders
/// that share it have run).
void EncodeBinaryGraph(const FactorGraph& graph, StringPoolBuilder* pool,
                       std::string* grbn_content);

/// Validate GRBN content (bounds, monotone CSR offsets, id ranges
/// against `pool`, zero high bits, zero padding, exact length) and build
/// the typed view. Corruption on any defect.
Result<BinaryGraphView> ParseBinaryGraph(std::string_view content,
                                         const StringPoolView& pool);

/// Materialize a FactorGraph (finalized) from a validated view.
Result<FactorGraph> GraphFromBinary(const BinaryGraphView& view,
                                    const StringPoolView& pool);

/// ---- Catalog snapshot (COLS) ------------------------------------------

struct MappedColumnView {
  std::string_view name;
  ValueType declared_type = ValueType::kNull;
  size_t payload_off = 0;  // num_rows u64s within the COLS content
  size_t tags_off = 0;     // num_rows u8s
};

/// One table inside validated COLS content: the directory entry plus
/// byte offsets of its arrays. Row ids (including tombstones) are the
/// array index, exactly as in the in-memory Table.
struct MappedTableView {
  std::string_view content;  // whole COLS content
  std::string_view name;
  uint64_t num_rows = 0;
  size_t live_off = 0;    // WordsFor(num_rows) u64s
  size_t hashes_off = 0;  // num_rows u64s
  std::vector<MappedColumnView> columns;

  bool RowLive(size_t row) const {
    uint64_t word;
    std::memcpy(&word, content.data() + live_off + 8 * (row >> 6), 8);
    return (word >> (row & 63)) & 1;
  }
  uint64_t RowHash(size_t row) const {
    uint64_t h;
    std::memcpy(&h, content.data() + hashes_off + 8 * row, 8);
    return h;
  }
  uint64_t CellPayload(size_t col, size_t row) const {
    uint64_t v;
    std::memcpy(&v, content.data() + columns[col].payload_off + 8 * row, 8);
    return v;
  }
  uint8_t CellTag(size_t col, size_t row) const {
    return static_cast<uint8_t>(content[columns[col].tags_off + row]);
  }
};

/// Parsed COLS directory + per-table array offsets, fully validated
/// (tags in range, string ids < pool size, bool payloads in {0,1}, null
/// payloads zero, trailing liveness bits zero, names sorted).
struct CatalogView {
  std::vector<MappedTableView> tables;
};

Result<CatalogView> ParseCatalogSection(std::string_view cols_content,
                                        const StringPoolView& pool);

/// Encode every table of `catalog` (sorted by name) into a DDSN
/// container with COLS + DICT sections.
std::string EncodeCatalogSnapshot(const Catalog& catalog);
Status WriteCatalogSnapshot(const Catalog& catalog, const std::string& path);

/// Rebuild tables from a snapshot into `catalog` (tables must not
/// already exist there). Row ids and tombstones are preserved exactly;
/// string cells re-intern into the process-global dictionary; stored
/// row hashes are revalidated against recomputed tuple hashes.
Status LoadCatalogSnapshot(const std::string& bytes, Catalog* catalog);
Status LoadCatalogSnapshotFile(const std::string& path, Catalog* catalog);

/// ---- Mapped snapshots -------------------------------------------------

/// A snapshot file opened for in-place reading: mmap(PROT_READ) when the
/// platform allows it, with a checked-read heap fallback into an 8-byte-
/// aligned buffer otherwise (so section contents are 8-aligned either
/// way). Open eagerly validates the whole container (magic, every
/// section CRC, terminator); Pool()/Graph()/Tables() validate their
/// sections on demand. All returned views borrow the mapping — they are
/// invalid after the MappedSnapshot is destroyed.
class MappedSnapshot {
 public:
  MappedSnapshot() = default;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;
  MappedSnapshot(MappedSnapshot&& other) noexcept { *this = std::move(other); }
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  ~MappedSnapshot();

  static Result<MappedSnapshot> Open(const std::string& path);

  std::string_view bytes() const { return bytes_; }
  bool mapped() const { return map_base_ != nullptr; }
  const SnapshotView& view() const { return view_; }

  /// Parse the DICT section (NotFound if absent, Corruption if bad).
  Result<StringPoolView> Pool() const;
  /// Parse the GRBN section against `pool`.
  Result<BinaryGraphView> Graph(const StringPoolView& pool) const;
  /// Parse the COLS section against `pool`.
  Result<CatalogView> Tables(const StringPoolView& pool) const;

 private:
  Result<std::string_view> SectionContent(const std::string& tag) const;

  void* map_base_ = nullptr;
  size_t map_len_ = 0;
  std::unique_ptr<uint64_t[]> heap_;  // 8-aligned fallback buffer
  std::string_view bytes_;
  SnapshotView view_;
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_SNAPSHOT_H_
