#include "storage/dictionary.h"

#include <cassert>

#include "util/hash.h"

namespace dd {

StringDictionary& StringDictionary::Global() {
  static StringDictionary* dict = new StringDictionary();  // never destroyed
  return *dict;
}

StringDictionary::StringDictionary()
    : chunks_(new std::atomic<Entry*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

StringDictionary::~StringDictionary() {
  size_t n = size_.load(std::memory_order_acquire);
  size_t num_chunks = (n + kChunkSize - 1) >> kChunkBits;
  for (size_t i = 0; i < num_chunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_relaxed);
  }
}

uint32_t StringDictionary::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lookup_.find(s);
  if (it != lookup_.end()) return it->second;

  size_t id = size_.load(std::memory_order_relaxed);
  assert(id < (size_t{1} << 32) - 1 && "string dictionary id space exhausted");
  size_t chunk_index = id >> kChunkBits;
  Entry* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize];
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  Entry& e = chunk[id & kChunkMask];
  e.text.assign(s.data(), s.size());
  e.hash = Fnv1a(e.text);
  lookup_.emplace(std::string_view(e.text), static_cast<uint32_t>(id));
  // Publish: readers that acquire-load size_ >= id+1 see the entry fields.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<uint32_t>(id);
}

const StringDictionary::Entry& StringDictionary::EntryFor(uint32_t id) const {
  assert(id < size_.load(std::memory_order_acquire));
  const Entry* chunk =
      chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  return chunk[id & kChunkMask];
}

const std::string& StringDictionary::Get(uint32_t id) const {
  return EntryFor(id).text;
}

uint64_t StringDictionary::HashOf(uint32_t id) const {
  return EntryFor(id).hash;
}

uint32_t StringDictionary::Find(std::string_view s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lookup_.find(s);
  return it == lookup_.end() ? kInvalidId : it->second;
}

size_t StringDictionary::MemoryBytes() const {
  size_t n = size_.load(std::memory_order_acquire);
  size_t bytes = 0;
  for (size_t id = 0; id < n; ++id) {
    bytes += sizeof(Entry) + EntryFor(static_cast<uint32_t>(id)).text.capacity();
  }
  return bytes;
}

}  // namespace dd
