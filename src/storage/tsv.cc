#include "storage/tsv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace dd {

namespace {

void AppendEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '\t': *out += "\\t"; break;
      case '\n': *out += "\\n"; break;
      case '\\': *out += "\\\\"; break;
      default: *out += c;
    }
  }
}

std::string Unescape(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '\\' && i + 1 < field.size()) {
      char next = field[++i];
      out += next == 't' ? '\t' : next == 'n' ? '\n' : next;
    } else {
      out += field[i];
    }
  }
  return out;
}

Result<Value> ParseField(const std::string& field, ValueType type, int line) {
  if (field == "\\N") return Value::Null();
  auto error = [&](const char* what) {
    return Status::ParseError(
        StrFormat("line %d: cannot parse %s value from '%s'", line, what,
                  field.c_str()));
  };
  switch (type) {
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') return error("int");
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') return error("double");
      return Value::Double(v);
    }
    case ValueType::kBool:
      if (field == "t" || field == "true" || field == "1") return Value::Bool(true);
      if (field == "f" || field == "false" || field == "0") return Value::Bool(false);
      return error("bool");
    case ValueType::kString:
      return Value::String(Unescape(field));
    case ValueType::kNull:
      return Value::Null();
  }
  return error("unknown-type");
}

}  // namespace

std::string TableToTsv(const Table& table) {
  std::string out;
  const size_t cap = table.capacity();
  for (size_t row = 0; row < cap; ++row) {
    int64_t id = static_cast<int64_t>(row);
    if (!table.is_live(id)) continue;
    RowRef t = table.ref(id);
    for (size_t c = 0; c < t.size(); ++c) {
      if (c > 0) out += '\t';
      const Value v = t.at(c);
      switch (v.type()) {
        case ValueType::kNull: out += "\\N"; break;
        case ValueType::kBool: out += v.AsBool() ? 't' : 'f'; break;
        case ValueType::kInt: out += std::to_string(v.AsInt()); break;
        // Shortest round-trip form: locale-independent, exact, and
        // re-parses (strtod) to the identical bits.
        case ValueType::kDouble: out += DoubleToString(v.AsDouble()); break;
        case ValueType::kString: AppendEscaped(v.AsString(), &out); break;
      }
    }
    out += '\n';
  }
  return out;
}

Result<size_t> LoadTsv(Table* table, const std::string& tsv) {
  const Schema& schema = table->schema();
  size_t inserted = 0;
  int line = 0;
  std::istringstream in(tsv);
  std::string row;
  while (std::getline(in, row)) {
    ++line;
    if (row.empty()) continue;
    // Split on unescaped tabs.
    std::vector<std::string> fields;
    std::string current;
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i] == '\\' && i + 1 < row.size()) {
        current += row[i];
        current += row[i + 1];
        ++i;
      } else if (row[i] == '\t') {
        fields.push_back(std::move(current));
        current.clear();
      } else {
        current += row[i];
      }
    }
    fields.push_back(std::move(current));
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError(StrFormat("line %d: expected %zu fields, got %zu",
                                          line, schema.num_columns(),
                                          fields.size()));
    }
    Tuple tuple;
    for (size_t c = 0; c < fields.size(); ++c) {
      DD_ASSIGN_OR_RETURN(Value v, ParseField(fields[c], schema.column(c).type, line));
      tuple.Append(std::move(v));
    }
    DD_ASSIGN_OR_RETURN(auto result, table->Insert(std::move(tuple)));
    inserted += result.second;
  }
  return inserted;
}

Status WriteTsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  std::string tsv = TableToTsv(table);
  out.write(tsv.data(), static_cast<std::streamsize>(tsv.size()));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<size_t> LoadTsvFile(Table* table, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadTsv(table, buffer.str());
}

}  // namespace dd
