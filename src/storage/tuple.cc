#include "storage/tuple.h"

namespace dd {

bool Tuple::operator<(const Tuple& other) const {
  size_t n = values_.size() < other.values_.size() ? values_.size() : other.values_.size();
  for (size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return values_.size() < other.values_.size();
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace dd
