#ifndef DEEPDIVE_STORAGE_TSV_H_
#define DEEPDIVE_STORAGE_TSV_H_

#include <string>

#include "storage/table.h"
#include "util/result.h"

namespace dd {

/// TSV import/export for tables — the bridge to the paper's §1 promise
/// that DeepDive output feeds "standard data management tools ...
/// analytical tools such as R or Excel", and the input path for loading
/// KBs and pre-extracted base relations.
///
/// Format: tab-separated, one tuple per line, '\n' row terminator.
/// Values are rendered per column type; NULL is the literal `\N`
/// (PostgreSQL COPY convention). Strings escape tab, newline, backslash
/// as \t, \n, \\. Booleans are `t`/`f`.

/// Serialize all live rows (no header line).
std::string TableToTsv(const Table& table);

/// Parse TSV against `table`'s schema and insert every row (set
/// semantics; duplicates collapse). Returns the number of NEW rows.
/// Fails on arity mismatch or unparsable values, identifying the line.
Result<size_t> LoadTsv(Table* table, const std::string& tsv);

/// Convenience file wrappers.
Status WriteTsvFile(const Table& table, const std::string& path);
Result<size_t> LoadTsvFile(Table* table, const std::string& path);

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_TSV_H_
