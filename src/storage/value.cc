#include "storage/value.h"

#include <cstdio>

namespace dd {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) return data_.index() < other.data_.index();
  switch (type()) {
    case ValueType::kNull: return false;
    case ValueType::kBool: return AsBool() < other.AsBool();
    case ValueType::kInt: return AsInt() < other.AsInt();
    case ValueType::kDouble: return AsDouble() < other.AsDouble();
    case ValueType::kString: return AsString() < other.AsString();
  }
  return false;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kBool:
      return AsBool() ? 0xb492b66fbe98f273ULL : 0x9ddfea08eb382d69ULL;
    case ValueType::kInt: {
      uint64_t x = static_cast<uint64_t>(AsInt());
      x *= 0x9e3779b97f4a7c15ULL;
      x ^= x >> 29;
      return x;
    }
    case ValueType::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      bits *= 0xc2b2ae3d27d4eb4fULL;
      bits ^= bits >> 31;
      return bits;
    }
    case ValueType::kString:
      return Fnv1a(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString: return "\"" + AsString() + "\"";
  }
  return "?";
}

}  // namespace dd
