#include "storage/value.h"

#include <charconv>

#include "util/hash.h"

namespace dd {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (type_ != other.type_) {
    return static_cast<uint8_t>(type_) < static_cast<uint8_t>(other.type_);
  }
  switch (type_) {
    case ValueType::kNull: return false;
    case ValueType::kBool: return AsBool() < other.AsBool();
    case ValueType::kInt: return AsInt() < other.AsInt();
    case ValueType::kDouble: return AsDouble() < other.AsDouble();
    case ValueType::kString:
      // Content order, not id order: ids reflect intern time.
      return AsString() < other.AsString();
  }
  return false;
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kBool:
      return AsBool() ? 0xb492b66fbe98f273ULL : 0x9ddfea08eb382d69ULL;
    case ValueType::kInt: {
      uint64_t x = bits_;
      x *= 0x9e3779b97f4a7c15ULL;
      x ^= x >> 29;
      return x;
    }
    case ValueType::kDouble: {
      uint64_t bits = bits_;
      bits *= 0xc2b2ae3d27d4eb4fULL;
      bits ^= bits >> 31;
      return bits;
    }
    case ValueType::kString:
      // Precomputed Fnv1a of the content — identical to hashing the text.
      return StringDictionary::Global().HashOf(string_id());
  }
  return 0;
}

std::string DoubleToString(double d) {
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  (void)ec;  // 32 bytes always suffice for the shortest form.
  return std::string(buf, end);
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kDouble: return DoubleToString(AsDouble());
    case ValueType::kString: return "\"" + AsString() + "\"";
  }
  return "?";
}

}  // namespace dd
