#include "storage/table.h"

#include "util/string_util.h"

namespace dd {

Status Table::CheckTuple(const Tuple& tuple) const {
  if (tuple.size() != schema_.num_columns()) {
    return Status::TypeError(StrFormat("table %s expects %zu columns, got %zu",
                                       name_.c_str(), schema_.num_columns(),
                                       tuple.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) continue;  // NULL is allowed in any column.
    if (v.type() != schema_.column(i).type) {
      return Status::TypeError(StrFormat(
          "table %s column %s expects %s, got %s", name_.c_str(),
          schema_.column(i).name.c_str(), ValueTypeName(schema_.column(i).type),
          ValueTypeName(v.type())));
    }
  }
  return Status::OK();
}

Result<std::pair<int64_t, bool>> Table::Insert(Tuple tuple) {
  DD_RETURN_IF_ERROR(CheckTuple(tuple));
  return InsertUnchecked(std::move(tuple));
}

std::pair<int64_t, bool> Table::InsertUnchecked(Tuple tuple) {
  auto it = index_.find(tuple);
  if (it != index_.end()) {
    int64_t id = it->second;
    if (!live_[static_cast<size_t>(id)]) {
      live_[static_cast<size_t>(id)] = true;
      ++live_count_;
      return {id, true};
    }
    return {id, false};
  }
  int64_t id = static_cast<int64_t>(rows_.size());
  index_.emplace(tuple, id);
  rows_.push_back(std::move(tuple));
  live_.push_back(true);
  ++live_count_;
  return {id, true};
}

bool Table::Erase(const Tuple& tuple) {
  auto it = index_.find(tuple);
  if (it == index_.end()) return false;
  size_t id = static_cast<size_t>(it->second);
  if (!live_[id]) return false;
  live_[id] = false;
  --live_count_;
  return true;
}

bool Table::Contains(const Tuple& tuple) const { return Find(tuple) >= 0; }

int64_t Table::Find(const Tuple& tuple) const {
  auto it = index_.find(tuple);
  if (it == index_.end()) return -1;
  if (!live_[static_cast<size_t>(it->second)]) return -1;
  return it->second;
}

int64_t Table::FindIncludingDeleted(const Tuple& tuple) const {
  auto it = index_.find(tuple);
  return it == index_.end() ? -1 : it->second;
}

std::vector<Tuple> Table::Scan() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i]) out.push_back(rows_[i]);
  }
  return out;
}

void Table::Clear() {
  rows_.clear();
  live_.clear();
  index_.clear();
  live_count_ = 0;
}

}  // namespace dd
