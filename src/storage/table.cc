#include "storage/table.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/string_util.h"

namespace dd {

namespace {
constexpr size_t kMinBuckets = 16;

// Grow when num_rows_ exceeds 7/8 of the bucket count: cheap shift math,
// and probes stay short because the index never removes entries.
inline bool OverLoadFactor(size_t rows, size_t buckets) {
  return rows + 1 > buckets - (buckets >> 3);
}
}  // namespace

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

Status Table::CheckTuple(const Tuple& tuple) const {
  if (tuple.size() != schema_.num_columns()) {
    return Status::TypeError(StrFormat("table %s expects %zu columns, got %zu",
                                       name_.c_str(), schema_.num_columns(),
                                       tuple.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple.at(i);
    if (v.is_null()) continue;  // NULL is allowed in any column.
    if (v.type() != schema_.column(i).type) {
      return Status::TypeError(StrFormat(
          "table %s column %s expects %s, got %s", name_.c_str(),
          schema_.column(i).name.c_str(), ValueTypeName(schema_.column(i).type),
          ValueTypeName(v.type())));
    }
  }
  return Status::OK();
}

bool Table::RowEqualsTuple(int64_t id, const Tuple& tuple) const {
  if (tuple.size() != columns_.size()) return false;
  size_t r = static_cast<size_t>(id);
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (!(columns_[c].at(r) == tuple.at(c))) return false;
  }
  return true;
}

size_t Table::ProbeBucket(uint64_t h, const Tuple& tuple) const {
  size_t mask = buckets_.size() - 1;
  size_t pos = static_cast<size_t>(h) & mask;
  while (true) {
    int64_t r = buckets_[pos];
    if (r < 0) return pos;
    if (hashes_[static_cast<size_t>(r)] == h && RowEqualsTuple(r, tuple)) {
      return pos;
    }
    pos = (pos + 1) & mask;
  }
}

void Table::Rehash(size_t want) {
  size_t n = std::bit_ceil(std::max(want, kMinBuckets));
  if (n <= buckets_.size()) return;
  buckets_.assign(n, -1);
  size_t mask = n - 1;
  for (size_t r = 0; r < num_rows_; ++r) {
    size_t pos = static_cast<size_t>(hashes_[r]) & mask;
    while (buckets_[pos] >= 0) pos = (pos + 1) & mask;
    buckets_[pos] = static_cast<int64_t>(r);
  }
}

void Table::MaybeGrow() {
  if (buckets_.empty()) {
    Rehash(kMinBuckets);
  } else if (OverLoadFactor(num_rows_, buckets_.size())) {
    Rehash(buckets_.size() * 2);
  }
}

void Table::Reserve(size_t rows) {
  for (ColumnVector& col : columns_) col.Reserve(rows);
  hashes_.reserve(rows);
  live_.Reserve(rows);
  // Size buckets so `rows` inserts stay under the load factor.
  Rehash(rows + (rows >> 2));
}

Result<std::pair<int64_t, bool>> Table::Insert(Tuple tuple) {
  DD_RETURN_IF_ERROR(CheckTuple(tuple));
  return InsertUnchecked(tuple);
}

std::pair<int64_t, bool> Table::InsertUnchecked(const Tuple& tuple) {
  assert(tuple.size() == schema_.num_columns() &&
         "InsertUnchecked arity must match the schema");
  uint64_t h = tuple.Hash();  // hashed exactly once per insert
  MaybeGrow();
  size_t pos = ProbeBucket(h, tuple);
  int64_t existing = buckets_[pos];
  if (existing >= 0) {
    if (!live_.Get(static_cast<size_t>(existing))) {
      live_.Set(static_cast<size_t>(existing), true);
      ++live_count_;
      return {existing, true};
    }
    return {existing, false};
  }
  int64_t id = static_cast<int64_t>(num_rows_);
  buckets_[pos] = id;
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].Append(tuple.at(c));
  }
  hashes_.push_back(h);
  live_.PushBack(true);
  ++num_rows_;
  ++live_count_;
  return {id, true};
}

Status Table::RestoreRow(const Tuple& tuple, bool live) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::Corruption(StrFormat("restored row has %zu cells, table %s "
                                        "has %zu columns",
                                        tuple.size(), name_.c_str(),
                                        schema_.num_columns()));
  }
  uint64_t h = tuple.Hash();
  MaybeGrow();
  size_t pos = ProbeBucket(h, tuple);
  if (buckets_[pos] >= 0) {
    return Status::Corruption("duplicate row in snapshot for table " + name_ +
                              ": " + tuple.ToString());
  }
  buckets_[pos] = static_cast<int64_t>(num_rows_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].Append(tuple.at(c));
  }
  hashes_.push_back(h);
  live_.PushBack(live);
  ++num_rows_;
  if (live) ++live_count_;
  return Status::OK();
}

bool Table::Erase(const Tuple& tuple) {
  if (buckets_.empty()) return false;
  size_t pos = ProbeBucket(tuple.Hash(), tuple);
  int64_t id = buckets_[pos];
  if (id < 0) return false;
  if (!live_.Get(static_cast<size_t>(id))) return false;
  live_.Set(static_cast<size_t>(id), false);
  --live_count_;
  return true;
}

bool Table::Contains(const Tuple& tuple) const { return Find(tuple) >= 0; }

int64_t Table::Find(const Tuple& tuple) const {
  int64_t id = FindIncludingDeleted(tuple);
  if (id < 0 || !live_.Get(static_cast<size_t>(id))) return -1;
  return id;
}

int64_t Table::FindIncludingDeleted(const Tuple& tuple) const {
  if (buckets_.empty()) return -1;
  return buckets_[ProbeBucket(tuple.Hash(), tuple)];
}

Tuple Table::row(int64_t id) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  size_t r = static_cast<size_t>(id);
  for (const ColumnVector& col : columns_) values.push_back(col.at(r));
  return Tuple(std::move(values));
}

std::vector<Tuple> Table::Scan() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < num_rows_; ++i) {
    if (live_.Get(i)) out.push_back(row(static_cast<int64_t>(i)));
  }
  return out;
}

void Table::Clear() {
  for (ColumnVector& col : columns_) col.Clear();
  live_.Clear();
  hashes_.clear();
  buckets_.clear();
  num_rows_ = 0;
  live_count_ = 0;
}

size_t Table::MemoryBytes() const {
  size_t bytes = live_.MemoryBytes() + hashes_.capacity() * sizeof(uint64_t) +
                 buckets_.capacity() * sizeof(int64_t);
  for (const ColumnVector& col : columns_) bytes += col.MemoryBytes();
  return bytes;
}

Tuple RowRef::ToTuple() const {
  if (tuple_) return *tuple_;
  return table_->row(row_);
}

}  // namespace dd
