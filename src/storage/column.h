#ifndef DEEPDIVE_STORAGE_COLUMN_H_
#define DEEPDIVE_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "storage/value.h"

namespace dd {

/// Word-addressed liveness bitmap. Replaces std::vector<bool>: Get/Set
/// compile to a shift+mask on a uint64_t word with no proxy references,
/// which keeps Scan/is_live cheap and makes the const-read concurrency
/// contract easy to audit (a reader touches one word, nothing else).
class Bitmap {
 public:
  size_t size() const { return size_; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i, bool v) {
    uint64_t mask = uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void PushBack(bool v) {
    if ((size_ & 63) == 0) words_.push_back(0);
    ++size_;
    Set(size_ - 1, v);
  }

  void Reserve(size_t bits) { words_.reserve(WordsFor(bits)); }

  void Clear() {
    words_.clear();
    size_ = 0;
  }

  /// Number of set bits; O(words).
  size_t PopCount() const;

  static size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
  const uint64_t* words() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

/// One column of a table, struct-of-arrays: an 8-byte payload per cell
/// (Value::payload_bits) plus a 1-byte type tag. The tag per cell — not
/// per column — is what lets a declared-kString column hold SQL NULLs
/// (CheckTuple admits them anywhere) and keeps every cell fixed-width, so
/// a column serializes to two flat arrays an mmap reader can use in place.
///
/// Named ColumnVector because `Column` is the schema's {name, type} pair.
class ColumnVector {
 public:
  explicit ColumnVector(ValueType declared) : declared_(declared) {}

  ValueType declared_type() const { return declared_; }
  size_t size() const { return tags_.size(); }

  void Append(const Value& v) {
    payload_.push_back(v.payload_bits());
    tags_.push_back(static_cast<uint8_t>(v.type()));
  }

  Value at(size_t i) const {
    return Value::FromRaw(static_cast<ValueType>(tags_[i]), payload_[i]);
  }

  void Reserve(size_t n) {
    payload_.reserve(n);
    tags_.reserve(n);
  }

  void Clear() {
    payload_.clear();
    tags_.clear();
  }

  /// Flat views for zero-copy scans and snapshot encoding.
  const uint64_t* payload_data() const { return payload_.data(); }
  const uint8_t* tag_data() const { return tags_.data(); }

  size_t MemoryBytes() const {
    return payload_.capacity() * sizeof(uint64_t) + tags_.capacity();
  }

 private:
  ValueType declared_;
  std::vector<uint64_t> payload_;
  std::vector<uint8_t> tags_;
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_COLUMN_H_
