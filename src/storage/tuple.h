#ifndef DEEPDIVE_STORAGE_TUPLE_H_
#define DEEPDIVE_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "storage/value.h"
#include "util/hash.h"

namespace dd {

/// A row: an ordered list of Values. Tuples are value types with deep
/// equality/hash so they can key hash indexes and DRed derivation counts.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  uint64_t Hash() const {
    uint64_t h = 0x51ed270b;
    for (const Value& v : values_) h = HashCombine(h, v.Hash());
    return h;
  }

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// Hash functor for unordered containers keyed by Tuple. Transparent:
/// anything with a Tuple-compatible Hash() (e.g. RowRef) can probe
/// without materializing a Tuple.
struct TupleHash {
  using is_transparent = void;
  template <typename T>
  size_t operator()(const T& t) const {
    return static_cast<size_t>(t.Hash());
  }
};

/// Transparent equality over tuple-like types (Tuple, RowRef): same
/// length, cell-wise Value equality. Pairs with TupleHash for
/// heterogeneous unordered-container lookups.
struct TupleEq {
  using is_transparent = void;
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a.at(i) == b.at(i))) return false;
    }
    return true;
  }
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_TUPLE_H_
