#include "storage/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <functional>
#include <utility>

#include "storage/tuple.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dd {

// Typed array accessors memcpy little-endian words straight out of the
// file image; on a big-endian host every word would need a byte swap.
static_assert(std::endian::native == std::endian::little,
              "binary snapshot reader assumes a little-endian host");

namespace {

constexpr uint8_t kMaxTypeTag = static_cast<uint8_t>(ValueType::kString);
constexpr uint8_t kMaxFactorFunc = static_cast<uint8_t>(FactorFunc::kEqual);
constexpr uint32_t kEmptyProbe = 0xffffffffu;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Zero-pad `out` to the next multiple of 8. Valid because every binary
/// section's *content* starts at an 8-aligned file offset, so offsets
/// within the content are congruent to file offsets mod 8.
void PadTo8(std::string* out) {
  while (out->size() & 7) out->push_back('\0');
}

/// Bounds-checked forward cursor over section content. Array() never
/// dereferences — it validates `count * elem_size` bytes exist
/// (overflow-safe) and records the byte offset, so a malformed count
/// fails before any accessor can touch memory.
class Cursor {
 public:
  explicit Cursor(std::string_view buf) : buf_(buf) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }

  Status U32(uint32_t* out, const char* what) {
    if (remaining() < 4) return Truncated(what, 4);
    std::memcpy(out, buf_.data() + pos_, 4);
    pos_ += 4;
    return Status::OK();
  }

  Status U64(uint64_t* out, const char* what) {
    if (remaining() < 8) return Truncated(what, 8);
    std::memcpy(out, buf_.data() + pos_, 8);
    pos_ += 8;
    return Status::OK();
  }

  Status Array(size_t elem_size, uint64_t count, size_t* off_out,
               const char* what) {
    if (count > remaining() / elem_size) {
      return Status::Corruption(
          StrFormat("truncated %s at offset %zu: need %llu x %zu bytes, have %zu",
                    what, pos_, static_cast<unsigned long long>(count), elem_size,
                    remaining()));
    }
    *off_out = pos_;
    pos_ += static_cast<size_t>(count) * elem_size;
    return Status::OK();
  }

  Status Pad8(const char* what) {
    size_t pad = (8 - (pos_ & 7)) & 7;
    if (pad > remaining()) return Truncated(what, pad);
    for (size_t i = 0; i < pad; ++i) {
      if (buf_[pos_ + i] != '\0') {
        return Status::Corruption(StrFormat("nonzero %s pad byte at offset %zu",
                                            what, pos_ + i));
      }
    }
    pos_ += pad;
    return Status::OK();
  }

  Status Done(const char* what) {
    if (remaining() != 0) {
      return Status::Corruption(StrFormat("%zu trailing bytes in %s section",
                                          remaining(), what));
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what, size_t need) const {
    return Status::Corruption(
        StrFormat("truncated %s at offset %zu: need %zu bytes, have %zu", what,
                  pos_, need, remaining()));
  }

  std::string_view buf_;
  size_t pos_ = 0;
};

}  // namespace

// ---- Alignment padding --------------------------------------------------

std::string WithAlignmentPad(size_t payload_file_offset, std::string content) {
  size_t pad = (8 - ((payload_file_offset + 1) & 7)) & 7;
  std::string out;
  out.reserve(1 + pad + content.size());
  out.push_back(static_cast<char>(pad));
  out.append(pad, '\0');
  out += content;
  return out;
}

Result<std::string_view> StripAlignmentPad(size_t payload_file_offset,
                                           std::string_view payload) {
  if (payload.empty()) {
    return Status::Corruption("aligned section payload missing pad prefix");
  }
  size_t expected = (8 - ((payload_file_offset + 1) & 7)) & 7;
  size_t pad = static_cast<uint8_t>(payload[0]);
  if (pad != expected) {
    return Status::Corruption(
        StrFormat("section pad length %zu does not match file offset %zu "
                  "(expected %zu)",
                  pad, payload_file_offset, expected));
  }
  if (payload.size() < 1 + pad) {
    return Status::Corruption("aligned section shorter than its pad");
  }
  for (size_t i = 0; i < pad; ++i) {
    if (payload[1 + i] != '\0') {
      return Status::Corruption(
          StrFormat("nonzero alignment pad byte at index %zu", i));
    }
  }
  return payload.substr(1 + pad);
}

// ---- String pool --------------------------------------------------------

size_t StringPoolBuilder::ProbeFor(std::string_view s) const {
  size_t mask = ids_by_probe_.size() - 1;
  size_t pos = std::hash<std::string_view>{}(s) & mask;
  while (ids_by_probe_[pos] != kEmptyProbe &&
         strings_[ids_by_probe_[pos]] != s) {
    pos = (pos + 1) & mask;
  }
  return pos;
}

void StringPoolBuilder::MaybeGrow() {
  if (ids_by_probe_.empty()) {
    ids_by_probe_.assign(16, kEmptyProbe);
    return;
  }
  size_t cap = ids_by_probe_.size();
  if (strings_.size() + 1 <= cap - (cap >> 3)) return;
  std::vector<uint32_t> old = std::move(ids_by_probe_);
  ids_by_probe_.assign(cap * 2, kEmptyProbe);
  size_t mask = ids_by_probe_.size() - 1;
  for (uint32_t id : old) {
    if (id == kEmptyProbe) continue;
    size_t pos = std::hash<std::string_view>{}(strings_[id]) & mask;
    while (ids_by_probe_[pos] != kEmptyProbe) pos = (pos + 1) & mask;
    ids_by_probe_[pos] = id;
  }
}

uint32_t StringPoolBuilder::IdFor(std::string_view s) {
  MaybeGrow();
  size_t pos = ProbeFor(s);
  if (ids_by_probe_[pos] != kEmptyProbe) return ids_by_probe_[pos];
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_by_probe_[pos] = id;
  return id;
}

std::string StringPoolBuilder::EncodeContent() const {
  uint64_t blob_len = 0;
  for (const std::string& s : strings_) blob_len += s.size();
  DD_CHECK(blob_len <= 0xffffffffull);  // offsets are u32
  std::string out;
  AppendU64(&out, strings_.size());
  AppendU64(&out, blob_len);
  uint32_t off = 0;
  for (const std::string& s : strings_) {
    AppendU32(&out, off);
    off += static_cast<uint32_t>(s.size());
  }
  AppendU32(&out, off);
  PadTo8(&out);
  for (const std::string& s : strings_) out += s;
  return out;
}

Result<StringPoolView> StringPoolView::Parse(std::string_view content) {
  Cursor c(content);
  uint64_t count = 0, blob_len = 0;
  DD_RETURN_IF_ERROR(c.U64(&count, "DICT count"));
  DD_RETURN_IF_ERROR(c.U64(&blob_len, "DICT blob length"));
  if (count > 0xffffffffull || blob_len > 0xffffffffull) {
    return Status::Corruption("DICT counts exceed u32 range");
  }
  size_t offsets_off = 0, blob_off = 0;
  DD_RETURN_IF_ERROR(c.Array(4, count + 1, &offsets_off, "DICT offsets"));
  DD_RETURN_IF_ERROR(c.Pad8("DICT"));
  DD_RETURN_IF_ERROR(c.Array(1, blob_len, &blob_off, "DICT blob"));
  DD_RETURN_IF_ERROR(c.Done("DICT"));

  StringPoolView pool;
  pool.count_ = static_cast<size_t>(count);
  pool.offsets_ = content.data() + offsets_off;
  pool.blob_ = content.substr(blob_off, static_cast<size_t>(blob_len));
  uint32_t prev = pool.OffsetAt(0);
  if (prev != 0) return Status::Corruption("DICT offsets must start at 0");
  for (size_t i = 1; i <= pool.count_; ++i) {
    uint32_t cur = pool.OffsetAt(i);
    if (cur < prev) return Status::Corruption("DICT offsets not monotone");
    prev = cur;
  }
  if (prev != blob_len) {
    return Status::Corruption("DICT final offset does not equal blob length");
  }
  return pool;
}

// ---- Binary factor graph (GRBN) -----------------------------------------

void EncodeBinaryGraph(const FactorGraph& graph, StringPoolBuilder* pool,
                       std::string* out) {
  const size_t num_vars = graph.num_variables();
  const size_t num_weights = graph.num_weights();
  const size_t num_factors = graph.num_factors();
  const size_t num_literals = graph.num_edges();
  size_t num_evidence = 0;
  for (uint32_t v = 0; v < num_vars; ++v) {
    if (graph.is_evidence(v)) ++num_evidence;
  }

  AppendU64(out, num_vars);
  AppendU64(out, num_evidence);
  AppendU64(out, num_weights);
  AppendU64(out, num_factors);
  AppendU64(out, num_literals);
  for (uint32_t v = 0; v < num_vars; ++v) {
    if (!graph.is_evidence(v)) continue;
    AppendU64(out, static_cast<uint64_t>(v) |
                       (graph.evidence_value(v) ? (uint64_t{1} << 32) : 0));
  }
  for (uint32_t w = 0; w < num_weights; ++w) {
    AppendU64(out, std::bit_cast<uint64_t>(graph.weight_value(w)));
  }
  for (uint32_t w = 0; w < num_weights; ++w) {
    AppendU32(out, pool->IdFor(graph.weight(w).description));
  }
  PadTo8(out);
  for (uint32_t w = 0; w < num_weights; ++w) {
    out->push_back(graph.weight(w).is_fixed ? 1 : 0);
  }
  PadTo8(out);
  for (uint32_t f = 0; f < num_factors; ++f) {
    out->push_back(static_cast<char>(graph.factor_func(f)));
  }
  PadTo8(out);
  for (uint32_t f = 0; f < num_factors; ++f) {
    AppendU32(out, graph.factor_weight(f));
  }
  PadTo8(out);
  uint64_t off = 0;
  AppendU64(out, 0);
  for (uint32_t f = 0; f < num_factors; ++f) {
    size_t arity = 0;
    graph.factor_literals(f, &arity);
    off += arity;
    AppendU64(out, off);
  }
  for (uint32_t f = 0; f < num_factors; ++f) {
    size_t arity = 0;
    const Literal* lits = graph.factor_literals(f, &arity);
    for (size_t i = 0; i < arity; ++i) {
      AppendU64(out, static_cast<uint64_t>(lits[i].var) |
                         (lits[i].is_positive ? (uint64_t{1} << 32) : 0));
    }
  }
}

Result<BinaryGraphView> ParseBinaryGraph(std::string_view content,
                                         const StringPoolView& pool) {
  BinaryGraphView v;
  v.content = content;
  Cursor c(content);
  DD_RETURN_IF_ERROR(c.U64(&v.num_variables, "GRBN variable count"));
  DD_RETURN_IF_ERROR(c.U64(&v.num_evidence, "GRBN evidence count"));
  DD_RETURN_IF_ERROR(c.U64(&v.num_weights, "GRBN weight count"));
  DD_RETURN_IF_ERROR(c.U64(&v.num_factors, "GRBN factor count"));
  DD_RETURN_IF_ERROR(c.U64(&v.num_literals, "GRBN literal count"));
  if (v.num_variables > 0xffffffffull || v.num_weights > 0xffffffffull ||
      v.num_factors > 0xffffffffull) {
    return Status::Corruption("GRBN counts exceed u32 id range");
  }
  if (v.num_evidence > v.num_variables) {
    return Status::Corruption("GRBN declares more evidence than variables");
  }
  DD_RETURN_IF_ERROR(c.Array(8, v.num_evidence, &v.evidence_off, "GRBN evidence"));
  DD_RETURN_IF_ERROR(
      c.Array(8, v.num_weights, &v.weight_values_off, "GRBN weight values"));
  DD_RETURN_IF_ERROR(
      c.Array(4, v.num_weights, &v.weight_desc_off, "GRBN weight descs"));
  DD_RETURN_IF_ERROR(c.Pad8("GRBN"));
  DD_RETURN_IF_ERROR(
      c.Array(1, v.num_weights, &v.weight_fixed_off, "GRBN weight flags"));
  DD_RETURN_IF_ERROR(c.Pad8("GRBN"));
  DD_RETURN_IF_ERROR(
      c.Array(1, v.num_factors, &v.factor_funcs_off, "GRBN factor funcs"));
  DD_RETURN_IF_ERROR(c.Pad8("GRBN"));
  DD_RETURN_IF_ERROR(
      c.Array(4, v.num_factors, &v.factor_weights_off, "GRBN factor weights"));
  DD_RETURN_IF_ERROR(c.Pad8("GRBN"));
  DD_RETURN_IF_ERROR(c.Array(8, v.num_factors + 1, &v.literal_offsets_off,
                             "GRBN literal offsets"));
  DD_RETURN_IF_ERROR(c.Array(8, v.num_literals, &v.literals_off, "GRBN literals"));
  DD_RETURN_IF_ERROR(c.Done("GRBN"));

  // Semantic validation: every id in range, evidence sorted, CSR
  // monotone, flag/spare bits zero.
  uint64_t prev_var = 0;
  for (size_t i = 0; i < v.num_evidence; ++i) {
    uint64_t word = v.EvidenceWord(i);
    uint64_t var = word & 0xffffffffull;
    if ((word >> 33) != 0) {
      return Status::Corruption("GRBN evidence word has nonzero spare bits");
    }
    if (var >= v.num_variables) {
      return Status::Corruption("GRBN evidence variable out of range");
    }
    if (i > 0 && var <= prev_var) {
      return Status::Corruption("GRBN evidence not sorted by variable id");
    }
    prev_var = var;
  }
  for (size_t w = 0; w < v.num_weights; ++w) {
    uint8_t fixed = static_cast<uint8_t>(content[v.weight_fixed_off + w]);
    if (fixed > 1) {
      return Status::Corruption("GRBN weight fixed flag outside {0,1}");
    }
    if (v.WeightDescId(w) >= pool.size()) {
      return Status::Corruption("GRBN weight description id out of pool range");
    }
  }
  for (size_t f = 0; f < v.num_factors; ++f) {
    if (static_cast<uint8_t>(content[v.factor_funcs_off + f]) > kMaxFactorFunc) {
      return Status::Corruption("GRBN unknown factor function");
    }
    if (v.FactorWeight(f) >= v.num_weights) {
      return Status::Corruption("GRBN factor weight id out of range");
    }
  }
  if (v.LiteralOffset(0) != 0) {
    return Status::Corruption("GRBN literal offsets must start at 0");
  }
  for (size_t f = 0; f < v.num_factors; ++f) {
    if (v.LiteralOffset(f + 1) < v.LiteralOffset(f)) {
      return Status::Corruption("GRBN literal offsets not monotone");
    }
  }
  if (v.LiteralOffset(v.num_factors) != v.num_literals) {
    return Status::Corruption(
        "GRBN final literal offset does not equal literal count");
  }
  for (size_t i = 0; i < v.num_literals; ++i) {
    uint64_t word = v.LiteralWord(i);
    if ((word >> 33) != 0) {
      return Status::Corruption("GRBN literal word has nonzero spare bits");
    }
    if ((word & 0xffffffffull) >= v.num_variables) {
      return Status::Corruption("GRBN literal variable out of range");
    }
  }
  return v;
}

Result<FactorGraph> GraphFromBinary(const BinaryGraphView& view,
                                    const StringPoolView& pool) {
  FactorGraph graph;
  size_t e = 0;
  for (uint64_t v = 0; v < view.num_variables; ++v) {
    if (e < view.num_evidence &&
        (view.EvidenceWord(e) & 0xffffffffull) == v) {
      graph.AddVariable(true, (view.EvidenceWord(e) >> 32) & 1);
      ++e;
    } else {
      graph.AddVariable();
    }
  }
  for (size_t w = 0; w < view.num_weights; ++w) {
    graph.AddWeight(view.WeightValue(w), view.WeightFixed(w),
                    std::string(pool.String(view.WeightDescId(w))));
  }
  for (size_t f = 0; f < view.num_factors; ++f) {
    std::vector<Literal> literals;
    uint64_t begin = view.LiteralOffset(f);
    uint64_t end = view.LiteralOffset(f + 1);
    literals.reserve(static_cast<size_t>(end - begin));
    for (uint64_t i = begin; i < end; ++i) {
      uint64_t word = view.LiteralWord(static_cast<size_t>(i));
      literals.push_back(Literal{static_cast<uint32_t>(word & 0xffffffffull),
                                 ((word >> 32) & 1) != 0});
    }
    Status st = graph.AddFactor(view.FactorFuncAt(f), view.FactorWeight(f),
                                std::move(literals));
    if (!st.ok()) {
      // The section passed CRC + structural checks, so a rejected factor
      // (e.g. wrong kEqual arity) means bad written bytes — corruption
      // to the caller.
      return Status::Corruption("GRBN factor rejected: " + st.ToString());
    }
  }
  Status st = graph.Finalize();
  if (!st.ok()) {
    return Status::Corruption("GRBN graph failed to finalize: " + st.ToString());
  }
  return graph;
}

// ---- Catalog snapshot (COLS) --------------------------------------------

std::string EncodeCatalogSnapshot(const Catalog& catalog) {
  StringPoolBuilder pool;
  std::string cols;
  std::vector<std::string> names = catalog.TableNames();  // sorted

  AppendU64(&cols, names.size());
  for (const std::string& name : names) {
    const Table* table = *catalog.GetTable(name);
    AppendU64(&cols, table->capacity());
    AppendU32(&cols, pool.IdFor(name));
    const Schema& schema = table->schema();
    AppendU32(&cols, static_cast<uint32_t>(schema.num_columns()));
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      AppendU32(&cols, pool.IdFor(schema.column(i).name));
      AppendU32(&cols, static_cast<uint32_t>(schema.column(i).type));
    }
  }
  for (const std::string& name : names) {
    const Table* table = *catalog.GetTable(name);
    const size_t rows = table->capacity();
    const Bitmap& live = table->live_bitmap();
    for (size_t w = 0; w < Bitmap::WordsFor(rows); ++w) {
      AppendU64(&cols, live.words()[w]);
    }
    for (size_t r = 0; r < rows; ++r) {
      AppendU64(&cols, table->RowHash(static_cast<int64_t>(r)));
    }
    for (size_t col = 0; col < table->schema().num_columns(); ++col) {
      const ColumnVector& cv = table->column(col);
      for (size_t r = 0; r < rows; ++r) {
        const Value v = cv.at(r);
        // String payloads are remapped from process-global dictionary
        // ids to snapshot-local pool ids so the bytes are deterministic
        // regardless of interleaved interning elsewhere.
        AppendU64(&cols, v.type() == ValueType::kString
                             ? pool.IdFor(v.AsString())
                             : v.payload_bits());
      }
      for (size_t r = 0; r < rows; ++r) {
        cols.push_back(static_cast<char>(cv.at(r).type()));
      }
      PadTo8(&cols);
    }
  }

  SnapshotWriter writer;
  SectionLayout layout;
  auto add_aligned = [&](const char* tag, std::string content) {
    std::string payload =
        WithAlignmentPad(layout.NextPayloadOffset(), std::move(content));
    layout.Add(payload.size());
    writer.AddSection(tag, std::move(payload));
  };
  // COLS first: its encode populates the pool, but DICT's *file offset*
  // is only known once the COLS payload length is fixed.
  add_aligned("COLS", std::move(cols));
  add_aligned("DICT", pool.EncodeContent());
  return writer.Encode();
}

Status WriteCatalogSnapshot(const Catalog& catalog, const std::string& path) {
  return WriteBytesAtomic(EncodeCatalogSnapshot(catalog), path);
}

Result<CatalogView> ParseCatalogSection(std::string_view cols_content,
                                        const StringPoolView& pool) {
  CatalogView out;
  Cursor c(cols_content);
  uint64_t num_tables = 0;
  DD_RETURN_IF_ERROR(c.U64(&num_tables, "COLS table count"));
  // Each directory entry is at least 16 bytes; cheap pre-bound so a
  // flipped count cannot drive a near-infinite loop.
  if (num_tables > cols_content.size() / 16) {
    return Status::Corruption("COLS table count exceeds payload capacity");
  }
  std::string_view prev_name;
  for (uint64_t t = 0; t < num_tables; ++t) {
    MappedTableView table;
    table.content = cols_content;
    uint32_t name_id = 0, num_columns = 0;
    DD_RETURN_IF_ERROR(c.U64(&table.num_rows, "COLS row count"));
    DD_RETURN_IF_ERROR(c.U32(&name_id, "COLS table name"));
    DD_RETURN_IF_ERROR(c.U32(&num_columns, "COLS column count"));
    if (name_id >= pool.size()) {
      return Status::Corruption("COLS table name id out of pool range");
    }
    table.name = pool.String(name_id);
    if (table.name.empty()) {
      return Status::Corruption("COLS table with empty name");
    }
    if (t > 0 && table.name <= prev_name) {
      return Status::Corruption("COLS tables not sorted by name");
    }
    prev_name = table.name;
    if (num_columns > cols_content.size() / 8) {
      return Status::Corruption("COLS column count exceeds payload capacity");
    }
    table.columns.reserve(num_columns);
    for (uint32_t i = 0; i < num_columns; ++i) {
      MappedColumnView col;
      uint32_t col_name_id = 0, type = 0;
      DD_RETURN_IF_ERROR(c.U32(&col_name_id, "COLS column name"));
      DD_RETURN_IF_ERROR(c.U32(&type, "COLS column type"));
      if (col_name_id >= pool.size()) {
        return Status::Corruption("COLS column name id out of pool range");
      }
      if (type > kMaxTypeTag) {
        return Status::Corruption("COLS column type out of range");
      }
      col.name = pool.String(col_name_id);
      col.declared_type = static_cast<ValueType>(type);
      table.columns.push_back(col);
    }
    out.tables.push_back(std::move(table));
  }
  for (MappedTableView& table : out.tables) {
    const uint64_t rows = table.num_rows;
    DD_RETURN_IF_ERROR(
        c.Array(8, Bitmap::WordsFor(rows), &table.live_off, "COLS liveness"));
    DD_RETURN_IF_ERROR(c.Array(8, rows, &table.hashes_off, "COLS row hashes"));
    for (MappedColumnView& col : table.columns) {
      DD_RETURN_IF_ERROR(c.Array(8, rows, &col.payload_off, "COLS payloads"));
      DD_RETURN_IF_ERROR(c.Array(1, rows, &col.tags_off, "COLS tags"));
      DD_RETURN_IF_ERROR(c.Pad8("COLS"));
    }
  }
  DD_RETURN_IF_ERROR(c.Done("COLS"));

  // Cell-level validation: liveness spare bits zero, tags in range,
  // payloads consistent with their tag.
  for (const MappedTableView& table : out.tables) {
    const size_t rows = static_cast<size_t>(table.num_rows);
    if ((rows & 63) != 0) {
      uint64_t last;
      std::memcpy(&last,
                  table.content.data() + table.live_off + 8 * (rows >> 6), 8);
      if ((last >> (rows & 63)) != 0) {
        return Status::Corruption("COLS liveness bitmap has spare bits set");
      }
    }
    for (size_t col = 0; col < table.columns.size(); ++col) {
      for (size_t r = 0; r < rows; ++r) {
        uint8_t tag = table.CellTag(col, r);
        uint64_t payload = table.CellPayload(col, r);
        if (tag > kMaxTypeTag) {
          return Status::Corruption("COLS cell tag out of range");
        }
        switch (static_cast<ValueType>(tag)) {
          case ValueType::kNull:
            if (payload != 0) {
              return Status::Corruption("COLS null cell with nonzero payload");
            }
            break;
          case ValueType::kBool:
            if (payload > 1) {
              return Status::Corruption("COLS bool cell outside {0,1}");
            }
            break;
          case ValueType::kString:
            if (payload >= pool.size()) {
              return Status::Corruption("COLS string id out of pool range");
            }
            break;
          default:
            break;  // int/double: any 8 bytes are valid
        }
      }
    }
  }
  return out;
}

namespace {

Status LoadCatalogFromViews(const CatalogView& view, const StringPoolView& pool,
                            Catalog* catalog) {
  for (const MappedTableView& tv : view.tables) {
    std::vector<Column> columns;
    columns.reserve(tv.columns.size());
    for (const MappedColumnView& cv : tv.columns) {
      columns.push_back(Column{std::string(cv.name), cv.declared_type});
    }
    DD_ASSIGN_OR_RETURN(
        Table * table,
        catalog->CreateTable(std::string(tv.name), Schema(std::move(columns))));
    const size_t rows = static_cast<size_t>(tv.num_rows);
    table->Reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      Tuple tuple;
      for (size_t col = 0; col < tv.columns.size(); ++col) {
        ValueType tag = static_cast<ValueType>(tv.CellTag(col, r));
        uint64_t payload = tv.CellPayload(col, r);
        tuple.Append(tag == ValueType::kString
                         ? Value::String(pool.String(
                               static_cast<uint32_t>(payload)))
                         : Value::FromRaw(tag, payload));
      }
      // Stored hashes are content-based (string cells hash their text),
      // so they are portable across processes; a mismatch means the
      // arrays and the hash column disagree.
      if (tuple.Hash() != tv.RowHash(r)) {
        return Status::Corruption(
            StrFormat("row hash mismatch in table %s at row %zu",
                      std::string(tv.name).c_str(), r));
      }
      DD_RETURN_IF_ERROR(table->RestoreRow(tuple, tv.RowLive(r)));
    }
  }
  return Status::OK();
}

}  // namespace

Status LoadCatalogSnapshot(const std::string& bytes, Catalog* catalog) {
  DD_ASSIGN_OR_RETURN(SnapshotView container, SnapshotView::Parse(bytes));
  DD_ASSIGN_OR_RETURN(SectionSpan dict_span, container.Section("DICT"));
  DD_ASSIGN_OR_RETURN(std::string_view dict_content,
                      StripAlignmentPad(dict_span.offset, dict_span.payload));
  DD_ASSIGN_OR_RETURN(StringPoolView pool, StringPoolView::Parse(dict_content));
  DD_ASSIGN_OR_RETURN(SectionSpan cols_span, container.Section("COLS"));
  DD_ASSIGN_OR_RETURN(std::string_view cols_content,
                      StripAlignmentPad(cols_span.offset, cols_span.payload));
  DD_ASSIGN_OR_RETURN(CatalogView view, ParseCatalogSection(cols_content, pool));
  return LoadCatalogFromViews(view, pool, catalog);
}

Status LoadCatalogSnapshotFile(const std::string& path, Catalog* catalog) {
  DD_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return LoadCatalogSnapshot(bytes, catalog);
}

// ---- Mapped snapshots ---------------------------------------------------

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    heap_ = std::move(other.heap_);
    bytes_ = std::exchange(other.bytes_, std::string_view());
    view_ = std::move(other.view_);
  }
  return *this;
}

MappedSnapshot::~MappedSnapshot() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
}

Result<MappedSnapshot> MappedSnapshot::Open(const std::string& path) {
  Status injected;
  DD_FAILPOINT(failpoints::kFactorIoRead, &injected);
  if (!injected.ok()) return injected;

  MappedSnapshot snap;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* base = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                          MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        snap.map_base_ = base;
        snap.map_len_ = static_cast<size_t>(st.st_size);
        snap.bytes_ = std::string_view(static_cast<const char*>(base),
                                       snap.map_len_);
      }
    }
    ::close(fd);
  }
  // A fired snapshot.mmap simulates mmap(2) refusing the mapping (ENOMEM,
  // filesystem without mmap support): discard whatever was mapped and
  // exercise the checked-read heap fallback below.
  Status mmap_refused;
  DD_FAILPOINT(failpoints::kSnapshotMmap, &mmap_refused);
  if (!mmap_refused.ok() && snap.map_base_ != nullptr) {
    ::munmap(snap.map_base_, snap.map_len_);
    snap.map_base_ = nullptr;
    snap.map_len_ = 0;
    snap.bytes_ = std::string_view();
  }
  if (snap.map_base_ == nullptr) {
    // Heap fallback into an 8-byte-aligned buffer so section contents
    // keep the alignment the pads establish relative to file offsets.
    DD_ASSIGN_OR_RETURN(std::string data, ReadFileBytes(path));
    snap.heap_ = std::make_unique<uint64_t[]>((data.size() + 7) / 8);
    std::memcpy(snap.heap_.get(), data.data(), data.size());
    snap.bytes_ = std::string_view(
        reinterpret_cast<const char*>(snap.heap_.get()), data.size());
  }
  // Injected container-validation failure (the mapped bytes are
  // unreadable garbage): surfaces exactly like a real corrupt file.
  Status validate_injected;
  DD_FAILPOINT(failpoints::kSnapshotValidate, &validate_injected);
  if (!validate_injected.ok()) return validate_injected;
  DD_ASSIGN_OR_RETURN(snap.view_, SnapshotView::Parse(snap.bytes_));
  return snap;
}

Result<std::string_view> MappedSnapshot::SectionContent(
    const std::string& tag) const {
  DD_ASSIGN_OR_RETURN(SectionSpan span, view_.Section(tag));
  return StripAlignmentPad(span.offset, span.payload);
}

Result<StringPoolView> MappedSnapshot::Pool() const {
  DD_ASSIGN_OR_RETURN(std::string_view content, SectionContent("DICT"));
  return StringPoolView::Parse(content);
}

Result<BinaryGraphView> MappedSnapshot::Graph(const StringPoolView& pool) const {
  DD_ASSIGN_OR_RETURN(std::string_view content, SectionContent("GRBN"));
  return ParseBinaryGraph(content, pool);
}

Result<CatalogView> MappedSnapshot::Tables(const StringPoolView& pool) const {
  DD_ASSIGN_OR_RETURN(std::string_view content, SectionContent("COLS"));
  return ParseCatalogSection(content, pool);
}

}  // namespace dd
