#include "storage/catalog.h"

namespace dd {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> Catalog::GetOrCreateTable(const std::string& name, const Schema& schema) {
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    if (!(it->second->schema() == schema)) {
      return Status::TypeError("table " + name + " exists with schema " +
                               it->second->schema().ToString() + ", requested " +
                               schema.ToString());
    }
    return it->second.get();
  }
  return CreateTable(name, schema);
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no such table: " + name);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace dd
