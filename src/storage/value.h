#ifndef DEEPDIVE_STORAGE_VALUE_H_
#define DEEPDIVE_STORAGE_VALUE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "storage/dictionary.h"

namespace dd {

/// Column types supported by the relational substrate. This is the minimal
/// set the DeepDive pipeline needs: ids and offsets (kInt), probabilities
/// and measurements (kDouble), text (kString), and supervision labels
/// (kBool, with kNull meaning "unlabeled"). The numeric order is load-
/// bearing: Value::operator< sorts by it and column tags persist it.
enum class ValueType : uint8_t { kNull = 0, kBool, kInt, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// A dynamically-typed cell: a 16-byte non-allocating tagged union.
/// Strings are interned into the process-global StringDictionary and
/// represented by their dense uint32_t id; the text materializes lazily at
/// UDF/TSV/ToString boundaries via AsString(). Equality and hashing of
/// string values operate on the id (sound because the dictionary
/// deduplicates: equal content <=> equal id) while ordering compares the
/// text itself, so sort-based operators keep content order.
///
/// Hash values are bit-identical to the pre-columnar variant
/// implementation for every type (string hashes are the precomputed
/// Fnv1a of the content) — unordered-container iteration orders, golden
/// files, and weight-tying keys all depend on that stability.
class Value {
 public:
  Value() = default;
  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    return Value(ValueType::kBool, b ? 1 : 0);
  }
  static Value Int(int64_t i) {
    return Value(ValueType::kInt, static_cast<uint64_t>(i));
  }
  static Value Double(double d) {
    return Value(ValueType::kDouble, std::bit_cast<uint64_t>(d));
  }
  static Value String(std::string_view s) {
    return Value(ValueType::kString, StringDictionary::Global().Intern(s));
  }
  static Value String(const std::string& s) {
    return String(std::string_view(s));
  }
  static Value String(const char* s) { return String(std::string_view(s)); }
  /// Wrap an id previously returned by StringDictionary::Intern.
  static Value InternedString(uint32_t id) {
    return Value(ValueType::kString, id);
  }

  /// Reconstruct from a (tag, payload) pair as stored in columns and
  /// binary snapshots. The payload must have been produced by
  /// payload_bits() on a value of the same type (snapshot decoders
  /// validate tags and re-intern string ids before calling this).
  static Value FromRaw(ValueType type, uint64_t bits) {
    return Value(type, bits);
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Typed accessors; the caller must have checked type() first.
  bool AsBool() const { return bits_ != 0; }
  int64_t AsInt() const { return static_cast<int64_t>(bits_); }
  double AsDouble() const { return std::bit_cast<double>(bits_); }
  const std::string& AsString() const {
    return StringDictionary::Global().Get(string_id());
  }
  /// Dictionary id of a kString value.
  uint32_t string_id() const { return static_cast<uint32_t>(bits_); }

  /// Raw 8-byte payload: bool 0/1, int two's complement, double IEEE
  /// bits, string dictionary id, null 0. With type(), losslessly
  /// round-trips through FromRaw.
  uint64_t payload_bits() const { return bits_; }

  /// Equality is type + payload. For doubles this is bitwise (consistent
  /// with Hash, which also hashes the bits); for strings id equality,
  /// which the dictionary makes equivalent to content equality.
  bool operator==(const Value& other) const {
    return type_ == other.type_ && bits_ == other.bits_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: first by type index, then by payload (strings by
  /// content). Used by sort-based operators and deterministic output
  /// ordering.
  bool operator<(const Value& other) const;

  uint64_t Hash() const;

  /// Render for debugging and golden tests: NULL, true, 42, 3.5, "text".
  /// Doubles use std::to_chars shortest round-trip form: locale-
  /// independent and exact (re-parsing yields the same bits).
  std::string ToString() const;

 private:
  Value(ValueType type, uint64_t bits) : bits_(bits), type_(type) {}

  uint64_t bits_ = 0;
  ValueType type_ = ValueType::kNull;
};

static_assert(sizeof(Value) == 16, "Value must stay a 16-byte POD cell");

/// Shortest-round-trip rendering of a double (std::to_chars): the lexical
/// form is locale-independent and re-parses to the identical bits. Shared
/// by Value::ToString and the TSV writer.
std::string DoubleToString(double d);

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_VALUE_H_
