#ifndef DEEPDIVE_STORAGE_VALUE_H_
#define DEEPDIVE_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/hash.h"

namespace dd {

/// Column types supported by the relational substrate. This is the minimal
/// set the DeepDive pipeline needs: ids and offsets (kInt), probabilities
/// and measurements (kDouble), text (kString), and supervision labels
/// (kBool, with kNull meaning "unlabeled").
enum class ValueType { kNull = 0, kBool, kInt, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// A dynamically-typed cell. Values are immutable once constructed and
/// cheap to move; strings are the only heap-owning alternative.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Data(b)); }
  static Value Int(int64_t i) { return Value(Data(i)); }
  static Value Double(double d) { return Value(Data(d)); }
  static Value String(std::string s) { return Value(Data(std::move(s))); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the caller must have checked type() first.
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: first by type index, then by payload. Used by sort-based
  /// operators and deterministic output ordering.
  bool operator<(const Value& other) const;

  uint64_t Hash() const;

  /// Render for debugging and golden tests: NULL, true, 42, 3.5, "text".
  std::string ToString() const;

 private:
  using Data = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace dd

#endif  // DEEPDIVE_STORAGE_VALUE_H_
