#include "inference/exact.h"

#include <cmath>
#include <functional>

#include "util/string_util.h"

namespace dd {

namespace {

/// Enumerate worlds; call fn(assignment, log_potential) for each.
Status EnumerateWorlds(const FactorGraph& graph, bool clamp_evidence, int max_free_vars,
                       const std::function<void(const uint8_t*, double)>& fn) {
  const size_t nv = graph.num_variables();
  std::vector<uint32_t> free_vars;
  std::vector<uint8_t> assignment(nv, 0);
  for (uint32_t v = 0; v < nv; ++v) {
    if (clamp_evidence && graph.is_evidence(v)) {
      assignment[v] = graph.evidence_value(v) ? 1 : 0;
    } else {
      free_vars.push_back(v);
    }
  }
  if (free_vars.size() > static_cast<size_t>(max_free_vars)) {
    return Status::OutOfRange(StrFormat("exact inference limited to %d free vars, got %zu",
                                        max_free_vars, free_vars.size()));
  }
  const uint64_t num_worlds = 1ULL << free_vars.size();
  for (uint64_t world = 0; world < num_worlds; ++world) {
    for (size_t i = 0; i < free_vars.size(); ++i) {
      assignment[free_vars[i]] = (world >> i) & 1;
    }
    fn(assignment.data(), graph.LogPotential(assignment.data()));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> ExactMarginals(const FactorGraph& graph, bool clamp_evidence,
                                           int max_free_vars) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("ExactMarginals requires a finalized graph");
  }
  const size_t nv = graph.num_variables();
  // Log-sum-exp in two passes for numerical stability.
  double max_logp = -1e300;
  DD_RETURN_IF_ERROR(EnumerateWorlds(graph, clamp_evidence, max_free_vars,
                                     [&](const uint8_t*, double logp) {
                                       if (logp > max_logp) max_logp = logp;
                                     }));
  std::vector<double> mass(nv, 0.0);
  double z = 0.0;
  DD_RETURN_IF_ERROR(EnumerateWorlds(
      graph, clamp_evidence, max_free_vars, [&](const uint8_t* a, double logp) {
        double p = std::exp(logp - max_logp);
        z += p;
        for (uint32_t v = 0; v < nv; ++v) {
          if (a[v]) mass[v] += p;
        }
      }));
  if (z <= 0.0) return Status::Internal("exact inference: zero partition function");
  for (double& m : mass) m /= z;
  return mass;
}

Result<double> ExactLogZ(const FactorGraph& graph, bool clamp_evidence,
                         int max_free_vars) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("ExactLogZ requires a finalized graph");
  }
  double max_logp = -1e300;
  DD_RETURN_IF_ERROR(EnumerateWorlds(graph, clamp_evidence, max_free_vars,
                                     [&](const uint8_t*, double logp) {
                                       if (logp > max_logp) max_logp = logp;
                                     }));
  double z = 0.0;
  DD_RETURN_IF_ERROR(
      EnumerateWorlds(graph, clamp_evidence, max_free_vars,
                      [&](const uint8_t*, double logp) { z += std::exp(logp - max_logp); }));
  return max_logp + std::log(z);
}

}  // namespace dd
