#ifndef DEEPDIVE_INFERENCE_MAP_H_
#define DEEPDIVE_INFERENCE_MAP_H_

#include <cstdint>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

struct MapOptions {
  int sweeps = 500;             ///< annealing sweeps
  double initial_temperature = 2.0;
  double final_temperature = 0.02;
  int restarts = 3;             ///< independent annealing runs; best kept
  uint64_t seed = 11;
  bool clamp_evidence = true;
};

struct MapResult {
  std::vector<uint8_t> assignment;  ///< the most probable world found
  double log_potential = 0.0;       ///< W(F, I) of that world
};

/// MAP inference by simulated-annealing Gibbs: the temperature ramps
/// down geometrically from initial to final across the sweeps, turning
/// the sampler into greedy hill-climbing at the end. DeepDive's output
/// is marginals, but the most-probable-world query is the standard MLN
/// companion (and the dw sampler ships the same annealing mode).
Result<MapResult> MapInference(const FactorGraph& graph, const MapOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_MAP_H_
