#include "inference/incremental.h"

#include <algorithm>
#include <cstdlib>

#include "factor/io.h"
#include "inference/gibbs.h"
#include "inference/meanfield.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace dd {

namespace {
constexpr char kSamplingKind[] = "inference-sampling";
constexpr char kVariationalKind[] = "inference-variational";
}  // namespace

const char* StrategyName(MaterializationStrategy strategy) {
  switch (strategy) {
    case MaterializationStrategy::kSampling: return "sampling";
    case MaterializationStrategy::kVariational: return "variational";
  }
  return "?";
}

IncrementalInference::IncrementalInference(const FactorGraph* graph,
                                           MaterializationStrategy strategy,
                                           const IncrementalOptions& options)
    : graph_(graph), strategy_(strategy), options_(options) {}

IncrementalInference::~IncrementalInference() = default;

Status IncrementalInference::Prewarm() {
  marginals_.reserve(graph_->num_variables());
  chain_state_.reserve(graph_->num_variables());
  if (strategy_ == MaterializationStrategy::kSampling &&
      !options_.checkpoint_path.empty() && FileExists(options_.checkpoint_path)) {
    Result<GraphSnapshot> snap = ReadGraphSnapshot(options_.checkpoint_path);
    // A corrupt or foreign snapshot is not an error here: the restore in
    // Materialize() re-reads the file and reports it exactly as it would
    // without the warm-up.
    if (snap.ok()) {
      prewarmed_ = std::make_unique<GraphSnapshot>(std::move(*snap));
    }
  }
  return Status::OK();
}

Status IncrementalInference::Materialize() {
  switch (strategy_) {
    case MaterializationStrategy::kSampling:
      DD_RETURN_IF_ERROR(MaterializeSampling());
      break;
    case MaterializationStrategy::kVariational:
      DD_RETURN_IF_ERROR(MaterializeVariational());
      break;
  }
  materialized_ = true;
  return Status::OK();
}

Status IncrementalInference::WriteSamplingCheckpoint(const GibbsSampler& sampler,
                                                     int sweeps_done) const {
  GraphSnapshot snap;
  snap.chains = {sampler.assignment()};
  snap.counts = sampler.true_counts();
  snap.rng_states = {sampler.rng_state()};
  snap.meta["kind"] = kSamplingKind;
  snap.meta["sweeps"] = StrFormat("%d", sweeps_done);
  snap.meta["num_accumulated"] =
      StrFormat("%llu", static_cast<unsigned long long>(sampler.num_accumulated()));
  snap.meta["seed"] =
      StrFormat("%llu", static_cast<unsigned long long>(options_.seed));
  return WriteGraphSnapshot(snap, options_.checkpoint_path);
}

Status IncrementalInference::TryRestoreSampling(GibbsSampler* sampler,
                                                int* sweeps_done) {
  *sweeps_done = 0;
  if (options_.checkpoint_path.empty()) {
    prewarmed_.reset();
    return Status::OK();
  }
  GraphSnapshot snap;
  if (prewarmed_ != nullptr) {
    // Consume the snapshot Prewarm() already read off disk.
    snap = std::move(*prewarmed_);
    prewarmed_.reset();
  } else {
    if (!FileExists(options_.checkpoint_path)) return Status::OK();
    DD_ASSIGN_OR_RETURN(snap, ReadGraphSnapshot(options_.checkpoint_path));
  }
  auto kind = snap.meta.find("kind");
  if (kind == snap.meta.end() || kind->second != kSamplingKind) {
    return Status::InvalidArgument(
        "checkpoint is not a sampling-materialization snapshot: " +
        options_.checkpoint_path);
  }
  auto seed = snap.meta.find("seed");
  if (seed == snap.meta.end() ||
      std::strtoull(seed->second.c_str(), nullptr, 10) != options_.seed) {
    return Status::InvalidArgument(
        "sampling checkpoint was written with a different seed");
  }
  auto sweeps = snap.meta.find("sweeps");
  auto accumulated = snap.meta.find("num_accumulated");
  if (sweeps == snap.meta.end() || accumulated == snap.meta.end() ||
      snap.chains.size() != 1 || snap.rng_states.size() != 1) {
    return Status::InvalidArgument("sampling checkpoint missing chain state");
  }
  DD_RETURN_IF_ERROR(sampler->RestoreState(
      snap.chains[0], snap.counts,
      std::strtoull(accumulated->second.c_str(), nullptr, 10),
      snap.rng_states[0]));
  *sweeps_done = std::atoi(sweeps->second.c_str());
  return Status::OK();
}

Status IncrementalInference::MaterializeSampling() {
  DD_TRACE_SPAN_VAR(span, "inference.materialize");
  GibbsOptions opts;
  opts.burn_in = options_.full_burn_in;
  opts.num_samples = options_.num_samples;
  opts.seed = options_.seed;
  opts.clamp_evidence = options_.clamp_evidence;
  GibbsSampler sampler(graph_, opts);
  DD_RETURN_IF_ERROR(sampler.Init());

  // Same sweep schedule as GibbsSampler::RunMarginals, but driven here
  // so the loop can checkpoint and resume mid-stream.
  const int total_sweeps = options_.full_burn_in + options_.num_samples;
  int done = 0;
  DD_RETURN_IF_ERROR(TryRestoreSampling(&sampler, &done));
  const bool durable = !options_.checkpoint_path.empty();
  const int resumed_at = done;
  for (; done < total_sweeps; ++done) {
    Status injected;
    DD_FAILPOINT(failpoints::kInferenceSweep, &injected);
    if (!injected.ok()) return injected;

    sampler.Sweep();
    if (done >= options_.full_burn_in) sampler.Accumulate();
    if (durable && options_.checkpoint_interval > 0 &&
        (done + 1) % options_.checkpoint_interval == 0 &&
        done + 1 < total_sweeps) {
      DD_RETURN_IF_ERROR(WriteSamplingCheckpoint(sampler, done + 1));
    }
  }
  DD_ASSIGN_OR_RETURN(marginals_, sampler.Marginals());
  chain_state_ = sampler.assignment();
  last_work_units_ = sampler.num_steps();
  if (durable) DD_RETURN_IF_ERROR(WriteSamplingCheckpoint(sampler, total_sweeps));
  DD_COUNTER_ADD("dd.inference.sweeps",
                 static_cast<uint64_t>(total_sweeps - resumed_at));
  DD_COUNTER_ADD("dd.inference.work_units", last_work_units_);
  span.Attr("sweeps", static_cast<double>(total_sweeps - resumed_at));
  span.Attr("resumed_at", static_cast<double>(resumed_at));
  return Status::OK();
}

Status IncrementalInference::MaterializeVariational() {
  // The variational materialization is deterministic and cheap relative
  // to sampling, so durability only persists (and reuses) the final
  // marginals rather than checkpointing mid-relaxation.
  if (!options_.checkpoint_path.empty() && FileExists(options_.checkpoint_path)) {
    DD_ASSIGN_OR_RETURN(GraphSnapshot snap,
                        ReadGraphSnapshot(options_.checkpoint_path));
    auto kind = snap.meta.find("kind");
    if (kind != snap.meta.end() && kind->second == kVariationalKind &&
        snap.marginals.size() == graph_->num_variables()) {
      marginals_ = std::move(snap.marginals);
      last_work_units_ = 0;
      return Status::OK();
    }
    return Status::InvalidArgument(
        "checkpoint is not a variational-materialization snapshot: " +
        options_.checkpoint_path);
  }
  MeanFieldOptions opts;
  opts.max_iterations = options_.mf_max_iterations;
  opts.tolerance = options_.mf_tolerance;
  opts.damping = options_.mf_damping;
  opts.clamp_evidence = options_.clamp_evidence;
  MeanFieldEngine engine(graph_, opts);
  DD_ASSIGN_OR_RETURN(marginals_, engine.Run());
  last_work_units_ = engine.updates_performed();
  if (!options_.checkpoint_path.empty()) {
    GraphSnapshot snap;
    snap.marginals = marginals_;
    snap.meta["kind"] = kVariationalKind;
    DD_RETURN_IF_ERROR(WriteGraphSnapshot(snap, options_.checkpoint_path));
  }
  return Status::OK();
}

Result<std::vector<double>> IncrementalInference::Update(
    const FactorGraph* new_graph, const std::vector<uint32_t>& changed_vars) {
  if (!materialized_) {
    return Status::Internal("Update() before Materialize()");
  }
  if (!new_graph->finalized()) {
    return Status::InvalidArgument("Update requires a finalized graph");
  }
  if (new_graph->num_variables() < graph_->num_variables()) {
    return Status::InvalidArgument(
        "new graph must preserve existing variable ids (got fewer variables)");
  }
  const size_t nv = new_graph->num_variables();
  DD_TRACE_SPAN_VAR(span, "inference.update");
  span.Attr("changed_vars", static_cast<double>(changed_vars.size()));

  if (strategy_ == MaterializationStrategy::kSampling) {
    // Warm start: reuse the stored chain state for surviving variables,
    // random-init the new ones, then run a short burn-in instead of the
    // full one — the stored state is already near the stationary
    // distribution everywhere the graph did not change.
    GibbsOptions opts;
    opts.burn_in = 0;  // manual control below
    opts.num_samples = 0;
    opts.seed = options_.seed + 1;
    opts.clamp_evidence = options_.clamp_evidence;
    GibbsSampler sampler(new_graph, opts);
    DD_RETURN_IF_ERROR(sampler.Init());
    Rng rng(options_.seed + 2);
    std::vector<uint8_t>* state = sampler.mutable_assignment();
    uint64_t reused = 0, recomputed = 0;
    for (uint32_t v = 0; v < nv; ++v) {
      if (options_.clamp_evidence && new_graph->is_evidence(v)) {
        continue;  // already clamped by Init
      }
      if (v < chain_state_.size()) {
        (*state)[v] = chain_state_[v];
        ++reused;
      } else {
        (*state)[v] = rng.NextBernoulli(0.5) ? 1 : 0;
        ++recomputed;
      }
    }
    DD_COUNTER_ADD("dd.inference.vars_reused", reused);
    DD_COUNTER_ADD("dd.inference.vars_recomputed", recomputed);
    span.Attr("vars_reused", static_cast<double>(reused));
    span.Attr("vars_recomputed", static_cast<double>(recomputed));
    for (int i = 0; i < options_.update_burn_in; ++i) sampler.Sweep();
    for (int i = 0; i < options_.num_samples; ++i) {
      sampler.Sweep();
      sampler.Accumulate();
    }
    DD_ASSIGN_OR_RETURN(marginals_, sampler.Marginals());
    chain_state_ = sampler.assignment();
    last_work_units_ = sampler.num_steps();
    DD_COUNTER_ADD("dd.inference.work_units", last_work_units_);
    graph_ = new_graph;
    return marginals_;
  }

  // Variational: warm-start μ from the materialized values and only
  // relax the changed region (MeanFieldEngine cascades as needed).
  std::vector<double> mu(nv, 0.5);
  for (uint32_t v = 0; v < nv && v < marginals_.size(); ++v) mu[v] = marginals_[v];
  {
    const uint64_t reused = std::min<uint64_t>(nv, marginals_.size());
    DD_COUNTER_ADD("dd.inference.vars_reused", reused);
    DD_COUNTER_ADD("dd.inference.vars_recomputed", nv - reused);
    span.Attr("vars_reused", static_cast<double>(reused));
    span.Attr("vars_recomputed", static_cast<double>(nv - reused));
  }
  if (options_.clamp_evidence) {
    for (uint32_t v = 0; v < nv; ++v) {
      if (new_graph->is_evidence(v)) mu[v] = new_graph->evidence_value(v) ? 1.0 : 0.0;
    }
  }
  MeanFieldOptions opts;
  opts.max_iterations = options_.mf_max_iterations;
  opts.tolerance = options_.mf_tolerance;
  opts.damping = options_.mf_damping;
  opts.clamp_evidence = options_.clamp_evidence;
  MeanFieldEngine engine(new_graph, opts);
  DD_ASSIGN_OR_RETURN(marginals_, engine.RunFrom(std::move(mu), changed_vars));
  last_work_units_ = engine.updates_performed();
  DD_COUNTER_ADD("dd.inference.work_units", last_work_units_);
  graph_ = new_graph;
  return marginals_;
}

MaterializationStrategy ChooseStrategy(size_t num_variables, double avg_degree,
                                       int anticipated_changes) {
  // Dense correlation structure: mean-field cascades touch everything and
  // its independence assumption bites — sample.
  if (avg_degree > 6.0) return MaterializationStrategy::kSampling;
  // Few (or no) anticipated changes: the materialization will rarely be
  // reused, and sampling gives the calibrated probabilities DeepDive
  // needs for its debugging loop — sample.
  if (anticipated_changes <= 2) return MaterializationStrategy::kSampling;
  // Tiny graphs: full re-sampling is cheap regardless.
  if (num_variables < 256) return MaterializationStrategy::kSampling;
  // Large sparse graphs with many future deltas: localized variational
  // updates amortize best.
  return MaterializationStrategy::kVariational;
}

}  // namespace dd
