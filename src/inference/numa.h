#ifndef DEEPDIVE_INFERENCE_NUMA_H_
#define DEEPDIVE_INFERENCE_NUMA_H_

#include <cstdint>
#include <vector>

#include "factor/graph.h"
#include "inference/learner.h"
#include "util/result.h"

namespace dd {

/// Simulated NUMA machine. The paper's DimmWitted engine ran on a
/// 4-socket machine; this host may not be NUMA at all, so the NUMA
/// effects are modeled explicitly: variables (and weights) are block-
/// partitioned across `num_nodes` memory nodes, every access from a
/// thread pinned to a different node counts as remote, and each remote
/// access optionally pays `remote_penalty_iters` spin iterations of
/// simulated interconnect latency. DESIGN.md §5 documents why this
/// substitution preserves the paper's claim (communication volume across
/// sockets is the quantity of interest).
struct NumaTopology {
  int num_nodes = 4;
  int cores_per_node = 1;
  uint64_t remote_penalty_iters = 0;
};

struct NumaRunStats {
  std::vector<double> marginals;
  uint64_t total_accesses = 0;
  uint64_t remote_accesses = 0;
  uint64_t steps = 0;  ///< variable resampling steps
};

/// Gibbs sampling under the two memory strategies of §4.2:
///
/// * RunAware — DimmWitted's NUMA-aware mode: each node runs an
///   independent full-graph chain against its local replica and the
///   per-node marginal estimates are averaged (model averaging [57]).
///   No cross-node traffic during sampling.
/// * RunUnaware — a single shared chain; threads on every node sample a
///   partition of the variables, so reads of neighbor state and writes
///   of sampled values constantly cross node boundaries.
///
/// Both produce `num_samples` counted sweeps in total (the aware mode
/// splits them across nodes), matching the paper's "1,000 samples for
/// all variables" accounting.
class NumaSampler {
 public:
  /// `use_compiled` selects the compiled kernel streams (default) or the
  /// interpreted CSR reference path for every delta computation.
  NumaSampler(const FactorGraph* graph, const NumaTopology& topology, int burn_in,
              int num_samples, uint64_t seed, bool use_compiled = true);

  Result<NumaRunStats> RunAware();
  Result<NumaRunStats> RunUnaware();

 private:
  int OwnerNode(uint32_t var) const;

  const FactorGraph* graph_;
  NumaTopology topology_;
  int burn_in_;
  int num_samples_;
  uint64_t seed_;
  bool use_compiled_;
};

struct NumaLearnStats {
  uint64_t total_accesses = 0;
  uint64_t remote_accesses = 0;
};

/// Weight learning under the two strategies: NUMA-aware keeps a weight
/// replica per node and averages replicas after every epoch (Zinkevich
/// model averaging); the unaware baseline shares one weight vector that
/// every node hammers remotely.
class NumaLearner {
 public:
  NumaLearner(FactorGraph* graph, const NumaTopology& topology)
      : graph_(graph), topology_(topology) {}

  Result<NumaLearnStats> Learn(const LearnOptions& options, bool numa_aware);

 private:
  FactorGraph* graph_;
  NumaTopology topology_;
};

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_NUMA_H_
