#ifndef DEEPDIVE_INFERENCE_EXACT_H_
#define DEEPDIVE_INFERENCE_EXACT_H_

#include <vector>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

/// Exact inference by world enumeration — the test oracle for the
/// samplers and the variational engine. Exponential in the number of
/// free variables; refuses graphs with more than `max_free_vars`.
///
/// When `clamp_evidence` is true, evidence variables are fixed to their
/// evidence values (conditional marginals); otherwise every variable is
/// free (joint marginals of the unconditioned model).
Result<std::vector<double>> ExactMarginals(const FactorGraph& graph,
                                           bool clamp_evidence = true,
                                           int max_free_vars = 24);

/// log Σ_I exp(W(F, I)) over the same world set as ExactMarginals.
Result<double> ExactLogZ(const FactorGraph& graph, bool clamp_evidence = true,
                         int max_free_vars = 24);

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_EXACT_H_
