#ifndef DEEPDIVE_INFERENCE_CONVERGENCE_H_
#define DEEPDIVE_INFERENCE_CONVERGENCE_H_

#include <cstdint>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

/// Convergence diagnostics for the Gibbs chains. DeepDive's debugging
/// discipline (§2.5) requires probabilities humans can trust; these
/// checks tell the engineer whether "1,000 samples" was actually enough
/// on their graph before they debug feature weights that are really just
/// Monte-Carlo noise.
struct ConvergenceReport {
  /// Gelman-Rubin potential scale reduction factor per variable, from M
  /// independent chains; values near 1.0 indicate convergence. NaN for
  /// clamped evidence variables.
  std::vector<double> r_hat;
  /// Fraction of free variables with r_hat below the threshold.
  double converged_fraction = 0.0;
  /// Worst (largest) r_hat across free variables.
  double max_r_hat = 1.0;
};

struct ConvergenceOptions {
  int num_chains = 4;
  int burn_in = 100;
  int num_samples = 1000;
  int num_segments = 10;      ///< within-chain means computed per segment
  double r_hat_threshold = 1.1;
  uint64_t seed = 13;
  bool clamp_evidence = true;
};

/// Run `num_chains` independent Gibbs chains from overdispersed starts
/// and compute the Gelman-Rubin statistic over per-segment means of each
/// variable's indicator.
Result<ConvergenceReport> CheckConvergence(const FactorGraph& graph,
                                           const ConvergenceOptions& options);

/// Effective sample size of a 0/1 sample sequence via the initial-
/// positive-sequence autocorrelation estimator. Returns a value in
/// (0, n]; n for white noise, much smaller for sticky chains.
double EffectiveSampleSize(const std::vector<uint8_t>& samples);

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_CONVERGENCE_H_
