#include "inference/map.h"

#include <cmath>

#include "inference/gibbs.h"
#include "util/rng.h"

namespace dd {

Result<MapResult> MapInference(const FactorGraph& graph, const MapOptions& options) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("MapInference requires a finalized graph");
  }
  if (options.sweeps < 1 || options.restarts < 1) {
    return Status::InvalidArgument("sweeps and restarts must be >= 1");
  }
  if (options.initial_temperature <= 0 || options.final_temperature <= 0) {
    return Status::InvalidArgument("temperatures must be positive");
  }

  const size_t nv = graph.num_variables();
  std::vector<uint32_t> free_vars;
  for (uint32_t v = 0; v < nv; ++v) {
    if (!(options.clamp_evidence && graph.is_evidence(v))) free_vars.push_back(v);
  }

  MapResult best;
  best.log_potential = -1e300;
  const double decay =
      options.sweeps > 1
          ? std::pow(options.final_temperature / options.initial_temperature,
                     1.0 / (options.sweeps - 1))
          : 1.0;

  for (int restart = 0; restart < options.restarts; ++restart) {
    Rng rng(options.seed + 0x9e3779b9ULL * restart);
    std::vector<uint8_t> assignment(nv, 0);
    for (uint32_t v = 0; v < nv; ++v) {
      if (options.clamp_evidence && graph.is_evidence(v)) {
        assignment[v] = graph.evidence_value(v) ? 1 : 0;
      } else {
        assignment[v] = rng.NextBernoulli(0.5) ? 1 : 0;
      }
    }
    double temperature = options.initial_temperature;
    for (int sweep = 0; sweep < options.sweeps; ++sweep) {
      for (uint32_t v : free_vars) {
        double delta = graph.PotentialDeltaCompiled(v, assignment.data());
        assignment[v] = rng.NextBernoulli(Sigmoid(delta / temperature)) ? 1 : 0;
      }
      temperature *= decay;
    }
    // Final greedy pass: deterministic local optimum.
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t v : free_vars) {
        double delta = graph.PotentialDeltaCompiled(v, assignment.data());
        uint8_t want = delta > 0 ? 1 : 0;
        if (assignment[v] != want) {
          assignment[v] = want;
          improved = true;
        }
      }
    }
    double log_potential = graph.LogPotential(assignment.data());
    if (log_potential > best.log_potential) {
      best.log_potential = log_potential;
      best.assignment = assignment;
    }
  }
  return best;
}

}  // namespace dd
