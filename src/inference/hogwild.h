#ifndef DEEPDIVE_INFERENCE_HOGWILD_H_
#define DEEPDIVE_INFERENCE_HOGWILD_H_

#include <cstdint>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

struct ParallelGibbsOptions {
  int num_threads = 4;
  int burn_in = 100;
  int num_samples = 1000;
  uint64_t seed = 42;
  bool clamp_evidence = true;
  /// Compiled kernel streams vs. the interpreted CSR reference path.
  bool use_compiled = true;
};

/// Hogwild-style lock-free parallel Gibbs (DimmWitted's execution model,
/// after Niu et al. [41]): threads partition the free variables and
/// resample their partitions concurrently against a single shared
/// assignment, with no synchronization inside a sweep. Races on
/// neighboring variables are benign for marginal estimation.
class HogwildSampler {
 public:
  HogwildSampler(const FactorGraph* graph, const ParallelGibbsOptions& options);

  /// Run burn_in + num_samples parallel sweeps; return P(v=1) estimates.
  Result<std::vector<double>> RunMarginals();

  /// Variable resampling steps performed by the last RunMarginals.
  uint64_t num_steps() const { return num_steps_; }

 private:
  const FactorGraph* graph_;
  ParallelGibbsOptions options_;
  uint64_t num_steps_ = 0;
};

/// Baseline modeling GraphLab's edge-consistency engine: identical
/// sampling math, but each variable update acquires the locks of the
/// variable and every variable sharing a factor with it (in id order, to
/// avoid deadlock). The contention and lock traffic — not the arithmetic —
/// is what the paper's 3.7× DimmWitted-vs-GraphLab comparison measures.
class LockingSampler {
 public:
  LockingSampler(const FactorGraph* graph, const ParallelGibbsOptions& options);

  Result<std::vector<double>> RunMarginals();

  uint64_t num_steps() const { return num_steps_; }

 private:
  const FactorGraph* graph_;
  ParallelGibbsOptions options_;
  uint64_t num_steps_ = 0;
};

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_HOGWILD_H_
