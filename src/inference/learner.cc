#include "inference/learner.h"

#include <cmath>
#include <cstdlib>

#include "factor/io.h"
#include "inference/gibbs.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/trace.h"

namespace dd {

namespace {

constexpr char kLearnSnapshotName[] = "learn.snap";
constexpr char kSnapshotKind[] = "learner";

std::string CheckpointPath(const LearnOptions& options) {
  return options.checkpoint_dir + "/" + kLearnSnapshotName;
}

Status WriteLearnerCheckpoint(const LearnOptions& options, const FactorGraph& graph,
                              const GibbsSampler& positive,
                              const GibbsSampler& negative, int next_epoch,
                              double lr) {
  GraphSnapshot snap;
  snap.weights.resize(graph.num_weights());
  for (uint32_t w = 0; w < graph.num_weights(); ++w) {
    snap.weights[w] = graph.weight_value(w);
  }
  snap.chains = {positive.assignment(), negative.assignment()};
  snap.rng_states = {positive.rng_state(), negative.rng_state()};
  snap.meta["kind"] = kSnapshotKind;
  snap.meta["epoch"] = StrFormat("%d", next_epoch);
  snap.meta["lr"] = FormatExactDouble(lr);
  snap.meta["seed"] = StrFormat("%llu", static_cast<unsigned long long>(options.seed));
  return WriteGraphSnapshot(snap, CheckpointPath(options));
}

/// Restore a checkpoint into the graph/samplers. Outputs the epoch to
/// continue from and the learning rate at that point.
Status RestoreLearnerCheckpoint(const LearnOptions& options, FactorGraph* graph,
                                GibbsSampler* positive, GibbsSampler* negative,
                                int* start_epoch, double* lr) {
  DD_ASSIGN_OR_RETURN(GraphSnapshot snap,
                      ReadGraphSnapshot(CheckpointPath(options)));
  auto kind = snap.meta.find("kind");
  if (kind == snap.meta.end() || kind->second != kSnapshotKind) {
    return Status::InvalidArgument("snapshot is not a learner checkpoint");
  }
  auto seed = snap.meta.find("seed");
  if (seed == snap.meta.end() ||
      std::strtoull(seed->second.c_str(), nullptr, 10) != options.seed) {
    return Status::InvalidArgument(
        "learner checkpoint was written with a different seed");
  }
  if (snap.weights.size() != graph->num_weights()) {
    return Status::InvalidArgument(
        StrFormat("learner checkpoint has %zu weights, graph has %zu",
                  snap.weights.size(), graph->num_weights()));
  }
  if (snap.chains.size() != 2 || snap.rng_states.size() != 2) {
    return Status::InvalidArgument(
        "learner checkpoint must carry exactly two chains and RNG states");
  }
  auto epoch = snap.meta.find("epoch");
  auto lr_meta = snap.meta.find("lr");
  if (epoch == snap.meta.end() || lr_meta == snap.meta.end()) {
    return Status::InvalidArgument("learner checkpoint missing epoch/lr metadata");
  }
  for (uint32_t w = 0; w < graph->num_weights(); ++w) {
    graph->set_weight_value(w, snap.weights[w]);
  }
  DD_RETURN_IF_ERROR(
      positive->RestoreState(snap.chains[0], {}, 0, snap.rng_states[0]));
  DD_RETURN_IF_ERROR(
      negative->RestoreState(snap.chains[1], {}, 0, snap.rng_states[1]));
  *start_epoch = std::atoi(epoch->second.c_str());
  DD_ASSIGN_OR_RETURN(*lr, ParseExactDouble(lr_meta->second));
  return Status::OK();
}

}  // namespace

Status Learner::Learn(const LearnOptions& options) {
  DD_RETURN_IF_ERROR(graph_->Finalize());
  DD_TRACE_SPAN_VAR(learn_span, "learner.learn");
  gradient_norms_.clear();
  resumed_from_epoch_ = 0;

  GibbsOptions pos_opts;
  pos_opts.seed = options.seed;
  pos_opts.clamp_evidence = true;
  GibbsSampler positive(graph_, pos_opts);
  DD_RETURN_IF_ERROR(positive.Init());

  GibbsOptions neg_opts;
  neg_opts.seed = options.seed ^ 0x5bd1e995;
  neg_opts.clamp_evidence = false;
  GibbsSampler negative(graph_, neg_opts);
  DD_RETURN_IF_ERROR(negative.Init());

  const bool durable = !options.checkpoint_dir.empty();
  int start_epoch = 0;
  double lr = options.learning_rate;
  if (durable && FileExists(CheckpointPath(options))) {
    DD_RETURN_IF_ERROR(RestoreLearnerCheckpoint(options, graph_, &positive,
                                                &negative, &start_epoch, &lr));
    resumed_from_epoch_ = start_epoch;
  }

  const size_t nw = graph_->num_weights();
  const size_t nf = graph_->num_factors();
  std::vector<double> gradient(nw);

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    Stopwatch epoch_watch;
    Status injected;
    DD_FAILPOINT(failpoints::kLearnerEpoch, &injected);
    if (!injected.ok()) return injected;

    for (int s = 0; s < options.sweeps_per_epoch; ++s) {
      positive.Sweep();
      negative.Sweep();
    }
    std::fill(gradient.begin(), gradient.end(), 0.0);
    const uint8_t* pos = positive.assignment().data();
    const uint8_t* neg = negative.assignment().data();
    for (uint32_t f = 0; f < nf; ++f) {
      uint32_t w = graph_->factor_weight(f);
      if (graph_->weight(w).is_fixed) continue;
      double h_pos = graph_->EvalFactor(f, pos);
      double h_neg = graph_->EvalFactor(f, neg);
      if (h_pos != h_neg) gradient[w] += h_pos - h_neg;
    }
    double norm = 0.0;
    for (uint32_t w = 0; w < nw; ++w) {
      if (graph_->weight(w).is_fixed) continue;
      const double value = graph_->weight_value(w);
      double g = gradient[w] - options.l2 * value;
      double updated = value + lr * g;
      if (!std::isfinite(g) || !std::isfinite(updated)) {
        return Status::InvalidArgument(StrFormat(
            "learning diverged at epoch %d: weight %u ('%s') became non-finite "
            "(value=%g, gradient=%g, lr=%g) — reduce learning_rate or increase l2",
            epoch, w, graph_->weight(w).description.c_str(), updated, g, lr));
      }
      graph_->set_weight_value(w, updated);
      norm += g * g;
    }
    gradient_norms_.push_back(std::sqrt(norm));
    DD_COUNTER_ADD("dd.learner.epochs", 1);
    DD_HISTOGRAM_OBSERVE("dd.learner.epoch_seconds", epoch_watch.Seconds());
    DD_HISTOGRAM_OBSERVE("dd.learner.gradient_norm", gradient_norms_.back());
    lr *= options.decay;

    if (durable && options.checkpoint_interval > 0 &&
        (epoch + 1) % options.checkpoint_interval == 0 &&
        epoch + 1 < options.epochs) {
      DD_RETURN_IF_ERROR(
          WriteLearnerCheckpoint(options, *graph_, positive, negative, epoch + 1,
                                 lr));
    }
  }
  if (durable) {
    DD_RETURN_IF_ERROR(WriteLearnerCheckpoint(options, *graph_, positive,
                                              negative, options.epochs, lr));
  }
  learn_span.Attr("epochs_run",
                  static_cast<double>(options.epochs - start_epoch));
  learn_span.Attr("resumed_from", static_cast<double>(resumed_from_epoch_));
  return Status::OK();
}

}  // namespace dd
