#include "inference/learner.h"

#include <cmath>

#include "inference/gibbs.h"

namespace dd {

Status Learner::Learn(const LearnOptions& options) {
  DD_RETURN_IF_ERROR(graph_->Finalize());
  gradient_norms_.clear();

  GibbsOptions pos_opts;
  pos_opts.seed = options.seed;
  pos_opts.clamp_evidence = true;
  GibbsSampler positive(graph_, pos_opts);
  DD_RETURN_IF_ERROR(positive.Init());

  GibbsOptions neg_opts;
  neg_opts.seed = options.seed ^ 0x5bd1e995;
  neg_opts.clamp_evidence = false;
  GibbsSampler negative(graph_, neg_opts);
  DD_RETURN_IF_ERROR(negative.Init());

  const size_t nw = graph_->num_weights();
  const size_t nf = graph_->num_factors();
  std::vector<double> gradient(nw);
  double lr = options.learning_rate;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int s = 0; s < options.sweeps_per_epoch; ++s) {
      positive.Sweep();
      negative.Sweep();
    }
    std::fill(gradient.begin(), gradient.end(), 0.0);
    const uint8_t* pos = positive.assignment().data();
    const uint8_t* neg = negative.assignment().data();
    for (uint32_t f = 0; f < nf; ++f) {
      uint32_t w = graph_->factor_weight(f);
      if (graph_->weight(w).is_fixed) continue;
      double h_pos = graph_->EvalFactor(f, pos);
      double h_neg = graph_->EvalFactor(f, neg);
      if (h_pos != h_neg) gradient[w] += h_pos - h_neg;
    }
    double norm = 0.0;
    for (uint32_t w = 0; w < nw; ++w) {
      if (graph_->weight(w).is_fixed) continue;
      const double value = graph_->weight_value(w);
      double g = gradient[w] - options.l2 * value;
      graph_->set_weight_value(w, value + lr * g);
      norm += g * g;
    }
    gradient_norms_.push_back(std::sqrt(norm));
    lr *= options.decay;
  }
  return Status::OK();
}

}  // namespace dd
