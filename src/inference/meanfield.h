#ifndef DEEPDIVE_INFERENCE_MEANFIELD_H_
#define DEEPDIVE_INFERENCE_MEANFIELD_H_

#include <cstdint>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

struct MeanFieldOptions {
  int max_iterations = 200;
  double tolerance = 1e-6;   ///< max |Δμ| for convergence
  double damping = 0.0;      ///< μ ← (1-d)·new + d·old
  bool clamp_evidence = true;
};

/// Mean-field variational inference: approximate the joint by a product
/// of independent Bernoullis q(v) = Bernoulli(μ_v) and iterate the
/// fixed-point update μ_v ← σ(E_q[W(v=1) − W(v=0)]). This is the
/// variational engine behind the "variational-based materialization"
/// strategy for incremental inference (§4.2, after Wainwright-Jordan
/// style relaxations [49]).
class MeanFieldEngine {
 public:
  MeanFieldEngine(const FactorGraph* graph, const MeanFieldOptions& options);

  /// Iterate to convergence from μ = 0.5 (evidence clamped). Returns μ.
  Result<std::vector<double>> Run();

  /// Warm-start variant: resume from `mu` and only update variables in
  /// `active` (plus anything that moves more than tolerance cascades to
  /// its neighbors). Used by incremental inference.
  Result<std::vector<double>> RunFrom(std::vector<double> mu,
                                      const std::vector<uint32_t>& active);

  int iterations_used() const { return iterations_used_; }
  uint64_t updates_performed() const { return updates_performed_; }

 private:
  /// E_q[h_f | v = value] marginalizing the other literals under q = mu.
  double ExpectedFactor(uint32_t f, const std::vector<double>& mu, uint32_t v,
                        bool value) const;
  double Update(uint32_t v, const std::vector<double>& mu) const;

  const FactorGraph* graph_;
  MeanFieldOptions options_;
  int iterations_used_ = 0;
  uint64_t updates_performed_ = 0;
};

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_MEANFIELD_H_
