#include "inference/numa.h"

#include <atomic>
#include <barrier>
#include <memory>
#include <thread>

#include "inference/gibbs.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace dd {

namespace {

/// Simulated interconnect latency for one remote access.
inline void SpinPenalty(uint64_t iters) {
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < iters; ++i) sink = sink + i;
}

/// Variables touched when resampling v: v plus all variables sharing a
/// factor with v. (Weight reads are attributed to the factor's owner.)
std::vector<std::vector<uint32_t>> BuildScopes(const FactorGraph& graph) {
  const size_t nv = graph.num_variables();
  std::vector<std::vector<uint32_t>> scope(nv);
  for (uint32_t v = 0; v < nv; ++v) {
    size_t nfac = 0;
    const uint32_t* factors = graph.var_factors(v, &nfac);
    auto& s = scope[v];
    s.push_back(v);
    for (size_t i = 0; i < nfac; ++i) {
      size_t nlit = 0;
      const Literal* lits = graph.factor_literals(factors[i], &nlit);
      for (size_t j = 0; j < nlit; ++j) {
        if (lits[j].var != v) s.push_back(lits[j].var);
      }
    }
  }
  return scope;
}

}  // namespace

NumaSampler::NumaSampler(const FactorGraph* graph, const NumaTopology& topology,
                         int burn_in, int num_samples, uint64_t seed,
                         bool use_compiled)
    : graph_(graph),
      topology_(topology),
      burn_in_(burn_in),
      num_samples_(num_samples),
      seed_(seed),
      use_compiled_(use_compiled) {}

int NumaSampler::OwnerNode(uint32_t var) const {
  const size_t nv = graph_->num_variables();
  size_t block = (nv + topology_.num_nodes - 1) / topology_.num_nodes;
  if (block == 0) block = 1;
  int node = static_cast<int>(var / block);
  return node >= topology_.num_nodes ? topology_.num_nodes - 1 : node;
}

Result<NumaRunStats> NumaSampler::RunAware() {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("NumaSampler requires a finalized graph");
  }
  const int nodes = topology_.num_nodes;
  if (nodes < 1) return Status::InvalidArgument("num_nodes must be >= 1");
  if (num_samples_ < 1) return Status::InvalidArgument("num_samples must be >= 1");
  DD_TRACE_SPAN_VAR(run_span, "numa.run_aware");
  const size_t nv = graph_->num_variables();
  // Split the sample budget across nodes, spreading the remainder over
  // the first num_samples_ % nodes nodes so the requested budget is
  // honored exactly; every node burns in separately. Nodes left with a
  // zero share (more nodes than samples) sit the run out.
  std::vector<int> node_samples(nodes, num_samples_ / nodes);
  for (int n = 0; n < num_samples_ % nodes; ++n) node_samples[n] += 1;

  std::vector<std::vector<double>> node_marginals(nodes);
  std::vector<Status> node_status(nodes, Status::OK());
  std::atomic<uint64_t> steps{0};
  std::vector<std::thread> threads;
  for (int n = 0; n < nodes; ++n) {
    if (node_samples[n] == 0) continue;
    threads.emplace_back([&, n] {
      // Local replica chain: all state owned by node n; zero remote traffic.
      GibbsOptions opts;
      opts.burn_in = burn_in_;
      opts.num_samples = node_samples[n];
      opts.seed = seed_ + 0x51ed270bULL * static_cast<uint64_t>(n + 1);
      opts.clamp_evidence = true;
      opts.use_compiled = use_compiled_;
      GibbsSampler chain(graph_, opts);
      auto result = chain.RunMarginals();
      if (result.ok()) {
        node_marginals[n] = std::move(result).value();
      } else {
        node_status[n] = result.status();
      }
      steps.fetch_add(chain.num_steps(), std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& st : node_status) DD_RETURN_IF_ERROR(st);

  NumaRunStats stats;
  stats.marginals.assign(nv, 0.0);
  // Sample-weighted model averaging: a node's estimate counts in
  // proportion to the samples it actually drew.
  for (int n = 0; n < nodes; ++n) {
    if (node_samples[n] == 0) continue;
    for (size_t v = 0; v < nv; ++v) {
      stats.marginals[v] += node_marginals[n][v] * node_samples[n];
    }
  }
  for (double& m : stats.marginals) m /= num_samples_;
  stats.steps = steps.load();
  stats.total_accesses = stats.steps;  // local accesses only, one owner touch per step
  stats.remote_accesses = 0;
  DD_COUNTER_ADD("dd.numa.total_accesses", stats.total_accesses);
  run_span.Attr("nodes", static_cast<double>(nodes));
  run_span.Attr("steps", static_cast<double>(stats.steps));
  return stats;
}

Result<NumaRunStats> NumaSampler::RunUnaware() {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("NumaSampler requires a finalized graph");
  }
  const int nodes = topology_.num_nodes;
  if (nodes < 1) return Status::InvalidArgument("num_nodes must be >= 1");
  if (num_samples_ < 1) return Status::InvalidArgument("num_samples must be >= 1");
  DD_TRACE_SPAN_VAR(run_span, "numa.run_unaware");
  const size_t nv = graph_->num_variables();
  auto scopes = BuildScopes(*graph_);

  // Shared assignment; each node's thread samples the variables it owns,
  // but must read (and count) neighbor state on other nodes.
  Rng init_rng(seed_);
  std::vector<uint8_t> assignment(nv);
  std::vector<std::vector<uint32_t>> parts(nodes);
  for (uint32_t v = 0; v < nv; ++v) {
    if (graph_->is_evidence(v)) {
      assignment[v] = graph_->evidence_value(v) ? 1 : 0;
    } else {
      assignment[v] = init_rng.NextBernoulli(0.5) ? 1 : 0;
      parts[OwnerNode(v)].push_back(v);
    }
  }

  const int total_sweeps = burn_in_ + num_samples_;
  std::vector<std::vector<uint64_t>> counts(nodes, std::vector<uint64_t>(nv, 0));
  std::atomic<uint64_t> steps{0}, total_acc{0}, remote_acc{0};
  std::barrier sweep_barrier(nodes);

  std::vector<std::thread> threads;
  for (int n = 0; n < nodes; ++n) {
    threads.emplace_back([&, n] {
      Rng rng(seed_ + 0x9e3779b9 * (n + 1));
      uint8_t* a = assignment.data();
      uint64_t local_total = 0, local_remote = 0, local_steps = 0;
      for (int sweep = 0; sweep < total_sweeps; ++sweep) {
        for (uint32_t v : parts[n]) {
          for (uint32_t u : scopes[v]) {
            ++local_total;
            if (OwnerNode(u) != n) {
              ++local_remote;
              SpinPenalty(topology_.remote_penalty_iters);
            }
          }
          double delta = use_compiled_ ? graph_->PotentialDeltaCompiled(v, a)
                                       : graph_->PotentialDelta(v, a);
          a[v] = rng.NextBernoulli(Sigmoid(delta)) ? 1 : 0;
        }
        local_steps += parts[n].size();
        if (sweep >= burn_in_) {
          for (uint32_t v : parts[n]) counts[n][v] += a[v];
        }
        sweep_barrier.arrive_and_wait();
      }
      steps.fetch_add(local_steps, std::memory_order_relaxed);
      total_acc.fetch_add(local_total, std::memory_order_relaxed);
      remote_acc.fetch_add(local_remote, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();

  NumaRunStats stats;
  stats.marginals.assign(nv, 0.0);
  for (int n = 0; n < nodes; ++n) {
    for (uint32_t v : parts[n]) {
      stats.marginals[v] = static_cast<double>(counts[n][v]) / num_samples_;
    }
  }
  for (uint32_t v = 0; v < nv; ++v) {
    if (graph_->is_evidence(v)) {
      stats.marginals[v] = graph_->evidence_value(v) ? 1.0 : 0.0;
    }
  }
  stats.steps = steps.load();
  stats.total_accesses = total_acc.load();
  stats.remote_accesses = remote_acc.load();
  DD_COUNTER_ADD("dd.numa.total_accesses", stats.total_accesses);
  DD_COUNTER_ADD("dd.numa.remote_accesses", stats.remote_accesses);
  run_span.Attr("nodes", static_cast<double>(nodes));
  run_span.Attr("remote_accesses", static_cast<double>(stats.remote_accesses));
  return stats;
}

Result<NumaLearnStats> NumaLearner::Learn(const LearnOptions& options, bool numa_aware) {
  DD_RETURN_IF_ERROR(graph_->Finalize());
  const int nodes = topology_.num_nodes;
  if (nodes < 1) return Status::InvalidArgument("num_nodes must be >= 1");
  const size_t nw = graph_->num_weights();
  const size_t nf = graph_->num_factors();

  // Factor f is owned by the node owning its first literal's variable.
  const size_t nv = graph_->num_variables();
  size_t block = (nv + nodes - 1) / nodes;
  if (block == 0) block = 1;
  auto owner_of_var = [&](uint32_t v) {
    int n = static_cast<int>(v / block);
    return n >= nodes ? nodes - 1 : n;
  };
  // Weight w owned by node w % nodes (weights are shared model state).
  auto owner_of_weight = [&](uint32_t w) { return static_cast<int>(w % nodes); };

  NumaLearnStats stats;

  if (numa_aware) {
    // Per-node weight replicas; each node runs CD-style SGD on its own
    // full-graph chains (replicated), then replicas are averaged per epoch.
    // All per-epoch accesses are node-local.
    std::vector<std::vector<double>> replicas(nodes, std::vector<double>(nw));
    for (int n = 0; n < nodes; ++n) {
      for (uint32_t w = 0; w < nw; ++w) replicas[n][w] = graph_->weight_value(w);
    }
    std::vector<double> averaged(nw);
    for (uint32_t w = 0; w < nw; ++w) averaged[w] = graph_->weight_value(w);

    // Chains per node.
    struct NodeChains {
      std::unique_ptr<GibbsSampler> pos, neg;
    };
    std::vector<NodeChains> chains(nodes);
    for (int n = 0; n < nodes; ++n) {
      GibbsOptions pos_opts;
      pos_opts.seed = options.seed + 2 * n;
      pos_opts.clamp_evidence = true;
      chains[n].pos = std::make_unique<GibbsSampler>(graph_, pos_opts);
      DD_RETURN_IF_ERROR(chains[n].pos->Init());
      GibbsOptions neg_opts;
      neg_opts.seed = options.seed + 2 * n + 1;
      neg_opts.clamp_evidence = false;
      chains[n].neg = std::make_unique<GibbsSampler>(graph_, neg_opts);
      DD_RETURN_IF_ERROR(chains[n].neg->Init());
    }

    double lr = options.learning_rate;
    std::atomic<uint64_t> total_acc{0};
    for (int epoch = 0; epoch < options.epochs; ++epoch) {
      // NOTE: the per-epoch weight values live in the replica, so the
      // gradient step must read the replica, not graph_ weights. We
      // temporarily install the replica into the graph per node — but
      // that would race across threads; instead evaluate factors (which
      // depend only on assignments) and apply gradients to replicas.
      std::vector<std::thread> threads;
      for (int n = 0; n < nodes; ++n) {
        threads.emplace_back([&, n] {
          for (int s = 0; s < options.sweeps_per_epoch; ++s) {
            chains[n].pos->Sweep();
            chains[n].neg->Sweep();
          }
          const uint8_t* pos = chains[n].pos->assignment().data();
          const uint8_t* neg = chains[n].neg->assignment().data();
          std::vector<double> grad(nw, 0.0);
          uint64_t acc = 0;
          for (uint32_t f = 0; f < nf; ++f) {
            uint32_t w = graph_->factor_weight(f);
            if (graph_->weight(w).is_fixed) continue;
            double h_pos = graph_->EvalFactor(f, pos);
            double h_neg = graph_->EvalFactor(f, neg);
            ++acc;  // local access to the replica weight
            if (h_pos != h_neg) grad[w] += h_pos - h_neg;
          }
          for (uint32_t w = 0; w < nw; ++w) {
            if (graph_->weight(w).is_fixed) continue;
            replicas[n][w] += lr * (grad[w] - options.l2 * replicas[n][w]);
          }
          total_acc.fetch_add(acc, std::memory_order_relaxed);
        });
      }
      for (auto& th : threads) th.join();

      // Model averaging at the epoch barrier (the only cross-node step;
      // nw remote accesses per node).
      for (uint32_t w = 0; w < nw; ++w) {
        if (graph_->weight(w).is_fixed) continue;
        double sum = 0.0;
        for (int n = 0; n < nodes; ++n) sum += replicas[n][w];
        averaged[w] = sum / nodes;
        for (int n = 0; n < nodes; ++n) replicas[n][w] = averaged[w];
        graph_->set_weight_value(w, averaged[w]);
      }
      stats.remote_accesses += static_cast<uint64_t>(nw) * (nodes - 1);
      lr *= options.decay;
    }
    stats.total_accesses = total_acc.load() + stats.remote_accesses;
    return stats;
  }

  // Non-NUMA-aware: one shared weight vector; every node's gradient pass
  // reads and writes weights wherever they live.
  struct NodeChains {
    std::unique_ptr<GibbsSampler> pos, neg;
  };
  std::vector<NodeChains> chains(nodes);
  for (int n = 0; n < nodes; ++n) {
    GibbsOptions pos_opts;
    pos_opts.seed = options.seed + 2 * n;
    pos_opts.clamp_evidence = true;
    chains[n].pos = std::make_unique<GibbsSampler>(graph_, pos_opts);
    DD_RETURN_IF_ERROR(chains[n].pos->Init());
    GibbsOptions neg_opts;
    neg_opts.seed = options.seed + 2 * n + 1;
    neg_opts.clamp_evidence = false;
    chains[n].neg = std::make_unique<GibbsSampler>(graph_, neg_opts);
    DD_RETURN_IF_ERROR(chains[n].neg->Init());
  }

  double lr = options.learning_rate;
  std::atomic<uint64_t> total_acc{0}, remote_acc{0};
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::thread> threads;
    for (int n = 0; n < nodes; ++n) {
      threads.emplace_back([&, n] {
        for (int s = 0; s < options.sweeps_per_epoch; ++s) {
          chains[n].pos->Sweep();
          chains[n].neg->Sweep();
        }
        const uint8_t* pos = chains[n].pos->assignment().data();
        const uint8_t* neg = chains[n].neg->assignment().data();
        uint64_t acc = 0, remote = 0;
        double local_lr = lr / nodes;  // scale so the combined step matches
        for (uint32_t f = 0; f < nf; ++f) {
          uint32_t w = graph_->factor_weight(f);
          if (graph_->weight(w).is_fixed) continue;
          double h_pos = graph_->EvalFactor(f, pos);
          double h_neg = graph_->EvalFactor(f, neg);
          ++acc;
          bool weight_remote = owner_of_weight(w) != n;
          size_t nlit = 0;
          const Literal* lits = graph_->factor_literals(f, &nlit);
          if (nlit > 0 && owner_of_var(lits[0].var) != n) ++remote;  // factor fetch
          if (weight_remote) {
            ++remote;
            SpinPenalty(topology_.remote_penalty_iters);
          }
          if (h_pos != h_neg) {
            // Hogwild-style racy update on the shared weight.
            graph_->set_weight_value(
                w, graph_->weight_value(w) + local_lr * (h_pos - h_neg));
            if (weight_remote) {
              ++remote;
              SpinPenalty(topology_.remote_penalty_iters);
            }
          }
        }
        total_acc.fetch_add(acc, std::memory_order_relaxed);
        remote_acc.fetch_add(remote, std::memory_order_relaxed);
      });
    }
    for (auto& th : threads) th.join();
    // L2 + decay applied once per epoch on the shared model.
    for (uint32_t w = 0; w < nw; ++w) {
      if (graph_->weight(w).is_fixed) continue;
      const double value = graph_->weight_value(w);
      graph_->set_weight_value(w, value - lr * options.l2 * value);
    }
    lr *= options.decay;
  }
  stats.total_accesses = total_acc.load();
  stats.remote_accesses = remote_acc.load();
  return stats;
}

}  // namespace dd
