#ifndef DEEPDIVE_INFERENCE_GIBBS_H_
#define DEEPDIVE_INFERENCE_GIBBS_H_

#include <cstdint>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"
#include "util/rng.h"

namespace dd {

/// sigmoid(x) = 1 / (1 + e^-x), the Gibbs conditional for Boolean
/// variables under log-linear factors.
double Sigmoid(double x);

struct GibbsOptions {
  int burn_in = 100;          ///< sweeps discarded before counting
  int num_samples = 1000;     ///< counted sweeps
  uint64_t seed = 42;
  bool clamp_evidence = true; ///< keep evidence variables at their values
  /// Use the compiled per-variable kernel streams (default). The
  /// interpreted CSR path is kept as a reference oracle; both produce
  /// bit-for-bit identical chains.
  bool use_compiled = true;
  /// Optional explicit free set (sorted ascending variable ids, owned by
  /// the caller, must outlive the sampler). When set it overrides
  /// clamp_evidence entirely: exactly these variables are resampled;
  /// every other variable is pinned — at its evidence value if it is an
  /// evidence variable, otherwise at 0 until the caller pokes the
  /// assignment. The distributed shards use this to sweep only the
  /// variables they own while ghost replicas stay pinned at the values
  /// exchanged with their owners. With free_set covering every variable
  /// the chain is bit-identical to clamp_evidence = false.
  const std::vector<uint32_t>* free_set = nullptr;
};

/// Sequential Gibbs sampler over a finalized FactorGraph. One "sweep"
/// resamples every free variable once (scan order). Marginals are
/// empirical frequencies over the counted sweeps — exactly the
/// probabilities DeepDive writes back into the database (§3.4).
class GibbsSampler {
 public:
  /// The graph must outlive the sampler and be finalized (Init checks).
  GibbsSampler(const FactorGraph* graph, const GibbsOptions& options);

  /// Reset the chain: evidence clamped (if configured), free variables
  /// initialized uniformly at random.
  Status Init();

  /// Resample every free variable once.
  void Sweep();

  /// Record the current assignment into the marginal accumulators.
  void Accumulate();

  /// burn_in sweeps, then num_samples sweeps with accumulation; returns
  /// the estimated P(v = 1) for every variable.
  Result<std::vector<double>> RunMarginals();

  /// Current chain state (one byte per variable).
  const std::vector<uint8_t>& assignment() const { return assignment_; }
  std::vector<uint8_t>* mutable_assignment() { return &assignment_; }

  /// Chain persistence (checkpoint/recovery). The RNG state plus the
  /// assignment and accumulator state fully determine the chain's
  /// future, so restoring them resumes the chain bit-identically.
  RngState rng_state() const { return rng_.state(); }
  void set_rng_state(const RngState& state) { rng_.set_state(state); }
  const std::vector<uint64_t>& true_counts() const { return true_counts_; }

  /// Restore a checkpointed chain: replaces Init(). `true_counts` may be
  /// empty (accumulation not yet started); otherwise it must match the
  /// variable count, as must `assignment`.
  Status RestoreState(const std::vector<uint8_t>& assignment,
                      const std::vector<uint64_t>& true_counts,
                      uint64_t num_accumulated, const RngState& rng_state);

  /// Marginals accumulated so far (error if none).
  Result<std::vector<double>> Marginals() const;

  uint64_t num_accumulated() const { return num_accumulated_; }

  /// Total variable resampling steps performed (for throughput metrics).
  uint64_t num_steps() const { return num_steps_; }

 private:
  const FactorGraph* graph_;
  GibbsOptions options_;
  Rng rng_;
  std::vector<uint8_t> assignment_;
  std::vector<uint32_t> free_vars_;
  std::vector<uint64_t> true_counts_;
  uint64_t num_accumulated_ = 0;
  uint64_t num_steps_ = 0;
  bool initialized_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_GIBBS_H_
