#include "inference/gibbs.h"

#include <cmath>

#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/trace.h"

namespace dd {

double Sigmoid(double x) {
  if (x >= 0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

GibbsSampler::GibbsSampler(const FactorGraph* graph, const GibbsOptions& options)
    : graph_(graph), options_(options), rng_(options.seed) {}

Status GibbsSampler::Init() {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("GibbsSampler requires a finalized graph");
  }
  const size_t nv = graph_->num_variables();
  assignment_.resize(nv);
  free_vars_.clear();
  if (options_.free_set != nullptr) {
    // Explicit free set: draw initial values for exactly its members, in
    // ascending variable order (the same RNG consumption pattern the
    // clamp-based path uses for its free variables), pin everything else.
    size_t next = 0;
    for (uint32_t v = 0; v < nv; ++v) {
      if (next < options_.free_set->size() && (*options_.free_set)[next] == v) {
        assignment_[v] = rng_.NextBernoulli(0.5) ? 1 : 0;
        free_vars_.push_back(v);
        ++next;
      } else {
        assignment_[v] =
            graph_->is_evidence(v) && graph_->evidence_value(v) ? 1 : 0;
      }
    }
  } else {
    for (uint32_t v = 0; v < nv; ++v) {
      if (options_.clamp_evidence && graph_->is_evidence(v)) {
        assignment_[v] = graph_->evidence_value(v) ? 1 : 0;
      } else {
        assignment_[v] = rng_.NextBernoulli(0.5) ? 1 : 0;
        free_vars_.push_back(v);
      }
    }
  }
  true_counts_.assign(nv, 0);
  num_accumulated_ = 0;
  num_steps_ = 0;
  initialized_ = true;
  return Status::OK();
}

Status GibbsSampler::RestoreState(const std::vector<uint8_t>& assignment,
                                  const std::vector<uint64_t>& true_counts,
                                  uint64_t num_accumulated,
                                  const RngState& rng_state) {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("GibbsSampler requires a finalized graph");
  }
  const size_t nv = graph_->num_variables();
  if (assignment.size() != nv) {
    return Status::InvalidArgument(
        StrFormat("checkpointed assignment has %zu variables, graph has %zu",
                  assignment.size(), nv));
  }
  if (!true_counts.empty() && true_counts.size() != nv) {
    return Status::InvalidArgument(
        StrFormat("checkpointed tallies have %zu variables, graph has %zu",
                  true_counts.size(), nv));
  }
  assignment_ = assignment;
  free_vars_.clear();
  if (options_.free_set != nullptr) {
    // Pinned values (ghost replicas) travel in the checkpointed
    // assignment verbatim; the caller re-pins them from the next
    // exchange before sweeping.
    free_vars_ = *options_.free_set;
  } else {
    for (uint32_t v = 0; v < nv; ++v) {
      if (options_.clamp_evidence && graph_->is_evidence(v)) {
        // Defend against a snapshot taken under different clamp settings.
        assignment_[v] = graph_->evidence_value(v) ? 1 : 0;
      } else {
        free_vars_.push_back(v);
      }
    }
  }
  true_counts_ = true_counts.empty() ? std::vector<uint64_t>(nv, 0) : true_counts;
  num_accumulated_ = num_accumulated;
  num_steps_ = 0;
  rng_.set_state(rng_state);
  initialized_ = true;
  return Status::OK();
}

void GibbsSampler::Sweep() {
  uint8_t* a = assignment_.data();
  if (options_.use_compiled) {
    for (uint32_t v : free_vars_) {
      double delta = graph_->PotentialDeltaCompiled(v, a);
      a[v] = rng_.NextBernoulli(Sigmoid(delta)) ? 1 : 0;
    }
  } else {
    for (uint32_t v : free_vars_) {
      double delta = graph_->PotentialDelta(v, a);
      a[v] = rng_.NextBernoulli(Sigmoid(delta)) ? 1 : 0;
    }
  }
  num_steps_ += free_vars_.size();
}

void GibbsSampler::Accumulate() {
  const size_t nv = assignment_.size();
  for (size_t v = 0; v < nv; ++v) {
    true_counts_[v] += assignment_[v];
  }
  ++num_accumulated_;
}

Result<std::vector<double>> GibbsSampler::RunMarginals() {
  if (!initialized_) DD_RETURN_IF_ERROR(Init());
  DD_TRACE_SPAN_VAR(span, "gibbs.run_marginals");
  Stopwatch watch;
  const uint64_t steps_before = num_steps_;
  for (int i = 0; i < options_.burn_in; ++i) Sweep();
  for (int i = 0; i < options_.num_samples; ++i) {
    Sweep();
    Accumulate();
  }
  // Throughput accounting happens once per run, not per step — the sweep
  // loop itself stays untouched (see BENCH_kernels.json's ns/delta).
  const uint64_t steps = num_steps_ - steps_before;
  const uint64_t sweeps =
      static_cast<uint64_t>(options_.burn_in) + options_.num_samples;
  DD_COUNTER_ADD("dd.sampler.sweeps", sweeps);
  DD_COUNTER_ADD("dd.sampler.deltas", steps);
  const double seconds = watch.Seconds();
  if (seconds > 0) {
    DD_GAUGE_SET("dd.sampler.deltas_per_sec",
                 static_cast<double>(steps) / seconds);
    DD_GAUGE_SET("dd.sampler.sweeps_per_sec",
                 static_cast<double>(sweeps) / seconds);
  }
  span.Attr("sweeps", static_cast<double>(sweeps));
  span.Attr("deltas", static_cast<double>(steps));
  return Marginals();
}

Result<std::vector<double>> GibbsSampler::Marginals() const {
  if (num_accumulated_ == 0) {
    return Status::Internal("no samples accumulated");
  }
  std::vector<double> out(true_counts_.size());
  for (size_t v = 0; v < out.size(); ++v) {
    out[v] = static_cast<double>(true_counts_[v]) / num_accumulated_;
  }
  return out;
}

}  // namespace dd
