#ifndef DEEPDIVE_INFERENCE_LEARNER_H_
#define DEEPDIVE_INFERENCE_LEARNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "factor/graph.h"
#include "util/status.h"

namespace dd {

struct LearnOptions {
  int epochs = 200;
  double learning_rate = 0.1;
  double decay = 0.99;        ///< learning rate multiplier per epoch
  double l2 = 0.01;           ///< L2 regularization strength
  int sweeps_per_epoch = 1;   ///< Gibbs sweeps of each chain per epoch
  uint64_t seed = 1234;
  /// Durability: when non-empty, Learn() writes `learn.snap` into this
  /// directory every `checkpoint_interval` epochs (weights, both chain
  /// states, RNG states, epoch counter, learning rate) plus once at the
  /// end, and automatically resumes from an existing checkpoint — the
  /// resumed run is bit-identical to an uninterrupted one.
  std::string checkpoint_dir;
  int checkpoint_interval = 10;
};

/// Contrastive-divergence-style weight learning, as in the DimmWitted
/// engine: maximize the likelihood of the evidence variables by SGD.
/// Two Gibbs chains run side by side — the "positive" chain clamps
/// evidence variables, the "negative" chain leaves everything free.
/// For each weight the stochastic gradient is
///     Σ_{f with weight w} [ h_f(positive) − h_f(negative) ],
/// i.e. E_data[Σh] − E_model[Σh] estimated from single samples.
/// Fixed weights (Weight::is_fixed) are never updated.
class Learner {
 public:
  explicit Learner(FactorGraph* graph) : graph_(graph) {}

  /// Run SGD; on success the graph's weights hold the learned values.
  /// Detects divergence (non-finite gradient or weight) and reports it
  /// as InvalidArgument naming the offending weight instead of letting
  /// the sampler run on garbage.
  Status Learn(const LearnOptions& options);

  /// Gradient norm history for diagnostics — one entry per epoch this
  /// Learn() call executed (a resumed run only records the epochs it
  /// actually ran).
  const std::vector<double>& gradient_norms() const { return gradient_norms_; }

  /// First epoch the last Learn() actually executed (> 0 after a resume).
  int resumed_from_epoch() const { return resumed_from_epoch_; }

 private:
  FactorGraph* graph_;
  std::vector<double> gradient_norms_;
  int resumed_from_epoch_ = 0;
};

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_LEARNER_H_
