#include "inference/convergence.h"

#include <cmath>

#include "inference/gibbs.h"

namespace dd {

Result<ConvergenceReport> CheckConvergence(const FactorGraph& graph,
                                           const ConvergenceOptions& options) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("CheckConvergence requires a finalized graph");
  }
  if (options.num_chains < 2) {
    return Status::InvalidArgument("need at least 2 chains for R-hat");
  }
  if (options.num_segments < 2 || options.num_samples < options.num_segments) {
    return Status::InvalidArgument("need >= 2 segments and samples >= segments");
  }
  const size_t nv = graph.num_variables();
  const int M = options.num_chains;
  const int segments = options.num_segments;
  const int per_segment = options.num_samples / segments;

  // seq_means[m][s][v]: mean of variable v in segment s of chain m.
  // The Gelman-Rubin statistic is computed over the M*segments sequences.
  std::vector<std::vector<std::vector<double>>> seq_means(
      M, std::vector<std::vector<double>>(segments, std::vector<double>(nv, 0)));

  for (int m = 0; m < M; ++m) {
    GibbsOptions gibbs;
    gibbs.burn_in = 0;  // manual
    gibbs.num_samples = 0;
    gibbs.seed = options.seed + 0x9e3779b9ULL * m;  // overdispersed random starts
    gibbs.clamp_evidence = options.clamp_evidence;
    GibbsSampler chain(&graph, gibbs);
    DD_RETURN_IF_ERROR(chain.Init());
    for (int i = 0; i < options.burn_in; ++i) chain.Sweep();
    for (int s = 0; s < segments; ++s) {
      std::vector<uint32_t> counts(nv, 0);
      for (int i = 0; i < per_segment; ++i) {
        chain.Sweep();
        const auto& a = chain.assignment();
        for (size_t v = 0; v < nv; ++v) counts[v] += a[v];
      }
      for (size_t v = 0; v < nv; ++v) {
        seq_means[m][s][v] = static_cast<double>(counts[v]) / per_segment;
      }
    }
  }

  ConvergenceReport report;
  report.r_hat.assign(nv, std::nan(""));
  const int num_seq = M * segments;
  size_t free_vars = 0, converged = 0;
  for (size_t v = 0; v < nv; ++v) {
    if (options.clamp_evidence && graph.is_evidence(static_cast<uint32_t>(v))) {
      continue;
    }
    ++free_vars;
    // Between- and within-sequence variance over the segment means.
    double grand = 0;
    for (int m = 0; m < M; ++m) {
      for (int s = 0; s < segments; ++s) grand += seq_means[m][s][v];
    }
    grand /= num_seq;
    double between = 0;
    for (int m = 0; m < M; ++m) {
      for (int s = 0; s < segments; ++s) {
        double d = seq_means[m][s][v] - grand;
        between += d * d;
      }
    }
    between /= (num_seq - 1);
    // Within: variance of the per-sweep indicator inside each segment is
    // p(1-p); average it.
    double within = 0;
    for (int m = 0; m < M; ++m) {
      for (int s = 0; s < segments; ++s) {
        double p = seq_means[m][s][v];
        within += p * (1 - p);
      }
    }
    within /= num_seq;
    double r_hat;
    if (within < 1e-12) {
      // Chain never moves: converged iff all sequences agree.
      r_hat = between < 1e-12 ? 1.0 : 10.0;
    } else {
      // Split-sequence PSRF: var+ = (n-1)/n * W + B; R = sqrt(var+/W).
      double n = per_segment;
      double var_plus = (n - 1) / n * within + between;
      r_hat = std::sqrt(var_plus / within);
    }
    report.r_hat[v] = r_hat;
    if (r_hat < options.r_hat_threshold) ++converged;
    if (r_hat > report.max_r_hat) report.max_r_hat = r_hat;
  }
  report.converged_fraction =
      free_vars == 0 ? 1.0 : static_cast<double>(converged) / free_vars;
  return report;
}

double EffectiveSampleSize(const std::vector<uint8_t>& samples) {
  const size_t n = samples.size();
  if (n < 2) return static_cast<double>(n);
  double mean = 0;
  for (uint8_t s : samples) mean += s;
  mean /= n;
  double var = 0;
  for (uint8_t s : samples) var += (s - mean) * (s - mean);
  var /= n;
  if (var < 1e-12) return static_cast<double>(n);  // constant sequence

  // Initial positive sequence estimator (Geyer): sum consecutive
  // autocorrelation pairs while their sum stays positive.
  double tau = 1.0;
  double prev_pair = 1e300;
  for (size_t lag = 1; lag + 1 < n; lag += 2) {
    auto rho = [&](size_t k) {
      double acc = 0;
      for (size_t i = 0; i + k < n; ++i) {
        acc += (samples[i] - mean) * (samples[i + k] - mean);
      }
      return acc / ((n - k) * var);
    };
    double pair = rho(lag) + rho(lag + 1);
    if (pair <= 0) break;
    if (pair > prev_pair) pair = prev_pair;  // enforce monotone decrease
    prev_pair = pair;
    tau += 2 * pair;
  }
  double ess = static_cast<double>(n) / tau;
  if (ess > static_cast<double>(n)) ess = static_cast<double>(n);
  if (ess < 1.0) ess = 1.0;
  return ess;
}

}  // namespace dd
