#ifndef DEEPDIVE_INFERENCE_INCREMENTAL_H_
#define DEEPDIVE_INFERENCE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

struct GraphSnapshot;

/// The two approximate-inference materialization strategies of §4.2.
enum class MaterializationStrategy {
  kSampling,    ///< store chain state + marginal tallies (MCDB-style)
  kVariational, ///< store mean-field marginals (graphical-model relaxation)
};

const char* StrategyName(MaterializationStrategy strategy);

struct IncrementalOptions {
  // Sampling strategy knobs.
  int full_burn_in = 300;     ///< burn-in for the initial materialization
  int update_burn_in = 30;    ///< warm-start burn-in after a delta
  int num_samples = 1000;
  // Variational strategy knobs.
  int mf_max_iterations = 200;
  double mf_tolerance = 1e-4;
  double mf_damping = 0.2;
  uint64_t seed = 7;
  /// When false, evidence variables are sampled like query variables —
  /// the mode DeepDive uses after training so that labeled candidates
  /// also receive calibrated probabilities (Fig. 5's train histogram).
  bool clamp_evidence = true;
  /// Durability: when non-empty, Materialize() writes its state
  /// (sampling: chain, tallies, RNG, sweep counter; variational: final
  /// marginals) to this file every `checkpoint_interval` sweeps plus at
  /// completion, and resumes from an existing checkpoint — a run killed
  /// mid-sampling continues to bit-identical marginals.
  std::string checkpoint_path;
  int checkpoint_interval = 100;
};

/// Incremental maintenance of inference results. Materialize() runs full
/// inference on the current graph and stores reusable state; Update()
/// moves to a *new version* of the graph (produced by incremental
/// grounding) given the set of variables whose factor neighborhood
/// changed, reusing the materialized state so the work is far below a
/// from-scratch run. `work_units` counts variable-update operations —
/// the hardware-independent cost measure the strategy optimizer reasons
/// about.
class IncrementalInference {
 public:
  IncrementalInference(const FactorGraph* graph, MaterializationStrategy strategy,
                       const IncrementalOptions& options);
  ~IncrementalInference();

  /// Weight-oblivious warm-up that a scheduler may overlap with weight
  /// learning on the same graph: reserves result buffers and prefetches
  /// the materialization checkpoint (if any) from disk. Reads no weight
  /// values and writes nothing, so running it while the learner mutates
  /// weights is race-free; Materialize() afterwards produces the same
  /// bytes as without the warm-up.
  Status Prewarm();

  /// Full inference + state materialization on the current graph.
  Status Materialize();

  /// Switch to `new_graph` (a superset/modification of the old one whose
  /// unchanged variable ids keep their meaning); `changed_vars` lists
  /// ids whose adjacent factors or evidence changed, including brand-new
  /// ids. Returns fresh marginals for every variable of the new graph.
  Result<std::vector<double>> Update(const FactorGraph* new_graph,
                                     const std::vector<uint32_t>& changed_vars);

  /// Marginals from the last Materialize()/Update().
  const std::vector<double>& marginals() const { return marginals_; }

  /// Work spent by the last operation (variable updates performed).
  uint64_t last_work_units() const { return last_work_units_; }

  MaterializationStrategy strategy() const { return strategy_; }

 private:
  Status MaterializeSampling();
  Status MaterializeVariational();
  /// Attempt to restore from options_.checkpoint_path; outputs the number
  /// of sweeps already performed (0 when starting fresh).
  Status TryRestoreSampling(class GibbsSampler* sampler, int* sweeps_done);
  Status WriteSamplingCheckpoint(const class GibbsSampler& sampler,
                                 int sweeps_done) const;

  const FactorGraph* graph_;
  MaterializationStrategy strategy_;
  IncrementalOptions options_;
  std::vector<double> marginals_;
  std::vector<uint8_t> chain_state_;  // sampling strategy
  /// Checkpoint prefetched by Prewarm(), consumed by the next restore.
  std::unique_ptr<GraphSnapshot> prewarmed_;
  uint64_t last_work_units_ = 0;
  bool materialized_ = false;
};

/// The paper's "simple rule-based optimizer": pick a materialization
/// strategy from the factor graph's size, its density (edges per
/// variable), and the anticipated number of future update batches.
/// Dense graphs make mean-field both slow (big cascades) and inaccurate,
/// so sampling wins; for many small updates on sparse graphs the
/// variational strategy's localized work wins by a wide margin.
MaterializationStrategy ChooseStrategy(size_t num_variables, double avg_degree,
                                       int anticipated_changes);

}  // namespace dd

#endif  // DEEPDIVE_INFERENCE_INCREMENTAL_H_
