#include "inference/hogwild.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <memory>
#include <mutex>
#include <thread>

#include "inference/gibbs.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/trace.h"

namespace dd {

namespace {

/// Partition the free variables round-robin across threads and initialize
/// the shared assignment. Returns free variable lists per thread.
std::vector<std::vector<uint32_t>> PartitionAndInit(const FactorGraph& graph,
                                                    const ParallelGibbsOptions& options,
                                                    std::vector<uint8_t>* assignment,
                                                    Rng* rng) {
  const size_t nv = graph.num_variables();
  assignment->resize(nv);
  std::vector<std::vector<uint32_t>> parts(static_cast<size_t>(options.num_threads));
  size_t next = 0;
  for (uint32_t v = 0; v < nv; ++v) {
    if (options.clamp_evidence && graph.is_evidence(v)) {
      (*assignment)[v] = graph.evidence_value(v) ? 1 : 0;
    } else {
      (*assignment)[v] = rng->NextBernoulli(0.5) ? 1 : 0;
      parts[next % parts.size()].push_back(v);
      ++next;
    }
  }
  return parts;
}

}  // namespace

HogwildSampler::HogwildSampler(const FactorGraph* graph,
                               const ParallelGibbsOptions& options)
    : graph_(graph), options_(options) {}

Result<std::vector<double>> HogwildSampler::RunMarginals() {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("HogwildSampler requires a finalized graph");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options_.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  DD_TRACE_SPAN_VAR(run_span, "hogwild.run_marginals");
  Stopwatch run_watch;
  Rng init_rng(options_.seed);
  std::vector<uint8_t> assignment;
  auto parts = PartitionAndInit(*graph_, options_, &assignment, &init_rng);

  const size_t nv = graph_->num_variables();
  const int total_sweeps = options_.burn_in + options_.num_samples;
  std::vector<std::vector<uint64_t>> counts(
      parts.size(), std::vector<uint64_t>(nv, 0));  // per-thread accumulators
  std::atomic<uint64_t> steps{0};
  // Sweep-level epoch barrier: within a sweep threads race freely
  // (Hogwild's benign races), but sweeps stay aligned so no thread runs
  // far ahead against stale neighbor state — essential on hosts where
  // threads would otherwise serialize completely.
  std::barrier sweep_barrier(static_cast<std::ptrdiff_t>(parts.size()));

  std::vector<std::thread> threads;
  threads.reserve(parts.size());
  for (size_t t = 0; t < parts.size(); ++t) {
    threads.emplace_back([&, t] {
      Rng rng(options_.seed + 0x9e3779b9 * (t + 1));
      uint8_t* a = assignment.data();
      const bool compiled = options_.use_compiled;
      uint64_t local_steps = 0;
      for (int sweep = 0; sweep < total_sweeps; ++sweep) {
        for (uint32_t v : parts[t]) {
          double delta = compiled ? graph_->PotentialDeltaCompiled(v, a)
                                  : graph_->PotentialDelta(v, a);
          a[v] = rng.NextBernoulli(Sigmoid(delta)) ? 1 : 0;
        }
        local_steps += parts[t].size();
        if (sweep >= options_.burn_in) {
          // Each thread accumulates its own variables only (no races).
          for (uint32_t v : parts[t]) counts[t][v] += a[v];
        }
        sweep_barrier.arrive_and_wait();
      }
      steps.fetch_add(local_steps, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  num_steps_ = steps.load();
  DD_COUNTER_ADD("dd.sampler.sweeps", static_cast<uint64_t>(total_sweeps));
  DD_COUNTER_ADD("dd.sampler.deltas", num_steps_);
  const double seconds = run_watch.Seconds();
  if (seconds > 0) {
    DD_GAUGE_SET("dd.sampler.deltas_per_sec",
                 static_cast<double>(num_steps_) / seconds);
  }
  run_span.Attr("threads", static_cast<double>(parts.size()));
  run_span.Attr("deltas", static_cast<double>(num_steps_));

  std::vector<double> marginals(nv, 0.0);
  for (size_t t = 0; t < parts.size(); ++t) {
    for (uint32_t v : parts[t]) {
      marginals[v] = static_cast<double>(counts[t][v]) / options_.num_samples;
    }
  }
  // Evidence variables (clamped): deterministic marginals.
  for (uint32_t v = 0; v < nv; ++v) {
    if (options_.clamp_evidence && graph_->is_evidence(v)) {
      marginals[v] = graph_->evidence_value(v) ? 1.0 : 0.0;
    }
  }
  return marginals;
}

LockingSampler::LockingSampler(const FactorGraph* graph,
                               const ParallelGibbsOptions& options)
    : graph_(graph), options_(options) {}

Result<std::vector<double>> LockingSampler::RunMarginals() {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("LockingSampler requires a finalized graph");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options_.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  DD_TRACE_SPAN_VAR(run_span, "locking.run_marginals");
  Stopwatch run_watch;
  Rng init_rng(options_.seed);
  const size_t nv = graph_->num_variables();
  std::vector<uint8_t> assignment(nv);
  std::vector<uint32_t> free_vars;
  for (uint32_t v = 0; v < nv; ++v) {
    if (options_.clamp_evidence && graph_->is_evidence(v)) {
      assignment[v] = graph_->evidence_value(v) ? 1 : 0;
    } else {
      assignment[v] = init_rng.NextBernoulli(0.5) ? 1 : 0;
      free_vars.push_back(v);
    }
  }

  // Per-variable locks (edge-consistency scope: variable + factor neighbors).
  std::unique_ptr<std::mutex[]> locks(new std::mutex[nv]);

  // Precompute each variable's sorted lock scope.
  std::vector<std::vector<uint32_t>> scope(nv);
  for (uint32_t v = 0; v < nv; ++v) {
    size_t nfac = 0;
    const uint32_t* factors = graph_->var_factors(v, &nfac);
    std::vector<uint32_t>& s = scope[v];
    s.push_back(v);
    for (size_t i = 0; i < nfac; ++i) {
      size_t nlit = 0;
      const Literal* lits = graph_->factor_literals(factors[i], &nlit);
      for (size_t j = 0; j < nlit; ++j) s.push_back(lits[j].var);
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  const size_t num_threads = static_cast<size_t>(options_.num_threads);
  const int total_sweeps = options_.burn_in + options_.num_samples;
  std::vector<std::vector<uint64_t>> counts(num_threads,
                                            std::vector<uint64_t>(nv, 0));
  std::atomic<uint64_t> steps{0};
  std::barrier sweep_barrier(static_cast<std::ptrdiff_t>(num_threads));
  // GraphLab-style shared scheduler: every vertex update is dispensed
  // through one global queue (here a mutex-protected cursor over the
  // free-variable list). The per-update scheduler round-trip plus the
  // neighborhood locking is the engine cost DimmWitted avoids.
  std::mutex scheduler_mu;
  size_t scheduler_cursor = 0;

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(options_.seed + 0x9e3779b9 * (t + 1));
      uint8_t* a = assignment.data();
      uint64_t local_steps = 0;
      for (int sweep = 0; sweep < total_sweeps; ++sweep) {
        while (true) {
          uint32_t v;
          {
            std::lock_guard<std::mutex> sched_lock(scheduler_mu);
            if (scheduler_cursor >= free_vars.size()) break;
            v = free_vars[scheduler_cursor++];
          }
          // Lock the neighborhood in id order (deadlock-free).
          for (uint32_t u : scope[v]) locks[u].lock();
          double delta = options_.use_compiled ? graph_->PotentialDeltaCompiled(v, a)
                                               : graph_->PotentialDelta(v, a);
          a[v] = rng.NextBernoulli(Sigmoid(delta)) ? 1 : 0;
          if (sweep >= options_.burn_in) counts[t][v] += a[v];
          for (auto it = scope[v].rbegin(); it != scope[v].rend(); ++it) {
            locks[*it].unlock();
          }
          ++local_steps;
        }
        sweep_barrier.arrive_and_wait();
        if (t == 0) scheduler_cursor = 0;  // rearm the scheduler
        sweep_barrier.arrive_and_wait();
      }
      steps.fetch_add(local_steps, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  num_steps_ = steps.load();
  DD_COUNTER_ADD("dd.sampler.sweeps", static_cast<uint64_t>(total_sweeps));
  DD_COUNTER_ADD("dd.sampler.deltas", num_steps_);
  const double seconds = run_watch.Seconds();
  if (seconds > 0) {
    DD_GAUGE_SET("dd.sampler.deltas_per_sec",
                 static_cast<double>(num_steps_) / seconds);
  }
  run_span.Attr("threads", static_cast<double>(num_threads));
  run_span.Attr("deltas", static_cast<double>(num_steps_));

  std::vector<double> marginals(nv, 0.0);
  for (uint32_t v : free_vars) {
    uint64_t total = 0;
    for (size_t t = 0; t < num_threads; ++t) total += counts[t][v];
    marginals[v] = static_cast<double>(total) / options_.num_samples;
  }
  for (uint32_t v = 0; v < nv; ++v) {
    if (options_.clamp_evidence && graph_->is_evidence(v)) {
      marginals[v] = graph_->evidence_value(v) ? 1.0 : 0.0;
    }
  }
  return marginals;
}

}  // namespace dd
