#include "inference/meanfield.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "inference/gibbs.h"
#include "util/string_util.h"

namespace dd {

namespace {
constexpr size_t kMaxEnumeratedArity = 20;
}  // namespace

MeanFieldEngine::MeanFieldEngine(const FactorGraph* graph,
                                 const MeanFieldOptions& options)
    : graph_(graph), options_(options) {}

double MeanFieldEngine::ExpectedFactor(uint32_t f, const std::vector<double>& mu,
                                       uint32_t v, bool value) const {
  size_t nlit = 0;
  const Literal* lits = graph_->factor_literals(f, &nlit);
  // Enumerate assignments of the other variables in the factor, weighted
  // by their q probabilities. Factor arities in grounded DeepDive graphs
  // are tiny (1-3), so this is cheap.
  std::vector<uint32_t> others;
  for (size_t i = 0; i < nlit; ++i) {
    if (lits[i].var != v) others.push_back(lits[i].var);
  }
  // Dedup (a variable may appear in several literals).
  std::sort(others.begin(), others.end());
  others.erase(std::unique(others.begin(), others.end()), others.end());
  if (others.size() > kMaxEnumeratedArity) return 0.0;  // refuse silently; arity capped upstream

  std::vector<uint8_t> assignment(graph_->num_variables(), 0);  // sparse use
  double expectation = 0.0;
  const uint64_t num_configs = 1ULL << others.size();
  for (uint64_t config = 0; config < num_configs; ++config) {
    double prob = 1.0;
    for (size_t i = 0; i < others.size(); ++i) {
      bool bit = (config >> i) & 1;
      assignment[others[i]] = bit;
      prob *= bit ? mu[others[i]] : (1.0 - mu[others[i]]);
    }
    if (prob == 0.0) continue;
    expectation += prob * graph_->EvalFactor(f, assignment.data(), v, value ? 1 : 0);
  }
  return expectation;
}

double MeanFieldEngine::Update(uint32_t v, const std::vector<double>& mu) const {
  size_t nfac = 0;
  const uint32_t* factors = graph_->var_factors(v, &nfac);
  double delta = 0.0;
  for (size_t i = 0; i < nfac; ++i) {
    uint32_t f = factors[i];
    double w = graph_->weight(graph_->factor_weight(f)).value;
    if (w == 0.0) continue;
    delta += w * (ExpectedFactor(f, mu, v, true) - ExpectedFactor(f, mu, v, false));
  }
  return Sigmoid(delta);
}

Result<std::vector<double>> MeanFieldEngine::Run() {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("MeanFieldEngine requires a finalized graph");
  }
  const size_t nv = graph_->num_variables();
  std::vector<double> mu(nv, 0.5);
  std::vector<uint32_t> active;
  for (uint32_t v = 0; v < nv; ++v) {
    if (options_.clamp_evidence && graph_->is_evidence(v)) {
      mu[v] = graph_->evidence_value(v) ? 1.0 : 0.0;
    } else {
      active.push_back(v);
    }
  }
  return RunFrom(std::move(mu), active);
}

Result<std::vector<double>> MeanFieldEngine::RunFrom(
    std::vector<double> mu, const std::vector<uint32_t>& active) {
  if (!graph_->finalized()) {
    return Status::InvalidArgument("MeanFieldEngine requires a finalized graph");
  }
  if (mu.size() != graph_->num_variables()) {
    return Status::InvalidArgument(
        StrFormat("mu has %zu entries, graph has %zu variables", mu.size(),
                  graph_->num_variables()));
  }
  iterations_used_ = 0;
  updates_performed_ = 0;

  std::vector<uint32_t> frontier;
  std::unordered_set<uint32_t> in_frontier;
  for (uint32_t v : active) {
    if (options_.clamp_evidence && graph_->is_evidence(v)) continue;
    if (in_frontier.insert(v).second) frontier.push_back(v);
  }

  for (int iter = 0; iter < options_.max_iterations && !frontier.empty(); ++iter) {
    ++iterations_used_;
    std::vector<uint32_t> next;
    std::unordered_set<uint32_t> in_next;
    for (uint32_t v : frontier) {
      double updated = Update(v, mu);
      if (options_.damping > 0.0) {
        updated = (1.0 - options_.damping) * updated + options_.damping * mu[v];
      }
      ++updates_performed_;
      if (std::fabs(updated - mu[v]) > options_.tolerance) {
        mu[v] = updated;
        // Cascade: the change can move any neighbor's fixed point.
        size_t nfac = 0;
        const uint32_t* factors = graph_->var_factors(v, &nfac);
        for (size_t i = 0; i < nfac; ++i) {
          size_t nlit = 0;
          const Literal* lits = graph_->factor_literals(factors[i], &nlit);
          for (size_t j = 0; j < nlit; ++j) {
            uint32_t u = lits[j].var;
            if (options_.clamp_evidence && graph_->is_evidence(u)) continue;
            if (in_next.insert(u).second) next.push_back(u);
          }
        }
      }
    }
    frontier = std::move(next);
    in_frontier = std::move(in_next);
  }
  return mu;
}

}  // namespace dd
