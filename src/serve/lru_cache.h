#ifndef DEEPDIVE_SERVE_LRU_CACHE_H_
#define DEEPDIVE_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dd {

/// Thread-safe LRU map used as the serving layer's result cache. One
/// mutex guards the list + index; entries move to the front on every hit
/// so eviction order is exact recency order. Hit/miss counters are
/// monotone and exact: every Get() increments exactly one of them, so
/// hits() + misses() always equals the number of lookups — the invariant
/// the TSan concurrency test pins down.
///
/// The cache itself knows nothing about epochs; KbcServer clears it
/// wholesale on epoch swap and additionally stamps cached values with
/// the epoch they were computed on (see server.cc) so a racing insert
/// from a retiring epoch can never be served against a newer one.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// True (and *value filled) on hit; the entry becomes most-recent.
  bool Get(const K& key, V* value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    *value = it->second->second;
    return true;
  }

  /// Insert or overwrite; the entry becomes most-recent. Evicts the
  /// least-recently-used entry when over capacity. A capacity of 0
  /// disables caching entirely (every Get is a miss).
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Drop every entry (epoch swap). Counters are cumulative and survive.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    order_.clear();
    index_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_.size();
  }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

  /// Keys in most-recent-first order (test introspection).
  std::vector<K> Keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<K> keys;
    keys.reserve(order_.size());
    for (const auto& [k, v] : order_) keys.push_back(k);
    return keys;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace dd

#endif  // DEEPDIVE_SERVE_LRU_CACHE_H_
