#ifndef DEEPDIVE_SERVE_LOADGEN_H_
#define DEEPDIVE_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.h"

namespace dd {

/// Closed-loop load generator for KbcServer: `num_clients` threads each
/// issue queries back-to-back (a new request as soon as the previous one
/// answers) for a fixed duration, drawing (kind, relation, row) from a
/// per-client deterministic Rng. Used by the chaos tests (to saturate
/// admission) and the serving benchmark (QPS + latency percentiles).
struct LoadgenOptions {
  size_t num_clients = 4;
  double duration_ms = 200.0;
  uint64_t seed = 0x10adULL;
  /// Weights of the query mix (marginal : fact : top-k).
  int marginal_weight = 8;
  int fact_weight = 3;
  int topk_weight = 1;
  size_t topk_k = 10;
  /// Deadline attached to every request; 0 = none.
  double deadline_ms = 0.0;
  /// Row ids are drawn from [0, row_space); misses are part of the mix
  /// when it exceeds the epoch's actual rows.
  int64_t row_space = 1024;
  std::vector<std::string> relations;
};

struct LoadgenReport {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t not_found = 0;        ///< misses in the row space (expected)
  uint64_t shed = 0;             ///< Unavailable
  uint64_t deadline_exceeded = 0;
  uint64_t other_errors = 0;
  double wall_ms = 0.0;
  double qps = 0.0;              ///< ok / wall seconds
  double p50_ms = 0.0;           ///< latency percentiles over answered
  double p99_ms = 0.0;
  double max_ms = 0.0;
  uint64_t min_epoch = 0;        ///< epochs observed in responses
  uint64_t max_epoch = 0;
  /// Every client saw non-decreasing epoch ids across its own responses
  /// — the externally visible form of "no regression to an older epoch".
  bool epochs_monotone = true;

  /// issued == ok + not_found + shed + deadline_exceeded + other_errors.
  bool Accounted() const {
    return issued == ok + not_found + shed + deadline_exceeded + other_errors;
  }
};

/// Run the closed loop against `server` (which must be Start()ed).
LoadgenReport RunLoadgen(KbcServer* server, const LoadgenOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_SERVE_LOADGEN_H_
