#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dd {

namespace {

/// Wall clock shared by admission timestamps; one process-wide origin so
/// enqueue_ms values from different threads are comparable.
double NowMillis() {
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

std::string CacheKey(QueryKind kind, const std::string& relation, int64_t row) {
  std::string key;
  key.push_back(kind == QueryKind::kMarginal ? 'm' : 'f');
  key.push_back('\0');
  key += relation;
  key.push_back('\0');
  key += StrFormat("%lld", static_cast<long long>(row));
  return key;
}

}  // namespace

KbcServer::KbcServer(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_entries),
      retry_rng_(options_.retry_seed) {}

KbcServer::~KbcServer() { Stop(); }

Status KbcServer::Start() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (started_) return Status::InvalidArgument("server already started");
  started_ = true;
  stopping_ = false;
  const size_t workers = std::max<size_t>(options_.num_workers, 1);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void KbcServer::Stop() {
  std::vector<std::thread> workers;
  std::deque<std::unique_ptr<PendingRequest>> drained;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_) return;
    stopping_ = true;
    started_ = false;
    drained.swap(queue_);
    workers.swap(workers_);
  }
  queue_cv_.notify_all();
  for (auto& pending : drained) {
    pending->promise.set_value(
        Status::Unavailable("server stopping; request not executed"));
  }
  for (auto& t : workers) t.join();
}

Status KbcServer::SwapTo(std::shared_ptr<const ServingEpoch> epoch) {
  if (epoch == nullptr) {
    return Status::InvalidArgument("cannot swap to a null epoch");
  }
  Status injected;
  DD_FAILPOINT(failpoints::kServeEpochSwap, &injected);
  if (!injected.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.swap_rejected_invalid;
    return injected;
  }
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (epoch_ != nullptr && epoch->epoch() <= epoch_->epoch()) {
      uint64_t current = epoch_->epoch();
      DD_LOG(Warning) << "refusing epoch swap to " << epoch->epoch()
                      << ": current epoch " << current << " is newer or equal";
      DD_COUNTER_ADD("serve.swap_rejected_stale", 1);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.swap_rejected_stale;
      return Status::InvalidArgument(
          StrFormat("stale epoch %llu rejected; serving %llu",
                    static_cast<unsigned long long>(epoch->epoch()),
                    static_cast<unsigned long long>(current)));
    }
    // The swap itself: readers that already pinned the old shared_ptr
    // finish on it; the mapping unmaps when the last reference drops.
    epoch_ = std::move(epoch);
  }
  // Invalidate after the swap commits. A worker racing us may still
  // insert a result computed on the retiring epoch *after* this Clear,
  // which is why cached values carry an epoch stamp checked on read.
  cache_.Clear();
  DD_COUNTER_ADD("serve.swaps", 1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.swaps;
  }
  return Status::OK();
}

Status KbcServer::LoadAndSwap(const std::string& path) {
  RetryOptions retry = options_.load_retry;
  if (!retry.should_retry) {
    // Corruption is permanent: the file's bytes are wrong and rereading
    // them cannot help. Transient I/O (and injected Internal faults)
    // may clear.
    retry.should_retry = [](const Status& s) {
      return s.code() != StatusCode::kCorruption &&
             s.code() != StatusCode::kInvalidArgument;
    };
  }
  std::shared_ptr<const ServingEpoch> loaded;
  Status st = RetryWithBackoff(
      retry, &retry_rng_,
      [&]() -> Status {
        Result<ServingEpoch> result = ServingEpoch::Load(path);
        if (!result.ok()) return result.status();
        loaded = std::make_shared<const ServingEpoch>(std::move(result).value());
        return Status::OK();
      },
      /*sleep_fn=*/{},
      [&](int attempt, const Status& error, double sleep_ms) {
        DD_LOG(Warning) << "epoch load of " << path << " failed ("
                        << error.ToString() << "); retry attempt " << attempt
                        << " after " << sleep_ms << "ms";
        DD_COUNTER_ADD("serve.load_retries", 1);
      });
  if (!st.ok()) {
    DD_LOG(Warning) << "epoch load of " << path << " rejected ("
                    << st.ToString() << "); keeping current epoch "
                    << current_epoch_id();
    DD_COUNTER_ADD("serve.load_rejected", 1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.swap_rejected_invalid;
    return st;
  }
  return SwapTo(std::move(loaded));
}

Status KbcServer::LoadCurrent(const EpochDirectory& dir) {
  Result<std::string> file = dir.CurrentEpochFile();
  if (!file.ok()) return file.status();
  return LoadAndSwap(*file);
}

std::shared_ptr<const ServingEpoch> KbcServer::current_epoch() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

uint64_t KbcServer::current_epoch_id() const {
  auto epoch = current_epoch();
  return epoch == nullptr ? 0 : epoch->epoch();
}

Result<QueryResponse> KbcServer::Query(const QueryRequest& request) {
  DD_RETURN_IF_ERROR(request.deadline.Check("admission"));
  auto pending = std::make_unique<PendingRequest>();
  pending->request = request;
  pending->enqueue_ms = NowMillis();
  std::future<Result<QueryResponse>> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_ || stopping_) {
      return Status::Unavailable("server not running");
    }
    if (queue_.size() >= options_.max_queue) {
      DD_COUNTER_ADD("serve.shed_queue_full", 1);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.shed_queue_full;
      return Status::Unavailable(
          StrFormat("admission queue full (%zu requests)", queue_.size()));
    }
    queue_.push_back(std::move(pending));
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.admitted;
  }
  queue_cv_.notify_one();
  return future.get();
}

void KbcServer::WorkerLoop() {
  for (;;) {
    std::unique_ptr<PendingRequest> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, queue drained by Stop()
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    // Shed-on-dequeue: a request that sat in the queue past the budget
    // is refused rather than executed late — under sustained overload
    // this bounds the latency of everything we *do* execute.
    const double waited_ms = NowMillis() - pending->enqueue_ms;
    if (options_.queue_budget_ms > 0 && waited_ms > options_.queue_budget_ms) {
      DD_COUNTER_ADD("serve.shed_queue_budget", 1);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.shed_queue_budget;
      }
      pending->promise.set_value(Status::Unavailable(
          StrFormat("request shed after %.1fms in queue (budget %.1fms)",
                    waited_ms, options_.queue_budget_ms)));
      continue;
    }
    // Pin the epoch for the whole execution: a concurrent swap retires
    // the old mapping only after this shared_ptr drops.
    std::shared_ptr<const ServingEpoch> epoch = current_epoch();
    Result<QueryResponse> result = Execute(pending->request, epoch);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (result.ok()) {
        ++stats_.completed;
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_exceeded;
      }
    }
    pending->promise.set_value(std::move(result));
  }
}

Result<QueryResponse> KbcServer::Execute(
    const QueryRequest& request,
    const std::shared_ptr<const ServingEpoch>& epoch) {
  if (epoch == nullptr) {
    return Status::Unavailable("no epoch loaded yet");
  }
  DD_RETURN_IF_ERROR(request.deadline.Check("execute"));
  if (options_.synthetic_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.synthetic_delay_ms));
    DD_RETURN_IF_ERROR(request.deadline.Check("execute"));
  }

  QueryResponse response;
  response.epoch = epoch->epoch();

  switch (request.kind) {
    case QueryKind::kMarginal:
    case QueryKind::kFact: {
      // Hot path: epoch-stamped cache first.
      const std::string key =
          CacheKey(QueryKind::kMarginal, request.relation, request.row);
      CachedValue cached;
      bool hit = cache_.Get(key, &cached) && cached.epoch == epoch->epoch();
      if (hit) {
        response.probability = cached.probability;
        response.from_cache = true;
        DD_COUNTER_ADD("serve.cache_hits", 1);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.cache_hits;
      } else {
        DD_COUNTER_ADD("serve.cache_misses", 1);
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.cache_misses;
        }
        DD_RETURN_IF_ERROR(request.deadline.Check("lookup"));
        DD_ASSIGN_OR_RETURN(uint32_t var,
                            epoch->FindVar(request.relation, request.row));
        response.probability = epoch->marginal(var);
        cache_.Put(key, CachedValue{epoch->epoch(), response.probability});
      }
      if (request.kind == QueryKind::kFact) {
        response.is_fact = response.probability >= request.threshold;
      }
      return response;
    }
    case QueryKind::kTopK: {
      DD_RETURN_IF_ERROR(request.deadline.Check("scan"));
      const int rel = epoch->RelationId(request.relation);
      if (rel < 0) {
        return Status::NotFound("unknown relation '" + request.relation + "'");
      }
      // Bounded min-heap over a full scan of the relation's variables;
      // the deadline is rechecked every few thousand rows so a scan of a
      // huge epoch cannot blow a tight budget unnoticed.
      std::vector<TopKEntry> heap;
      auto worse = [](const TopKEntry& a, const TopKEntry& b) {
        return a.probability > b.probability ||
               (a.probability == b.probability && a.row < b.row);
      };
      const size_t n = epoch->num_variables();
      for (uint32_t v = 0; v < n; ++v) {
        if ((v & 0xFFF) == 0xFFF) {
          DD_RETURN_IF_ERROR(request.deadline.Check("scan"));
        }
        if (epoch->RelationOfVar(v) != rel || !epoch->var_live(v)) continue;
        TopKEntry entry{epoch->var_row(v), epoch->marginal(v)};
        if (heap.size() < request.k) {
          heap.push_back(entry);
          std::push_heap(heap.begin(), heap.end(), worse);
        } else if (!heap.empty() && worse(entry, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), worse);
          heap.back() = entry;
          std::push_heap(heap.begin(), heap.end(), worse);
        }
      }
      // sort_heap under this comparator leaves descending probability
      // (ties broken by ascending row).
      std::sort_heap(heap.begin(), heap.end(), worse);
      response.top = std::move(heap);
      return response;
    }
  }
  return Status::Internal("unknown query kind");
}

ServerStats KbcServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace dd
