#include "serve/loadgen.h"

#include <algorithm>
#include <thread>

#include "util/rng.h"
#include "util/timer.h"

namespace dd {

namespace {

struct ClientTally {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t not_found = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t other_errors = 0;
  uint64_t min_epoch = ~0ULL;
  uint64_t max_epoch = 0;
  bool epochs_monotone = true;
  std::vector<double> latencies_ms;  // answered (ok or not_found) only
};

void ClientLoop(KbcServer* server, const LoadgenOptions& options,
                uint64_t seed, ClientTally* tally) {
  Rng rng(seed);
  const int total_weight =
      options.marginal_weight + options.fact_weight + options.topk_weight;
  Stopwatch wall;
  uint64_t last_epoch = 0;
  while (wall.Millis() < options.duration_ms) {
    QueryRequest request;
    const int draw = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(std::max(total_weight, 1))));
    if (draw < options.marginal_weight) {
      request.kind = QueryKind::kMarginal;
    } else if (draw < options.marginal_weight + options.fact_weight) {
      request.kind = QueryKind::kFact;
    } else {
      request.kind = QueryKind::kTopK;
      request.k = options.topk_k;
    }
    request.relation = options.relations.empty()
                           ? std::string("spouse")
                           : options.relations[rng.NextBounded(
                                 options.relations.size())];
    request.row = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(std::max<int64_t>(
            options.row_space, 1))));
    if (options.deadline_ms > 0) {
      request.deadline = Deadline::AfterMillis(options.deadline_ms);
    }

    Stopwatch latency;
    Result<QueryResponse> response = server->Query(request);
    ++tally->issued;
    if (response.ok()) {
      tally->latencies_ms.push_back(latency.Millis());
      ++tally->ok;
      const uint64_t epoch = response->epoch;
      if (epoch < last_epoch) tally->epochs_monotone = false;
      last_epoch = epoch;
      tally->min_epoch = std::min(tally->min_epoch, epoch);
      tally->max_epoch = std::max(tally->max_epoch, epoch);
    } else {
      switch (response.status().code()) {
        case StatusCode::kNotFound:
          tally->latencies_ms.push_back(latency.Millis());
          ++tally->not_found;
          break;
        case StatusCode::kUnavailable:
          ++tally->shed;
          break;
        case StatusCode::kDeadlineExceeded:
          ++tally->deadline_exceeded;
          break;
        default:
          ++tally->other_errors;
          break;
      }
    }
  }
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(values->size() - 1));
  std::nth_element(values->begin(), values->begin() + idx, values->end());
  return (*values)[idx];
}

}  // namespace

LoadgenReport RunLoadgen(KbcServer* server, const LoadgenOptions& options) {
  const size_t clients = std::max<size_t>(options.num_clients, 1);
  std::vector<ClientTally> tallies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Stopwatch wall;
  for (size_t i = 0; i < clients; ++i) {
    threads.emplace_back(ClientLoop, server, std::cref(options),
                         options.seed + i, &tallies[i]);
  }
  for (auto& t : threads) t.join();

  LoadgenReport report;
  report.wall_ms = wall.Millis();
  report.min_epoch = ~0ULL;
  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    report.issued += tally.issued;
    report.ok += tally.ok;
    report.not_found += tally.not_found;
    report.shed += tally.shed;
    report.deadline_exceeded += tally.deadline_exceeded;
    report.other_errors += tally.other_errors;
    report.epochs_monotone = report.epochs_monotone && tally.epochs_monotone;
    report.min_epoch = std::min(report.min_epoch, tally.min_epoch);
    report.max_epoch = std::max(report.max_epoch, tally.max_epoch);
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  if (report.min_epoch == ~0ULL) report.min_epoch = 0;
  if (report.wall_ms > 0) {
    report.qps = static_cast<double>(report.ok + report.not_found) /
                 (report.wall_ms / 1e3);
  }
  report.p50_ms = Percentile(&latencies, 0.50);
  report.p99_ms = Percentile(&latencies, 0.99);
  if (!latencies.empty()) {
    report.max_ms = *std::max_element(latencies.begin(), latencies.end());
  }
  return report;
}

}  // namespace dd
