#ifndef DEEPDIVE_SERVE_EPOCH_H_
#define DEEPDIVE_SERVE_EPOCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "factor/graph.h"
#include "storage/snapshot.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

/// ---- Serving epochs -----------------------------------------------------
///
/// An epoch is one immutable generation of the knowledge base: a factor
/// graph, its materialized marginals, and the variable -> (relation, row)
/// map that makes marginals addressable as facts. On disk it is a DDSN
/// container (factor/io.h envelope: per-section CRC32C, atomic writes)
/// with sections:
///
///   META  key=value lines: kind=serving-epoch, epoch=<id>, variables=<n>
///   GRBN  the factor graph (storage/snapshot.h binary layout)
///   VARS  u64 count, liveness words (Bitmap layout), count u32 relation
///         pool ids, zero-pad to 8, count u64 row ids
///   PROB  u64 count, count IEEE-754 doubles (the marginals)
///   DICT  string pool shared by GRBN weight descriptions and VARS
///         relation names
///
/// VARS and PROB use the same 1-byte-pad alignment protocol as the other
/// binary sections, so a MappedSnapshot exposes them as 8-aligned arrays
/// readable in place: loading an epoch validates everything but
/// materializes only the (relation, row) -> variable index.

/// One variable's database identity, supplied by the publisher.
struct EpochVarEntry {
  std::string relation;
  int64_t row = -1;
  bool live = true;  ///< dead tuples keep their slot but are never served
};

/// Encode a complete serving-epoch container. `marginals` and `vars`
/// must both have exactly graph.num_variables() entries.
std::string EncodeEpochSnapshot(const FactorGraph& graph,
                                const std::vector<double>& marginals,
                                const std::vector<EpochVarEntry>& vars,
                                uint64_t epoch_id);

/// A fully validated, immutable epoch backed by a MappedSnapshot. All
/// query accessors are const and safe for concurrent readers; the mmap
/// lives exactly as long as this object, so the server hands epochs out
/// as shared_ptr<const ServingEpoch> and a reader in flight keeps its
/// epoch mapped until it finishes (refcounted retirement, no
/// use-after-unmap).
class ServingEpoch {
 public:
  /// Open + validate `path` end to end: container CRCs, META kind,
  /// GRBN/VARS/PROB section structure, every relation id in pool range,
  /// every marginal finite and within [0, 1], all counts consistent with
  /// the graph. Any defect is Corruption (or the Status a failpoint
  /// injected) — never a partially usable epoch.
  static Result<ServingEpoch> Load(const std::string& path);

  uint64_t epoch() const { return epoch_; }
  size_t num_variables() const { return num_vars_; }
  size_t num_factors() const { return static_cast<size_t>(graph_.num_factors); }

  double marginal(uint32_t var) const {
    uint64_t bits;
    std::memcpy(&bits, prob_content_.data() + prob_off_ + 8 * var, 8);
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  }
  bool var_live(uint32_t var) const {
    uint64_t word;
    std::memcpy(&word, vars_content_.data() + live_off_ + 8 * (var >> 6), 8);
    return (word >> (var & 63)) & 1;
  }
  std::string_view var_relation(uint32_t var) const {
    uint32_t rel;
    std::memcpy(&rel, vars_content_.data() + rel_off_ + 4 * var, 4);
    return pool_.String(rel);
  }
  int64_t var_row(uint32_t var) const {
    uint64_t bits;
    std::memcpy(&bits, vars_content_.data() + row_off_ + 8 * var, 8);
    return static_cast<int64_t>(bits);
  }

  /// Dense relation index for `name`; -1 if the epoch has no such
  /// relation. Top-k filters compare against RelationOfVar.
  int RelationId(std::string_view name) const;
  int RelationOfVar(uint32_t var) const { return rel_dense_[var]; }
  const std::vector<std::string>& relations() const { return relation_names_; }

  /// Variable serving (relation, row); NotFound for unknown facts and
  /// for dead (tombstoned) rows.
  Result<uint32_t> FindVar(std::string_view relation, int64_t row) const;

 private:
  ServingEpoch() = default;

  MappedSnapshot snap_;
  StringPoolView pool_;
  BinaryGraphView graph_;
  std::string_view vars_content_;  // VARS section content
  std::string_view prob_content_;  // PROB section content
  size_t live_off_ = 0;
  size_t rel_off_ = 0;
  size_t row_off_ = 0;
  size_t prob_off_ = 0;
  size_t num_vars_ = 0;
  uint64_t epoch_ = 0;

  // Materialized at load (the only non-mapped state): dense relation ids
  // per variable, relation name table, and the fact index.
  std::vector<int> rel_dense_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, int> relation_index_;
  std::vector<std::unordered_map<int64_t, uint32_t>> fact_index_;  // per dense rel
};

/// ---- Epoch directories --------------------------------------------------
///
/// The hand-off point between the batch pipeline and the serving daemon:
/// a directory of immutable epoch files plus a CURRENT manifest naming
/// the newest one. Both are written with the crash-consistent snapshot
/// protocol, so a publisher killed at any point leaves either the
/// previous CURRENT (pointing at a fully written epoch) or none — a
/// reader can never observe a torn or half-published epoch.
class EpochDirectory {
 public:
  explicit EpochDirectory(std::string path) : path_(std::move(path)) {}

  /// mkdir if missing (parent must exist). Idempotent.
  Status Create() const;

  const std::string& path() const { return path_; }
  std::string CurrentManifestPath() const { return path_ + "/CURRENT.snap"; }
  std::string EpochFilePath(uint64_t epoch_id) const;

  /// Write `bytes` as the epoch file for `epoch_id`, then atomically
  /// repoint CURRENT. Refuses ids <= the current one.
  Status Publish(uint64_t epoch_id, const std::string& bytes) const;

  /// Epoch id CURRENT points at; NotFound when nothing was published.
  Result<uint64_t> CurrentEpochId() const;
  /// Full path of the epoch file CURRENT points at.
  Result<std::string> CurrentEpochFile() const;

 private:
  std::string path_;
};

}  // namespace dd

#endif  // DEEPDIVE_SERVE_EPOCH_H_
