#ifndef DEEPDIVE_SERVE_SERVER_H_
#define DEEPDIVE_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/epoch.h"
#include "serve/lru_cache.h"
#include "util/deadline.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace dd {

/// ---- Resilient KBC serving ---------------------------------------------
///
/// KbcServer answers fact/marginal/top-k queries against the newest
/// *epoch* (an immutable ServingEpoch snapshot) while the batch pipeline
/// keeps publishing fresher ones. The design goals, in order:
///
///   1. Never crash, never serve a torn epoch. Epochs are handed to
///      readers as shared_ptr<const ServingEpoch>; a swap replaces the
///      pointer under a brief mutex, and the retiring epoch stays mapped
///      until its last in-flight reader drops the reference (refcounted
///      retirement). A candidate that fails validation is rejected and
///      the previous epoch keeps serving — degradation, not downtime.
///   2. Bounded latency under overload. Requests pass a bounded
///      admission queue; when it is full, or a request's queue time
///      exceeds the budget, the request is shed with Unavailable instead
///      of growing the tail. Per-request Deadlines are checked at each
///      pipeline stage and inside long scans (DeadlineExceeded).
///   3. Monotone epochs. SwapTo refuses an epoch id <= the current one,
///      loudly (log + counter): the server never silently regresses to
///      an older knowledge base.

/// What a query asks for.
enum class QueryKind {
  kMarginal,  ///< marginal of one (relation, row) fact
  kFact,      ///< is the fact live and above the threshold?
  kTopK,      ///< highest-marginal live facts of one relation
};

struct QueryRequest {
  QueryKind kind = QueryKind::kMarginal;
  std::string relation;
  int64_t row = 0;          ///< kMarginal / kFact
  double threshold = 0.9;   ///< kFact
  size_t k = 10;            ///< kTopK
  Deadline deadline;        ///< default: no deadline
};

struct TopKEntry {
  int64_t row = 0;
  double probability = 0.0;
};

struct QueryResponse {
  uint64_t epoch = 0;  ///< epoch that answered (monotone across a client)
  double probability = 0.0;  ///< kMarginal / kFact
  bool is_fact = false;      ///< kFact
  std::vector<TopKEntry> top;  ///< kTopK, descending probability
  bool from_cache = false;
};

struct ServerOptions {
  /// Admission queue bound; an arriving request finding the queue full
  /// is shed immediately.
  size_t max_queue = 256;
  /// A request that waited longer than this in the queue is shed when a
  /// worker picks it up (its deadline budget is likely gone anyway).
  double queue_budget_ms = 250.0;
  size_t num_workers = 2;
  /// Entries in the epoch-stamped result cache (0 disables).
  size_t cache_entries = 1024;
  /// Test/bench hook: every executed query burns this long before
  /// touching the epoch, making queue saturation and deadline expiry
  /// deterministic to provoke.
  double synthetic_delay_ms = 0.0;
  /// Retry policy for LoadAndSwap (transient I/O only; Corruption is
  /// permanent — retrying a bad file cannot fix it).
  RetryOptions load_retry;
  uint64_t retry_seed = 0x5e471e5eedULL;
};

struct ServerStats {
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_queue_budget = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t completed = 0;
  uint64_t swaps = 0;
  uint64_t swap_rejected_stale = 0;
  uint64_t swap_rejected_invalid = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

class KbcServer {
 public:
  explicit KbcServer(ServerOptions options = {});
  ~KbcServer();

  KbcServer(const KbcServer&) = delete;
  KbcServer& operator=(const KbcServer&) = delete;

  /// Start worker threads. InvalidArgument if already started.
  Status Start();
  /// Stop workers; queued requests are failed with Unavailable, never
  /// dropped silently. Idempotent.
  void Stop();

  /// Install `epoch` as current. Refuses ids <= the current epoch's
  /// (InvalidArgument, logged, counted) — in-flight readers keep the
  /// epoch they pinned; the retiring epoch unmaps when the last one
  /// finishes. The result cache is invalidated wholesale.
  Status SwapTo(std::shared_ptr<const ServingEpoch> epoch);

  /// Load `path` (with the transient-error retry policy), validate, and
  /// SwapTo. On any failure the current epoch keeps serving.
  Status LoadAndSwap(const std::string& path);

  /// Convenience: LoadAndSwap the epoch CURRENT points at in `dir`.
  Status LoadCurrent(const EpochDirectory& dir);

  /// Execute a query: admission queue -> worker -> epoch read. Blocks
  /// until the response or a shed/deadline/stop error. Safe from any
  /// number of threads.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// The epoch currently serving (nullptr before the first swap).
  std::shared_ptr<const ServingEpoch> current_epoch() const;
  /// Current epoch id, 0 before the first swap.
  uint64_t current_epoch_id() const;

  ServerStats stats() const;

 private:
  struct PendingRequest {
    QueryRequest request;
    std::promise<Result<QueryResponse>> promise;
    double enqueue_ms = 0.0;  ///< Stopwatch time at admission
  };

  void WorkerLoop();
  /// The actual read path, running on a pinned epoch.
  Result<QueryResponse> Execute(const QueryRequest& request,
                                const std::shared_ptr<const ServingEpoch>& epoch);

  const ServerOptions options_;

  mutable std::mutex epoch_mu_;
  std::shared_ptr<const ServingEpoch> epoch_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<PendingRequest>> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<std::thread> workers_;

  /// Cached values are stamped with the epoch they were computed on;
  /// Get() ignores entries whose stamp differs from the pinned epoch, so
  /// an insert racing a swap (computed on the retiring epoch, inserted
  /// after Clear()) can never be served against the new one.
  struct CachedValue {
    uint64_t epoch = 0;
    double probability = 0.0;
  };
  LruCache<std::string, CachedValue> cache_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  Rng retry_rng_;
};

}  // namespace dd

#endif  // DEEPDIVE_SERVE_SERVER_H_
