#include "serve/epoch.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "factor/io.h"
#include "storage/column.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dd {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendDouble(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  AppendU64(out, bits);
}

/// Bounds-checked little-endian cursor over a section's content.
class Cursor {
 public:
  explicit Cursor(std::string_view content) : content_(content) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return content_.size() - pos_; }

  Status Need(size_t n, const char* what) {
    if (remaining() < n) {
      return Status::Corruption(
          StrFormat("epoch section truncated reading %s at offset %zu "
                    "(need %zu bytes, have %zu)",
                    what, pos_, n, remaining()));
    }
    return Status::OK();
  }

  Status ReadU64(uint64_t* v, const char* what) {
    DD_RETURN_IF_ERROR(Need(8, what));
    std::memcpy(v, content_.data() + pos_, 8);
    pos_ += 8;
    return Status::OK();
  }

  Status Skip(size_t n, const char* what) {
    DD_RETURN_IF_ERROR(Need(n, what));
    pos_ += n;
    return Status::OK();
  }

 private:
  std::string_view content_;
  size_t pos_ = 0;
};

Result<std::map<std::string, std::string>> ParseMetaLines(
    std::string_view content) {
  std::map<std::string, std::string> kv;
  for (const std::string& line : Split(content, '\n')) {
    std::string_view t = Trim(line);
    if (t.empty()) continue;
    size_t eq = t.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("epoch META line without '=': " +
                                std::string(t));
    }
    kv[std::string(t.substr(0, eq))] = std::string(t.substr(eq + 1));
  }
  return kv;
}

Result<uint64_t> MetaU64(const std::map<std::string, std::string>& kv,
                         const std::string& key) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    return Status::Corruption("epoch META missing key '" + key + "'");
  }
  if (it->second.empty() || !IsAllDigits(it->second)) {
    return Status::Corruption("epoch META key '" + key +
                              "' is not a number: " + it->second);
  }
  errno = 0;
  uint64_t v = std::strtoull(it->second.c_str(), nullptr, 10);
  if (errno != 0) {
    return Status::Corruption("epoch META key '" + key +
                              "' out of range: " + it->second);
  }
  return v;
}

}  // namespace

// ---- Encoding -----------------------------------------------------------

std::string EncodeEpochSnapshot(const FactorGraph& graph,
                                const std::vector<double>& marginals,
                                const std::vector<EpochVarEntry>& vars,
                                uint64_t epoch_id) {
  const size_t n = graph.num_variables();
  DD_CHECK(marginals.size() == n);
  DD_CHECK(vars.size() == n);

  SnapshotWriter writer;
  SectionLayout layout;
  auto add_section = [&](const char* tag, std::string payload) {
    layout.Add(payload.size());
    writer.AddSection(tag, std::move(payload));
  };
  auto add_aligned = [&](const char* tag, std::string content) {
    add_section(tag,
                WithAlignmentPad(layout.NextPayloadOffset(), std::move(content)));
  };

  std::string meta;
  meta += "kind=serving-epoch\n";
  meta += StrFormat("epoch=%llu\n", static_cast<unsigned long long>(epoch_id));
  meta += StrFormat("variables=%zu\n", n);
  add_section("META", std::move(meta));

  StringPoolBuilder pool;
  std::string grbn;
  EncodeBinaryGraph(graph, &pool, &grbn);
  add_aligned("GRBN", std::move(grbn));

  // VARS: count, liveness words, relation pool ids, pad, row ids.
  std::string vars_content;
  AppendU64(&vars_content, n);
  Bitmap live;
  for (const EpochVarEntry& e : vars) live.PushBack(e.live);
  for (size_t w = 0; w < Bitmap::WordsFor(n); ++w) {
    AppendU64(&vars_content, live.words()[w]);
  }
  for (const EpochVarEntry& e : vars) {
    AppendU32(&vars_content, pool.IdFor(e.relation));
  }
  while (vars_content.size() % 8 != 0) vars_content.push_back('\0');
  for (const EpochVarEntry& e : vars) {
    AppendU64(&vars_content, static_cast<uint64_t>(e.row));
  }
  add_aligned("VARS", std::move(vars_content));

  // PROB: count, doubles.
  std::string prob;
  AppendU64(&prob, n);
  for (double m : marginals) AppendDouble(&prob, m);
  add_aligned("PROB", std::move(prob));

  // DICT last: GRBN and VARS both intern into the shared pool, and the
  // pad prefix depends on the file offset, so it must be appended after
  // every section that references it.
  add_aligned("DICT", pool.EncodeContent());

  return writer.Encode();
}

// ---- Loading ------------------------------------------------------------

Result<ServingEpoch> ServingEpoch::Load(const std::string& path) {
  Status injected;
  DD_FAILPOINT(failpoints::kServeEpochLoad, &injected);
  DD_RETURN_IF_ERROR(injected);

  ServingEpoch epoch;
  DD_ASSIGN_OR_RETURN(epoch.snap_, MappedSnapshot::Open(path));
  const SnapshotView& view = epoch.snap_.view();

  // META first: reject files that are valid containers but not epochs
  // (e.g. a catalog snapshot dropped into the epoch directory).
  DD_ASSIGN_OR_RETURN(SectionSpan meta_span, view.Section("META"));
  DD_ASSIGN_OR_RETURN(auto meta, ParseMetaLines(meta_span.payload));
  auto kind = meta.find("kind");
  if (kind == meta.end() || kind->second != "serving-epoch") {
    return Status::Corruption("snapshot is not a serving epoch (kind=" +
                              (kind == meta.end() ? "<absent>" : kind->second) +
                              ")");
  }
  DD_ASSIGN_OR_RETURN(epoch.epoch_, MetaU64(meta, "epoch"));
  DD_ASSIGN_OR_RETURN(uint64_t meta_vars, MetaU64(meta, "variables"));

  // Pool + graph, fully validated by the storage layer.
  DD_ASSIGN_OR_RETURN(epoch.pool_, epoch.snap_.Pool());
  DD_ASSIGN_OR_RETURN(epoch.graph_, epoch.snap_.Graph(epoch.pool_));
  const uint64_t n = epoch.graph_.num_variables;
  if (meta_vars != n) {
    return Status::Corruption(
        StrFormat("epoch META variables=%llu but graph has %llu",
                  static_cast<unsigned long long>(meta_vars),
                  static_cast<unsigned long long>(n)));
  }
  epoch.num_vars_ = static_cast<size_t>(n);

  // VARS.
  DD_ASSIGN_OR_RETURN(SectionSpan vars_span, view.Section("VARS"));
  DD_ASSIGN_OR_RETURN(epoch.vars_content_,
                      StripAlignmentPad(vars_span.offset, vars_span.payload));
  {
    Cursor c(epoch.vars_content_);
    uint64_t count = 0;
    DD_RETURN_IF_ERROR(c.ReadU64(&count, "VARS count"));
    if (count != n) {
      return Status::Corruption(
          StrFormat("VARS count %llu does not match graph variables %llu",
                    static_cast<unsigned long long>(count),
                    static_cast<unsigned long long>(n)));
    }
    const size_t words = Bitmap::WordsFor(count);
    epoch.live_off_ = c.pos();
    DD_RETURN_IF_ERROR(c.Skip(8 * words, "VARS liveness words"));
    // Bits past the last variable must be zero so liveness scans can
    // trust whole words.
    if (count % 64 != 0 && words > 0) {
      uint64_t last;
      std::memcpy(&last,
                  epoch.vars_content_.data() + epoch.live_off_ + 8 * (words - 1),
                  8);
      if ((last >> (count % 64)) != 0) {
        return Status::Corruption("VARS liveness has bits set past count");
      }
    }
    epoch.rel_off_ = c.pos();
    DD_RETURN_IF_ERROR(c.Skip(4 * count, "VARS relation ids"));
    size_t pad = (8 - (c.pos() % 8)) % 8;
    DD_RETURN_IF_ERROR(c.Need(pad, "VARS row-id pad"));
    for (size_t i = 0; i < pad; ++i) {
      if (epoch.vars_content_[c.pos() + i] != '\0') {
        return Status::Corruption("VARS row-id pad bytes must be zero");
      }
    }
    DD_RETURN_IF_ERROR(c.Skip(pad, "VARS row-id pad"));
    epoch.row_off_ = c.pos();
    DD_RETURN_IF_ERROR(c.Skip(8 * count, "VARS row ids"));
    if (c.remaining() != 0) {
      return Status::Corruption(
          StrFormat("VARS has %zu trailing bytes", c.remaining()));
    }
  }

  // PROB.
  DD_ASSIGN_OR_RETURN(SectionSpan prob_span, view.Section("PROB"));
  DD_ASSIGN_OR_RETURN(epoch.prob_content_,
                      StripAlignmentPad(prob_span.offset, prob_span.payload));
  {
    Cursor c(epoch.prob_content_);
    uint64_t count = 0;
    DD_RETURN_IF_ERROR(c.ReadU64(&count, "PROB count"));
    if (count != n) {
      return Status::Corruption(
          StrFormat("PROB count %llu does not match graph variables %llu",
                    static_cast<unsigned long long>(count),
                    static_cast<unsigned long long>(n)));
    }
    epoch.prob_off_ = c.pos();
    DD_RETURN_IF_ERROR(c.Skip(8 * count, "PROB marginals"));
    if (c.remaining() != 0) {
      return Status::Corruption(
          StrFormat("PROB has %zu trailing bytes", c.remaining()));
    }
  }

  // Semantic validation + index build in one pass over the variables.
  epoch.rel_dense_.resize(epoch.num_vars_, -1);
  for (uint32_t v = 0; v < epoch.num_vars_; ++v) {
    double m = epoch.marginal(v);
    if (!std::isfinite(m) || m < 0.0 || m > 1.0) {
      return Status::Corruption(
          StrFormat("PROB marginal for variable %u is not a probability", v));
    }
    uint32_t rel;
    std::memcpy(&rel, epoch.vars_content_.data() + epoch.rel_off_ + 4 * v, 4);
    if (rel >= epoch.pool_.size()) {
      return Status::Corruption(
          StrFormat("VARS relation id %u out of pool range for variable %u",
                    rel, v));
    }
    std::string name(epoch.pool_.String(rel));
    auto [it, inserted] =
        epoch.relation_index_.try_emplace(name,
                                          static_cast<int>(epoch.relation_names_.size()));
    if (inserted) {
      epoch.relation_names_.push_back(name);
      epoch.fact_index_.emplace_back();
    }
    const int dense = it->second;
    epoch.rel_dense_[v] = dense;
    if (epoch.var_live(v)) {
      auto [fit, fresh] =
          epoch.fact_index_[dense].try_emplace(epoch.var_row(v), v);
      if (!fresh) {
        return Status::Corruption(
            StrFormat("VARS has duplicate live fact (relation '%s', row %lld)",
                      name.c_str(),
                      static_cast<long long>(epoch.var_row(v))));
      }
    }
  }
  return epoch;
}

int ServingEpoch::RelationId(std::string_view name) const {
  auto it = relation_index_.find(std::string(name));
  return it == relation_index_.end() ? -1 : it->second;
}

Result<uint32_t> ServingEpoch::FindVar(std::string_view relation,
                                       int64_t row) const {
  int rel = RelationId(relation);
  if (rel < 0) {
    return Status::NotFound("unknown relation '" + std::string(relation) + "'");
  }
  auto it = fact_index_[rel].find(row);
  if (it == fact_index_[rel].end()) {
    return Status::NotFound(
        StrFormat("no live fact (relation '%s', row %lld) in epoch %llu",
                  std::string(relation).c_str(), static_cast<long long>(row),
                  static_cast<unsigned long long>(epoch_)));
  }
  return it->second;
}

// ---- Epoch directories --------------------------------------------------

Status EpochDirectory::Create() const {
  if (::mkdir(path_.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir failed for epoch directory " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string EpochDirectory::EpochFilePath(uint64_t epoch_id) const {
  return path_ + StrFormat("/epoch-%06llu.snap",
                           static_cast<unsigned long long>(epoch_id));
}

Status EpochDirectory::Publish(uint64_t epoch_id,
                               const std::string& bytes) const {
  Result<uint64_t> current = CurrentEpochId();
  if (current.ok() && *current >= epoch_id) {
    return Status::InvalidArgument(
        StrFormat("refusing to publish epoch %llu: CURRENT is already %llu",
                  static_cast<unsigned long long>(epoch_id),
                  static_cast<unsigned long long>(*current)));
  }
  if (!current.ok() && current.status().code() != StatusCode::kNotFound) {
    return current.status();
  }
  // The epoch file lands (atomically) before CURRENT repoints at it, so
  // a crash between the two writes leaves the previous CURRENT valid
  // and the orphan epoch file harmless.
  DD_RETURN_IF_ERROR(WriteBytesAtomic(bytes, EpochFilePath(epoch_id)));
  Status injected;
  DD_FAILPOINT(failpoints::kServePublish, &injected);
  DD_RETURN_IF_ERROR(injected);
  GraphSnapshot manifest;
  manifest.meta["kind"] = "epoch-manifest";
  manifest.meta["epoch"] =
      StrFormat("%llu", static_cast<unsigned long long>(epoch_id));
  manifest.meta["file"] =
      StrFormat("epoch-%06llu.snap", static_cast<unsigned long long>(epoch_id));
  return WriteGraphSnapshot(manifest, CurrentManifestPath());
}

Result<uint64_t> EpochDirectory::CurrentEpochId() const {
  if (!FileExists(CurrentManifestPath())) {
    return Status::NotFound("no CURRENT manifest in " + path_);
  }
  DD_ASSIGN_OR_RETURN(GraphSnapshot manifest,
                      ReadGraphSnapshot(CurrentManifestPath()));
  auto kind = manifest.meta.find("kind");
  if (kind == manifest.meta.end() || kind->second != "epoch-manifest") {
    return Status::Corruption("CURRENT in " + path_ +
                              " is not an epoch manifest");
  }
  return MetaU64(manifest.meta, "epoch");
}

Result<std::string> EpochDirectory::CurrentEpochFile() const {
  DD_ASSIGN_OR_RETURN(uint64_t id, CurrentEpochId());
  return EpochFilePath(id);
}

}  // namespace dd
