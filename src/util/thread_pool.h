#ifndef DEEPDIVE_UTIL_THREAD_POOL_H_
#define DEEPDIVE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dd {

class ThreadPool;

/// A set of pool tasks whose completion can be awaited independently of
/// the rest of the queue. Unlike ThreadPool::Wait(), WaitGroup() is
/// nestable: the waiting thread executes queued tasks while its group is
/// incomplete, so a pool task may itself fan out a group and block on it
/// without deadlocking the fixed-size pool. A group must outlive the
/// WaitGroup() call that drains it and must not be reused concurrently.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

 private:
  friend class ThreadPool;
  size_t pending_ = 0;  ///< guarded by the pool's mutex
};

/// Minimal fixed-size thread pool used by the parallel samplers and the
/// task-graph scheduler. Tasks are std::function<void()>; Wait() blocks
/// until the queue drains and all workers are idle.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void Submit(std::function<void()> task);

  /// Enqueue a task belonging to `group` (awaitable via WaitGroup).
  void Submit(TaskGroup* group, std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void Wait();

  /// Block until every task submitted under `group` has completed,
  /// executing queued tasks (of any group) on this thread meanwhile —
  /// the help-while-waiting discipline that makes nested fan-out safe.
  void WaitGroup(TaskGroup* group);

  size_t num_threads() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void WorkerLoop();
  /// Post-task bookkeeping; `mu_` must be held.
  void FinishTask(TaskGroup* group);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::condition_variable group_done_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_THREAD_POOL_H_
