#ifndef DEEPDIVE_UTIL_THREAD_POOL_H_
#define DEEPDIVE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dd {

/// Minimal fixed-size thread pool used by the parallel samplers. Tasks are
/// std::function<void()>; Wait() blocks until the queue drains and all
/// workers are idle.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution.
  void Submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_THREAD_POOL_H_
