#ifndef DEEPDIVE_UTIL_FAILPOINT_H_
#define DEEPDIVE_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace dd {

/// Canonical failpoint site names. Every DD_FAILPOINT site in the
/// library uses one of these constants, so the set of injectable faults
/// is enumerable. ci/check.sh greps the quoted names out of this block
/// to drive its fault-injection pass — keep one name per line.
namespace failpoints {
inline constexpr const char* kFactorIoWrite = "factor_io.write";
inline constexpr const char* kFactorIoRename = "factor_io.rename";
inline constexpr const char* kFactorIoRead = "factor_io.read";
inline constexpr const char* kLearnerEpoch = "learner.epoch";
inline constexpr const char* kInferenceSweep = "inference.sweep";
inline constexpr const char* kPipelineExtractor = "pipeline.extractor";
inline constexpr const char* kPipelinePhase = "pipeline.phase";
inline constexpr const char* kSnapshotMmap = "snapshot.mmap";
inline constexpr const char* kSnapshotValidate = "snapshot.validate";
inline constexpr const char* kServeEpochLoad = "serve.epoch_load";
inline constexpr const char* kServeEpochSwap = "serve.epoch_swap";
inline constexpr const char* kServePublish = "serve.publish";
inline constexpr const char* kStreamChunkRead = "stream.chunk_read";
inline constexpr const char* kStreamHandoff = "stream.handoff";
inline constexpr const char* kStreamParse = "stream.parse";
inline constexpr const char* kStreamMerge = "stream.merge";
inline constexpr const char* kDistConnect = "dist.connect";
inline constexpr const char* kDistSend = "dist.send";
inline constexpr const char* kDistRecv = "dist.recv";
inline constexpr const char* kDistPartition = "dist.partition";
inline constexpr const char* kDistBarrier = "dist.barrier";
}  // namespace failpoints

/// What a fired failpoint does to the site that evaluated it.
enum class FailpointAction {
  kError,      ///< inject a Status with a configurable code
  kShortWrite, ///< truncate the byte count at a DD_FAILPOINT_WRITE site
  kCrash,      ///< invoke the crash hook (default: _Exit(kFailpointCrashExitCode))
};

/// Exit code of the default crash hook — distinguishable from sanitizer
/// aborts and signal deaths in kill-and-resume tests.
inline constexpr int kFailpointCrashExitCode = 42;

struct FailpointConfig {
  FailpointAction action = FailpointAction::kError;
  StatusCode code = StatusCode::kInternal;  ///< injected code for kError
  double probability = 1.0;  ///< chance an eligible hit fires (deterministic RNG)
  int skip = 0;              ///< let this many hits pass before firing
  int max_hits = -1;         ///< fire at most this many times; -1 = unlimited
  double keep_fraction = 0.5;  ///< kShortWrite: fraction of bytes still written
};

/// Process-wide registry of failpoints. Sites are zero-overhead while no
/// failpoint is enabled: the DD_FAILPOINT macro evaluates a single
/// relaxed atomic load and branches past everything else. Probability
/// draws come from a registry-owned, explicitly seeded Rng so fault
/// schedules are reproducible.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// True when at least one failpoint is enabled (the hot-path check).
  static bool armed() { return armed_.load(std::memory_order_relaxed); }

  void Enable(const std::string& name, FailpointConfig config);
  void Disable(const std::string& name);
  /// Disable everything and reseed — test teardown.
  void Reset();

  /// Seed the deterministic probability stream (also via $DD_FAILPOINT_SEED).
  void Seed(uint64_t seed);

  /// Parse and apply a spec of the form
  ///   name=action(k=v,...)[;name=action(...)]...
  /// Actions: error, corruption, ioerror, short_write, crash.
  /// Parameters: p=<float> probability, hits=<int> max fires,
  /// skip=<int> hits passed before firing, keep=<float> short-write
  /// keep fraction. Example:
  ///   "factor_io.write=short_write(keep=0.25);learner.epoch=crash(skip=3)"
  Status Configure(const std::string& spec);

  /// Apply $DD_FAILPOINTS / $DD_FAILPOINT_SEED. Runs automatically at
  /// static-init time so any test binary honors the env contract.
  void ConfigureFromEnv();

  /// Test-visible crash hook. The default reports the site to stderr and
  /// _Exit(kFailpointCrashExitCode)s; tests may substitute a non-fatal
  /// hook (if the hook returns, the site continues unharmed).
  void SetCrashHook(std::function<void(const std::string&)> hook);

  /// Site self-registration (via the macros); returns true so it can
  /// seed a function-local static. Enumerates every site the process has
  /// executed at least once.
  bool RegisterSite(const char* name);
  std::vector<std::string> registered_sites() const;

  /// Number of times `name` actually fired (for test assertions).
  uint64_t fired_count(const std::string& name) const;

  /// Evaluate an error/crash site. Fills *status on kError; never
  /// returns on kCrash (unless a test hook returns).
  void Eval(const char* name, Status* status);

  /// Evaluate a write site: like Eval, but a fired kShortWrite returns
  /// the truncated number of bytes to write (otherwise returns n).
  size_t EvalWrite(const char* name, size_t n, Status* status);

 private:
  Failpoints();

  struct Site {
    FailpointConfig config;
    bool enabled = false;
    int hits_seen = 0;   ///< eligible evaluations since Enable()
    uint64_t fired = 0;  ///< times the action actually triggered
  };

  /// Decides whether the site fires and returns the config if so.
  bool ShouldFire(const char* name, FailpointConfig* config);
  void DoCrash(const std::string& name);
  void RecomputeArmed();

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  std::map<std::string, bool> known_sites_;  // every site ever evaluated
  Rng rng_{0x600dfeedULL};
  std::function<void(const std::string&)> crash_hook_;
};

/// Evaluate failpoint `name`; may assign an injected error to
/// *status_ptr or crash the process. Expands to one relaxed atomic load
/// when fault injection is off. The site self-registers on first
/// execution so tooling can enumerate live sites.
#define DD_FAILPOINT(name, status_ptr)                                      \
  do {                                                                      \
    static const bool _dd_fp_registered =                                   \
        ::dd::Failpoints::Instance().RegisterSite(name);                    \
    (void)_dd_fp_registered;                                                \
    if (::dd::Failpoints::armed()) {                                        \
      ::dd::Failpoints::Instance().Eval((name), (status_ptr));              \
    }                                                                       \
  } while (0)

/// Write-site variant: additionally lets a short_write config shrink
/// `n_lvalue` (the byte count about to be written) to simulate a crash
/// that persisted a partial buffer.
#define DD_FAILPOINT_WRITE(name, n_lvalue, status_ptr)                      \
  do {                                                                      \
    static const bool _dd_fp_registered =                                   \
        ::dd::Failpoints::Instance().RegisterSite(name);                    \
    (void)_dd_fp_registered;                                                \
    if (::dd::Failpoints::armed()) {                                        \
      (n_lvalue) = ::dd::Failpoints::Instance().EvalWrite((name), (n_lvalue), \
                                                          (status_ptr));    \
    }                                                                       \
  } while (0)

}  // namespace dd

#endif  // DEEPDIVE_UTIL_FAILPOINT_H_
