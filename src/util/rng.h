#ifndef DEEPDIVE_UTIL_RNG_H_
#define DEEPDIVE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace dd {

/// Serializable snapshot of an Rng's internal state. Restoring it makes
/// the generator continue the exact same stream — the basis of
/// bit-identical resume after a crash (see factor/io.h snapshots).
struct RngState {
  uint64_t s0 = 0;
  uint64_t s1 = 0;
};

/// Deterministic, fast xorshift128+ generator. Every stochastic component
/// in the library takes an explicit Rng (or seed) so runs are reproducible —
/// a requirement for the "debuggable decisions" design criterion (§2.5).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xdeadbeefcafebabeULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to expand the seed into two non-zero state words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  RngState state() const { return {s0_, s1_}; }
  void set_state(const RngState& st) {
    s0_ = st.s0;
    s1_ = st.s1;
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is absorbing
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_RNG_H_
