#ifndef DEEPDIVE_UTIL_BOUNDED_QUEUE_H_
#define DEEPDIVE_UTIL_BOUNDED_QUEUE_H_

// Bounded-memory hand-off between pipeline stages (DESIGN.md §14).
//
// A BoundedByteQueue is a FIFO whose admission is governed by a byte
// budget rather than an element count: every Push charges the item's
// declared byte cost against the budget, and the charge is returned
// either when the item is popped (ReleaseMode::kOnPop) or when the consumer
// explicitly says the item's bytes are no longer in flight
// (ReleaseMode::kExplicit — the streaming ingester's end-to-end accounting,
// where a chunk's bytes stay charged from admission until its extraction
// results have been merged downstream).
//
// Backpressure policy: with Policy::kBlock a producer whose item does
// not fit waits until consumers free budget — the byte budget *is* the
// flow control. With Policy::kShed the push returns kShed immediately
// instead of waiting, for sources that must never stall (the caller
// counts and drops). One item larger than the whole budget is admitted
// alone when the queue is idle — refusing it would deadlock the stream
// on its largest record — so peak occupancy is bounded by
// max(budget, largest single item).
//
// Shutdown is two-phase: Close() stops admissions but lets consumers
// drain everything already admitted (clean end-of-stream / graceful
// stop); Abort() additionally discards queued items and unblocks every
// waiter (error teardown). Both are idempotent and safe from any thread.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace dd {

template <typename T>
class BoundedByteQueue {
 public:
  enum class Policy { kBlock, kShed };
  enum class ReleaseMode { kOnPop, kExplicit };
  enum class PushResult { kOk, kShed, kClosed };

  explicit BoundedByteQueue(size_t byte_budget, Policy policy = Policy::kBlock,
                            ReleaseMode release = ReleaseMode::kOnPop)
      : budget_(byte_budget == 0 ? 1 : byte_budget),
        policy_(policy),
        release_(release) {}

  BoundedByteQueue(const BoundedByteQueue&) = delete;
  BoundedByteQueue& operator=(const BoundedByteQueue&) = delete;

  /// Enqueue `item` charging `bytes` against the budget. Blocks (kBlock)
  /// or sheds (kShed) while the item does not fit; an oversized item is
  /// admitted once in-flight bytes reach zero. Returns kClosed after
  /// Close()/Abort() — the item was not enqueued.
  PushResult Push(T item, size_t bytes) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (closed_) return PushResult::kClosed;
      if (Fits(bytes)) break;
      if (policy_ == Policy::kShed) {
        ++shed_count_;
        shed_bytes_ += bytes;
        return PushResult::kShed;
      }
      can_push_.wait(lock);
    }
    bytes_in_flight_ += bytes;
    if (bytes_in_flight_ > peak_bytes_) peak_bytes_ = bytes_in_flight_;
    items_.emplace_back(std::move(item), bytes);
    can_pop_.notify_one();
    return PushResult::kOk;
  }

  /// Dequeue into *out. Blocks while the queue is empty and open.
  /// Returns false once the queue is closed (or aborted) and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front().first);
    const size_t bytes = items_.front().second;
    items_.pop_front();
    if (release_ == ReleaseMode::kOnPop) ReleaseLocked(bytes);
    return true;
  }

  /// Return `bytes` of budget (ReleaseMode::kExplicit): the consumer
  /// finished with an item's bytes end-to-end. No-op after Abort().
  void Release(size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return;
    ReleaseLocked(bytes);
  }

  /// Stop admissions; queued items remain poppable (drain semantics).
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  /// Close, discard queued items, zero the in-flight account, and wake
  /// every waiter. For error teardown where drained data is dead anyway.
  void Abort() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    aborted_ = true;
    items_.clear();
    bytes_in_flight_ = 0;
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  size_t bytes_in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_in_flight_;
  }
  /// High-water mark of in-flight bytes over the queue's lifetime.
  size_t peak_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_bytes_;
  }
  uint64_t shed_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_count_;
  }
  uint64_t shed_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_bytes_;
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  bool Fits(size_t bytes) const {
    return bytes_in_flight_ == 0 || bytes_in_flight_ + bytes <= budget_;
  }

  void ReleaseLocked(size_t bytes) {
    bytes_in_flight_ = bytes > bytes_in_flight_ ? 0 : bytes_in_flight_ - bytes;
    can_push_.notify_all();
  }

  const size_t budget_;
  const Policy policy_;
  const ReleaseMode release_;

  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<std::pair<T, size_t>> items_;
  size_t bytes_in_flight_ = 0;
  size_t peak_bytes_ = 0;
  uint64_t shed_count_ = 0;
  uint64_t shed_bytes_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_BOUNDED_QUEUE_H_
