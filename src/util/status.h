#ifndef DEEPDIVE_UTIL_STATUS_H_
#define DEEPDIVE_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace dd {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// Status idiom: library code never throws; every fallible operation
/// returns a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kTypeError,
  kInternal,
  kUnimplemented,
  kCorruption,   ///< on-disk data failed validation (truncation, bad CRC)
  kIoError,      ///< the OS refused an I/O operation (open/write/fsync/rename)
  kDeadlineExceeded,  ///< a request's deadline passed before it finished
  kUnavailable,  ///< transient refusal: overload shedding, no epoch loaded
};

/// A lightweight success-or-error value. Cheap to copy on the OK path
/// (no allocation), carries a message on the error path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagate a non-OK Status to the caller.
#define DD_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::dd::Status _dd_status = (expr);            \
    if (!_dd_status.ok()) return _dd_status;     \
  } while (0)

}  // namespace dd

#endif  // DEEPDIVE_UTIL_STATUS_H_
