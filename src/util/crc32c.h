#ifndef DEEPDIVE_UTIL_CRC32C_H_
#define DEEPDIVE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dd {

/// CRC-32C (Castagnoli polynomial, the RocksDB/LevelDB/iSCSI checksum).
/// Uses the SSE4.2 CRC32 instruction when the CPU has it (detected at
/// runtime) and a slice-by-8 software implementation otherwise; both
/// produce identical digests. `Crc32cExtend` continues a running
/// checksum so multi-part payloads can be checksummed without
/// concatenation.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace dd

#endif  // DEEPDIVE_UTIL_CRC32C_H_
