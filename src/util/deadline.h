#ifndef DEEPDIVE_UTIL_DEADLINE_H_
#define DEEPDIVE_UTIL_DEADLINE_H_

#include <chrono>
#include <string>

#include "util/status.h"
#include "util/string_util.h"

namespace dd {

/// A point on the steady clock after which a request should stop being
/// worked on. Cheap to copy and pass by value down a query pipeline;
/// every stage calls Check() (or expired() in a loop) and returns the
/// resulting DeadlineExceeded instead of a late answer.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires (the default for code paths without a budget).
  Deadline() : when_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now; ms <= 0 is already expired.
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool infinite() const { return when_ == Clock::time_point::max(); }
  bool expired() const { return !infinite() && Clock::now() >= when_; }

  /// Milliseconds until expiry (negative once past; a large positive
  /// value when infinite).
  double remaining_millis() const {
    if (infinite()) return 1e300;
    return std::chrono::duration<double, std::milli>(when_ - Clock::now())
        .count();
  }

  /// OK while time remains; DeadlineExceeded naming the pipeline stage
  /// that noticed otherwise.
  Status Check(const char* stage) const {
    if (!expired()) return Status::OK();
    return Status::DeadlineExceeded(
        StrFormat("deadline exceeded at stage '%s'", stage));
  }

 private:
  Clock::time_point when_;
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_DEADLINE_H_
