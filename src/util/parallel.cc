#include "util/parallel.h"

#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace dd {

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

Status ParallelMorsels(ThreadPool* pool, size_t n, size_t morsel_size,
                       const std::function<Status(size_t, size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (morsel_size == 0) morsel_size = 1;
  const size_t num_morsels = NumMorsels(n, morsel_size);

  if (pool == nullptr || num_morsels == 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      size_t begin = m * morsel_size;
      size_t end = begin + morsel_size < n ? begin + morsel_size : n;
      DD_RETURN_IF_ERROR(fn(m, begin, end));
    }
    return Status::OK();
  }

  DD_COUNTER_ADD("dd.parallel.morsels", num_morsels);
  // One Status slot per morsel; workers only touch their own slot, and
  // the pool's Wait() orders those writes before the scan below.
  std::vector<Status> statuses(num_morsels);
  for (size_t m = 0; m < num_morsels; ++m) {
    size_t begin = m * morsel_size;
    size_t end = begin + morsel_size < n ? begin + morsel_size : n;
    pool->Submit([&fn, &statuses, m, begin, end] {
      statuses[m] = fn(m, begin, end);
    });
  }
  pool->Wait();
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace dd
