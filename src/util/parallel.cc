#include "util/parallel.h"

#include <bit>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace dd {

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t AdaptiveMorselSize(double cost_per_item) {
  // ≈100× the cost of one pool dispatch, so fan-out overhead stays in
  // the low single-digit percent even at the finest split.
  constexpr double kTargetMorselCost = 4096.0;
  constexpr size_t kMaxMorselSize = size_t{1} << 20;
  if (cost_per_item < 1.0) cost_per_item = 1.0;
  size_t size = static_cast<size_t>(kTargetMorselCost / cost_per_item);
  if (size < 1) size = 1;
  if (size > kMaxMorselSize) size = kMaxMorselSize;
  return std::bit_floor(size);
}

Status ParallelMorsels(ThreadPool* pool, size_t n, size_t morsel_size,
                       const std::function<Status(size_t, size_t, size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (morsel_size == 0) morsel_size = 1;
  const size_t num_morsels = NumMorsels(n, morsel_size);

  if (pool == nullptr || num_morsels == 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      size_t begin = m * morsel_size;
      size_t end = begin + morsel_size < n ? begin + morsel_size : n;
      DD_RETURN_IF_ERROR(fn(m, begin, end));
    }
    return Status::OK();
  }

  DD_COUNTER_ADD("dd.parallel.morsels", num_morsels);
  // One Status slot per morsel; workers only touch their own slot, and
  // WaitGroup()'s mutex orders those writes before the scan below.
  std::vector<Status> statuses(num_morsels);
  TaskGroup group;
  for (size_t m = 0; m < num_morsels; ++m) {
    size_t begin = m * morsel_size;
    size_t end = begin + morsel_size < n ? begin + morsel_size : n;
    pool->Submit(&group, [&fn, &statuses, m, begin, end] {
      statuses[m] = fn(m, begin, end);
    });
  }
  pool->WaitGroup(&group);
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace dd
