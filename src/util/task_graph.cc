#include "util/task_graph.h"

#include <chrono>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace dd {

TaskGraph::NodeId TaskGraph::AddNode(std::string name, NodeFn fn) {
  Node node;
  node.name = std::move(name);
  node.fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

TaskGraph::NodeId TaskGraph::AddNode(std::string name,
                                     std::function<Status()> fn) {
  return AddNode(std::move(name),
                 [fn = std::move(fn)](TraceSpan*) { return fn(); });
}

TaskGraph::NodeId TaskGraph::AddUntracedNode(std::string name,
                                             std::function<Status()> fn) {
  NodeId id = AddNode(std::move(name), std::move(fn));
  nodes_[id].traced = false;
  return id;
}

void TaskGraph::AddEdge(NodeId before, NodeId after) {
  if (before >= nodes_.size() || after >= nodes_.size() || before == after) {
    malformed_ = true;
    return;
  }
  nodes_[before].out.push_back(after);
}

void TaskGraph::ExecuteNode(Node* node, bool poisoned, bool anchor) {
  if (poisoned) {
    node->skipped = true;
    node->status = Status::OK();
    return;
  }
  // Re-parent this worker thread's span stack under the coordinator's
  // path so the node's span lands where the sequential call would.
  std::optional<TraceAnchor> reparent;
  if (anchor) reparent.emplace(trace_root_);
  const auto start = std::chrono::steady_clock::now();
  if (node->traced) {
    TraceSpan span(node->name.c_str());
    node->status = node->fn(&span);
  } else {
    node->status = node->fn(nullptr);
  }
  node->seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  node->failed = !node->status.ok();
  DD_COUNTER_ADD("dd.scheduler.nodes_executed", 1);
  DD_HISTOGRAM_OBSERVE("dd.scheduler.node_seconds", node->seconds);
}

Status TaskGraph::Run(ThreadPool* pool) {
  if (malformed_) {
    return Status::Internal("task graph has an edge with invalid node ids");
  }
  const size_t n = nodes_.size();
  std::vector<size_t> indegree(n, 0);
  std::vector<char> poisoned(n, 0);
  for (Node& node : nodes_) {
    node.status = Status::OK();
    node.failed = false;
    node.skipped = false;
    node.seconds = 0;
    for (NodeId child : node.out) ++indegree[child];
  }
  size_t processed = 0;

  if (pool == nullptr) {
    // Serial oracle: among ready nodes, always the lowest id next.
    std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
        ready;
    for (NodeId id = 0; id < n; ++id) {
      if (indegree[id] == 0) ready.push(id);
    }
    while (!ready.empty()) {
      const NodeId id = ready.top();
      ready.pop();
      ExecuteNode(&nodes_[id], poisoned[id] != 0, /*anchor=*/false);
      ++processed;
      const bool bad = nodes_[id].failed || nodes_[id].skipped;
      for (NodeId child : nodes_[id].out) {
        if (bad) poisoned[child] = 1;
        if (--indegree[child] == 0) ready.push(child);
      }
    }
  } else {
    std::mutex mu;
    TaskGroup group;
    // A node submits its newly-ready dependents from inside its own pool
    // task, before its own completion is counted against the group, so
    // the group's pending count never transiently reaches zero while
    // work remains.
    std::function<void(NodeId)> submit = [&](NodeId id) {
      pool->Submit(&group, [this, &mu, &poisoned, &indegree, &processed,
                            &submit, id] {
        bool p;
        {
          std::lock_guard<std::mutex> lock(mu);
          p = poisoned[id] != 0;  // final: all dependencies completed
        }
        ExecuteNode(&nodes_[id], p, /*anchor=*/true);
        std::vector<NodeId> now_ready;
        {
          std::lock_guard<std::mutex> lock(mu);
          ++processed;
          const bool bad = nodes_[id].failed || nodes_[id].skipped;
          for (NodeId child : nodes_[id].out) {
            if (bad) poisoned[child] = 1;
            if (--indegree[child] == 0) now_ready.push_back(child);
          }
        }
        for (NodeId child : now_ready) submit(child);
      });
    };
    // Snapshot the initially-ready set BEFORE submitting anything: once a
    // task is in flight it decrements indegrees under mu, and re-reading
    // indegree here would race with that — a node whose count just hit
    // zero could be submitted both by its finished parent and by this
    // loop, executing it twice.
    std::vector<NodeId> initial;
    for (NodeId id = 0; id < n; ++id) {
      if (indegree[id] == 0) initial.push_back(id);
    }
    for (NodeId id : initial) submit(id);
    pool->WaitGroup(&group);
  }

  if (processed < n) return Status::Internal("task graph has a cycle");
  for (NodeId id = 0; id < n; ++id) {
    if (nodes_[id].failed) return nodes_[id].status;
  }
  return Status::OK();
}

}  // namespace dd
