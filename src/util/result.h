#ifndef DEEPDIVE_UTIL_RESULT_H_
#define DEEPDIVE_UTIL_RESULT_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace dd {

/// Either a value of type T or an error Status. The value accessors
/// assert ok() in debug builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  /// Accessing the value of an error Result is a programming error;
  /// fail loudly in every build mode instead of dereferencing nullopt.
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluate `expr` (a Result<T>); on error return its Status, otherwise
/// move the value into `lhs`.
#define DD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define DD_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DD_ASSIGN_OR_RETURN_NAME(a, b) DD_ASSIGN_OR_RETURN_CONCAT(a, b)
#define DD_ASSIGN_OR_RETURN(lhs, expr) \
  DD_ASSIGN_OR_RETURN_IMPL(DD_ASSIGN_OR_RETURN_NAME(_dd_result_, __LINE__), lhs, expr)

}  // namespace dd

#endif  // DEEPDIVE_UTIL_RESULT_H_
