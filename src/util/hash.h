#ifndef DEEPDIVE_UTIL_HASH_H_
#define DEEPDIVE_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace dd {

/// FNV-1a 64-bit hash; stable across platforms so that hashed feature ids
/// and weight-tying keys are reproducible (unlike std::hash).
inline uint64_t Fnv1a(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combine two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace dd

#endif  // DEEPDIVE_UTIL_HASH_H_
