#include "util/failpoint.h"

#include <cstdio>
#include <cstdlib>

#include "util/metrics.h"
#include "util/string_util.h"

namespace dd {

std::atomic<bool> Failpoints::armed_{false};

namespace {

// Pull the env configuration in at program start so any binary honors
// $DD_FAILPOINTS without code changes. This TU is linked in whenever a
// DD_FAILPOINT site exists, which is exactly when the contract matters.
const bool g_env_configured = [] {
  Failpoints::Instance().ConfigureFromEnv();
  return true;
}();

Status ParseAction(const std::string& name, FailpointConfig* config) {
  if (name == "error") {
    config->action = FailpointAction::kError;
    config->code = StatusCode::kInternal;
  } else if (name == "corruption") {
    config->action = FailpointAction::kError;
    config->code = StatusCode::kCorruption;
  } else if (name == "ioerror") {
    config->action = FailpointAction::kError;
    config->code = StatusCode::kIoError;
  } else if (name == "short_write") {
    config->action = FailpointAction::kShortWrite;
  } else if (name == "crash") {
    config->action = FailpointAction::kCrash;
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + name);
  }
  return Status::OK();
}

}  // namespace

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Failpoints::Failpoints() = default;

void Failpoints::Enable(const std::string& name, FailpointConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& site = sites_[name];
  site.config = config;
  site.enabled = true;
  site.hits_seen = 0;
  site.fired = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoints::Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it != sites_.end()) it->second.enabled = false;
  RecomputeArmed();
}

void Failpoints::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  rng_.Seed(0x600dfeedULL);
  crash_hook_ = nullptr;
  armed_.store(false, std::memory_order_relaxed);
}

void Failpoints::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
}

Status Failpoints::Configure(const std::string& spec) {
  for (const std::string& raw_entry : Split(spec, ';')) {
    std::string entry(Trim(raw_entry));
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec entry needs name=action: " +
                                     entry);
    }
    std::string name(Trim(entry.substr(0, eq)));
    std::string rhs(Trim(entry.substr(eq + 1)));

    std::string action = rhs;
    std::string params;
    size_t paren = rhs.find('(');
    if (paren != std::string::npos) {
      if (rhs.back() != ')') {
        return Status::InvalidArgument("unbalanced '(' in failpoint spec: " + rhs);
      }
      action = rhs.substr(0, paren);
      params = rhs.substr(paren + 1, rhs.size() - paren - 2);
    }

    FailpointConfig config;
    DD_RETURN_IF_ERROR(ParseAction(action, &config));
    for (const std::string& raw_param : Split(params, ',')) {
      std::string param(Trim(raw_param));
      if (param.empty()) continue;
      size_t peq = param.find('=');
      if (peq == std::string::npos) {
        return Status::InvalidArgument("failpoint parameter needs key=value: " +
                                       param);
      }
      std::string key(Trim(param.substr(0, peq)));
      std::string value(Trim(param.substr(peq + 1)));
      char* end = nullptr;
      double num = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad failpoint parameter value: " + param);
      }
      if (key == "p") {
        config.probability = num;
      } else if (key == "hits") {
        config.max_hits = static_cast<int>(num);
      } else if (key == "skip") {
        config.skip = static_cast<int>(num);
      } else if (key == "keep") {
        config.keep_fraction = num;
      } else {
        return Status::InvalidArgument("unknown failpoint parameter: " + key);
      }
    }
    Enable(name, config);
  }
  return Status::OK();
}

void Failpoints::ConfigureFromEnv() {
  const char* seed = std::getenv("DD_FAILPOINT_SEED");
  if (seed != nullptr) Seed(std::strtoull(seed, nullptr, 10));
  const char* spec = std::getenv("DD_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0') {
    Status st = Configure(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "[failpoint] bad $DD_FAILPOINTS: %s\n",
                   st.ToString().c_str());
    }
  }
}

void Failpoints::SetCrashHook(std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_hook_ = std::move(hook);
}

bool Failpoints::RegisterSite(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  known_sites_[name] = true;
  return true;
}

std::vector<std::string> Failpoints::registered_sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, seen] : known_sites_) {
    (void)seen;
    out.push_back(name);
  }
  return out;
}

uint64_t Failpoints::fired_count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.fired;
}

bool Failpoints::ShouldFire(const char* name, FailpointConfig* config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end() || !it->second.enabled) return false;
  Site& site = it->second;
  ++site.hits_seen;
  if (site.hits_seen <= site.config.skip) return false;
  if (site.config.max_hits >= 0 &&
      site.fired >= static_cast<uint64_t>(site.config.max_hits)) {
    return false;
  }
  if (site.config.probability < 1.0 &&
      !rng_.NextBernoulli(site.config.probability)) {
    return false;
  }
  ++site.fired;
  DD_COUNTER_ADD("dd.failpoint.fired", 1);
  *config = site.config;
  return true;
}

void Failpoints::DoCrash(const std::string& name) {
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = crash_hook_;
  }
  if (hook) {
    hook(name);
    return;  // a test hook that returns leaves the site unharmed
  }
  std::fprintf(stderr, "[failpoint] crash injected at '%s'\n", name.c_str());
  std::fflush(stderr);
  std::_Exit(kFailpointCrashExitCode);
}

void Failpoints::Eval(const char* name, Status* status) {
  (void)EvalWrite(name, 0, status);
}

size_t Failpoints::EvalWrite(const char* name, size_t n, Status* status) {
  FailpointConfig config;
  if (!ShouldFire(name, &config)) return n;
  switch (config.action) {
    case FailpointAction::kError:
      *status = Status(config.code,
                       StrFormat("failpoint '%s' injected error", name));
      return n;
    case FailpointAction::kShortWrite: {
      double keep = config.keep_fraction;
      if (keep < 0.0) keep = 0.0;
      if (keep > 1.0) keep = 1.0;
      return static_cast<size_t>(static_cast<double>(n) * keep);
    }
    case FailpointAction::kCrash:
      DoCrash(name);
      return n;
  }
  return n;
}

void Failpoints::RecomputeArmed() {
  // Caller holds mu_.
  bool any = false;
  for (const auto& [name, site] : sites_) {
    (void)name;
    if (site.enabled) {
      any = true;
      break;
    }
  }
  armed_.store(any, std::memory_order_relaxed);
}

}  // namespace dd
