#ifndef DEEPDIVE_UTIL_STRING_UTIL_H_
#define DEEPDIVE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dd {

/// Split `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Split `input` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Strip leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// ASCII lowercase copy.
std::string ToLower(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Join the elements with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if every character is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// True if the first character is an ASCII uppercase letter.
bool IsCapitalized(std::string_view s);

}  // namespace dd

#endif  // DEEPDIVE_UTIL_STRING_UTIL_H_
