#ifndef DEEPDIVE_UTIL_PARALLEL_H_
#define DEEPDIVE_UTIL_PARALLEL_H_

// Morsel-driven parallelism helpers shared by the grounding pipeline
// (DESIGN.md §10). A "morsel" is a fixed-size contiguous slice of an
// index space [0, n); workers pull whole morsels off the ThreadPool
// queue, so scheduling is dynamic but the *work decomposition* is a pure
// function of (n, morsel_size) — the property the deterministic-merge
// rule builds on: per-morsel outputs concatenated in morsel-index order
// reproduce the serial iteration order exactly, at any thread count.

#include <cstddef>
#include <functional>

#include "util/status.h"

namespace dd {

class ThreadPool;

/// Number of worker threads to use when the caller asked for "hardware
/// default" (0): std::thread::hardware_concurrency(), clamped to >= 1.
size_t HardwareThreads();

/// Number of morsels covering [0, n) at `morsel_size` items each (the
/// last morsel may be short). 0 when n == 0.
inline size_t NumMorsels(size_t n, size_t morsel_size) {
  if (morsel_size == 0) morsel_size = 1;
  return (n + morsel_size - 1) / morsel_size;
}

/// Adaptive morsel sizing (DESIGN.md §11): items per morsel such that a
/// morsel carries roughly a fixed budget of work — kTargetMorselCost
/// cost units, where one unit ≈ one hash probe — so cheap scans take big
/// morsels (tiny deltas never pay fan-out overhead) and expensive
/// operators (multi-atom joins, UDF-weighted factor scans) split finely
/// enough that a handful of giant tasks cannot starve the pool. The
/// result is a power of two depending only on `cost_per_item`, never on
/// thread count or machine, so the work decomposition — and therefore
/// the deterministic morsel-order merge — is identical everywhere.
size_t AdaptiveMorselSize(double cost_per_item);

/// Runs fn(morsel_index, begin, end) for every morsel of [0, n).
///
/// With a null pool, a single morsel, or n == 0, everything runs inline
/// on the calling thread. Otherwise each morsel is one pool task; the
/// call blocks until every morsel finished. `fn` must be safe to call
/// concurrently from pool threads and must not touch shared mutable
/// state without its own synchronization — the intended pattern is
/// "write into a per-morsel buffer, merge after this returns".
///
/// Error contract: all morsels always run (no cancellation — a morsel is
/// cheap relative to the cost of tearing down in-flight workers), and
/// the returned Status is the error of the *lowest-indexed* failing
/// morsel, so the reported failure is deterministic even when thread
/// scheduling is not. Tasks must not throw; errors travel as Status.
///
/// Nestable: morsels are submitted under a TaskGroup and awaited with
/// the help-while-waiting WaitGroup(), so calling this from inside a
/// pool task (e.g. a task-graph node) cannot deadlock the pool.
///
/// Memory ordering: the pool's queue mutex orders everything a worker
/// wrote before finishing its morsel before ParallelMorsels returns, so
/// the caller may read per-morsel buffers without further fences.
Status ParallelMorsels(ThreadPool* pool, size_t n, size_t morsel_size,
                       const std::function<Status(size_t, size_t, size_t)>& fn);

}  // namespace dd

#endif  // DEEPDIVE_UTIL_PARALLEL_H_
