#include "util/crc32c.h"

#include <array>

namespace dd {

namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc ^= 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace dd
