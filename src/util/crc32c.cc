#include "util/crc32c.h"

#include <array>
#include <bit>
#include <cstring>

namespace dd {

namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slice-by-8 lookup tables: kTables[0] is the classic bytewise table,
// kTables[k] advances a byte through k additional zero bytes, so eight
// table lookups retire eight input bytes per iteration instead of one.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = tables[k - 1][i];
      tables[k][i] = (c >> 8) ^ tables[0][c & 0xff];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

uint32_t SoftwareExtend(uint32_t crc, const uint8_t* p, size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint64_t word;
      std::memcpy(&word, p, 8);
      word ^= crc;
      crc = kTables[7][word & 0xff] ^ kTables[6][(word >> 8) & 0xff] ^
            kTables[5][(word >> 16) & 0xff] ^ kTables[4][(word >> 24) & 0xff] ^
            kTables[3][(word >> 32) & 0xff] ^ kTables[2][(word >> 40) & 0xff] ^
            kTables[1][(word >> 48) & 0xff] ^ kTables[0][word >> 56];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; --n, ++p) {
    crc = kTables[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DD_CRC32C_HW 1

// SSE4.2 CRC32 instruction path (the same Castagnoli polynomial in
// silicon); compiled with a target attribute and selected at runtime, so
// the binary stays runnable on CPUs without SSE4.2.
__attribute__((target("sse4.2")))
uint32_t HardwareExtend(uint32_t crc, const uint8_t* p, size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  for (; n > 0; --n, ++p) {
    c32 = __builtin_ia32_crc32qi(c32, *p);
  }
  return c32;
}

bool HaveHardwareCrc() { return __builtin_cpu_supports("sse4.2"); }
#endif  // x86-64 GCC/Clang

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc ^= 0xffffffffu;
#ifdef DD_CRC32C_HW
  static const bool have_hw = HaveHardwareCrc();
  if (have_hw) return HardwareExtend(crc, p, n) ^ 0xffffffffu;
#endif
  return SoftwareExtend(crc, p, n) ^ 0xffffffffu;
}

}  // namespace dd
