#ifndef DEEPDIVE_UTIL_TIMER_H_
#define DEEPDIVE_UTIL_TIMER_H_

#include <chrono>

namespace dd {

/// Wall-clock stopwatch used by the benchmark harnesses and the pipeline's
/// per-phase runtime report (Figure 2).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_TIMER_H_
