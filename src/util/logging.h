#ifndef DEEPDIVE_UTIL_LOGGING_H_
#define DEEPDIVE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Used via the DD_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DD_LOG(level) \
  ::dd::internal::LogMessage(::dd::LogLevel::k##level, __FILE__, __LINE__).stream()

/// Invariant check that survives in release builds: logs and aborts.
#define DD_CHECK(cond)                                                  \
  do {                                                                  \
    if (!(cond)) {                                                      \
      DD_LOG(Error) << "Check failed: " #cond;                          \
      ::abort();                                                        \
    }                                                                   \
  } while (0)

}  // namespace dd

#endif  // DEEPDIVE_UTIL_LOGGING_H_
