#include "util/metrics.h"

#include <algorithm>
#include <functional>

namespace dd {

namespace {

/// CAS-accumulate a double into an atomic word holding its bit pattern.
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t expected = bits->load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(expected) + delta;
    if (bits->compare_exchange_weak(expected, std::bit_cast<uint64_t>(updated),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMinDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t expected = bits->load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) > v) {
    if (bits->compare_exchange_weak(expected, std::bit_cast<uint64_t>(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMaxDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t expected = bits->load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) < v) {
    if (bits->compare_exchange_weak(expected, std::bit_cast<uint64_t>(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultBounds() : std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      min_bits_(std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity())),
      max_bits_(
          std::bit_cast<uint64_t>(-std::numeric_limits<double>::infinity())) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::DefaultBounds() {
  return ExponentialBounds(1e-6, 2.0, 45);
}

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  // <= edge lands in the edge's bucket: upper_bound gives the first edge
  // strictly greater, so step back over an exact match.
  size_t bucket = static_cast<size_t>(it - bounds_.begin());
  if (bucket > 0 && bounds_[bucket - 1] == v) --bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, v);
  AtomicMinDouble(&min_bits_, v);
  AtomicMaxDouble(&max_bits_, v);
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  const double max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));

  const double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= target) {
      const double lower = b == 0 ? min : bounds_[b - 1];
      const double upper = b == bounds_.size() ? max : bounds_[b];
      const double fraction =
          (target - cumulative) / static_cast<double>(counts[b]);
      const double value = lower + (upper - lower) * fraction;
      return std::clamp(value, min, max);
    }
    cumulative = next;
  }
  return max;
}

HistogramStats Histogram::Stats() const {
  HistogramStats stats;
  stats.count = TotalCount();
  if (stats.count == 0) return stats;
  stats.sum = Sum();
  stats.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  stats.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  stats.p50 = Quantile(0.50);
  stats.p95 = Quantile(0.95);
  stats.p99 = Quantile(0.99);
  return stats;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed);
  min_bits_.store(
      std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
  max_bits_.store(
      std::bit_cast<uint64_t>(-std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

const MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void MetricsRegistry::ResetValues() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, counter] : shard.counters) counter->Reset();
    for (auto& [name, gauge] : shard.gauges) gauge->Reset();
    for (auto& [name, histogram] : shard.histograms) histogram->Reset();
  }
}

MetricsRegistry::Snapshot MetricsRegistry::Collect() const {
  Snapshot snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      snapshot.counters[name] = counter->Value();
    }
    for (const auto& [name, gauge] : shard.gauges) {
      snapshot.gauges[name] = gauge->Value();
    }
    for (const auto& [name, histogram] : shard.histograms) {
      snapshot.histograms[name] = histogram->Stats();
    }
  }
  return snapshot;
}

}  // namespace dd
