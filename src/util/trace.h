#ifndef DEEPDIVE_UTIL_TRACE_H_
#define DEEPDIVE_UTIL_TRACE_H_

// RAII phase spans (DD_TRACE_SPAN("grounding")) feeding a process-wide
// Tracer, plus RunMetrics: the combined machine-readable JSON / human
// table report over the span tree and the MetricsRegistry.
//
// Spans nest per thread: a span opened while another is live on the same
// thread records the path "parent/child" (reentrancy just extends the
// path). Counters attach to a span via Attr(). A span started on one
// thread must end on the same thread (RAII guarantees this).
//
// Disabled cost matches the metrics layer: the inline constructor checks
// MetricsEnabled() and bails before reading the clock; under
// DD_METRICS_OFF the check is a compile-time false and the span is dead
// code.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace dd {

class TraceSpan;

/// Process-wide collector of completed spans. Records are appended at
/// span destruction under a mutex (span exit is not a hot path — the hot
/// paths attach counters, not spans). The buffer is capped so a span in
/// a benchmark loop cannot eat the heap; overflow is counted.
class Tracer {
 public:
  static Tracer& Instance();

  struct SpanRecord {
    std::string path;  ///< "pipeline/grounding/grounding.build"
    std::string name;  ///< leaf name
    double seconds = 0;
    double start_seconds = 0;  ///< relative to process start / last Reset()
    int depth = 0;             ///< 0 = root span
    std::vector<std::pair<std::string, double>> attrs;
  };

  /// Spans kept before overflow counting kicks in.
  static constexpr size_t kMaxRecords = 1 << 20;

  std::vector<SpanRecord> Records() const;
  uint64_t dropped() const;

  /// Total seconds per span path (records are completion-ordered;
  /// aggregation is what reports want).
  std::vector<std::pair<std::string, double>> AggregateByPath() const;

  void Reset();

 private:
  friend class TraceSpan;
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  void Record(SpanRecord&& record);
  double SinceEpoch(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double>(t - epoch_).count();
  }

  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII phase span. Use via DD_TRACE_SPAN / DD_TRACE_SPAN_VAR.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!MetricsEnabled()) return;
    Begin(name);
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a counter/measure to this span (shows up in its JSON record).
  void Attr(const char* key, double value) {
    if (active_) attrs_.emplace_back(key, value);
  }

  /// Seconds elapsed so far (0 when tracing is disabled).
  double Seconds() const;

  /// Path of the innermost live span on this thread ("" when none).
  static std::string CurrentPath();

 private:
  friend class TraceAnchor;
  TraceSpan() = default;  ///< inert span, used by TraceAnchor only

  void Begin(const char* name);
  void End();

  bool active_ = false;
  std::string path_;
  TraceSpan* parent_ = nullptr;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> attrs_;
};

/// RAII re-parenting for pool threads: installs `path` as the innermost
/// live span on the current thread without recording anything itself, so
/// spans opened by a task-graph node running on a worker thread land at
/// the same Fig. 2 tree position ("pipeline/<node>") they would occupy
/// on the coordinator. Restores the thread's previous span stack on
/// destruction. No-op when tracing is disabled or `path` is empty.
class TraceAnchor {
 public:
  explicit TraceAnchor(const std::string& path);
  ~TraceAnchor();

  TraceAnchor(const TraceAnchor&) = delete;
  TraceAnchor& operator=(const TraceAnchor&) = delete;

 private:
  bool installed_ = false;
  TraceSpan span_;  ///< inert (never records); exists to parent children
  TraceSpan* saved_span_ = nullptr;
  std::string saved_path_;
};

#define DD_TRACE_CONCAT_INNER(a, b) a##b
#define DD_TRACE_CONCAT(a, b) DD_TRACE_CONCAT_INNER(a, b)
/// Anonymous scope span.
#define DD_TRACE_SPAN(name) \
  ::dd::TraceSpan DD_TRACE_CONCAT(_dd_trace_span_, __LINE__)(name)
/// Named span, for attaching attrs: DD_TRACE_SPAN_VAR(span, "x"); span.Attr(...)
#define DD_TRACE_SPAN_VAR(var, name) ::dd::TraceSpan var(name)

/// The run-level report: everything the registry and tracer know, as a
/// machine-readable JSON document (BENCH_*.json-compatible: flat numeric
/// leaves CI can diff) or a one-screen human table.
///
/// JSON shape:
///   {
///     "schema": "dd-metrics-v1",
///     "phases": {"extraction": 1.2, ...},   // spans directly under "pipeline"
///     "spans": [{"path":..., "seconds":..., "attrs": {...}}, ...],
///     "counters": {...}, "gauges": {...},
///     "histograms": {"name": {"count":..,"sum":..,"p50":..,"p95":..,"p99":..}}
///   }
struct RunMetrics {
  static std::string ToJson();
  static std::string ToTable();
  static Status WriteJsonFile(const std::string& path);
  /// Zero metric values and drop span records (registrations survive).
  static void Reset();
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_TRACE_H_
