#include "util/thread_pool.h"

namespace dd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(QueuedTask{std::move(task), nullptr});
  }
  task_available_.notify_one();
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++group->pending_;
    tasks_.push(QueuedTask{std::move(task), group});
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::FinishTask(TaskGroup* group) {
  --active_;
  if (group != nullptr && --group->pending_ == 0) group_done_.notify_all();
  if (tasks_.empty() && active_ == 0) all_done_.notify_all();
}

void ThreadPool::WaitGroup(TaskGroup* group) {
  std::unique_lock<std::mutex> lock(mu_);
  while (group->pending_ > 0) {
    if (!tasks_.empty()) {
      // Help: run a queued task (any group's) instead of blocking a
      // thread the group's own tasks may need.
      QueuedTask task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
      lock.unlock();
      task.fn();
      lock.lock();
      FinishTask(task.group);
    } else {
      group_done_.wait(lock);
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  TaskGroup group;
  for (size_t i = 0; i < n; ++i) {
    Submit(&group, [&fn, i] { fn(i); });
  }
  WaitGroup(&group);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task.fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      FinishTask(task.group);
    }
  }
}

}  // namespace dd
