#include "util/thread_pool.h"

namespace dd {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dd
