#ifndef DEEPDIVE_UTIL_RETRY_H_
#define DEEPDIVE_UTIL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "util/rng.h"
#include "util/status.h"

namespace dd {

/// Retry policy shared by every retrying caller in the library (extractor
/// UDFs, epoch loads): truncated exponential backoff with symmetric
/// jitter. Defined in one place so "how hard do we retry" is a reviewable
/// policy, not a per-call-site accident.
struct RetryOptions {
  /// Total attempts including the first one; <= 1 means no retry.
  int max_attempts = 3;
  /// Sleep before attempt 2. 0 disables sleeping entirely (the
  /// deterministic immediate-retry mode the extractor uses).
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Each sleep is drawn uniformly from backoff * [1-j, 1+j]. Draws come
  /// from the caller's explicitly seeded Rng, so schedules are
  /// reproducible.
  double jitter_fraction = 0.2;
  /// Which errors are worth retrying. Default: everything non-OK.
  /// Callers with permanent failure modes (e.g. Corruption of an
  /// immutable snapshot) narrow this.
  std::function<bool(const Status&)> should_retry;
};

/// Backoff (before jitter) preceding `attempt`, where attempt 2 is the
/// first retry: initial * multiplier^(attempt-2), capped at max.
inline double BackoffMillis(const RetryOptions& options, int attempt) {
  double ms = options.initial_backoff_ms;
  for (int i = 2; i < attempt; ++i) ms *= options.backoff_multiplier;
  return std::min(ms, options.max_backoff_ms);
}

/// Jittered sleep preceding `attempt`, deterministic given *rng's state.
inline double JitteredBackoffMillis(const RetryOptions& options, int attempt,
                                    Rng* rng) {
  double ms = BackoffMillis(options, attempt);
  if (options.jitter_fraction > 0 && ms > 0) {
    double factor = 1.0 + options.jitter_fraction * (2.0 * rng->NextDouble() - 1.0);
    ms *= factor;
  }
  return ms;
}

/// Run `fn` until it returns OK, retries are exhausted, or an error the
/// policy deems permanent appears. Returns the last Status. `sleep_fn`
/// is injectable so tests assert the schedule without wall-clock sleeps;
/// `on_retry(attempt, error, sleep_ms)` fires before each retry (attempt
/// is the upcoming attempt number) so callers can count/log/reset state.
inline Status RetryWithBackoff(
    const RetryOptions& options, Rng* rng, const std::function<Status()>& fn,
    const std::function<void(double)>& sleep_fn = {},
    const std::function<void(int, const Status&, double)>& on_retry = {}) {
  Status last;
  const int attempts = std::max(options.max_attempts, 1);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      double sleep_ms = JitteredBackoffMillis(options, attempt, rng);
      if (on_retry) on_retry(attempt, last, sleep_ms);
      if (sleep_ms > 0) {
        if (sleep_fn) {
          sleep_fn(sleep_ms);
        } else {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(sleep_ms));
        }
      }
    }
    last = fn();
    if (last.ok()) return last;
    if (options.should_retry && !options.should_retry(last)) return last;
  }
  return last;
}

}  // namespace dd

#endif  // DEEPDIVE_UTIL_RETRY_H_
