#include "util/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/string_util.h"

namespace dd {

namespace {

thread_local TraceSpan* t_current_span = nullptr;
thread_local std::string t_current_path;  // mirrors the live span stack

/// Minimal JSON string escaping (metric/span names are tame, but a UDF
/// name could carry anything).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no inf/nan; clamp to 0 (only reachable via a gauge set from
/// a degenerate measurement).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  return StrFormat("%.9g", v);
}

}  // namespace

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= kMaxRecords) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<Tracer::SpanRecord> Tracer::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<std::pair<std::string, double>> Tracer::AggregateByPath() const {
  std::map<std::string, double> totals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const SpanRecord& r : records_) totals[r.path] += r.seconds;
  }
  return {totals.begin(), totals.end()};
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

TraceAnchor::TraceAnchor(const std::string& path) {
  if (!MetricsEnabled() || path.empty()) return;
  installed_ = true;
  saved_span_ = t_current_span;
  saved_path_ = t_current_path;
  // The inert span never Begin()s or End()s: it only gives children a
  // parent whose depth/path match `path`, as if the anchor's owner were
  // running inside the coordinator's span stack.
  span_.path_ = path;
  span_.depth_ = static_cast<int>(std::count(path.begin(), path.end(), '/'));
  t_current_span = &span_;
  t_current_path = path;
}

TraceAnchor::~TraceAnchor() {
  if (!installed_) return;
  t_current_span = saved_span_;
  t_current_path = std::move(saved_path_);
}

void TraceSpan::Begin(const char* name) {
  active_ = true;
  parent_ = t_current_span;
  depth_ = parent_ == nullptr ? 0 : parent_->depth_ + 1;
  if (parent_ == nullptr) {
    path_ = name;
  } else {
    path_ = t_current_path + "/" + name;
  }
  t_current_span = this;
  t_current_path = path_;
  start_ = std::chrono::steady_clock::now();
}

void TraceSpan::End() {
  const auto end = std::chrono::steady_clock::now();
  t_current_span = parent_;
  t_current_path = parent_ == nullptr ? std::string() : parent_->path_;

  Tracer& tracer = Tracer::Instance();
  Tracer::SpanRecord record;
  record.path = std::move(path_);
  const size_t slash = record.path.rfind('/');
  record.name =
      slash == std::string::npos ? record.path : record.path.substr(slash + 1);
  record.seconds = std::chrono::duration<double>(end - start_).count();
  record.start_seconds = tracer.SinceEpoch(start_);
  record.depth = depth_;
  record.attrs = std::move(attrs_);
  tracer.Record(std::move(record));
}

double TraceSpan::Seconds() const {
  if (!active_) return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::string TraceSpan::CurrentPath() { return t_current_path; }

std::string RunMetrics::ToJson() {
  const MetricsRegistry::Snapshot snapshot =
      MetricsRegistry::Instance().Collect();
  const std::vector<Tracer::SpanRecord> spans = Tracer::Instance().Records();

  // Fig. 2 phases: spans recorded directly under the "pipeline" root.
  std::map<std::string, double> phases;
  for (const Tracer::SpanRecord& r : spans) {
    if (r.depth == 1 && r.path.rfind("pipeline/", 0) == 0) {
      phases[r.name] += r.seconds;
    }
  }

  std::string out = "{\n  \"schema\": \"dd-metrics-v1\",\n";
  out += StrFormat("  \"enabled\": %s,\n", MetricsEnabled() ? "true" : "false");

  out += "  \"phases\": {";
  bool first = true;
  for (const auto& [name, seconds] : phases) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",",
                     JsonEscape(name).c_str(), JsonNumber(seconds).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": [";
  first = true;
  for (const Tracer::SpanRecord& r : spans) {
    out += StrFormat(
        "%s\n    {\"path\": \"%s\", \"seconds\": %s, \"start\": %s, "
        "\"depth\": %d",
        first ? "" : ",", JsonEscape(r.path).c_str(),
        JsonNumber(r.seconds).c_str(), JsonNumber(r.start_seconds).c_str(),
        r.depth);
    if (!r.attrs.empty()) {
      out += ", \"attrs\": {";
      bool first_attr = true;
      for (const auto& [key, value] : r.attrs) {
        out += StrFormat("%s\"%s\": %s", first_attr ? "" : ", ",
                         JsonEscape(key).c_str(), JsonNumber(value).c_str());
        first_attr = false;
      }
      out += "}";
    }
    out += "}";
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("%s\n    \"%s\": %" PRIu64, first ? "" : ",",
                     JsonEscape(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",",
                     JsonEscape(name).c_str(), JsonNumber(value).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %" PRIu64
        ", \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": %s, \"p95\": %s, "
        "\"p99\": %s}",
        first ? "" : ",", JsonEscape(name).c_str(), h.count,
        JsonNumber(h.sum).c_str(), JsonNumber(h.min).c_str(),
        JsonNumber(h.max).c_str(), JsonNumber(h.p50).c_str(),
        JsonNumber(h.p95).c_str(), JsonNumber(h.p99).c_str());
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

std::string RunMetrics::ToTable() {
  const MetricsRegistry::Snapshot snapshot =
      MetricsRegistry::Instance().Collect();
  const std::vector<Tracer::SpanRecord> spans = Tracer::Instance().Records();

  std::string out;
  if (!spans.empty()) {
    out += "== spans (completion order) ==\n";
    for (const Tracer::SpanRecord& r : spans) {
      out += StrFormat("%*s%-*s %10.3f ms", r.depth * 2, "",
                       40 - r.depth * 2, r.path.c_str(), r.seconds * 1e3);
      for (const auto& [key, value] : r.attrs) {
        out += StrFormat("  %s=%.6g", key.c_str(), value);
      }
      out += "\n";
    }
  }
  if (!snapshot.counters.empty()) {
    out += "== counters ==\n";
    for (const auto& [name, value] : snapshot.counters) {
      out += StrFormat("%-44s %12" PRIu64 "\n", name.c_str(), value);
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "== gauges ==\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out += StrFormat("%-44s %12.6g\n", name.c_str(), value);
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "== histograms ==\n";
    out += StrFormat("%-44s %9s %12s %12s %12s %12s\n", "name", "count", "sum",
                     "p50", "p95", "p99");
    for (const auto& [name, h] : snapshot.histograms) {
      out += StrFormat("%-44s %9" PRIu64 " %12.6g %12.6g %12.6g %12.6g\n",
                       name.c_str(), h.count, h.sum, h.p50, h.p95, h.p99);
    }
  }
  const uint64_t dropped = Tracer::Instance().dropped();
  if (dropped > 0) {
    out += StrFormat("(! %" PRIu64 " span records dropped past the %zu cap)\n",
                     dropped, Tracer::kMaxRecords);
  }
  return out;
}

Status RunMetrics::WriteJsonFile(const std::string& path) {
  const std::string json = ToJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics report for writing: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::IoError("short write of metrics report: " + path);
  }
  return Status::OK();
}

void RunMetrics::Reset() {
  MetricsRegistry::Instance().ResetValues();
  Tracer::Instance().Reset();
}

}  // namespace dd
