#ifndef DEEPDIVE_UTIL_TASK_GRAPH_H_
#define DEEPDIVE_UTIL_TASK_GRAPH_H_

// Dependency-aware task scheduling over ThreadPool (DESIGN.md §11).
//
// A TaskGraph is a DAG of named nodes, each a Status-returning body.
// Run(pool) executes every node after all of its dependencies, fanning
// independent nodes out across the pool; Run(nullptr) executes nodes on
// the calling thread in a deterministic topological order (ready nodes
// by ascending id) — the scheduling oracle the parallel path is
// differential-tested against. Node bodies may themselves call
// ParallelMorsels on the same pool: morsel fan-out nests via TaskGroup's
// help-while-waiting discipline.
//
// Error contract: a node whose dependency failed (or was skipped) is
// skipped, transitively and deterministically; Run returns the status of
// the lowest-id failed node regardless of thread scheduling. A cycle
// yields Internal.
//
// Tracing: each node's body runs inside a TraceSpan named after the
// node. On pool threads the span is re-parented under set_trace_root()'s
// path via TraceAnchor, so phase spans keep their Fig. 2 tree position
// and per-phase time is attributed to the node that spent it, not to
// whichever thread happened to host it.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace dd {

class ThreadPool;
class TraceSpan;

class TaskGraph {
 public:
  using NodeId = size_t;
  /// Node body. The span pointer is the node's own TraceSpan (for
  /// Attr()); null for untraced nodes or when tracing is disabled.
  using NodeFn = std::function<Status(TraceSpan*)>;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Add a node; returns its id. Ids are dense and creation-ordered —
  /// the serial oracle runs ready nodes in ascending-id order, so add
  /// nodes in the order the sequential program would execute them.
  NodeId AddNode(std::string name, NodeFn fn);
  NodeId AddNode(std::string name, std::function<Status()> fn);

  /// Node that opens no TraceSpan (bookkeeping between phases that has
  /// never been a Fig. 2 phase; keeps the phase report's key set stable).
  NodeId AddUntracedNode(std::string name, std::function<Status()> fn);

  /// Require `before` to complete before `after` starts. Both ids must
  /// come from AddNode; a bad edge surfaces as Internal from Run().
  void AddEdge(NodeId before, NodeId after);

  /// Anchor node spans under this path (e.g. "pipeline") when bodies run
  /// on pool threads. Typically TraceSpan::CurrentPath() at build time.
  void set_trace_root(std::string path) { trace_root_ = std::move(path); }

  /// Execute the graph; blocks until every node ran or was skipped.
  /// Null pool = serial deterministic order. Re-runnable (per-run state
  /// is reset), though typical callers build a fresh graph per run.
  Status Run(ThreadPool* pool);

  /// Wall-clock seconds node `id` spent executing in the last Run (0 if
  /// skipped). Unlike a phase stopwatch around a blocking call, this is
  /// time *inside* the node — accurate attribution under overlap.
  double NodeSeconds(NodeId id) const { return nodes_[id].seconds; }

  /// The node's status from the last Run (OK if skipped).
  const Status& NodeStatus(NodeId id) const { return nodes_[id].status; }

  /// True if the node was skipped in the last Run because a dependency
  /// failed.
  bool NodeSkipped(NodeId id) const { return nodes_[id].skipped; }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    std::string name;
    NodeFn fn;
    bool traced = true;
    std::vector<NodeId> out;  ///< dependents
    // Per-run state, reset by Run(); written by at most one thread and
    // ordered before the coordinator's reads by the pool mutex.
    Status status;
    bool failed = false;
    bool skipped = false;
    double seconds = 0;
  };

  /// Run one node body (or mark it skipped). `anchor` re-parents the
  /// node's span under trace_root_ (pool threads only).
  void ExecuteNode(Node* node, bool poisoned, bool anchor);

  std::vector<Node> nodes_;
  std::string trace_root_;
  bool malformed_ = false;  ///< an AddEdge had out-of-range ids
};

}  // namespace dd

#endif  // DEEPDIVE_UTIL_TASK_GRAPH_H_
