#ifndef DEEPDIVE_UTIL_METRICS_H_
#define DEEPDIVE_UTIL_METRICS_H_

// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, the raw material of the Fig. 2 phase breakdown and the
// CI perf ratchet (ci/bench_gate.py).
//
// Concurrency model (two layers of sharding):
//  * metric *lookup/creation* takes a name-sharded registry mutex, paid
//    once per call site (the DD_* macros cache the returned pointer in a
//    function-local static);
//  * metric *updates* are relaxed atomics; counters additionally stripe
//    across cache-line-padded shards indexed per thread, so concurrent
//    increments never bounce one cache line.
//
// Cost when off:
//  * runtime-disabled (MetricsRegistry::SetEnabled(false)): every update
//    is one relaxed atomic load and a predicted-not-taken branch;
//  * compile-time disabled (-DDD_METRICS_OFF, CMake option
//    DD_METRICS_OFF): MetricsEnabled() is a constant false and the
//    whole update inlines away to nothing.
// bench/bench_metrics.cc measures both paths into BENCH_metrics.json.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dd {

namespace metrics_internal {

inline std::atomic<bool> g_enabled{true};
inline std::atomic<uint32_t> g_thread_slots{0};

/// Stable small integer per thread, assigned round-robin on first use.
inline uint32_t ThreadSlot() {
  thread_local const uint32_t slot =
      g_thread_slots.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace metrics_internal

/// Hot-path switch. With DD_METRICS_OFF defined this is a compile-time
/// constant and every instrumentation site folds to nothing.
inline bool MetricsEnabled() {
#ifdef DD_METRICS_OFF
  return false;
#else
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Monotonic event count. Add() is wait-free: one relaxed fetch_add on a
/// per-thread-striped, cache-line-padded shard.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[metrics_internal::ThreadSlot() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-writer-wins instantaneous value (e.g. deltas/sec of the most
/// recent sampling epoch). Stored as IEEE-754 bits in one atomic word.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Point-in-time summary of a Histogram (what serializes to JSON).
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Fixed-bucket histogram for latency/size distributions. Bucket `i`
/// counts observations <= bounds[i] (last bucket is the +inf overflow).
/// Observe() is a binary search plus relaxed atomic increments; quantiles
/// are linearly interpolated inside the selected bucket, clamped to the
/// observed [min, max].
class Histogram {
 public:
  /// `bounds` must be strictly ascending upper edges; empty selects
  /// DefaultBounds().
  explicit Histogram(std::vector<double> bounds = {});

  /// `count` edges: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);
  /// 1us .. ~9 hours in 2x steps — a fit for seconds-valued latencies and
  /// generic magnitudes alike.
  static std::vector<double> DefaultBounds();

  void Observe(double v);

  uint64_t TotalCount() const;
  double Sum() const;
  /// q in [0, 1]; 0 with no observations.
  double Quantile(double q) const;
  HistogramStats Stats() const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double bits, CAS-accumulated
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

/// Name -> metric map, sharded by name hash. Metrics are created on
/// first request and live for the process lifetime, so pointers handed
/// out are permanently valid (the DD_* macros rely on this to cache).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Runtime switch for the whole layer (also gates trace spans).
  static void SetEnabled(bool enabled) {
    metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
  }
  static bool enabled() { return MetricsEnabled(); }

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is consulted only on first creation.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Zero every value, keep every registration (cached pointers stay
  /// valid). Test teardown.
  void ResetValues();

  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
  };
  Snapshot Collect() const;

 private:
  MetricsRegistry() = default;

  static constexpr size_t kShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;

  std::array<Shard, kShards> shards_;
};

// Instrumentation macros. `name` must be a stable string literal: the
// registry pointer is resolved once and cached in a function-local
// static. Under DD_METRICS_OFF the update body is dead code and the
// whole site compiles away.
#define DD_METRIC_COUNTER(name)                                     \
  ([]() -> ::dd::Counter* {                                         \
    static ::dd::Counter* _dd_metric =                              \
        ::dd::MetricsRegistry::Instance().GetCounter(name);         \
    return _dd_metric;                                              \
  }())
#define DD_METRIC_GAUGE(name)                                       \
  ([]() -> ::dd::Gauge* {                                           \
    static ::dd::Gauge* _dd_metric =                                \
        ::dd::MetricsRegistry::Instance().GetGauge(name);           \
    return _dd_metric;                                              \
  }())
#define DD_METRIC_HISTOGRAM(name)                                   \
  ([]() -> ::dd::Histogram* {                                       \
    static ::dd::Histogram* _dd_metric =                            \
        ::dd::MetricsRegistry::Instance().GetHistogram(name);       \
    return _dd_metric;                                              \
  }())

#ifndef DD_METRICS_OFF
#define DD_COUNTER_ADD(name, n) DD_METRIC_COUNTER(name)->Add(n)
#define DD_GAUGE_SET(name, v) DD_METRIC_GAUGE(name)->Set(v)
#define DD_HISTOGRAM_OBSERVE(name, v) DD_METRIC_HISTOGRAM(name)->Observe(v)
#else
#define DD_COUNTER_ADD(name, n) \
  do {                          \
  } while (0)
#define DD_GAUGE_SET(name, v) \
  do {                        \
  } while (0)
#define DD_HISTOGRAM_OBSERVE(name, v) \
  do {                                \
  } while (0)
#endif

}  // namespace dd

#endif  // DEEPDIVE_UTIL_METRICS_H_
