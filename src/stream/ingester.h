#ifndef DEEPDIVE_STREAM_INGESTER_H_
#define DEEPDIVE_STREAM_INGESTER_H_

// Streaming extraction front end (DESIGN.md §14): a bounded-memory,
// backpressured pipeline from raw bytes to relational tuples.
//
//   ByteSource -> Chunker -> [bounded chunk queue] -> N extraction
//   workers -> [bounded result queue] -> ordered merger -> StreamSink
//
// The stages run as concurrent nodes of a TaskGraph over a dedicated
// ThreadPool (the same scheduler substrate as the batch phases; the pool
// is private because every node parks on a queue, which must never
// starve the pipeline's phase pool). Memory is bounded end-to-end: a
// chunk's payload bytes are charged against StreamOptions::byte_budget
// when the producer admits it and returned only after the merger has
// applied its extraction results, so source bytes in flight — queued,
// being extracted, or waiting for in-order merge — never exceed the
// budget (plus at most one over-budget record, which is admitted alone).
//
// Determinism: workers extract chunks in whatever order the scheduler
// hands them out, but the merger applies ChunkResults in strictly
// ascending chunk sequence, and chunk decomposition is a pure function
// of the stream bytes. The sink therefore observes exactly the record
// order of the source — byte-identical tables and factor graphs at any
// chunk size, worker count, or interleaving (the differential suite's
// contract).
//
// Failure model (§8): errors at the chunk-read, hand-off, parse, and
// merge sites (each a registered stream.* failpoint) propagate as clean
// Status values: the failing node trips a shared abort that closes both
// queues and unblocks every stage, Ingest() joins all nodes and returns
// the lowest-node-id failure — never a hang, never a leak. A per-record
// extractor failure is retried once and then quarantines the record
// (counted, reported, stream continues), mirroring the batch pipeline's
// UDF hardening.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "stream/stream.h"
#include "util/bounded_queue.h"
#include "util/status.h"

namespace dd {

/// One record handed to the extractor: a view into the chunk's bytes
/// (no copy) plus the stream-global record index, which is identical no
/// matter how the stream was chunked.
struct StreamRecord {
  uint64_t index = 0;
  std::string_view line;  ///< without the trailing '\n'
};

/// Record-level extraction UDF: parse one record, emit tuples. Must be
/// deterministic and must not touch shared mutable state — instances run
/// concurrently on different records.
using StreamExtractor =
    std::function<Status(const StreamRecord&, TupleEmitter*)>;

/// Extraction output of one chunk, merged downstream in seq order.
struct ChunkResult {
  uint64_t seq = 0;
  uint64_t chunk_bytes = 0;  ///< payload bytes to return to the budget
  uint64_t num_records = 0;
  uint64_t quarantined = 0;
  uint64_t retries = 0;
  Status first_quarantine_error;  ///< first record-level failure, if any
  /// Emissions in exact record order (record-major, relation-sorted
  /// within a record — the order a batch loop over the same records and
  /// the same per-record TupleEmitter would produce). Keeping the
  /// interleaving intact is what makes downstream insertion sequences —
  /// and therefore hash-map iteration orders and table row ids —
  /// byte-identical to the batch oracle's.
  std::vector<std::pair<std::string, Tuple>> tuples;

  /// Approximate heap footprint, the cost charged to the result queue.
  size_t ApproxBytes() const;
};

/// Receives per-chunk extraction results in strictly ascending seq order
/// from the merger node (single-threaded calls).
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual Status Apply(ChunkResult&& result) = 0;
};

/// Folds results into per-relation delta sets — the order-insensitive
/// view (tests compare contents, not sequences).
class DeltaStreamSink : public StreamSink {
 public:
  Status Apply(ChunkResult&& result) override;
  const std::map<std::string, DeltaSet>& deltas() const { return deltas_; }
  std::map<std::string, DeltaSet>* mutable_deltas() { return &deltas_; }

 private:
  std::map<std::string, DeltaSet> deltas_;
};

/// Inserts tuples straight into catalog tables in record order — row ids
/// come out exactly as a batch loader inserting the same stream would
/// assign them. Tables are created on demand from the program's
/// declarations; an emission into an undeclared relation fails the
/// stream.
class CatalogStreamSink : public StreamSink {
 public:
  CatalogStreamSink(Catalog* catalog, const DdlogProgram* program)
      : catalog_(catalog), program_(program) {}
  Status Apply(ChunkResult&& result) override;

 private:
  Catalog* catalog_;
  const DdlogProgram* program_;
};

struct StreamOptions {
  /// Record-aligned chunking (CLP InputBuffer pattern).
  size_t chunk_bytes = 64 * 1024;
  size_t max_record_bytes = 1 << 20;
  /// End-to-end in-flight byte budget (admission -> merge). The
  /// backpressure contract: source bytes in flight never exceed this
  /// (plus at most one over-budget record admitted alone).
  size_t byte_budget = 4 * 1024 * 1024;
  /// What a producer does when the budget is exhausted: wait for the
  /// consumers (kBlock, lossless) or drop the chunk and count it
  /// (kShed, for sources that must never stall).
  BoundedByteQueue<Chunk>::Policy policy = BoundedByteQueue<Chunk>::Policy::kBlock;
  /// Sharded extraction workers. 0 = hardware concurrency.
  size_t num_workers = 0;
  /// Like the batch pipeline: a record whose extractor fails is retried
  /// once, then quarantined. When more than this fraction of all records
  /// is quarantined the ingest itself fails with the first error.
  double max_quarantine_fraction = 0.5;
};

struct IngestStats {
  uint64_t bytes_in = 0;        ///< bytes consumed from the source
  uint64_t records = 0;         ///< records extracted (incl. quarantined)
  uint64_t chunks = 0;          ///< chunks admitted
  uint64_t merged_chunks = 0;   ///< chunks whose results reached the sink
  uint64_t records_quarantined = 0;
  uint64_t extractor_retries = 0;
  uint64_t chunks_shed = 0;     ///< kShed policy: chunks dropped at admission
  uint64_t shed_bytes = 0;
  size_t peak_in_flight_bytes = 0;  ///< high-water mark vs byte_budget
  size_t byte_budget = 0;
  bool stopped_early = false;   ///< RequestStop() cut the stream short
  double seconds = 0;           ///< wall time inside Ingest()
};

class StreamIngester {
 public:
  StreamIngester(StreamOptions options, StreamExtractor extractor);

  /// Drive the full pipeline until the source is exhausted (or
  /// RequestStop(), or an error). Blocks; all worker state is joined
  /// before returning. Reusable: each call starts from fresh stats.
  Status Ingest(ByteSource* source, StreamSink* sink);

  /// Graceful mid-stream shutdown, callable from any thread: the
  /// producer stops admitting new chunks; everything already admitted is
  /// extracted and merged (no loss of admitted records), then Ingest()
  /// returns OK with stats().stopped_early set. The merged prefix is
  /// always chunk-aligned: exactly chunks [0, stats().merged_chunks).
  void RequestStop() { stop_requested_.store(true, std::memory_order_relaxed); }

  const IngestStats& stats() const { return stats_; }

 private:
  struct Shared;  // per-Ingest queues and flags

  Status ProduceChunks(Shared* shared, ByteSource* source);
  Status ExtractChunks(Shared* shared);
  Status MergeResults(Shared* shared, StreamSink* sink);
  Status ExtractOneChunk(const Chunk& chunk, ChunkResult* result);

  StreamOptions options_;
  StreamExtractor extractor_;
  std::atomic<bool> stop_requested_{false};
  IngestStats stats_;
  Status first_quarantine_error_;  ///< written only by the merger node
};

}  // namespace dd

#endif  // DEEPDIVE_STREAM_INGESTER_H_
