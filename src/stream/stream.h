#ifndef DEEPDIVE_STREAM_STREAM_H_
#define DEEPDIVE_STREAM_STREAM_H_

// Buffer-based streaming front end, stage 1: byte sources and the
// record-aligned chunker (DESIGN.md §14). The chunker is the CLP-style
// InputBuffer: it reads fixed-size blocks from a ByteSource and cuts
// them at record boundaries, so every chunk it emits holds only whole
// records and the decomposition of a stream into chunks is a pure
// function of (stream bytes, chunk_bytes) — never of timing or thread
// count. That purity is what lets the differential harness demand
// byte-identical output at any chunk size.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace dd {

/// A pull-based byte stream. Read() fills up to `n` bytes and returns
/// how many it produced; 0 means end of stream. Implementations need not
/// be thread-safe: the chunker is the only reader.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual Result<size_t> Read(char* buf, size_t n) = 0;
};

/// In-memory source over bytes the caller keeps alive (corpus text,
/// test fixtures).
class StringSource : public ByteSource {
 public:
  explicit StringSource(std::string_view bytes) : bytes_(bytes) {}
  Result<size_t> Read(char* buf, size_t n) override;

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Buffered file source (log files, fifos). Fails Read() with IoError if
/// the file cannot be opened or a read fails.
class FileSource : public ByteSource {
 public:
  explicit FileSource(std::string path) : path_(std::move(path)) {}
  ~FileSource() override;
  Result<size_t> Read(char* buf, size_t n) override;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool opened_ = false;
};

/// A contiguous run of whole records cut from the stream. Records are
/// '\n'-terminated lines; the final record of a stream may lack the
/// terminator. `seq` numbers chunks densely from 0 in stream order and
/// `first_record` is the stream-global index of the chunk's first
/// record, so record numbering is identical no matter how the stream was
/// chunked.
struct Chunk {
  uint64_t seq = 0;
  uint64_t first_record = 0;
  uint64_t num_records = 0;
  std::string bytes;
};

struct ChunkerOptions {
  /// Target chunk payload. A chunk closes at the last record boundary at
  /// or before this size; it exceeds it only when a single record does.
  size_t chunk_bytes = 64 * 1024;
  /// A record longer than this is a malformed stream (ParseError) rather
  /// than a license to buffer without bound.
  size_t max_record_bytes = 1 << 20;
};

/// Cuts a ByteSource into record-aligned chunks. Single-threaded; owns
/// the carry buffer for the partial record spanning two reads.
class Chunker {
 public:
  Chunker(ByteSource* source, ChunkerOptions options);

  /// Produce the next chunk. Returns false at end of stream (*out
  /// untouched). Read errors and over-long records surface as Status;
  /// the stream.chunk_read failpoint injects here.
  Result<bool> Next(Chunk* out);

  uint64_t bytes_read() const { return bytes_read_; }

 private:
  ByteSource* source_;
  ChunkerOptions options_;
  std::string carry_;  ///< partial record from the previous block
  uint64_t next_seq_ = 0;
  uint64_t next_record_ = 0;
  uint64_t bytes_read_ = 0;
  bool eof_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_STREAM_STREAM_H_
