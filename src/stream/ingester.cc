#include "stream/ingester.h"

#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/task_graph.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace dd {

size_t ChunkResult::ApproxBytes() const {
  size_t bytes = sizeof(ChunkResult);
  for (const auto& [relation, t] : tuples) {
    bytes += relation.size() + 48 + 16 * t.size();  // pair + 16-byte Values
  }
  return bytes;
}

Status DeltaStreamSink::Apply(ChunkResult&& result) {
  for (auto& [relation, t] : result.tuples) {
    deltas_[relation][std::move(t)] += 1;
  }
  return Status::OK();
}

Status CatalogStreamSink::Apply(ChunkResult&& result) {
  // Emissions interleave relations in record order; memoize the last
  // relation's table so the common run-of-same-relation case is one
  // pointer chase.
  const std::string* last_relation = nullptr;
  Table* table = nullptr;
  for (auto& [relation, t] : result.tuples) {
    if (last_relation == nullptr || relation != *last_relation) {
      const RelationDecl* decl = program_->FindDecl(relation);
      if (decl == nullptr) {
        return Status::NotFound(
            "stream extractor emitted into undeclared relation: " + relation);
      }
      DD_ASSIGN_OR_RETURN(table,
                          catalog_->GetOrCreateTable(relation, decl->schema));
      last_relation = &relation;
    }
    DD_RETURN_IF_ERROR(table->Insert(std::move(t)).status());
  }
  return Status::OK();
}

/// Per-Ingest plumbing shared by the three stage kinds. The chunk queue
/// holds the end-to-end byte account (explicit release at merge); the
/// result queue is a plain blocking hand-off whose entries are bounded
/// because at most budget/chunk_bytes chunks are in flight.
struct StreamIngester::Shared {
  explicit Shared(const StreamOptions& options)
      : chunk_queue(options.byte_budget, options.policy,
                    BoundedByteQueue<Chunk>::ReleaseMode::kExplicit),
        result_queue(options.byte_budget,
                     BoundedByteQueue<ChunkResult>::Policy::kBlock,
                     BoundedByteQueue<ChunkResult>::ReleaseMode::kOnPop) {}

  /// Error teardown: discard queued work and unblock every stage. The
  /// node that tripped it returns its Status; everyone else drains out
  /// cleanly and the TaskGraph attributes the failure to the lowest id.
  void Abort() {
    chunk_queue.Abort();
    result_queue.Abort();
  }

  /// Called by every worker exactly once on exit; the last one closes
  /// the result queue so the merger knows the stream of results ended.
  void WorkerDone() {
    if (workers_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      result_queue.Close();
    }
  }

  BoundedByteQueue<Chunk> chunk_queue;
  BoundedByteQueue<ChunkResult> result_queue;
  std::atomic<size_t> workers_left{0};
};

StreamIngester::StreamIngester(StreamOptions options, StreamExtractor extractor)
    : options_(std::move(options)), extractor_(std::move(extractor)) {
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 1;
  if (options_.byte_budget == 0) options_.byte_budget = 1;
}

Status StreamIngester::ProduceChunks(Shared* shared, ByteSource* source) {
  ChunkerOptions copts;
  copts.chunk_bytes = options_.chunk_bytes;
  copts.max_record_bytes = options_.max_record_bytes;
  Chunker chunker(source, copts);

  uint64_t admit_seq = 0;  // merge order is over *admitted* chunks only
  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed)) {
      stats_.stopped_early = true;
      break;
    }
    Chunk chunk;
    Result<bool> more = chunker.Next(&chunk);
    if (!more.ok()) {
      shared->Abort();
      stats_.bytes_in = chunker.bytes_read();
      return more.status();
    }
    if (!*more) break;

    Status injected;
    DD_FAILPOINT(failpoints::kStreamHandoff, &injected);
    if (!injected.ok()) {
      shared->Abort();
      stats_.bytes_in = chunker.bytes_read();
      return injected;
    }

    const size_t bytes = chunk.bytes.size();
    chunk.seq = admit_seq;  // shed chunks must not leave gaps in seq
    const auto pushed = shared->chunk_queue.Push(std::move(chunk), bytes);
    if (pushed == BoundedByteQueue<Chunk>::PushResult::kClosed) break;
    if (pushed == BoundedByteQueue<Chunk>::PushResult::kShed) {
      DD_COUNTER_ADD("dd.stream.chunks_shed", 1);
      continue;
    }
    ++admit_seq;
    ++stats_.chunks;
    DD_COUNTER_ADD("dd.stream.chunks_admitted", 1);
  }
  stats_.bytes_in = chunker.bytes_read();
  shared->chunk_queue.Close();
  return Status::OK();
}

Status StreamIngester::ExtractOneChunk(const Chunk& chunk,
                                       ChunkResult* result) {
  result->seq = chunk.seq;
  result->chunk_bytes = chunk.bytes.size();

  Status injected;
  DD_FAILPOINT(failpoints::kStreamParse, &injected);
  DD_RETURN_IF_ERROR(injected);

  const std::string& bytes = chunk.bytes;
  size_t start = 0;
  for (uint64_t r = 0; r < chunk.num_records; ++r) {
    size_t end = bytes.find('\n', start);
    if (end == std::string::npos) end = bytes.size();
    StreamRecord record;
    record.index = chunk.first_record + r;
    record.line = std::string_view(bytes.data() + start, end - start);
    start = end + 1;
    ++result->num_records;

    // Extraction UDFs are the flakiest stage of a KBC system (§3):
    // retry once on a fresh emitter, then quarantine the record rather
    // than kill the stream.
    TupleEmitter emitter;
    Status status = extractor_(record, &emitter);
    if (!status.ok()) {
      ++result->retries;
      emitter = TupleEmitter();
      status = extractor_(record, &emitter);
    }
    if (!status.ok()) {
      ++result->quarantined;
      if (result->first_quarantine_error.ok()) {
        result->first_quarantine_error = status;
      }
      DD_COUNTER_ADD("dd.stream.records_quarantined", 1);
      continue;
    }
    for (const auto& [relation, rows] : emitter.emitted()) {
      for (const Tuple& t : rows) {
        result->tuples.emplace_back(relation, t);
      }
    }
  }
  return Status::OK();
}

Status StreamIngester::ExtractChunks(Shared* shared) {
  Chunk chunk;
  while (shared->chunk_queue.Pop(&chunk)) {
    ChunkResult result;
    Status status = ExtractOneChunk(chunk, &result);
    if (!status.ok()) {
      shared->Abort();
      shared->WorkerDone();
      return status;
    }
    const size_t cost = result.ApproxBytes();
    const auto pushed = shared->result_queue.Push(std::move(result), cost);
    if (pushed != BoundedByteQueue<ChunkResult>::PushResult::kOk) break;
  }
  shared->WorkerDone();
  return Status::OK();
}

Status StreamIngester::MergeResults(Shared* shared, StreamSink* sink) {
  std::map<uint64_t, ChunkResult> pending;  // out-of-order reorder buffer
  uint64_t next_seq = 0;
  ChunkResult incoming;
  while (shared->result_queue.Pop(&incoming)) {
    pending.emplace(incoming.seq, std::move(incoming));
    while (!pending.empty() && pending.begin()->first == next_seq) {
      ChunkResult current = std::move(pending.begin()->second);
      pending.erase(pending.begin());

      Status injected;
      DD_FAILPOINT(failpoints::kStreamMerge, &injected);
      if (!injected.ok()) {
        shared->Abort();
        return injected;
      }

      stats_.records += current.num_records;
      stats_.records_quarantined += current.quarantined;
      stats_.extractor_retries += current.retries;
      if (first_quarantine_error_.ok() &&
          !current.first_quarantine_error.ok()) {
        first_quarantine_error_ = current.first_quarantine_error;
      }
      const uint64_t chunk_bytes = current.chunk_bytes;
      Status status = sink->Apply(std::move(current));
      if (!status.ok()) {
        shared->Abort();
        return status;
      }
      shared->chunk_queue.Release(chunk_bytes);
      ++next_seq;
      ++stats_.merged_chunks;
      DD_COUNTER_ADD("dd.stream.chunks_merged", 1);
    }
  }
  return Status::OK();
}

Status StreamIngester::Ingest(ByteSource* source, StreamSink* sink) {
  stats_ = IngestStats();
  stats_.byte_budget = options_.byte_budget;
  first_quarantine_error_ = Status::OK();
  stop_requested_.store(false, std::memory_order_relaxed);

  const size_t workers =
      options_.num_workers == 0 ? HardwareThreads() : options_.num_workers;
  Shared shared(options_);
  shared.workers_left.store(workers, std::memory_order_relaxed);

  Stopwatch watch;
  DD_TRACE_SPAN_VAR(ingest_span, "stream.ingest");

  // The stages are concurrent nodes of one TaskGraph: no edges — they
  // pipeline through the bounded queues, and Run() is the join. Node ids
  // ascend read -> extract -> merge, so the lowest-id-failure rule
  // attributes an aborted stream to its root cause, not to knock-on
  // closures downstream. The pool is sized so every node has a thread
  // even while others are parked on a queue (the caller helps too).
  TaskGraph tg;
  tg.set_trace_root(TraceSpan::CurrentPath());
  tg.AddUntracedNode("stream.read",
                     [this, &shared, source]() -> Status {
                       return ProduceChunks(&shared, source);
                     });
  for (size_t w = 0; w < workers; ++w) {
    tg.AddUntracedNode("stream.extract",
                       [this, &shared]() -> Status {
                         return ExtractChunks(&shared);
                       });
  }
  tg.AddUntracedNode("stream.merge",
                     [this, &shared, sink]() -> Status {
                       return MergeResults(&shared, sink);
                     });

  ThreadPool pool(workers + 2);
  Status status = tg.Run(&pool);

  stats_.peak_in_flight_bytes = shared.chunk_queue.peak_bytes();
  stats_.chunks_shed = shared.chunk_queue.shed_count();
  stats_.shed_bytes = shared.chunk_queue.shed_bytes();
  stats_.seconds = watch.Seconds();
  DD_COUNTER_ADD("dd.stream.bytes_in", stats_.bytes_in);

  if (!status.ok()) return status;
  if (stats_.records_quarantined > 0 &&
      static_cast<double>(stats_.records_quarantined) >
          options_.max_quarantine_fraction *
              static_cast<double>(stats_.records)) {
    // Systematic extractor failure: surface the first record's error.
    return first_quarantine_error_;
  }
  return Status::OK();
}

}  // namespace dd
