#include "stream/stream.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace dd {

Result<size_t> StringSource::Read(char* buf, size_t n) {
  const size_t remaining = bytes_.size() - pos_;
  const size_t take = std::min(n, remaining);
  std::memcpy(buf, bytes_.data() + pos_, take);
  pos_ += take;
  return take;
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<size_t> FileSource::Read(char* buf, size_t n) {
  if (!opened_) {
    opened_ = true;
    file_ = std::fopen(path_.c_str(), "rb");
    if (file_ == nullptr) {
      return Status::IoError("cannot open stream source: " + path_);
    }
  }
  if (file_ == nullptr) {
    return Status::IoError("stream source failed to open: " + path_);
  }
  const size_t got = std::fread(buf, 1, n, file_);
  if (got < n && std::ferror(file_) != 0) {
    return Status::IoError("read error on stream source: " + path_);
  }
  return got;
}

Chunker::Chunker(ByteSource* source, ChunkerOptions options)
    : source_(source), options_(options) {
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 1;
  if (options_.max_record_bytes < options_.chunk_bytes) {
    options_.max_record_bytes = options_.chunk_bytes;
  }
}

Result<bool> Chunker::Next(Chunk* out) {
  if (eof_ && carry_.empty()) return false;

  std::string buffer = std::move(carry_);
  carry_.clear();

  // Fill until the buffer holds at least one whole record and reaches
  // the target size (or the stream ends). The buffer only grows past
  // chunk_bytes while it contains no record boundary at all — one
  // over-long record, bounded by max_record_bytes.
  while (!eof_) {
    if (buffer.size() >= options_.chunk_bytes &&
        buffer.find('\n') != std::string::npos) {
      break;
    }
    if (buffer.find('\n') == std::string::npos &&
        buffer.size() > options_.max_record_bytes) {
      return Status::ParseError(StrFormat(
          "stream record exceeds max_record_bytes (%zu): no record "
          "terminator in the first %zu bytes",
          options_.max_record_bytes, buffer.size()));
    }
    Status injected;
    DD_FAILPOINT(failpoints::kStreamChunkRead, &injected);
    if (!injected.ok()) return injected;

    const size_t old_size = buffer.size();
    // Refill to the target, or grow by a whole block while hunting for
    // the boundary of an over-long record.
    const size_t want = old_size < options_.chunk_bytes
                            ? options_.chunk_bytes - old_size
                            : options_.chunk_bytes;
    buffer.resize(old_size + want);
    DD_ASSIGN_OR_RETURN(const size_t got,
                        source_->Read(buffer.data() + old_size, want));
    buffer.resize(old_size + got);
    bytes_read_ += got;
    if (got == 0) eof_ = true;
  }

  if (buffer.empty()) return false;

  // Cut at the last record boundary; the tail is carried into the next
  // chunk. At end of stream an unterminated tail is the final record.
  size_t cut = buffer.rfind('\n');
  if (cut == std::string::npos) {
    if (!eof_) {
      return Status::ParseError(StrFormat(
          "stream record exceeds max_record_bytes (%zu)",
          options_.max_record_bytes));
    }
    cut = buffer.size();  // final unterminated record
  } else {
    cut += 1;  // keep the terminator with its record
    if (!eof_ || cut < buffer.size()) {
      carry_ = buffer.substr(cut);
      buffer.resize(cut);
    }
  }

  out->seq = next_seq_++;
  out->first_record = next_record_;
  uint64_t records = 0;
  for (char c : buffer) {
    if (c == '\n') ++records;
  }
  if (!buffer.empty() && buffer.back() != '\n') ++records;  // EOF tail
  out->num_records = records;
  next_record_ += records;
  out->bytes = std::move(buffer);
  return true;
}

}  // namespace dd
