#ifndef DEEPDIVE_FACTOR_IO_H_
#define DEEPDIVE_FACTOR_IO_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"
#include "util/rng.h"

namespace dd {

/// Text serialization of factor graphs — the equivalent of the files
/// DeepDive ships between the grounding phase (inside the database) and
/// the out-of-process DimmWitted sampler (§3.3: "These data structures
/// are then passed to the sampler, which runs outside the database").
///
/// Format (line-oriented, '#' comments allowed):
///   ddfg 1                          header + version
///   V <num_variables>
///   v <id> <is_evidence 0|1> <value 0|1>        (only non-default rows)
///   W <num_weights>
///   w <id> <value> <is_fixed 0|1> <description...>
///   F <num_factors>
///   f <func> <weight_id> <arity> (<var_id> <is_positive 0|1>)*
std::string SerializeGraph(const FactorGraph& graph);

/// Parse a serialized graph. The result is finalized. Fails with
/// ParseError on malformed input (wrong counts, unknown factor function,
/// out-of-range ids).
Result<FactorGraph> DeserializeGraph(const std::string& text);

/// ---- Crash-consistent binary snapshots --------------------------------
///
/// Container format (all integers little-endian):
///   magic   "DDSN"             4 bytes
///   version u32                (currently 1)
///   repeated sections:
///     tag          4 ASCII bytes  (e.g. "GRPH")
///     payload_len  u64
///     payload      payload_len bytes
///     crc32c       u32            over tag + payload_len + payload
///   terminator: a section with tag "END." and payload_len 0
///
/// Every read is bounds-checked; truncation, bit flips, and length
/// overruns are detected (magic/version check, per-section CRC32C that
/// also covers the tag and length fields, strict terminator + no
/// trailing bytes) and reported as Status::Corruption with the byte
/// offset — never undefined behavior. Files are written to a temp path,
/// fsync'ed, and atomically renamed into place, so a crash mid-write
/// leaves either the previous snapshot or none, never a torn one.

class SnapshotWriter {
 public:
  /// Append a section. `tag` must be exactly 4 ASCII characters and
  /// unique within the snapshot.
  void AddSection(const std::string& tag, std::string payload);

  /// Serialize the container to bytes (in-memory path, used by tests).
  std::string Encode() const;

  /// Encode + write via temp file + fsync + atomic rename.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// One section located inside a container buffer. `offset` is the byte
/// position of the payload within the *file* (after the 12-byte tag+len
/// header) — binary sections use it to validate their alignment padding,
/// which is computed against file offsets so that an mmap of the file
/// (page-aligned base) yields 8-byte-aligned section contents.
struct SectionSpan {
  size_t offset = 0;
  std::string_view payload;
};

/// Zero-copy container index: validates the full container (magic,
/// version, per-section CRC32C, terminator, no trailing bytes) and hands
/// out string_views into the caller's buffer. The buffer must outlive the
/// view. SnapshotReader below is the owning convenience wrapper;
/// MappedSnapshot (storage/snapshot.h) parses mmap'ed files with this.
class SnapshotView {
 public:
  /// Any structural defect yields Status::Corruption (with offset),
  /// never a crash — every read is bounds-checked before dereference.
  static Result<SnapshotView> Parse(std::string_view bytes);

  bool Has(const std::string& tag) const { return sections_.count(tag) > 0; }
  Result<SectionSpan> Section(const std::string& tag) const;
  const std::map<std::string, SectionSpan>& sections() const { return sections_; }

 private:
  std::map<std::string, SectionSpan> sections_;
};

class SnapshotReader {
 public:
  /// Validate a container and index its sections (copies payloads; use
  /// SnapshotView to stay zero-copy). Any structural defect yields
  /// Status::Corruption (with offset), never a crash.
  static Result<SnapshotReader> Parse(std::string bytes);

  /// Read `path` fully (checked I/O) and Parse.
  static Result<SnapshotReader> ReadFile(const std::string& path);

  bool Has(const std::string& tag) const { return sections_.count(tag) > 0; }
  Result<std::string> Section(const std::string& tag) const;
  const std::map<std::string, std::string>& sections() const { return sections_; }

 private:
  std::map<std::string, std::string> sections_;
};

/// ---- Typed snapshot of pipeline/learning/inference state --------------
///
/// One container carries any subset of:
///   GRBN  factor graph, binary columnar format (default; 8-byte-aligned
///         arrays readable in place — see storage/snapshot.h)
///   DICT  string pool for GRBN weight descriptions
///   GRPH  factor graph (text format above; the debugging oracle —
///         written when text_graph is set, always readable)
///   WGHT  dense weight vector (overrides the graph's weights)
///   CHNS  per-chain variable assignments (one byte per variable)
///   CNTS  per-variable marginal tallies (u64)
///   MRGN  marginal probabilities (doubles)
///   RNGS  RNG states (s0, s1 pairs)
///   META  key=value lines (epoch counters, seeds, learning rate, ...)
struct GraphSnapshot {
  bool has_graph = false;
  /// Encode the graph as the line-oriented ddfg text (GRPH) instead of
  /// the binary GRBN+DICT sections. Decode sets this to whichever form
  /// the file carried, so decode→encode round-trips are byte-exact.
  bool text_graph = false;
  FactorGraph graph;
  std::vector<double> weights;
  std::vector<std::vector<uint8_t>> chains;
  std::vector<uint64_t> counts;
  std::vector<double> marginals;
  std::vector<RngState> rng_states;
  std::map<std::string, std::string> meta;
};

std::string EncodeGraphSnapshot(const GraphSnapshot& snapshot);
Result<GraphSnapshot> DecodeGraphSnapshot(const std::string& bytes);

/// Atomic (temp + fsync + rename) snapshot write.
Status WriteGraphSnapshot(const GraphSnapshot& snapshot, const std::string& path);
/// Load + validate; Corruption on any truncated/bit-flipped file.
Result<GraphSnapshot> ReadGraphSnapshot(const std::string& path);

/// Exact (bit-preserving) double <-> string for snapshot metadata, via
/// hex float formatting.
std::string FormatExactDouble(double v);
Result<double> ParseExactDouble(const std::string& s);

/// stat()-based existence check (shared by checkpoint/recovery code).
bool FileExists(const std::string& path);

/// Read a whole file with checked chunked freads (ferror surfaces as
/// IoError, never a silent short read). Honors the kFactorIoRead
/// failpoint.
Result<std::string> ReadFileBytes(const std::string& path);

/// Durable write protocol shared by every snapshot producer: temp file,
/// full write, fsync, atomic rename. Honors the kFactorIoWrite (short
/// write) and kFactorIoRename failpoints.
Status WriteBytesAtomic(const std::string& bytes, const std::string& path);

}  // namespace dd

#endif  // DEEPDIVE_FACTOR_IO_H_
