#ifndef DEEPDIVE_FACTOR_IO_H_
#define DEEPDIVE_FACTOR_IO_H_

#include <string>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

/// Text serialization of factor graphs — the equivalent of the files
/// DeepDive ships between the grounding phase (inside the database) and
/// the out-of-process DimmWitted sampler (§3.3: "These data structures
/// are then passed to the sampler, which runs outside the database").
///
/// Format (line-oriented, '#' comments allowed):
///   ddfg 1                          header + version
///   V <num_variables>
///   v <id> <is_evidence 0|1> <value 0|1>        (only non-default rows)
///   W <num_weights>
///   w <id> <value> <is_fixed 0|1> <description...>
///   F <num_factors>
///   f <func> <weight_id> <arity> (<var_id> <is_positive 0|1>)*
std::string SerializeGraph(const FactorGraph& graph);

/// Parse a serialized graph. The result is finalized. Fails with
/// ParseError on malformed input (wrong counts, unknown factor function,
/// out-of-range ids).
Result<FactorGraph> DeserializeGraph(const std::string& text);

}  // namespace dd

#endif  // DEEPDIVE_FACTOR_IO_H_
