#include "factor/io.h"

#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include "storage/snapshot.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dd {

namespace {

Result<FactorFunc> FuncFromName(const std::string& name) {
  if (name == "istrue") return FactorFunc::kIsTrue;
  if (name == "and") return FactorFunc::kAnd;
  if (name == "or") return FactorFunc::kOr;
  if (name == "imply") return FactorFunc::kImply;
  if (name == "equal") return FactorFunc::kEqual;
  return Status::ParseError("unknown factor function: " + name);
}

}  // namespace

std::string SerializeGraph(const FactorGraph& graph) {
  std::string out;
  out += "ddfg 1\n";
  out += StrFormat("V %zu\n", graph.num_variables());
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    if (graph.is_evidence(v)) {
      out += StrFormat("v %u 1 %d\n", v, graph.evidence_value(v) ? 1 : 0);
    }
  }
  out += StrFormat("W %zu\n", graph.num_weights());
  for (uint32_t w = 0; w < graph.num_weights(); ++w) {
    const Weight& weight = graph.weight(w);
    out += StrFormat("w %u %.17g %d %s\n", w, weight.value, weight.is_fixed ? 1 : 0,
                     weight.description.c_str());
  }
  out += StrFormat("F %zu\n", graph.num_factors());
  for (uint32_t f = 0; f < graph.num_factors(); ++f) {
    size_t arity = 0;
    const Literal* literals = graph.factor_literals(f, &arity);
    out += StrFormat("f %s %u %zu", FactorFuncName(graph.factor_func(f)),
                     graph.factor_weight(f), arity);
    for (size_t i = 0; i < arity; ++i) {
      out += StrFormat(" %u %d", literals[i].var, literals[i].is_positive ? 1 : 0);
    }
    out += '\n';
  }
  return out;
}

Result<FactorGraph> DeserializeGraph(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto error = [&](const std::string& msg) {
    return Status::ParseError(StrFormat("line %d: %s", lineno, msg.c_str()));
  };

  FactorGraph graph;
  bool header_seen = false;
  size_t declared_vars = 0, declared_weights = 0, declared_factors = 0;
  size_t seen_weights = 0, seen_factors = 0;
  std::vector<std::pair<bool, bool>> evidence;  // (is_evidence, value) per var

  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = SplitWhitespace(trimmed);

    if (!header_seen) {
      if (fields.size() != 2 || fields[0] != "ddfg" || fields[1] != "1") {
        return error("expected header 'ddfg 1'");
      }
      header_seen = true;
      continue;
    }
    const std::string& tag = fields[0];
    if (tag == "V") {
      if (fields.size() != 2) return error("V expects a count");
      declared_vars = std::strtoull(fields[1].c_str(), nullptr, 10);
      evidence.assign(declared_vars, {false, false});
    } else if (tag == "v") {
      if (fields.size() != 4) return error("v expects: id is_evidence value");
      size_t id = std::strtoull(fields[1].c_str(), nullptr, 10);
      if (id >= declared_vars) return error("variable id out of range");
      evidence[id] = {fields[2] == "1", fields[3] == "1"};
    } else if (tag == "W") {
      if (fields.size() != 2) return error("W expects a count");
      declared_weights = std::strtoull(fields[1].c_str(), nullptr, 10);
      // Variables must be materialized before weights/factors reference them.
      for (size_t v = 0; v < declared_vars; ++v) {
        graph.AddVariable(evidence[v].first, evidence[v].second);
      }
    } else if (tag == "w") {
      if (fields.size() < 4) return error("w expects: id value is_fixed desc");
      size_t id = std::strtoull(fields[1].c_str(), nullptr, 10);
      if (id != seen_weights) return error("weights must appear in id order");
      double value = std::strtod(fields[2].c_str(), nullptr);
      bool fixed = fields[3] == "1";
      std::string description;
      for (size_t i = 4; i < fields.size(); ++i) {
        if (i > 4) description += ' ';
        description += fields[i];
      }
      graph.AddWeight(value, fixed, description);
      ++seen_weights;
    } else if (tag == "F") {
      if (fields.size() != 2) return error("F expects a count");
      declared_factors = std::strtoull(fields[1].c_str(), nullptr, 10);
    } else if (tag == "f") {
      if (fields.size() < 4) return error("f expects: func weight arity literals...");
      DD_ASSIGN_OR_RETURN(FactorFunc func, FuncFromName(fields[1]));
      uint32_t weight = static_cast<uint32_t>(std::strtoul(fields[2].c_str(),
                                                           nullptr, 10));
      size_t arity = std::strtoull(fields[3].c_str(), nullptr, 10);
      if (fields.size() != 4 + 2 * arity) return error("literal count mismatch");
      std::vector<Literal> literals;
      for (size_t i = 0; i < arity; ++i) {
        Literal l;
        l.var = static_cast<uint32_t>(
            std::strtoul(fields[4 + 2 * i].c_str(), nullptr, 10));
        l.is_positive = fields[5 + 2 * i] == "1";
        literals.push_back(l);
      }
      Status st = graph.AddFactor(func, weight, std::move(literals));
      if (!st.ok()) return error(st.ToString());
      ++seen_factors;
    } else {
      return error("unknown record tag: " + tag);
    }
  }
  if (!header_seen) return Status::ParseError("empty input (missing header)");
  if (graph.num_variables() != declared_vars) {
    return Status::ParseError("missing W section (variables not materialized)");
  }
  if (seen_weights != declared_weights) {
    return Status::ParseError(StrFormat("declared %zu weights, found %zu",
                                        declared_weights, seen_weights));
  }
  if (seen_factors != declared_factors) {
    return Status::ParseError(StrFormat("declared %zu factors, found %zu",
                                        declared_factors, seen_factors));
  }
  DD_RETURN_IF_ERROR(graph.Finalize());
  return graph;
}

// ---- Binary snapshot container ----------------------------------------

namespace {

constexpr char kMagic[4] = {'D', 'D', 'S', 'N'};
constexpr uint32_t kSnapshotVersion = 1;
constexpr char kEndTag[] = "END.";

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void AppendDouble(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

/// Bounds-checked sequential reader over a byte buffer. Every extraction
/// verifies the remaining byte count and reports Status::Corruption with
/// the offset on truncation — partial structs are never produced.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return buf_.size() - pos_; }

  Status ReadBytes(void* out, size_t n, const char* what) {
    if (n > remaining()) {
      return Status::Corruption(
          StrFormat("truncated %s at offset %zu: need %zu bytes, have %zu", what,
                    pos_, n, remaining()));
    }
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadString(std::string* out, size_t n, const char* what) {
    if (n > remaining()) {
      return Status::Corruption(
          StrFormat("truncated %s at offset %zu: need %zu bytes, have %zu", what,
                    pos_, n, remaining()));
    }
    out->assign(buf_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(size_t n, const char* what) {
    if (n > remaining()) {
      return Status::Corruption(
          StrFormat("truncated %s at offset %zu: need %zu bytes, have %zu", what,
                    pos_, n, remaining()));
    }
    pos_ += n;
    return Status::OK();
  }

  Status ReadU32(uint32_t* out, const char* what) {
    uint8_t b[4];
    DD_RETURN_IF_ERROR(ReadBytes(b, 4, what));
    *out = 0;
    for (int i = 0; i < 4; ++i) *out |= static_cast<uint32_t>(b[i]) << (8 * i);
    return Status::OK();
  }

  Status ReadU64(uint64_t* out, const char* what) {
    uint8_t b[8];
    DD_RETURN_IF_ERROR(ReadBytes(b, 8, what));
    *out = 0;
    for (int i = 0; i < 8; ++i) *out |= static_cast<uint64_t>(b[i]) << (8 * i);
    return Status::OK();
  }

  Status ReadDouble(double* out, const char* what) {
    uint64_t bits = 0;
    DD_RETURN_IF_ERROR(ReadU64(&bits, what));
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }

 private:
  std::string_view buf_;
  size_t pos_ = 0;
};

}  // namespace

/// Read a whole file with checked chunked freads (no size assumptions;
/// ferror is surfaced as IoError, never a short silent read).
Result<std::string> ReadFileBytes(const std::string& path) {
  Status injected;
  DD_FAILPOINT(failpoints::kFactorIoRead, &injected);
  if (!injected.ok()) return injected;

  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open '%s' for reading: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  std::string bytes;
  char chunk[1 << 16];
  for (;;) {
    size_t n = std::fread(chunk, 1, sizeof(chunk), f);
    bytes.append(chunk, n);
    if (n < sizeof(chunk)) {
      if (std::ferror(f)) {
        std::fclose(f);
        return Status::IoError(StrFormat("read error on '%s' at offset %zu",
                                         path.c_str(), bytes.size()));
      }
      break;  // EOF
    }
  }
  std::fclose(f);
  return bytes;
}

void SnapshotWriter::AddSection(const std::string& tag, std::string payload) {
  DD_CHECK(tag.size() == 4);
  sections_.emplace_back(tag, std::move(payload));
}

std::string SnapshotWriter::Encode() const {
  std::string out;
  out.append(kMagic, 4);
  AppendU32(&out, kSnapshotVersion);
  auto append_section = [&out](const std::string& tag, const std::string& payload) {
    std::string header = tag;
    AppendU64(&header, payload.size());
    uint32_t crc = Crc32c(header.data(), header.size());
    crc = Crc32cExtend(crc, payload.data(), payload.size());
    out += header;
    out += payload;
    AppendU32(&out, crc);
  };
  for (const auto& [tag, payload] : sections_) append_section(tag, payload);
  append_section(kEndTag, "");
  return out;
}

/// Durable write protocol shared by every snapshot producer: temp file,
/// full write, fsync, atomic rename. A fired short-write failpoint
/// shrinks the byte count silently (simulating a crash that persisted a
/// partial buffer and still got renamed) so reader-side Corruption
/// detection is exercised end to end.
Status WriteBytesAtomic(const std::string& bytes, const std::string& path) {
  size_t to_write = bytes.size();
  Status injected;
  DD_FAILPOINT_WRITE(failpoints::kFactorIoWrite, to_write, &injected);
  if (!injected.ok()) return injected;

  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open '%s' for writing: %s",
                                     tmp.c_str(), std::strerror(errno)));
  }
  size_t written = std::fwrite(bytes.data(), 1, to_write, f);
  if (written != to_write || std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("short write to '%s' (%zu of %zu bytes)",
                                     tmp.c_str(), written, to_write));
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("close failed on '%s'", tmp.c_str()));
  }

  DD_FAILPOINT(failpoints::kFactorIoRename, &injected);
  if (!injected.ok()) {
    std::remove(tmp.c_str());
    return injected;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("rename '%s' -> '%s' failed: %s", tmp.c_str(),
                                     path.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  return WriteBytesAtomic(Encode(), path);
}

Result<SnapshotView> SnapshotView::Parse(std::string_view bytes) {
  ByteReader r(bytes);
  char magic[4];
  DD_RETURN_IF_ERROR(r.ReadBytes(magic, 4, "snapshot magic"));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic: not a DDSN snapshot");
  }
  uint32_t version = 0;
  DD_RETURN_IF_ERROR(r.ReadU32(&version, "snapshot version"));
  if (version != kSnapshotVersion) {
    return Status::Corruption(StrFormat("unsupported snapshot version %u", version));
  }

  SnapshotView view;
  for (;;) {
    size_t section_offset = r.offset();
    std::string tag;
    DD_RETURN_IF_ERROR(r.ReadString(&tag, 4, "section tag"));
    uint64_t len = 0;
    DD_RETURN_IF_ERROR(r.ReadU64(&len, "section length"));
    if (len > r.remaining()) {
      return Status::Corruption(
          StrFormat("section '%s' at offset %zu declares %llu payload bytes but "
                    "only %zu remain",
                    tag.c_str(), section_offset,
                    static_cast<unsigned long long>(len), r.remaining()));
    }
    size_t payload_offset = r.offset();
    std::string_view payload = bytes.substr(payload_offset,
                                            static_cast<size_t>(len));
    DD_RETURN_IF_ERROR(r.Skip(static_cast<size_t>(len), "section payload"));
    uint32_t stored_crc = 0;
    DD_RETURN_IF_ERROR(r.ReadU32(&stored_crc, "section checksum"));
    std::string header = tag;
    AppendU64(&header, payload.size());
    uint32_t computed = Crc32c(header.data(), header.size());
    computed = Crc32cExtend(computed, payload.data(), payload.size());
    if (computed != stored_crc) {
      return Status::Corruption(
          StrFormat("checksum mismatch in section '%s' at offset %zu "
                    "(stored %08x, computed %08x)",
                    tag.c_str(), section_offset, stored_crc, computed));
    }
    if (tag == kEndTag) {
      if (len != 0) {
        return Status::Corruption("terminator section carries a payload");
      }
      if (r.remaining() != 0) {
        return Status::Corruption(StrFormat(
            "%zu trailing bytes after terminator at offset %zu", r.remaining(),
            r.offset()));
      }
      break;
    }
    if (view.sections_.count(tag) > 0) {
      return Status::Corruption(StrFormat("duplicate section '%s' at offset %zu",
                                          tag.c_str(), section_offset));
    }
    view.sections_.emplace(tag, SectionSpan{payload_offset, payload});
  }
  return view;
}

Result<SectionSpan> SnapshotView::Section(const std::string& tag) const {
  auto it = sections_.find(tag);
  if (it == sections_.end()) {
    return Status::NotFound("snapshot has no section '" + tag + "'");
  }
  return it->second;
}

Result<SnapshotReader> SnapshotReader::Parse(std::string bytes) {
  DD_ASSIGN_OR_RETURN(SnapshotView view, SnapshotView::Parse(bytes));
  SnapshotReader reader;
  for (const auto& [tag, span] : view.sections()) {
    reader.sections_.emplace(tag, std::string(span.payload));
  }
  return reader;
}

Result<SnapshotReader> SnapshotReader::ReadFile(const std::string& path) {
  DD_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return Parse(std::move(bytes));
}

Result<std::string> SnapshotReader::Section(const std::string& tag) const {
  auto it = sections_.find(tag);
  if (it == sections_.end()) {
    return Status::NotFound("snapshot has no section '" + tag + "'");
  }
  return it->second;
}

// ---- Typed graph snapshot ---------------------------------------------

namespace {

/// Decode-side guard: a section's payload must be consumed exactly.
Status ExpectConsumed(const ByteReader& r, const char* tag) {
  if (r.remaining() != 0) {
    return Status::Corruption(StrFormat("%zu trailing bytes in section '%s'",
                                        r.remaining(), tag));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeGraphSnapshot(const GraphSnapshot& snapshot) {
  SnapshotWriter writer;
  SectionLayout layout;
  auto add_section = [&](const char* tag, std::string payload) {
    layout.Add(payload.size());
    writer.AddSection(tag, std::move(payload));
  };
  // Binary sections are pad-prefixed against their file offset so their
  // content is 8-byte-aligned in the file (mmap readers get aligned
  // arrays); the layout tracker must therefore see every section, in
  // file order.
  auto add_aligned = [&](const char* tag, std::string content) {
    add_section(tag,
                WithAlignmentPad(layout.NextPayloadOffset(), std::move(content)));
  };
  if (snapshot.has_graph) {
    if (snapshot.text_graph) {
      add_section("GRPH", SerializeGraph(snapshot.graph));
    } else {
      StringPoolBuilder pool;
      std::string grbn;
      EncodeBinaryGraph(snapshot.graph, &pool, &grbn);
      add_aligned("GRBN", std::move(grbn));
      add_aligned("DICT", pool.EncodeContent());
    }
  }
  if (!snapshot.weights.empty()) {
    std::string payload;
    AppendU64(&payload, snapshot.weights.size());
    for (double w : snapshot.weights) AppendDouble(&payload, w);
    add_section("WGHT", std::move(payload));
  }
  if (!snapshot.chains.empty()) {
    std::string payload;
    AppendU64(&payload, snapshot.chains.size());
    for (const auto& chain : snapshot.chains) {
      AppendU64(&payload, chain.size());
      payload.append(reinterpret_cast<const char*>(chain.data()), chain.size());
    }
    add_section("CHNS", std::move(payload));
  }
  if (!snapshot.counts.empty()) {
    std::string payload;
    AppendU64(&payload, snapshot.counts.size());
    for (uint64_t c : snapshot.counts) AppendU64(&payload, c);
    add_section("CNTS", std::move(payload));
  }
  if (!snapshot.marginals.empty()) {
    std::string payload;
    AppendU64(&payload, snapshot.marginals.size());
    for (double m : snapshot.marginals) AppendDouble(&payload, m);
    add_section("MRGN", std::move(payload));
  }
  if (!snapshot.rng_states.empty()) {
    std::string payload;
    AppendU64(&payload, snapshot.rng_states.size());
    for (const RngState& st : snapshot.rng_states) {
      AppendU64(&payload, st.s0);
      AppendU64(&payload, st.s1);
    }
    add_section("RNGS", std::move(payload));
  }
  if (!snapshot.meta.empty()) {
    std::string payload;
    for (const auto& [key, value] : snapshot.meta) {
      payload += key;
      payload += '=';
      payload += value;
      payload += '\n';
    }
    add_section("META", std::move(payload));
  }
  return writer.Encode();
}

Result<GraphSnapshot> DecodeGraphSnapshot(const std::string& bytes) {
  DD_ASSIGN_OR_RETURN(SnapshotView reader, SnapshotView::Parse(bytes));
  GraphSnapshot snap;

  if (reader.Has("GRBN")) {
    // Binary graph + its string pool. Pads are validated against the
    // sections' file offsets recorded by the container parse.
    DD_ASSIGN_OR_RETURN(SectionSpan grbn_span, reader.Section("GRBN"));
    Result<SectionSpan> dict_span = reader.Section("DICT");
    if (!dict_span.ok()) {
      return Status::Corruption("GRBN section without its DICT string pool");
    }
    DD_ASSIGN_OR_RETURN(
        std::string_view dict_content,
        StripAlignmentPad(dict_span->offset, dict_span->payload));
    DD_ASSIGN_OR_RETURN(StringPoolView pool, StringPoolView::Parse(dict_content));
    DD_ASSIGN_OR_RETURN(
        std::string_view grbn_content,
        StripAlignmentPad(grbn_span.offset, grbn_span.payload));
    DD_ASSIGN_OR_RETURN(BinaryGraphView view,
                        ParseBinaryGraph(grbn_content, pool));
    DD_ASSIGN_OR_RETURN(snap.graph, GraphFromBinary(view, pool));
    snap.has_graph = true;
    snap.text_graph = false;
  } else if (reader.Has("GRPH")) {
    DD_ASSIGN_OR_RETURN(SectionSpan span, reader.Section("GRPH"));
    Result<FactorGraph> graph = DeserializeGraph(std::string(span.payload));
    if (!graph.ok()) {
      // The payload passed its CRC, so a parse failure means the bytes
      // were written wrong, not flipped — still corruption to a caller.
      return Status::Corruption("GRPH section unparsable: " +
                                graph.status().ToString());
    }
    snap.graph = std::move(*graph);
    snap.has_graph = true;
    snap.text_graph = true;
  }
  if (reader.Has("WGHT")) {
    DD_ASSIGN_OR_RETURN(SectionSpan span, reader.Section("WGHT"));
    ByteReader r(span.payload);
    uint64_t count = 0;
    DD_RETURN_IF_ERROR(r.ReadU64(&count, "WGHT count"));
    if (r.remaining() % 8 != 0 || count != r.remaining() / 8) {
      return Status::Corruption(StrFormat(
          "WGHT declares %llu weights but carries %zu payload bytes",
          static_cast<unsigned long long>(count), r.remaining()));
    }
    snap.weights.resize(static_cast<size_t>(count));
    for (double& w : snap.weights) DD_RETURN_IF_ERROR(r.ReadDouble(&w, "weight"));
    DD_RETURN_IF_ERROR(ExpectConsumed(r, "WGHT"));
  }
  if (reader.Has("CHNS")) {
    DD_ASSIGN_OR_RETURN(SectionSpan span, reader.Section("CHNS"));
    ByteReader r(span.payload);
    uint64_t num_chains = 0;
    DD_RETURN_IF_ERROR(r.ReadU64(&num_chains, "CHNS count"));
    // Each chain needs at least its 8-byte length prefix.
    if (num_chains > r.remaining() / 8) {
      return Status::Corruption(StrFormat("CHNS declares %llu chains in a %zu-byte "
                                          "payload",
                                          static_cast<unsigned long long>(num_chains),
                                          span.payload.size()));
    }
    snap.chains.resize(static_cast<size_t>(num_chains));
    for (auto& chain : snap.chains) {
      uint64_t len = 0;
      DD_RETURN_IF_ERROR(r.ReadU64(&len, "chain length"));
      if (len > r.remaining()) {
        return Status::Corruption(StrFormat(
            "chain declares %llu bytes but only %zu remain in CHNS",
            static_cast<unsigned long long>(len), r.remaining()));
      }
      chain.resize(static_cast<size_t>(len));
      DD_RETURN_IF_ERROR(r.ReadBytes(chain.data(), chain.size(), "chain bytes"));
      for (uint8_t b : chain) {
        if (b > 1) return Status::Corruption("chain byte outside {0,1}");
      }
    }
    DD_RETURN_IF_ERROR(ExpectConsumed(r, "CHNS"));
  }
  if (reader.Has("CNTS")) {
    DD_ASSIGN_OR_RETURN(SectionSpan span, reader.Section("CNTS"));
    ByteReader r(span.payload);
    uint64_t count = 0;
    DD_RETURN_IF_ERROR(r.ReadU64(&count, "CNTS count"));
    if (r.remaining() % 8 != 0 || count != r.remaining() / 8) {
      return Status::Corruption(StrFormat(
          "CNTS declares %llu tallies but carries %zu payload bytes",
          static_cast<unsigned long long>(count), r.remaining()));
    }
    snap.counts.resize(static_cast<size_t>(count));
    for (uint64_t& c : snap.counts) DD_RETURN_IF_ERROR(r.ReadU64(&c, "tally"));
    DD_RETURN_IF_ERROR(ExpectConsumed(r, "CNTS"));
  }
  if (reader.Has("MRGN")) {
    DD_ASSIGN_OR_RETURN(SectionSpan span, reader.Section("MRGN"));
    ByteReader r(span.payload);
    uint64_t count = 0;
    DD_RETURN_IF_ERROR(r.ReadU64(&count, "MRGN count"));
    if (r.remaining() % 8 != 0 || count != r.remaining() / 8) {
      return Status::Corruption(StrFormat(
          "MRGN declares %llu marginals but carries %zu payload bytes",
          static_cast<unsigned long long>(count), r.remaining()));
    }
    snap.marginals.resize(static_cast<size_t>(count));
    for (double& m : snap.marginals) {
      DD_RETURN_IF_ERROR(r.ReadDouble(&m, "marginal"));
    }
    DD_RETURN_IF_ERROR(ExpectConsumed(r, "MRGN"));
  }
  if (reader.Has("RNGS")) {
    DD_ASSIGN_OR_RETURN(SectionSpan span, reader.Section("RNGS"));
    ByteReader r(span.payload);
    uint64_t count = 0;
    DD_RETURN_IF_ERROR(r.ReadU64(&count, "RNGS count"));
    if (r.remaining() % 16 != 0 || count != r.remaining() / 16) {
      return Status::Corruption(StrFormat(
          "RNGS declares %llu states but carries %zu payload bytes",
          static_cast<unsigned long long>(count), r.remaining()));
    }
    snap.rng_states.resize(static_cast<size_t>(count));
    for (RngState& st : snap.rng_states) {
      DD_RETURN_IF_ERROR(r.ReadU64(&st.s0, "rng s0"));
      DD_RETURN_IF_ERROR(r.ReadU64(&st.s1, "rng s1"));
    }
    DD_RETURN_IF_ERROR(ExpectConsumed(r, "RNGS"));
  }
  if (reader.Has("META")) {
    DD_ASSIGN_OR_RETURN(SectionSpan span, reader.Section("META"));
    for (const std::string& line : Split(std::string(span.payload), '\n')) {
      if (line.empty()) continue;
      size_t eq = line.find('=');
      if (eq == std::string::npos) {
        return Status::Corruption("META line without '=': " + line);
      }
      snap.meta[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
  return snap;
}

Status WriteGraphSnapshot(const GraphSnapshot& snapshot, const std::string& path) {
  return WriteBytesAtomic(EncodeGraphSnapshot(snapshot), path);
}

Result<GraphSnapshot> ReadGraphSnapshot(const std::string& path) {
  DD_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DecodeGraphSnapshot(bytes);
}

std::string FormatExactDouble(double v) { return StrFormat("%a", v); }

Result<double> ParseExactDouble(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::Corruption("not a hex-float value: " + s);
  }
  return v;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace dd
