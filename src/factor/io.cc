#include "factor/io.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace dd {

namespace {

Result<FactorFunc> FuncFromName(const std::string& name) {
  if (name == "istrue") return FactorFunc::kIsTrue;
  if (name == "and") return FactorFunc::kAnd;
  if (name == "or") return FactorFunc::kOr;
  if (name == "imply") return FactorFunc::kImply;
  if (name == "equal") return FactorFunc::kEqual;
  return Status::ParseError("unknown factor function: " + name);
}

}  // namespace

std::string SerializeGraph(const FactorGraph& graph) {
  std::string out;
  out += "ddfg 1\n";
  out += StrFormat("V %zu\n", graph.num_variables());
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    if (graph.is_evidence(v)) {
      out += StrFormat("v %u 1 %d\n", v, graph.evidence_value(v) ? 1 : 0);
    }
  }
  out += StrFormat("W %zu\n", graph.num_weights());
  for (uint32_t w = 0; w < graph.num_weights(); ++w) {
    const Weight& weight = graph.weight(w);
    out += StrFormat("w %u %.17g %d %s\n", w, weight.value, weight.is_fixed ? 1 : 0,
                     weight.description.c_str());
  }
  out += StrFormat("F %zu\n", graph.num_factors());
  for (uint32_t f = 0; f < graph.num_factors(); ++f) {
    size_t arity = 0;
    const Literal* literals = graph.factor_literals(f, &arity);
    out += StrFormat("f %s %u %zu", FactorFuncName(graph.factor_func(f)),
                     graph.factor_weight(f), arity);
    for (size_t i = 0; i < arity; ++i) {
      out += StrFormat(" %u %d", literals[i].var, literals[i].is_positive ? 1 : 0);
    }
    out += '\n';
  }
  return out;
}

Result<FactorGraph> DeserializeGraph(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto error = [&](const std::string& msg) {
    return Status::ParseError(StrFormat("line %d: %s", lineno, msg.c_str()));
  };

  FactorGraph graph;
  bool header_seen = false;
  size_t declared_vars = 0, declared_weights = 0, declared_factors = 0;
  size_t seen_weights = 0, seen_factors = 0;
  std::vector<std::pair<bool, bool>> evidence;  // (is_evidence, value) per var

  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = SplitWhitespace(trimmed);

    if (!header_seen) {
      if (fields.size() != 2 || fields[0] != "ddfg" || fields[1] != "1") {
        return error("expected header 'ddfg 1'");
      }
      header_seen = true;
      continue;
    }
    const std::string& tag = fields[0];
    if (tag == "V") {
      if (fields.size() != 2) return error("V expects a count");
      declared_vars = std::strtoull(fields[1].c_str(), nullptr, 10);
      evidence.assign(declared_vars, {false, false});
    } else if (tag == "v") {
      if (fields.size() != 4) return error("v expects: id is_evidence value");
      size_t id = std::strtoull(fields[1].c_str(), nullptr, 10);
      if (id >= declared_vars) return error("variable id out of range");
      evidence[id] = {fields[2] == "1", fields[3] == "1"};
    } else if (tag == "W") {
      if (fields.size() != 2) return error("W expects a count");
      declared_weights = std::strtoull(fields[1].c_str(), nullptr, 10);
      // Variables must be materialized before weights/factors reference them.
      for (size_t v = 0; v < declared_vars; ++v) {
        graph.AddVariable(evidence[v].first, evidence[v].second);
      }
    } else if (tag == "w") {
      if (fields.size() < 4) return error("w expects: id value is_fixed desc");
      size_t id = std::strtoull(fields[1].c_str(), nullptr, 10);
      if (id != seen_weights) return error("weights must appear in id order");
      double value = std::strtod(fields[2].c_str(), nullptr);
      bool fixed = fields[3] == "1";
      std::string description;
      for (size_t i = 4; i < fields.size(); ++i) {
        if (i > 4) description += ' ';
        description += fields[i];
      }
      graph.AddWeight(value, fixed, description);
      ++seen_weights;
    } else if (tag == "F") {
      if (fields.size() != 2) return error("F expects a count");
      declared_factors = std::strtoull(fields[1].c_str(), nullptr, 10);
    } else if (tag == "f") {
      if (fields.size() < 4) return error("f expects: func weight arity literals...");
      DD_ASSIGN_OR_RETURN(FactorFunc func, FuncFromName(fields[1]));
      uint32_t weight = static_cast<uint32_t>(std::strtoul(fields[2].c_str(),
                                                           nullptr, 10));
      size_t arity = std::strtoull(fields[3].c_str(), nullptr, 10);
      if (fields.size() != 4 + 2 * arity) return error("literal count mismatch");
      std::vector<Literal> literals;
      for (size_t i = 0; i < arity; ++i) {
        Literal l;
        l.var = static_cast<uint32_t>(
            std::strtoul(fields[4 + 2 * i].c_str(), nullptr, 10));
        l.is_positive = fields[5 + 2 * i] == "1";
        literals.push_back(l);
      }
      Status st = graph.AddFactor(func, weight, std::move(literals));
      if (!st.ok()) return error(st.ToString());
      ++seen_factors;
    } else {
      return error("unknown record tag: " + tag);
    }
  }
  if (!header_seen) return Status::ParseError("empty input (missing header)");
  if (graph.num_variables() != declared_vars) {
    return Status::ParseError("missing W section (variables not materialized)");
  }
  if (seen_weights != declared_weights) {
    return Status::ParseError(StrFormat("declared %zu weights, found %zu",
                                        declared_weights, seen_weights));
  }
  if (seen_factors != declared_factors) {
    return Status::ParseError(StrFormat("declared %zu factors, found %zu",
                                        declared_factors, seen_factors));
  }
  DD_RETURN_IF_ERROR(graph.Finalize());
  return graph;
}

}  // namespace dd
