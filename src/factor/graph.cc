#include "factor/graph.h"

#include "util/string_util.h"

namespace dd {

const char* FactorFuncName(FactorFunc func) {
  switch (func) {
    case FactorFunc::kIsTrue: return "istrue";
    case FactorFunc::kAnd: return "and";
    case FactorFunc::kOr: return "or";
    case FactorFunc::kImply: return "imply";
    case FactorFunc::kEqual: return "equal";
  }
  return "?";
}

uint32_t FactorGraph::AddVariable(bool is_evidence, bool value) {
  var_is_evidence_.push_back(is_evidence ? 1 : 0);
  var_evidence_value_.push_back(value ? 1 : 0);
  finalized_ = false;
  return static_cast<uint32_t>(var_is_evidence_.size() - 1);
}

uint32_t FactorGraph::AddWeight(double initial_value, bool is_fixed,
                                std::string description) {
  weights_.push_back(Weight{initial_value, is_fixed, std::move(description)});
  return static_cast<uint32_t>(weights_.size() - 1);
}

Status FactorGraph::AddFactor(FactorFunc func, uint32_t weight_id,
                              std::vector<Literal> literals) {
  if (weight_id >= weights_.size()) {
    return Status::InvalidArgument(StrFormat("weight id %u out of range", weight_id));
  }
  if (literals.empty()) {
    return Status::InvalidArgument("factor needs at least one literal");
  }
  if (func == FactorFunc::kEqual && literals.size() != 2) {
    return Status::InvalidArgument("equal factor requires exactly 2 literals");
  }
  if (func == FactorFunc::kIsTrue && literals.size() != 1) {
    return Status::InvalidArgument("istrue factor requires exactly 1 literal");
  }
  for (const Literal& l : literals) {
    if (l.var >= var_is_evidence_.size()) {
      return Status::InvalidArgument(StrFormat("variable id %u out of range", l.var));
    }
  }
  if (factor_offsets_.empty()) factor_offsets_.push_back(0);
  factor_func_.push_back(func);
  factor_weight_.push_back(weight_id);
  for (const Literal& l : literals) factor_literals_.push_back(l);
  factor_offsets_.push_back(static_cast<uint32_t>(factor_literals_.size()));
  finalized_ = false;
  return Status::OK();
}

Status FactorGraph::Finalize() {
  if (finalized_) return Status::OK();
  if (factor_offsets_.empty()) factor_offsets_.push_back(0);
  const size_t nv = num_variables();
  const size_t nf = num_factors();

  // Counting sort of (var -> factor) edges, deduplicated per factor so a
  // variable occurring in several literals of one factor is indexed once
  // (PotentialDelta must weigh each adjacent factor exactly once).
  auto first_occurrence = [&](uint32_t f, uint32_t e) {
    uint32_t v = factor_literals_[e].var;
    for (uint32_t e2 = factor_offsets_[f]; e2 < e; ++e2) {
      if (factor_literals_[e2].var == v) return false;
    }
    return true;
  };
  std::vector<uint32_t> degree(nv, 0);
  size_t num_unique_edges = 0;
  for (uint32_t f = 0; f < nf; ++f) {
    for (uint32_t e = factor_offsets_[f]; e < factor_offsets_[f + 1]; ++e) {
      if (!first_occurrence(f, e)) continue;
      degree[factor_literals_[e].var]++;
      ++num_unique_edges;
    }
  }
  var_offsets_.assign(nv + 1, 0);
  for (size_t v = 0; v < nv; ++v) var_offsets_[v + 1] = var_offsets_[v] + degree[v];
  var_factor_ids_.resize(num_unique_edges);
  std::vector<uint32_t> cursor(var_offsets_.begin(), var_offsets_.end() - 1);
  for (uint32_t f = 0; f < nf; ++f) {
    for (uint32_t e = factor_offsets_[f]; e < factor_offsets_[f + 1]; ++e) {
      if (!first_occurrence(f, e)) continue;
      uint32_t v = factor_literals_[e].var;
      var_factor_ids_[cursor[v]++] = f;
    }
  }
  finalized_ = true;
  return Status::OK();
}

namespace {
inline bool LiteralValue(const Literal& l, const uint8_t* assignment,
                         uint32_t override_var, uint8_t override_value) {
  uint8_t raw = (l.var == override_var) ? override_value : assignment[l.var];
  return l.is_positive ? raw != 0 : raw == 0;
}
}  // namespace

double FactorGraph::EvalFactor(uint32_t f, const uint8_t* assignment,
                               uint32_t override_var, uint8_t override_value) const {
  const uint32_t begin = factor_offsets_[f];
  const uint32_t end = factor_offsets_[f + 1];
  switch (factor_func_[f]) {
    case FactorFunc::kIsTrue:
      return LiteralValue(factor_literals_[begin], assignment, override_var,
                          override_value)
                 ? 1.0
                 : 0.0;
    case FactorFunc::kAnd: {
      for (uint32_t e = begin; e < end; ++e) {
        if (!LiteralValue(factor_literals_[e], assignment, override_var,
                          override_value)) {
          return 0.0;
        }
      }
      return 1.0;
    }
    case FactorFunc::kOr: {
      for (uint32_t e = begin; e < end; ++e) {
        if (LiteralValue(factor_literals_[e], assignment, override_var,
                         override_value)) {
          return 1.0;
        }
      }
      return 0.0;
    }
    case FactorFunc::kImply: {
      // Body = literals [begin, end-1), head = last literal.
      for (uint32_t e = begin; e + 1 < end; ++e) {
        if (!LiteralValue(factor_literals_[e], assignment, override_var,
                          override_value)) {
          return 1.0;  // body false => implication true
        }
      }
      return LiteralValue(factor_literals_[end - 1], assignment, override_var,
                          override_value)
                 ? 1.0
                 : 0.0;
    }
    case FactorFunc::kEqual: {
      bool a = LiteralValue(factor_literals_[begin], assignment, override_var,
                            override_value);
      bool b = LiteralValue(factor_literals_[begin + 1], assignment, override_var,
                            override_value);
      return a == b ? 1.0 : 0.0;
    }
  }
  return 0.0;
}

double FactorGraph::EvalFactor(uint32_t f, const uint8_t* assignment) const {
  // An override on a variable id that cannot exist disables the override.
  return EvalFactor(f, assignment, static_cast<uint32_t>(-1), 0);
}

double FactorGraph::LogPotential(const uint8_t* assignment) const {
  double total = 0.0;
  const size_t nf = num_factors();
  for (uint32_t f = 0; f < nf; ++f) {
    total += weights_[factor_weight_[f]].value * EvalFactor(f, assignment);
  }
  return total;
}

double FactorGraph::PotentialDelta(uint32_t v, const uint8_t* assignment) const {
  double delta = 0.0;
  size_t count = 0;
  const uint32_t* factors = var_factors(v, &count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t f = factors[i];
    double w = weights_[factor_weight_[f]].value;
    if (w == 0.0) continue;
    delta += w * (EvalFactor(f, assignment, v, 1) - EvalFactor(f, assignment, v, 0));
  }
  return delta;
}

}  // namespace dd
