#include "factor/graph.h"

#include "util/string_util.h"

namespace dd {

const char* FactorFuncName(FactorFunc func) {
  switch (func) {
    case FactorFunc::kIsTrue: return "istrue";
    case FactorFunc::kAnd: return "and";
    case FactorFunc::kOr: return "or";
    case FactorFunc::kImply: return "imply";
    case FactorFunc::kEqual: return "equal";
  }
  return "?";
}

uint32_t FactorGraph::AddVariable(bool is_evidence, bool value) {
  var_is_evidence_.push_back(is_evidence ? 1 : 0);
  var_evidence_value_.push_back(value ? 1 : 0);
  finalized_ = false;
  return static_cast<uint32_t>(var_is_evidence_.size() - 1);
}

uint32_t FactorGraph::AddWeight(double initial_value, bool is_fixed,
                                std::string description) {
  weights_.push_back(Weight{initial_value, is_fixed, std::move(description)});
  weight_values_.push_back(initial_value);
  return static_cast<uint32_t>(weights_.size() - 1);
}

void FactorGraph::set_weight_value(uint32_t w, double value) {
  weight_values_[w] = value;
  weights_[w].value = value;
  // A weight folded into a per-variable bias constant (possible only for
  // fixed weights, which learners never touch) invalidates the fold;
  // recompile the streams so the bias stays exact.
  if (finalized_ && w < weight_in_bias_.size() && weight_in_bias_[w]) {
    CompileKernels();
  }
}

Status FactorGraph::AddFactor(FactorFunc func, uint32_t weight_id,
                              std::vector<Literal> literals) {
  if (weight_id >= weights_.size()) {
    return Status::InvalidArgument(StrFormat("weight id %u out of range", weight_id));
  }
  if (literals.empty()) {
    return Status::InvalidArgument("factor needs at least one literal");
  }
  if (literals.size() >= (1u << 24)) {
    return Status::InvalidArgument("factor arity exceeds kernel stream limit (2^24)");
  }
  if (func == FactorFunc::kEqual && literals.size() != 2) {
    return Status::InvalidArgument("equal factor requires exactly 2 literals");
  }
  if (func == FactorFunc::kIsTrue && literals.size() != 1) {
    return Status::InvalidArgument("istrue factor requires exactly 1 literal");
  }
  for (const Literal& l : literals) {
    if (l.var >= var_is_evidence_.size()) {
      return Status::InvalidArgument(StrFormat("variable id %u out of range", l.var));
    }
  }
  if (factor_offsets_.empty()) factor_offsets_.push_back(0);
  factor_func_.push_back(func);
  factor_weight_.push_back(weight_id);
  for (const Literal& l : literals) factor_literals_.push_back(l);
  factor_offsets_.push_back(static_cast<uint32_t>(factor_literals_.size()));
  finalized_ = false;
  return Status::OK();
}

Status FactorGraph::Finalize() {
  if (finalized_) return Status::OK();
  if (factor_offsets_.empty()) factor_offsets_.push_back(0);
  const size_t nv = num_variables();
  const size_t nf = num_factors();
  if (nv >= (1u << 30)) {
    return Status::InvalidArgument(
        "kernel stream literal encoding supports < 2^30 variables");
  }

  // Counting sort of (var -> factor) edges, deduplicated per factor so a
  // variable occurring in several literals of one factor is indexed once
  // (PotentialDelta must weigh each adjacent factor exactly once). The
  // scratch marker records the last token that touched each variable, so
  // dedup is O(1) per literal and the whole pass is linear in edges —
  // this runs on every incremental re-ground. Pass 1 uses token f, pass
  // 2 token nf+f, so no reset between passes is needed.
  std::vector<uint64_t> seen(nv, ~uint64_t{0});
  std::vector<uint32_t> degree(nv, 0);
  size_t num_unique_edges = 0;
  for (uint32_t f = 0; f < nf; ++f) {
    for (uint32_t e = factor_offsets_[f]; e < factor_offsets_[f + 1]; ++e) {
      const uint32_t v = factor_literals_[e].var;
      if (seen[v] == f) continue;
      seen[v] = f;
      degree[v]++;
      ++num_unique_edges;
    }
  }
  var_offsets_.assign(nv + 1, 0);
  for (size_t v = 0; v < nv; ++v) var_offsets_[v + 1] = var_offsets_[v] + degree[v];
  var_factor_ids_.resize(num_unique_edges);
  std::vector<uint32_t> cursor(var_offsets_.begin(), var_offsets_.end() - 1);
  for (uint32_t f = 0; f < nf; ++f) {
    const uint64_t token = static_cast<uint64_t>(nf) + f;
    for (uint32_t e = factor_offsets_[f]; e < factor_offsets_[f + 1]; ++e) {
      const uint32_t v = factor_literals_[e].var;
      if (seen[v] == token) continue;
      seen[v] = token;
      var_factor_ids_[cursor[v]++] = f;
    }
  }
  CompileKernels();
  finalized_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Compiled kernel streams.
//
// For each variable v, Finalize() emits one contiguous uint32 stream
// holding, per adjacent factor (in var_factors order), an op that yields
// w_f · (h_f(v=1) − h_f(v=0)) with v's role resolved at compile time:
//
//   header word : tag (bits 0-2) | sign (bit 3, 1 = negative)
//                 | func (bits 4-7, kOpGeneral only) | nlit (bits 8-31)
//   weight word : index into the dense weight_values_ array
//   nlit words  : literals, var<<2 | is_self<<1 | is_positive
//                 (is_self is set only inside kOpGeneral ops)
//
// Op semantics (sw = ±weight):
//   kOpUnary   delta += sw                  (any single-literal factor, and
//                                            factors whose non-self guard
//                                            is empty)
//   kOpGuard   delta += sw iff every stored literal is true (kAnd over
//              non-self literals; kOr and kImply reduce to the same shape
//              with literals negated as needed)
//   kOpEqual   delta += (lit ? sw : -sw)    (kEqual with one self literal)
//   kOpGeneral delta += w · (h(v=1) − h(v=0)) evaluated over the stored
//              literals — fallback for the rare shapes above can't
//              express (v in both body and head of an imply)
//
// Factors whose delta is provably zero (e.g. v appears with both
// polarities in an AND) are dropped at compile time. If *every* adjacent
// factor of v either drops or is a unary op on a fixed weight, the whole
// stream folds into the var_bias_ constant (summed in the same adjacency
// order, so the fold is bit-for-bit identical to the interpreted sum)
// and v's per-sweep delta costs a single array load.
// ---------------------------------------------------------------------------

namespace {

enum : uint32_t {
  kOpUnary = 0,
  kOpGuard = 1,
  kOpEqual = 2,
  kOpGeneral = 3,
};

constexpr uint32_t kSignBit = 1u << 3;

inline uint32_t OpHeader(uint32_t tag, bool negative, FactorFunc func,
                         uint32_t nlit) {
  return tag | (negative ? kSignBit : 0u) | (static_cast<uint32_t>(func) << 4) |
         (nlit << 8);
}

inline uint32_t LitWord(uint32_t var, bool is_self, bool is_positive) {
  return (var << 2) | (is_self ? 2u : 0u) | (is_positive ? 1u : 0u);
}

/// Literal value inside a kOpGeneral op: self literals read the override
/// value b, others read the assignment.
inline bool GeneralLit(uint32_t word, const uint8_t* assignment, uint8_t b) {
  const uint8_t raw = (word & 2u) ? b : assignment[word >> 2];
  return (raw != 0) == ((word & 1u) != 0);
}

bool GeneralEval(FactorFunc func, const uint32_t* lits, uint32_t n,
                 const uint8_t* assignment, uint8_t b) {
  switch (func) {
    case FactorFunc::kIsTrue:
      return GeneralLit(lits[0], assignment, b);
    case FactorFunc::kAnd: {
      for (uint32_t i = 0; i < n; ++i) {
        if (!GeneralLit(lits[i], assignment, b)) return false;
      }
      return true;
    }
    case FactorFunc::kOr: {
      for (uint32_t i = 0; i < n; ++i) {
        if (GeneralLit(lits[i], assignment, b)) return true;
      }
      return false;
    }
    case FactorFunc::kImply: {
      for (uint32_t i = 0; i + 1 < n; ++i) {
        if (!GeneralLit(lits[i], assignment, b)) return true;
      }
      return GeneralLit(lits[n - 1], assignment, b);
    }
    case FactorFunc::kEqual:
      return GeneralLit(lits[0], assignment, b) == GeneralLit(lits[1], assignment, b);
  }
  return false;
}

}  // namespace

bool FactorGraph::CompileFactorOp(uint32_t f, uint32_t v,
                                  std::vector<uint32_t>* out,
                                  int* foldable_sign) const {
  *foldable_sign = 0;
  const uint32_t begin = factor_offsets_[f];
  const uint32_t end = factor_offsets_[f + 1];
  const uint32_t arity = end - begin;
  const uint32_t w = factor_weight_[f];
  const FactorFunc func = factor_func_[f];

  bool self_pos = false, self_neg = false;
  for (uint32_t e = begin; e < end; ++e) {
    if (factor_literals_[e].var == v) {
      if (factor_literals_[e].is_positive) self_pos = true;
      else self_neg = true;
    }
  }

  auto emit_unary = [&](bool positive) {
    out->push_back(OpHeader(kOpUnary, !positive, func, 0));
    out->push_back(w);
    *foldable_sign = positive ? 1 : -1;
    return true;
  };
  // Guard op: delta += ±w iff every literal in [out-appended] is true.
  // Collapses to kOpUnary when the guard list ends up empty.
  auto emit_guard = [&](bool positive, const std::vector<uint32_t>& lits) {
    if (lits.empty()) return emit_unary(positive);
    out->push_back(OpHeader(kOpGuard, !positive, func,
                            static_cast<uint32_t>(lits.size())));
    out->push_back(w);
    out->insert(out->end(), lits.begin(), lits.end());
    return true;
  };

  // Any single-literal factor has h = l1 regardless of func (an imply
  // with no body is its head, a one-term AND/OR is the term).
  if (arity == 1) return emit_unary(self_pos);

  std::vector<uint32_t> lits;
  switch (func) {
    case FactorFunc::kIsTrue:  // arity == 1, handled above
      return emit_unary(self_pos);
    case FactorFunc::kAnd: {
      if (self_pos && self_neg) return false;  // v ∧ ¬v ⇒ h ≡ 0
      for (uint32_t e = begin; e < end; ++e) {
        const Literal& l = factor_literals_[e];
        if (l.var == v) continue;
        lits.push_back(LitWord(l.var, false, l.is_positive));
      }
      return emit_guard(self_pos, lits);
    }
    case FactorFunc::kOr: {
      if (self_pos && self_neg) return false;  // v ∨ ¬v ⇒ h ≡ 1
      // h = O ∨ (±v): delta = ±(1 − O) — fire iff every other literal is
      // false, i.e. every negated literal is true.
      for (uint32_t e = begin; e < end; ++e) {
        const Literal& l = factor_literals_[e];
        if (l.var == v) continue;
        lits.push_back(LitWord(l.var, false, !l.is_positive));
      }
      return emit_guard(self_pos, lits);
    }
    case FactorFunc::kImply: {
      const Literal& head = factor_literals_[end - 1];
      const bool head_self = head.var == v;
      bool body_pos = false, body_neg = false;
      for (uint32_t e = begin; e + 1 < end; ++e) {
        if (factor_literals_[e].var == v) {
          if (factor_literals_[e].is_positive) body_pos = true;
          else body_neg = true;
        }
      }
      if (body_pos && body_neg) return false;  // body ≡ false ⇒ h ≡ 1
      const bool body_self = body_pos || body_neg;
      if (head_self && !body_self) {
        // h = ¬B ∨ (±v): delta = ±B — fire iff the whole body holds.
        for (uint32_t e = begin; e + 1 < end; ++e) {
          const Literal& l = factor_literals_[e];
          lits.push_back(LitWord(l.var, false, l.is_positive));
        }
        return emit_guard(head.is_positive, lits);
      }
      if (body_self && !head_self) {
        // h = ¬Bother ∨ ¬(±v) ∨ H: delta = ∓(Bother ∧ ¬H).
        for (uint32_t e = begin; e + 1 < end; ++e) {
          const Literal& l = factor_literals_[e];
          if (l.var == v) continue;
          lits.push_back(LitWord(l.var, false, l.is_positive));
        }
        lits.push_back(LitWord(head.var, false, !head.is_positive));
        return emit_guard(!body_pos, lits);
      }
      // v in both body and head: fall back to the general evaluator.
      break;
    }
    case FactorFunc::kEqual: {
      const Literal& l1 = factor_literals_[begin];
      const Literal& l2 = factor_literals_[begin + 1];
      if (l1.var == v && l2.var == v) return false;  // constant in v
      const Literal& self = l1.var == v ? l1 : l2;
      const Literal& other = l1.var == v ? l2 : l1;
      // h(v=b) = (±b == other): delta = ±(2·other − 1).
      out->push_back(OpHeader(kOpEqual, !self.is_positive, func, 1));
      out->push_back(w);
      out->push_back(LitWord(other.var, false, other.is_positive));
      return true;
    }
  }

  // General fallback: store the full literal list with self marks and
  // interpret the function over it (no CSR lookups, no var comparisons).
  out->push_back(OpHeader(kOpGeneral, false, func, arity));
  out->push_back(w);
  for (uint32_t e = begin; e < end; ++e) {
    const Literal& l = factor_literals_[e];
    out->push_back(LitWord(l.var, l.var == v, l.is_positive));
  }
  return true;
}

void FactorGraph::CompileKernels() {
  const size_t nv = num_variables();
  kernel_offsets_.assign(nv + 1, 0);
  kernel_stream_.clear();
  var_bias_.assign(nv, 0.0);
  weight_in_bias_.assign(num_weights(), 0);

  std::vector<uint32_t> ops;           // scratch: compiled ops for one variable
  std::vector<uint32_t> op_starts;     // scratch: offset of each op in `ops`
  std::vector<int> op_signs;           // scratch: ±1 for foldable ops, else 0
  for (uint32_t v = 0; v < nv; ++v) {
    ops.clear();
    op_starts.clear();
    op_signs.clear();
    size_t count = 0;
    const uint32_t* factors = var_factors(v, &count);
    bool foldable = true;
    for (size_t i = 0; i < count; ++i) {
      const uint32_t f = factors[i];
      int sign = 0;
      op_starts.push_back(static_cast<uint32_t>(ops.size()));
      if (!CompileFactorOp(f, v, &ops, &sign)) {
        op_starts.pop_back();
        continue;  // provably zero contribution
      }
      op_signs.push_back(sign);
      if (sign == 0 || !weights_[factor_weight_[f]].is_fixed) foldable = false;
    }
    if (foldable && !op_starts.empty()) {
      // Every surviving op is ±(fixed weight): fold the entire delta into
      // a constant, summed in adjacency order for bit-exactness.
      double bias = 0.0;
      for (size_t i = 0; i < op_starts.size(); ++i) {
        const uint32_t widx = ops[op_starts[i] + 1];
        bias += op_signs[i] > 0 ? weight_values_[widx] : -weight_values_[widx];
        weight_in_bias_[widx] = 1;
      }
      var_bias_[v] = bias;
    } else {
      kernel_stream_.insert(kernel_stream_.end(), ops.begin(), ops.end());
    }
    kernel_offsets_[v + 1] = static_cast<uint32_t>(kernel_stream_.size());
  }
}

double FactorGraph::PotentialDeltaCompiled(uint32_t v,
                                           const uint8_t* assignment) const {
  double delta = var_bias_[v];
  const uint32_t* s = kernel_stream_.data() + kernel_offsets_[v];
  const uint32_t* const end = kernel_stream_.data() + kernel_offsets_[v + 1];
  const double* weights = weight_values_.data();
  while (s != end) {
    const uint32_t header = *s++;
    const double w = weights[*s++];
    const uint32_t nlit = header >> 8;
    const double sw = (header & kSignBit) ? -w : w;
    switch (header & 7u) {
      case kOpUnary:
        delta += sw;
        break;
      case kOpGuard: {
        bool pass = true;
        for (uint32_t i = 0; i < nlit; ++i) {
          const uint32_t lit = s[i];
          if ((assignment[lit >> 2] != 0) != ((lit & 1u) != 0)) {
            pass = false;
            break;
          }
        }
        if (pass) delta += sw;
        s += nlit;
        break;
      }
      case kOpEqual: {
        const uint32_t lit = *s++;
        delta += ((assignment[lit >> 2] != 0) == ((lit & 1u) != 0)) ? sw : -sw;
        break;
      }
      default: {  // kOpGeneral
        const FactorFunc func = static_cast<FactorFunc>((header >> 4) & 15u);
        const int diff = static_cast<int>(GeneralEval(func, s, nlit, assignment, 1)) -
                         static_cast<int>(GeneralEval(func, s, nlit, assignment, 0));
        delta += w * static_cast<double>(diff);
        s += nlit;
        break;
      }
    }
  }
  return delta;
}

namespace {
inline bool LiteralValue(const Literal& l, const uint8_t* assignment,
                         uint32_t override_var, uint8_t override_value) {
  uint8_t raw = (l.var == override_var) ? override_value : assignment[l.var];
  return l.is_positive ? raw != 0 : raw == 0;
}
}  // namespace

double FactorGraph::EvalFactor(uint32_t f, const uint8_t* assignment,
                               uint32_t override_var, uint8_t override_value) const {
  const uint32_t begin = factor_offsets_[f];
  const uint32_t end = factor_offsets_[f + 1];
  switch (factor_func_[f]) {
    case FactorFunc::kIsTrue:
      return LiteralValue(factor_literals_[begin], assignment, override_var,
                          override_value)
                 ? 1.0
                 : 0.0;
    case FactorFunc::kAnd: {
      for (uint32_t e = begin; e < end; ++e) {
        if (!LiteralValue(factor_literals_[e], assignment, override_var,
                          override_value)) {
          return 0.0;
        }
      }
      return 1.0;
    }
    case FactorFunc::kOr: {
      for (uint32_t e = begin; e < end; ++e) {
        if (LiteralValue(factor_literals_[e], assignment, override_var,
                         override_value)) {
          return 1.0;
        }
      }
      return 0.0;
    }
    case FactorFunc::kImply: {
      // Body = literals [begin, end-1), head = last literal.
      for (uint32_t e = begin; e + 1 < end; ++e) {
        if (!LiteralValue(factor_literals_[e], assignment, override_var,
                          override_value)) {
          return 1.0;  // body false => implication true
        }
      }
      return LiteralValue(factor_literals_[end - 1], assignment, override_var,
                          override_value)
                 ? 1.0
                 : 0.0;
    }
    case FactorFunc::kEqual: {
      bool a = LiteralValue(factor_literals_[begin], assignment, override_var,
                            override_value);
      bool b = LiteralValue(factor_literals_[begin + 1], assignment, override_var,
                            override_value);
      return a == b ? 1.0 : 0.0;
    }
  }
  return 0.0;
}

double FactorGraph::EvalFactor(uint32_t f, const uint8_t* assignment) const {
  // An override on a variable id that cannot exist disables the override.
  return EvalFactor(f, assignment, static_cast<uint32_t>(-1), 0);
}

double FactorGraph::LogPotential(const uint8_t* assignment) const {
  double total = 0.0;
  const size_t nf = num_factors();
  for (uint32_t f = 0; f < nf; ++f) {
    total += weights_[factor_weight_[f]].value * EvalFactor(f, assignment);
  }
  return total;
}

double FactorGraph::PotentialDelta(uint32_t v, const uint8_t* assignment) const {
  double delta = 0.0;
  size_t count = 0;
  const uint32_t* factors = var_factors(v, &count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t f = factors[i];
    double w = weights_[factor_weight_[f]].value;
    if (w == 0.0) continue;
    delta += w * (EvalFactor(f, assignment, v, 1) - EvalFactor(f, assignment, v, 0));
  }
  return delta;
}

}  // namespace dd
