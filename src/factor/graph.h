#ifndef DEEPDIVE_FACTOR_GRAPH_H_
#define DEEPDIVE_FACTOR_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace dd {

/// Factor functions over Boolean literals, following the DimmWitted
/// sampler's repertoire. Each returns h ∈ {0, 1}; the factor contributes
/// weight · h to the log-potential of a world (§3.3: Pr[I] ∝ exp ΣW).
enum class FactorFunc {
  kIsTrue,   ///< h = l1
  kAnd,      ///< h = l1 ∧ ... ∧ lk
  kOr,       ///< h = l1 ∨ ... ∨ lk
  kImply,    ///< h = (l1 ∧ ... ∧ l(k-1)) → lk   (MLN semantics)
  kEqual,    ///< h = (l1 == l2); arity 2
};

const char* FactorFuncName(FactorFunc func);

/// A variable occurrence inside a factor: variable id plus polarity.
/// With is_positive = false the literal reads ¬v.
struct Literal {
  uint32_t var = 0;
  bool is_positive = true;
};

/// Cold side of a tied weight: metadata that inference never touches.
/// Multiple factors grounded from the same rule with the same feature
/// value share one WeightId (Example 3.2's weight tying). The hot value
/// lives in FactorGraph's dense weight_values_ array; `value` here is a
/// mirror kept in sync by set_weight_value() so io/diagnostics code can
/// keep reading the struct.
struct Weight {
  double value = 0.0;
  bool is_fixed = false;      ///< fixed weights are not learned
  std::string description;    ///< human-readable feature name (debuggability)
};

/// Builder + compiled CSR ("column-to-row") representation of a factor
/// graph. Build with AddVariable/AddWeight/AddFactor, then Finalize()
/// compiles the flat arrays DimmWitted-style: factor→vars adjacency, the
/// inverted var→factors adjacency, and the per-variable delta kernel
/// streams that the samplers execute (see DESIGN.md "Compiled kernel
/// layout").
class FactorGraph {
 public:
  FactorGraph() = default;

  /// Add a query or evidence variable; returns its id.
  /// Evidence variables are clamped to `value` during learning's
  /// positive phase and during conditional inference.
  uint32_t AddVariable(bool is_evidence = false, bool value = false);

  /// Add a weight; returns its id.
  uint32_t AddWeight(double initial_value, bool is_fixed, std::string description);

  /// Add a factor over `literals` with function `func` and weight
  /// `weight_id`. Must be called before Finalize().
  Status AddFactor(FactorFunc func, uint32_t weight_id, std::vector<Literal> literals);

  /// Compile the CSR arrays and the per-variable kernel streams.
  /// Idempotent; called automatically by the samplers if needed.
  Status Finalize();
  bool finalized() const { return finalized_; }

  size_t num_variables() const { return var_is_evidence_.size(); }
  size_t num_factors() const { return factor_func_.size(); }
  size_t num_weights() const { return weights_.size(); }
  size_t num_edges() const { return factor_literals_.size(); }

  bool is_evidence(uint32_t v) const { return var_is_evidence_[v]; }
  bool evidence_value(uint32_t v) const { return var_evidence_value_[v]; }
  const Weight& weight(uint32_t w) const { return weights_[w]; }

  /// Hot-side weight access: the dense SoA array every inference and
  /// learning loop reads. Writes go through set_weight_value so the cold
  /// Weight mirror (and any compiled bias folding the weight) stays
  /// consistent.
  double weight_value(uint32_t w) const { return weight_values_[w]; }
  const double* weight_values() const { return weight_values_.data(); }
  void set_weight_value(uint32_t w, double value);

  FactorFunc factor_func(uint32_t f) const { return factor_func_[f]; }
  uint32_t factor_weight(uint32_t f) const { return factor_weight_[f]; }

  /// Literals of factor f (valid after Finalize or before, same storage).
  const Literal* factor_literals(uint32_t f, size_t* count) const {
    *count = factor_offsets_[f + 1] - factor_offsets_[f];
    return factor_literals_.data() + factor_offsets_[f];
  }

  /// Factor ids adjacent to variable v (valid after Finalize).
  const uint32_t* var_factors(uint32_t v, size_t* count) const {
    *count = var_offsets_[v + 1] - var_offsets_[v];
    return var_factor_ids_.data() + var_offsets_[v];
  }

  /// Evaluate factor f's function under `assignment`, optionally
  /// overriding variable `override_var` with `override_value`.
  /// `assignment` holds one byte per variable (0/1).
  double EvalFactor(uint32_t f, const uint8_t* assignment, uint32_t override_var,
                    uint8_t override_value) const;
  double EvalFactor(uint32_t f, const uint8_t* assignment) const;

  /// Σ_f w_f · h_f(I) for a full assignment — the log-potential W(F, I).
  double LogPotential(const uint8_t* assignment) const;

  /// Energy difference experienced by variable v:
  /// Σ_{f ∋ v} w_f · (h_f(v=1) − h_f(v=0)) under `assignment`.
  /// The Gibbs conditional is sigmoid of this value.
  ///
  /// This is the interpreted reference implementation (two EvalFactor
  /// calls per adjacent factor through the CSR indirection); the
  /// samplers run PotentialDeltaCompiled, which must agree bit-for-bit.
  double PotentialDelta(uint32_t v, const uint8_t* assignment) const;

  /// Compiled delta kernel: walks variable v's flattened stream (built
  /// by Finalize) — one contiguous buffer of ops with v's own position
  /// pre-resolved, reading weights from the dense hot array. Produces
  /// exactly the same double as PotentialDelta for every assignment.
  double PotentialDeltaCompiled(uint32_t v, const uint8_t* assignment) const;

  /// Size of the compiled stream in 32-bit words (diagnostics/tests).
  size_t kernel_stream_words() const { return kernel_stream_.size(); }

  /// Raw compiled kernel state (valid after Finalize). Exposed so
  /// differential tests can assert the streams are bit-identical across
  /// grounding configurations (e.g. serial vs morsel-parallel).
  const std::vector<uint32_t>& kernel_stream() const { return kernel_stream_; }
  const std::vector<uint32_t>& kernel_offsets() const { return kernel_offsets_; }
  const std::vector<double>& var_bias() const { return var_bias_; }

 private:
  // Classify factor f's contribution to v's delta and append the
  // compiled op to *out. Returns false when the contribution is provably
  // zero (op dropped). Sets *foldable_sign to ±1 when the op reduces to
  // a signed weight read (kOpUnary), else 0.
  bool CompileFactorOp(uint32_t f, uint32_t v, std::vector<uint32_t>* out,
                       int* foldable_sign) const;
  void CompileKernels();

  // Variables.
  std::vector<uint8_t> var_is_evidence_;
  std::vector<uint8_t> var_evidence_value_;
  // Weights: cold metadata (AoS) + hot values (SoA), kept in sync.
  std::vector<Weight> weights_;
  std::vector<double> weight_values_;
  // Factors (flat CSR).
  std::vector<FactorFunc> factor_func_;
  std::vector<uint32_t> factor_weight_;
  std::vector<uint32_t> factor_offsets_;  // size num_factors+1
  std::vector<Literal> factor_literals_;
  // Inverted index (built by Finalize).
  std::vector<uint32_t> var_offsets_;  // size num_variables+1
  std::vector<uint32_t> var_factor_ids_;
  // Compiled per-variable kernel streams (built by Finalize). Stream
  // word format is documented in graph.cc next to the op tags.
  std::vector<uint32_t> kernel_offsets_;  // size num_variables+1
  std::vector<uint32_t> kernel_stream_;
  std::vector<double> var_bias_;        // fully-folded constant deltas
  std::vector<uint8_t> weight_in_bias_; // weight w folded into some bias?
  bool finalized_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_FACTOR_GRAPH_H_
