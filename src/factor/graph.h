#ifndef DEEPDIVE_FACTOR_GRAPH_H_
#define DEEPDIVE_FACTOR_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace dd {

/// Factor functions over Boolean literals, following the DimmWitted
/// sampler's repertoire. Each returns h ∈ {0, 1}; the factor contributes
/// weight · h to the log-potential of a world (§3.3: Pr[I] ∝ exp ΣW).
enum class FactorFunc {
  kIsTrue,   ///< h = l1
  kAnd,      ///< h = l1 ∧ ... ∧ lk
  kOr,       ///< h = l1 ∨ ... ∨ lk
  kImply,    ///< h = (l1 ∧ ... ∧ l(k-1)) → lk   (MLN semantics)
  kEqual,    ///< h = (l1 == l2); arity 2
};

const char* FactorFuncName(FactorFunc func);

/// A variable occurrence inside a factor: variable id plus polarity.
/// With is_positive = false the literal reads ¬v.
struct Literal {
  uint32_t var = 0;
  bool is_positive = true;
};

/// A tied weight. Multiple factors grounded from the same rule with the
/// same feature value share one WeightId (Example 3.2's weight tying).
struct Weight {
  double value = 0.0;
  bool is_fixed = false;      ///< fixed weights are not learned
  std::string description;    ///< human-readable feature name (debuggability)
};

/// Builder + compiled CSR ("column-to-row") representation of a factor
/// graph. Build with AddVariable/AddWeight/AddFactor, then Finalize()
/// compiles the flat arrays DimmWitted-style: factor→vars adjacency and
/// the inverted var→factors adjacency, both contiguous.
class FactorGraph {
 public:
  FactorGraph() = default;

  /// Add a query or evidence variable; returns its id.
  /// Evidence variables are clamped to `value` during learning's
  /// positive phase and during conditional inference.
  uint32_t AddVariable(bool is_evidence = false, bool value = false);

  /// Add a weight; returns its id.
  uint32_t AddWeight(double initial_value, bool is_fixed, std::string description);

  /// Add a factor over `literals` with function `func` and weight
  /// `weight_id`. Must be called before Finalize().
  Status AddFactor(FactorFunc func, uint32_t weight_id, std::vector<Literal> literals);

  /// Compile the CSR arrays. Idempotent; called automatically by the
  /// samplers if needed.
  Status Finalize();
  bool finalized() const { return finalized_; }

  size_t num_variables() const { return var_is_evidence_.size(); }
  size_t num_factors() const { return factor_func_.size(); }
  size_t num_weights() const { return weights_.size(); }
  size_t num_edges() const { return factor_literals_.size(); }

  bool is_evidence(uint32_t v) const { return var_is_evidence_[v]; }
  bool evidence_value(uint32_t v) const { return var_evidence_value_[v]; }
  const Weight& weight(uint32_t w) const { return weights_[w]; }
  Weight* mutable_weight(uint32_t w) { return &weights_[w]; }

  FactorFunc factor_func(uint32_t f) const { return factor_func_[f]; }
  uint32_t factor_weight(uint32_t f) const { return factor_weight_[f]; }

  /// Literals of factor f (valid after Finalize or before, same storage).
  const Literal* factor_literals(uint32_t f, size_t* count) const {
    *count = factor_offsets_[f + 1] - factor_offsets_[f];
    return factor_literals_.data() + factor_offsets_[f];
  }

  /// Factor ids adjacent to variable v (valid after Finalize).
  const uint32_t* var_factors(uint32_t v, size_t* count) const {
    *count = var_offsets_[v + 1] - var_offsets_[v];
    return var_factor_ids_.data() + var_offsets_[v];
  }

  /// Evaluate factor f's function under `assignment`, optionally
  /// overriding variable `override_var` with `override_value`.
  /// `assignment` holds one byte per variable (0/1).
  double EvalFactor(uint32_t f, const uint8_t* assignment, uint32_t override_var,
                    uint8_t override_value) const;
  double EvalFactor(uint32_t f, const uint8_t* assignment) const;

  /// Σ_f w_f · h_f(I) for a full assignment — the log-potential W(F, I).
  double LogPotential(const uint8_t* assignment) const;

  /// Energy difference experienced by variable v:
  /// Σ_{f ∋ v} w_f · (h_f(v=1) − h_f(v=0)) under `assignment`.
  /// The Gibbs conditional is sigmoid of this value.
  double PotentialDelta(uint32_t v, const uint8_t* assignment) const;

 private:
  // Variables.
  std::vector<uint8_t> var_is_evidence_;
  std::vector<uint8_t> var_evidence_value_;
  // Weights.
  std::vector<Weight> weights_;
  // Factors (flat CSR).
  std::vector<FactorFunc> factor_func_;
  std::vector<uint32_t> factor_weight_;
  std::vector<uint32_t> factor_offsets_;  // size num_factors+1
  std::vector<Literal> factor_literals_;
  // Inverted index (built by Finalize).
  std::vector<uint32_t> var_offsets_;  // size num_variables+1
  std::vector<uint32_t> var_factor_ids_;
  bool finalized_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_FACTOR_GRAPH_H_
