#ifndef DEEPDIVE_NLP_POS_H_
#define DEEPDIVE_NLP_POS_H_

#include <vector>

#include "nlp/document.h"

namespace dd {

/// Rule/lexicon part-of-speech tagger producing Penn-style tags.
/// Deterministic and intentionally simple: a closed-class lexicon for
/// function words, suffix heuristics for open classes, capitalization →
/// NNP, digits → CD. Accuracy is far below a statistical tagger, but the
/// downstream pipeline only consumes tags as *features*, so systematic
/// behaviour matters more than ceiling accuracy (see DESIGN.md §5).
void TagPos(std::vector<Token>* tokens);

}  // namespace dd

#endif  // DEEPDIVE_NLP_POS_H_
