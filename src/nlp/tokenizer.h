#ifndef DEEPDIVE_NLP_TOKENIZER_H_
#define DEEPDIVE_NLP_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "nlp/document.h"

namespace dd {

/// Split `text` into tokens with character offsets. Rules:
///  * runs of letters/digits (with internal '.'-separated abbreviations,
///    e.g. "U.S." and decimals like "3.14") form one token;
///  * "$1,200" style prices keep the currency symbol separate;
///  * punctuation characters are single-character tokens;
///  * apostrophe contractions split ("don't" -> "don" "'" "t" is avoided:
///    we keep "don't" whole — ad-hoc splitting hurts the phrase features).
std::vector<Token> Tokenize(std::string_view text, size_t base_offset = 0);

/// Split `text` into sentence character ranges [begin, end). Boundaries
/// are '.', '!', '?' followed by whitespace+capital/digit or end of text,
/// and blank lines. Common abbreviations (Dr., Mr., vs., e.g.) and
/// single-letter initials do not end sentences.
std::vector<std::pair<size_t, size_t>> SplitSentences(std::string_view text);

}  // namespace dd

#endif  // DEEPDIVE_NLP_TOKENIZER_H_
