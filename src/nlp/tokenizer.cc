#include "nlp/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace dd {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '\'' || c == '-' ||
         c == '_';
}

/// True if text[dot] is a '.' that belongs inside the current token
/// (decimal point or abbreviation dot like "U.S.").
bool IsInternalDot(std::string_view text, size_t dot, size_t token_begin) {
  if (dot + 1 >= text.size()) return false;
  char next = text[dot + 1];
  char prev = text[dot - 1];  // caller guarantees dot > token_begin
  (void)token_begin;
  // Decimal number: digit '.' digit
  if (std::isdigit(static_cast<unsigned char>(prev)) &&
      std::isdigit(static_cast<unsigned char>(next))) {
    return true;
  }
  // Abbreviation: letter '.' letter (e.g. U.S.A)
  if (std::isalpha(static_cast<unsigned char>(prev)) &&
      std::isalpha(static_cast<unsigned char>(next))) {
    return true;
  }
  return false;
}

bool IsKnownAbbreviation(std::string_view token) {
  static const char* kAbbrev[] = {"dr",  "mr",  "mrs", "ms",  "prof", "st",
                                  "vs",  "etc", "e.g", "i.e", "jr",   "sr",
                                  "inc", "co",  "corp", "fig", "no",  "oct",
                                  "jan", "feb", "mar", "apr", "jun",  "jul",
                                  "aug", "sep", "nov", "dec"};
  std::string lower = ToLower(token);
  for (const char* a : kAbbrev) {
    if (lower == a) return true;
  }
  // Single-letter initials ("B." in "B. Obama").
  return token.size() == 1 && std::isalpha(static_cast<unsigned char>(token[0]));
}

}  // namespace

std::vector<Token> Tokenize(std::string_view text, size_t base_offset) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    size_t begin = i;
    if (IsWordChar(text[i])) {
      ++i;
      while (i < n) {
        if (IsWordChar(text[i])) {
          ++i;
        } else if (text[i] == '.' && i > begin && IsInternalDot(text, i, begin)) {
          ++i;
        } else if (text[i] == ',' && i + 1 < n &&
                   std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
                   std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
          ++i;  // thousands separator: 1,200
        } else {
          break;
        }
      }
    } else {
      ++i;  // single punctuation character
    }
    Token t;
    t.text = std::string(text.substr(begin, i - begin));
    t.begin = base_offset + begin;
    t.end = base_offset + i;
    tokens.push_back(std::move(t));
  }
  return tokens;
}

std::vector<std::pair<size_t, size_t>> SplitSentences(std::string_view text) {
  std::vector<std::pair<size_t, size_t>> ranges;
  const size_t n = text.size();
  size_t start = 0;
  auto flush = [&](size_t end) {
    // Trim whitespace-only sentences.
    size_t b = start;
    while (b < end && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
    size_t e = end;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
    if (e > b) ranges.emplace_back(b, e);
    start = end;
  };

  for (size_t i = 0; i < n; ++i) {
    char c = text[i];
    // Blank line (paragraph break).
    if (c == '\n') {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (j < n && text[j] == '\n') {
        flush(i);
        continue;
      }
    }
    if (c != '.' && c != '!' && c != '?') continue;
    if (c == '.') {
      // Find the word before the dot; skip abbreviations.
      size_t wb = i;
      while (wb > start && IsWordChar(text[wb - 1])) --wb;
      std::string_view word = text.substr(wb, i - wb);
      if (!word.empty() && IsKnownAbbreviation(word)) continue;
      // Decimal/abbreviation dots were never sentence ends.
      if (i + 1 < n && !std::isspace(static_cast<unsigned char>(text[i + 1])) &&
          text[i + 1] != '"' && text[i + 1] != '\'') {
        continue;
      }
    }
    // Consume trailing quote/bracket, then require whitespace + uppercase
    // or digit (or end of text) to split.
    size_t j = i + 1;
    while (j < n && (text[j] == '"' || text[j] == '\'' || text[j] == ')')) ++j;
    if (j >= n) {
      flush(j);
      i = j;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(text[j]))) continue;
    size_t k = j;
    while (k < n && std::isspace(static_cast<unsigned char>(text[k]))) ++k;
    if (k >= n || std::isupper(static_cast<unsigned char>(text[k])) ||
        std::isdigit(static_cast<unsigned char>(text[k])) || text[k] == '"') {
      flush(j);
      i = j - 1;
    }
  }
  flush(n);
  return ranges;
}

}  // namespace dd
