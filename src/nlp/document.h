#ifndef DEEPDIVE_NLP_DOCUMENT_H_
#define DEEPDIVE_NLP_DOCUMENT_H_

#include <string>
#include <vector>

namespace dd {

/// A token with character offsets into the source text and a POS tag.
struct Token {
  std::string text;
  size_t begin = 0;  ///< char offset of first character
  size_t end = 0;    ///< char offset one past the last character
  std::string pos;   ///< Penn-style tag (NN, NNP, VBD, CD, ...)
};

/// A sentence: a contiguous token span.
struct Sentence {
  int index = 0;  ///< position within the document
  std::vector<Token> tokens;

  /// Tokens joined by single spaces (for feature strings).
  std::string Text() const;
};

/// A document after NLP preprocessing: the paper's "one sentence per row
/// with markup produced by standard NLP pre-processing tools" (§3.1).
struct Document {
  std::string id;
  std::string text;  ///< cleaned text (post HTML stripping)
  std::vector<Sentence> sentences;
};

/// Run the full preprocessing pipeline: optional HTML stripping,
/// sentence splitting, tokenization, POS tagging. Deterministic — the
/// same input always yields the same annotation (a requirement for
/// DeepDive's reproducible debugging loop).
Document AnnotateDocument(std::string id, const std::string& raw_text,
                          bool strip_html = false);

}  // namespace dd

#endif  // DEEPDIVE_NLP_DOCUMENT_H_
