#include "nlp/pos.h"

#include <cctype>
#include <string_view>
#include <unordered_map>

#include "util/string_util.h"

namespace dd {

namespace {

const std::unordered_map<std::string, const char*>& Lexicon() {
  static const auto* kLexicon = new std::unordered_map<std::string, const char*>{
      // Determiners
      {"the", "DT"}, {"a", "DT"}, {"an", "DT"}, {"this", "DT"}, {"that", "DT"},
      {"these", "DT"}, {"those", "DT"},
      // Prepositions / subordinating conjunctions
      {"of", "IN"}, {"in", "IN"}, {"on", "IN"}, {"at", "IN"}, {"by", "IN"},
      {"for", "IN"}, {"with", "IN"}, {"from", "IN"}, {"to", "TO"}, {"into", "IN"},
      {"about", "IN"}, {"after", "IN"}, {"before", "IN"}, {"between", "IN"},
      {"during", "IN"}, {"since", "IN"},
      // Conjunctions
      {"and", "CC"}, {"or", "CC"}, {"but", "CC"}, {"nor", "CC"},
      // Pronouns
      {"he", "PRP"}, {"she", "PRP"}, {"it", "PRP"}, {"they", "PRP"}, {"we", "PRP"},
      {"i", "PRP"}, {"you", "PRP"}, {"him", "PRP"}, {"her", "PRP"}, {"them", "PRP"},
      {"his", "PRP$"}, {"their", "PRP$"}, {"its", "PRP$"}, {"our", "PRP$"},
      {"my", "PRP$"}, {"your", "PRP$"},
      // Copulas / auxiliaries
      {"is", "VBZ"}, {"are", "VBP"}, {"was", "VBD"}, {"were", "VBD"},
      {"be", "VB"}, {"been", "VBN"}, {"being", "VBG"}, {"am", "VBP"},
      {"has", "VBZ"}, {"have", "VBP"}, {"had", "VBD"}, {"do", "VBP"},
      {"does", "VBZ"}, {"did", "VBD"},
      // Modals
      {"will", "MD"}, {"would", "MD"}, {"can", "MD"}, {"could", "MD"},
      {"may", "MD"}, {"might", "MD"}, {"shall", "MD"}, {"should", "MD"},
      {"must", "MD"},
      // Negation, adverbs, wh-words
      {"not", "RB"}, {"n't", "RB"}, {"very", "RB"}, {"also", "RB"},
      {"who", "WP"}, {"what", "WP"}, {"which", "WDT"}, {"when", "WRB"},
      {"where", "WRB"}, {"how", "WRB"}, {"why", "WRB"},
      // Common verbs in our domains
      {"married", "VBD"}, {"wed", "VBD"}, {"divorced", "VBD"}, {"met", "VBD"},
      {"causes", "VBZ"}, {"cause", "VBP"}, {"caused", "VBD"},
      {"regulates", "VBZ"}, {"regulate", "VBP"}, {"encodes", "VBZ"},
      {"exhibits", "VBZ"}, {"shows", "VBZ"}, {"reported", "VBD"},
      {"associated", "VBN"}, {"linked", "VBN"}, {"observed", "VBN"},
  };
  return *kLexicon;
}

bool AllDigitsOrSeparators(std::string_view s) {
  bool any_digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      any_digit = true;
    } else if (c != '.' && c != ',' && c != '-') {
      return false;
    }
  }
  return any_digit;
}

}  // namespace

void TagPos(std::vector<Token>* tokens) {
  for (size_t i = 0; i < tokens->size(); ++i) {
    Token& tok = (*tokens)[i];
    const std::string& text = tok.text;
    if (text.empty()) {
      tok.pos = "SYM";
      continue;
    }
    unsigned char first = static_cast<unsigned char>(text[0]);
    if (std::ispunct(first) && text.size() == 1) {
      tok.pos = text;  // Penn style: punctuation tags are the characters
      continue;
    }
    if (AllDigitsOrSeparators(text)) {
      tok.pos = "CD";
      continue;
    }
    std::string lower = ToLower(text);
    auto it = Lexicon().find(lower);
    if (it != Lexicon().end()) {
      tok.pos = it->second;
      continue;
    }
    // Capitalized mid-sentence (or anywhere: first-word NNPs like names
    // are far more common in our corpora than sentence-initial commons).
    if (std::isupper(first)) {
      tok.pos = "NNP";
      continue;
    }
    // Suffix heuristics.
    if (EndsWith(lower, "ly")) {
      tok.pos = "RB";
    } else if (EndsWith(lower, "ing")) {
      tok.pos = "VBG";
    } else if (EndsWith(lower, "ed")) {
      tok.pos = "VBD";
    } else if (EndsWith(lower, "ous") || EndsWith(lower, "ful") ||
               EndsWith(lower, "ive") || EndsWith(lower, "able") ||
               EndsWith(lower, "al") || EndsWith(lower, "ic")) {
      tok.pos = "JJ";
    } else if (EndsWith(lower, "s") && lower.size() > 3) {
      tok.pos = "NNS";
    } else {
      tok.pos = "NN";
    }
  }
}

}  // namespace dd
