#ifndef DEEPDIVE_NLP_HTML_H_
#define DEEPDIVE_NLP_HTML_H_

#include <string>
#include <string_view>

namespace dd {

/// Strip HTML markup from `html`: removes tags (replacing block-level
/// tags with newlines so sentence splitting still sees boundaries),
/// drops <script>/<style> bodies, and decodes the common entities
/// (&amp; &lt; &gt; &quot; &#39; &nbsp;). Malformed markup never fails —
/// unclosed tags are stripped to end-of-text, stray '<' is kept.
std::string StripHtml(std::string_view html);

}  // namespace dd

#endif  // DEEPDIVE_NLP_HTML_H_
