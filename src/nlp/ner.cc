#include "nlp/ner.h"

#include <cctype>

#include "util/string_util.h"

namespace dd {

namespace {

std::string JoinTokens(const Sentence& s, int begin, int end) {
  std::string out;
  for (int i = begin; i < end; ++i) {
    if (i > begin) out += ' ';
    out += s.tokens[static_cast<size_t>(i)].text;
  }
  return out;
}

bool LooksNumeric(const std::string& s) {
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != ',') {
      return false;
    }
  }
  return digit;
}

}  // namespace

void Gazetteer::Add(const std::string& phrase, const std::string& type) {
  auto tokens = SplitWhitespace(phrase);
  if (tokens.empty()) return;
  std::string key = ToLower(Join(tokens, " "));
  entries_[key] = type;
  if (tokens.size() > max_phrase_tokens_) max_phrase_tokens_ = tokens.size();
}

std::vector<Mention> Gazetteer::FindMentions(const Sentence& sentence) const {
  std::vector<Mention> out;
  const int n = static_cast<int>(sentence.tokens.size());
  int i = 0;
  while (i < n) {
    bool matched = false;
    int max_len = static_cast<int>(max_phrase_tokens_);
    if (max_len > n - i) max_len = n - i;
    for (int len = max_len; len >= 1; --len) {
      std::string key = ToLower(JoinTokens(sentence, i, i + len));
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        Mention m;
        m.sentence_index = sentence.index;
        m.token_begin = i;
        m.token_end = i + len;
        m.type = it->second;
        m.text = JoinTokens(sentence, i, i + len);
        out.push_back(std::move(m));
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) ++i;
  }
  return out;
}

std::vector<Mention> Gazetteer::FindPersonCandidates(const Sentence& sentence) {
  std::vector<Mention> out;
  const int n = static_cast<int>(sentence.tokens.size());
  int i = 0;
  while (i < n) {
    if (sentence.tokens[static_cast<size_t>(i)].pos != "NNP") {
      ++i;
      continue;
    }
    int j = i;
    while (j < n && j - i < 4 && sentence.tokens[static_cast<size_t>(j)].pos == "NNP") {
      ++j;
    }
    Mention m;
    m.sentence_index = sentence.index;
    m.token_begin = i;
    m.token_end = j;
    m.type = "PERSON";
    m.text = JoinTokens(sentence, i, j);
    out.push_back(std::move(m));
    i = j;
  }
  return out;
}

std::vector<Mention> Gazetteer::FindPriceCandidates(const Sentence& sentence) {
  std::vector<Mention> out;
  const int n = static_cast<int>(sentence.tokens.size());
  for (int i = 0; i < n; ++i) {
    const Token& tok = sentence.tokens[static_cast<size_t>(i)];
    // "$ 120" or "$120" (tokenizer splits '$' as punctuation).
    if (tok.text == "$" && i + 1 < n &&
        LooksNumeric(sentence.tokens[static_cast<size_t>(i + 1)].text)) {
      Mention m;
      m.sentence_index = sentence.index;
      m.token_begin = i;
      m.token_end = i + 2;
      m.type = "PRICE";
      m.text = JoinTokens(sentence, i, i + 2);
      out.push_back(std::move(m));
      continue;
    }
    // "120 dollars" / "120 usd" / "120 roses" (ad slang for dollars).
    if (LooksNumeric(tok.text) && i + 1 < n) {
      std::string next = ToLower(sentence.tokens[static_cast<size_t>(i + 1)].text);
      if (next == "dollars" || next == "usd" || next == "roses" || next == "bucks") {
        Mention m;
        m.sentence_index = sentence.index;
        m.token_begin = i;
        m.token_end = i + 2;
        m.type = "PRICE";
        m.text = JoinTokens(sentence, i, i + 2);
        out.push_back(std::move(m));
      }
    }
  }
  return out;
}

}  // namespace dd
