#include "nlp/html.h"

#include <cctype>

#include "util/string_util.h"

namespace dd {

namespace {

bool IsBlockTag(std::string_view name) {
  static const char* kBlockTags[] = {"p",  "div", "br",    "li",    "ul",  "ol",
                                     "tr", "td",  "table", "h1",    "h2",  "h3",
                                     "h4", "h5",  "h6",    "title", "body"};
  for (const char* tag : kBlockTags) {
    if (name == tag) return true;
  }
  return false;
}

/// Lowercased tag name at the start of a tag body like "div class=..." or
/// "/div".
std::string TagName(std::string_view tag_body) {
  size_t i = 0;
  if (i < tag_body.size() && tag_body[i] == '/') ++i;
  std::string name;
  while (i < tag_body.size() &&
         (std::isalnum(static_cast<unsigned char>(tag_body[i])))) {
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(tag_body[i])));
    ++i;
  }
  return name;
}

}  // namespace

std::string StripHtml(std::string_view html) {
  std::string out;
  out.reserve(html.size());
  size_t i = 0;
  while (i < html.size()) {
    char c = html[i];
    if (c == '<') {
      size_t close = html.find('>', i + 1);
      if (close == std::string_view::npos) break;  // unclosed tag: drop rest
      std::string_view body = html.substr(i + 1, close - i - 1);
      std::string name = TagName(body);
      if (name == "script" || name == "style") {
        // Skip to the matching close tag.
        std::string close_tag = "</" + name;
        size_t end = ToLower(html.substr(close)).find(close_tag);
        if (end == std::string::npos) break;
        size_t end_gt = html.find('>', close + end);
        if (end_gt == std::string_view::npos) break;
        i = end_gt + 1;
        continue;
      }
      if (IsBlockTag(name)) out += '\n';
      i = close + 1;
      continue;
    }
    if (c == '&') {
      struct Entity {
        const char* name;
        char replacement;
      };
      static const Entity kEntities[] = {{"&amp;", '&'},  {"&lt;", '<'},
                                         {"&gt;", '>'},   {"&quot;", '"'},
                                         {"&#39;", '\''}, {"&nbsp;", ' '}};
      bool matched = false;
      for (const Entity& e : kEntities) {
        std::string_view rest = html.substr(i);
        if (StartsWith(rest, e.name)) {
          out += e.replacement;
          i += std::string_view(e.name).size();
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace dd
