#ifndef DEEPDIVE_NLP_NER_H_
#define DEEPDIVE_NLP_NER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "nlp/document.h"

namespace dd {

/// A candidate entity mention: a token span inside a sentence.
struct Mention {
  int sentence_index = 0;
  int token_begin = 0;  ///< first token index (inclusive)
  int token_end = 0;    ///< one past the last token index
  std::string type;     ///< e.g. "PERSON", "GENE", "PHENOTYPE", "PRICE"
  std::string text;     ///< surface form (tokens joined by spaces)
};

/// Dictionary-based named-entity matcher. Longest-match-first over
/// case-normalized token sequences; also exposes heuristic matchers for
/// person names (capitalized bigrams / initials) and prices ($ amounts)
/// used by the candidate generators. This is the "high-recall,
/// low-precision" layer of candidate generation (§3): it should rather
/// over-produce than miss.
class Gazetteer {
 public:
  Gazetteer() = default;

  /// Register a dictionary phrase (tokenized on whitespace) of a type.
  void Add(const std::string& phrase, const std::string& type);

  size_t size() const { return entries_.size(); }

  /// All dictionary matches within the sentence (longest match first;
  /// overlapping shorter matches are suppressed).
  std::vector<Mention> FindMentions(const Sentence& sentence) const;

  /// Heuristic person-mention matcher: maximal runs of NNP tokens
  /// (length 1–4), e.g. "Barack Obama", "B. Obama".
  static std::vector<Mention> FindPersonCandidates(const Sentence& sentence);

  /// Heuristic price matcher: "$" followed by a number, or a number
  /// followed by a currency word ("dollars", "usd").
  static std::vector<Mention> FindPriceCandidates(const Sentence& sentence);

 private:
  // Normalized phrase -> type; keyed by lowercase space-joined tokens.
  std::unordered_map<std::string, std::string> entries_;
  size_t max_phrase_tokens_ = 0;
};

}  // namespace dd

#endif  // DEEPDIVE_NLP_NER_H_
