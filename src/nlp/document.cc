#include "nlp/document.h"

#include "nlp/html.h"
#include "nlp/pos.h"
#include "nlp/tokenizer.h"

namespace dd {

std::string Sentence::Text() const {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i].text;
  }
  return out;
}

Document AnnotateDocument(std::string id, const std::string& raw_text,
                          bool strip_html) {
  Document doc;
  doc.id = std::move(id);
  doc.text = strip_html ? StripHtml(raw_text) : raw_text;
  auto ranges = SplitSentences(doc.text);
  doc.sentences.reserve(ranges.size());
  int index = 0;
  for (const auto& [begin, end] : ranges) {
    Sentence sentence;
    sentence.index = index++;
    sentence.tokens =
        Tokenize(std::string_view(doc.text).substr(begin, end - begin), begin);
    TagPos(&sentence.tokens);
    doc.sentences.push_back(std::move(sentence));
  }
  return doc;
}

}  // namespace dd
