#ifndef DEEPDIVE_GROUNDING_GROUNDER_H_
#define DEEPDIVE_GROUNDING_GROUNDER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/udf.h"
#include "ddlog/ast.h"
#include "factor/graph.h"
#include "query/datalog.h"
#include "query/dred.h"
#include "query/source.h"
#include "storage/catalog.h"
#include "util/result.h"

namespace dd {

class TraceSpan;

/// Maps a factor-graph variable back to its database tuple — the link
/// DeepDive maintains so every marginal can be "reloaded into the
/// database" (§3.4) and every decision stays debuggable (§2.5).
struct VarInfo {
  std::string relation;
  int64_t row_id = -1;
  bool live = true;  ///< false once the tuple was deleted by a delta
};

/// Knobs for graph construction.
struct GroundingOptions {
  /// Fraction of labeled candidates held out of training: they keep
  /// their distant label for scoring (Fig. 5's test set) but are NOT
  /// clamped as evidence. Selection is a deterministic hash of the
  /// tuple, so it is stable across incremental rebuilds.
  double holdout_fraction = 0.0;
  uint64_t holdout_seed = 0x5eedULL;
  /// Worker threads for the grounding pipeline: datalog evaluation,
  /// DRed delta joins, the evidence scan, and factor assembly all fan
  /// out morsels onto one shared dd::ThreadPool. 0 = hardware
  /// concurrency; 1 = the legacy single-threaded path, kept reachable as
  /// the oracle for differential testing. The produced FactorGraph —
  /// ids, weights, CSR layout, compiled kernel streams — is byte-
  /// identical at every setting (see DESIGN.md §10 for the merge rule).
  size_t num_threads = 0;
  /// Externally owned pool to share instead of creating one (e.g. the
  /// pipeline's phase-scheduler pool, so grounding morsels and phase
  /// nodes interleave on the same workers). When set, num_threads is
  /// ignored. Must outlive the Grounder.
  ThreadPool* pool = nullptr;
  /// Rows per morsel for parallel scans. 0 (the default) = adaptive
  /// per-operator sizing from the operator's estimated per-item cost
  /// (AdaptiveMorselSize); tests pin small values to exercise multi-
  /// morsel merging on tiny corpora. Either way the decomposition is a
  /// deterministic function of the input, never of thread count.
  size_t morsel_size = 0;
};

/// Summary statistics of a (re-)grounding pass. All fields are exact at
/// any thread count: counts touched by parallel scans are accumulated
/// per morsel and merged on the coordinating thread (never mutated from
/// workers), so the struct itself stays plain ints with no atomics.
struct GroundingStats {
  size_t num_variables = 0;
  size_t num_factors = 0;
  size_t num_weights = 0;
  size_t num_evidence = 0;
  size_t num_conflicting_labels = 0;  ///< tuples with both true and false labels
  size_t num_orphan_evidence = 0;     ///< _Ev rows with no matching candidate
  size_t num_holdout = 0;             ///< labeled candidates held out of training
  /// Time spent evaluating the datalog program (the part DRed makes
  /// incremental) vs assembling the factor graph from the evaluated
  /// tables (common to both paths). Under the overlapped schedule these
  /// are sums of per-node execution times, so attribution stays exact
  /// even when eval and build nodes interleave. EXP-DRED compares
  /// eval_seconds.
  double eval_seconds = 0;
  double build_seconds = 0;
};

/// The grounding engine (§3.3, §4.1). Given a DDlog program, a catalog
/// holding the base relations, and a UDF registry, it:
///
///  1. rewrites every feature/correlation rule into a derivation rule
///     targeting a pseudo-relation `__factors_<i>` whose rows are the
///     rule's groundings — so factor maintenance *is* view maintenance;
///  2. evaluates all derivation rules, incrementally when the program is
///     non-recursive (DRed, §4.1) and by full semi-naive evaluation
///     otherwise;
///  3. builds the explicit factor graph: one Boolean variable per query-
///     relation tuple, one factor per pseudo-relation row, weights tied
///     by (rule, feature value) keys, evidence applied from `X_Ev`
///     tables.
///
/// Execution is structured as a TaskGraph (DESIGN.md §11): registry
/// extension, the evidence scan, and per-rule factor drafting are nodes
/// with explicit dependency edges, and for recursive programs the
/// stratum-evaluation nodes join the same graph — so drafting factors
/// for stratum k's pseudo-relations overlaps with evaluating stratum
/// k+1. The final single-threaded assemble node merges all drafts in
/// deterministic order, keeping the result byte-identical to the serial
/// schedule.
///
/// Variable ids are stable across ApplyDeltas() calls: surviving tuples
/// keep their id, deleted tuples leave an inert variable behind, new
/// tuples extend the id space. That stability is what lets incremental
/// inference warm-start from materialized state.
class Grounder {
 public:
  /// `catalog` must already contain the declared base relations
  /// (populated); derived/query/pseudo tables are created by Initialize.
  /// All pointers must outlive the Grounder.
  Grounder(Catalog* catalog, const DdlogProgram* program, const UdfRegistry* udfs,
           const GroundingOptions& options = GroundingOptions());
  ~Grounder();

  /// Analyze the program, create derived tables, run initial evaluation,
  /// and build the first factor graph.
  Status Initialize();

  /// DRed path: apply base-relation presence deltas, propagate through
  /// candidates and factors, rebuild the graph. Fails with Unimplemented
  /// if the program is recursive (use Reground() instead).
  Status ApplyDeltas(const std::map<std::string, DeltaSet>& base_deltas);

  /// Full re-evaluation from the current base tables (clears derived
  /// state). The baseline the paper compares DRed against.
  Status Reground();

  const FactorGraph& graph() const { return graph_; }
  FactorGraph* mutable_graph() { return &graph_; }
  const std::vector<VarInfo>& var_info() const { return var_info_; }
  const GroundingStats& stats() const { return stats_; }

  /// Variables affected by the most recent ApplyDeltas (new variables,
  /// evidence flips, variables in added/removed factors). Feed to
  /// IncrementalInference::Update.
  const std::vector<uint32_t>& changed_vars() const { return changed_vars_; }

  /// Variable id of a live query tuple, or -1.
  int64_t VarIdFor(const std::string& relation, const Tuple& tuple) const;

  /// Persist learned weights (by tying key) so the next rebuild warm-
  /// starts them. Call after Learner::Learn on mutable_graph().
  void SaveWeights();

  /// Human-readable description of a weight (its tying key).
  const std::string& WeightKey(uint32_t weight_id) const;

  /// Labeled-but-unclamped variables: (var id, distant label). The
  /// calibration test set (empty unless holdout_fraction > 0).
  const std::vector<std::pair<uint32_t, bool>>& holdout() const { return holdout_; }

  /// Observation count of each weight in the current graph (# factors),
  /// surfaced in error analysis (§2.5: "the number of times the feature
  /// was observed in the training data").
  const std::vector<uint64_t>& weight_observations() const {
    return weight_observations_;
  }

 private:
  /// A factor resolved by a worker but not yet merged: variables looked
  /// up, weight tying key computed (the expensive part, including UDF
  /// calls); the ordered merge assigns weight/factor ids.
  struct FactorDraft {
    uint32_t head_var = 0;
    uint32_t implied_var = 0;
    std::string key;
    double init = 0.0;
    bool fixed = false;
  };

  struct FactorRuleMeta {
    size_t rule_index = 0;            ///< index into program_->rules
    std::string pseudo_relation;
    std::string head_relation;        ///< query relation of the (first) head
    size_t head_arity = 0;
    // Correlation rules only:
    std::string implied_relation;
    size_t implied_arity = 0;
    bool is_correlation = false;
    size_t weight_args_begin = 0;     ///< column offset of weight args
    size_t num_weight_args = 0;
  };

  /// Rewrite program rules: derivations stay, feature/correlation rules
  /// become pseudo-relation derivations. Fills rewritten_rules_ and
  /// factor_rule_meta_.
  Status RewriteRules();
  Status CreateDerivedTables();
  /// Clear every derived table (they must start empty for evaluation).
  Status ClearDerivedTables();
  /// Build the factor graph as a TaskGraph of registry / evidence /
  /// draft / assemble nodes. With a non-null `eval_strat` (recursive
  /// programs), stratum-evaluation nodes join the same graph and build
  /// nodes hang off the strata that produce their inputs — eval and
  /// build overlap. Sets stats_.build_seconds, and stats_.eval_seconds
  /// when eval nodes ran here (callers overwrite it otherwise).
  Status BuildGraph(const Stratification* eval_strat);
  /// Node bodies of BuildGraph's task graph:
  Status ExtendVarRegistry();
  Status ApplyEvidence(std::vector<int8_t>* evidence,
                       std::vector<uint8_t>* conflict, size_t* orphans);
  Status BuildFactorDrafts(const FactorRuleMeta& meta,
                           std::vector<std::vector<FactorDraft>>* drafts);
  /// The single-threaded tail: add variables (evidence/holdout/conflict
  /// policy), merge factor drafts in (rule, morsel, row) order, finalize
  /// the graph, fill stats_. The only node that mutates graph_.
  Status AssembleGraph(const std::vector<int8_t>& evidence,
                       const std::vector<uint8_t>& conflict, size_t orphans,
                       std::vector<std::vector<std::vector<FactorDraft>>>* drafts,
                       TraceSpan* span);
  Status CollectChangedVars(const std::map<std::string, DeltaSet>& deltas);
  /// How rule evaluation and graph assembly fan out (pool is null when
  /// num_threads resolves to 1 — the serial oracle path).
  EvalParallelism Parallelism();

  Catalog* catalog_;
  const DdlogProgram* program_;
  const UdfRegistry* udfs_;
  GroundingOptions options_;
  size_t num_threads_ = 1;           ///< resolved worker count
  std::unique_ptr<ThreadPool> pool_; ///< owned pool; null when serial or shared

  std::vector<ConjunctiveRule> rewritten_rules_;
  std::vector<FactorRuleMeta> factor_rule_meta_;
  std::unique_ptr<IncrementalEngine> incremental_;  // null if recursive program
  bool use_incremental_ = false;

  // Stable variable registry: (relation, row_id) -> var id.
  std::map<std::pair<std::string, int64_t>, uint32_t> var_registry_;
  std::vector<VarInfo> var_info_;

  FactorGraph graph_;
  GroundingStats stats_;
  std::vector<std::pair<uint32_t, bool>> holdout_;
  std::vector<uint32_t> changed_vars_;
  std::vector<std::string> weight_keys_;           // weight id -> tying key
  std::vector<uint64_t> weight_observations_;
  std::map<std::string, double> saved_weights_;    // tying key -> learned value
  bool initialized_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_GROUNDING_GROUNDER_H_
