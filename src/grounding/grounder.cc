#include "grounding/grounder.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "ddlog/parser.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/task_graph.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"
#include "util/string_util.h"

namespace dd {

namespace {

/// Infer the types of a rule's body variables from the declared schemas
/// of the positive atoms they appear in.
Status InferVarTypes(const ConjunctiveRule& rule, const DdlogProgram& program,
                     std::map<std::string, ValueType>* types) {
  for (const Atom& atom : rule.body) {
    if (atom.negated) continue;
    const RelationDecl* decl = program.FindDecl(atom.relation);
    if (decl == nullptr) {
      return Status::InvalidArgument("undeclared relation in body: " + atom.relation);
    }
    for (size_t i = 0; i < atom.terms.size() && i < decl->schema.num_columns(); ++i) {
      if (atom.terms[i].is_var()) {
        types->emplace(atom.terms[i].var, decl->schema.column(i).type);
      }
    }
  }
  return Status::OK();
}

std::string PseudoRelationName(size_t rule_index) {
  return StrFormat("__factors_%zu", rule_index);
}

// Per-row cost hints for the grounder's scans, in the same unit as
// CompiledConjunction::EstimatedUnitCost (≈ one comparison), feeding
// AdaptiveMorselSize. Constants, so the morsel decomposition stays a
// pure function of the input tables.
constexpr double kEvidenceScanCost = 16.0;   // tuple copy + hash probe
constexpr double kFactorDraftCost = 48.0;    // probes + registry lookups + key
constexpr double kFactorDraftUdfCost = 96.0; // ... plus a UDF call per row

}  // namespace

Grounder::Grounder(Catalog* catalog, const DdlogProgram* program,
                   const UdfRegistry* udfs, const GroundingOptions& options)
    : catalog_(catalog), program_(program), udfs_(udfs), options_(options) {
  if (options_.pool != nullptr) {
    num_threads_ = std::max<size_t>(1, options_.pool->num_threads());
  } else {
    num_threads_ = options_.num_threads == 0 ? HardwareThreads() : options_.num_threads;
  }
}

Grounder::~Grounder() = default;

EvalParallelism Grounder::Parallelism() {
  if (options_.pool != nullptr) {
    return EvalParallelism{options_.pool, options_.morsel_size};
  }
  // The owned pool is created on first demand so serial grounders (and
  // the num_threads=1 differential-testing oracle) never spawn workers.
  // BuildGraph resolves parallelism on the coordinating thread before
  // launching its task graph, so node bodies calling Parallelism() from
  // workers only ever read pool_, never create it.
  if (num_threads_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  return EvalParallelism{pool_.get(), options_.morsel_size};
}

Status Grounder::RewriteRules() {
  rewritten_rules_.clear();
  factor_rule_meta_.clear();
  for (size_t i = 0; i < program_->rules.size(); ++i) {
    const DdlogRule& rule = program_->rules[i];
    if (rule.kind == RuleKind::kDerivation) {
      rewritten_rules_.push_back(rule.rule);
      continue;
    }
    // Feature / correlation rule -> pseudo-relation derivation.
    FactorRuleMeta meta;
    meta.rule_index = i;
    meta.pseudo_relation = PseudoRelationName(i);
    meta.head_relation = rule.rule.head.relation;
    meta.head_arity = rule.rule.head.terms.size();
    meta.is_correlation = rule.kind == RuleKind::kCorrelation;

    ConjunctiveRule rewritten;
    rewritten.body = rule.rule.body;
    rewritten.conditions = rule.rule.conditions;
    rewritten.head.relation = meta.pseudo_relation;
    rewritten.head.terms = rule.rule.head.terms;
    if (meta.is_correlation) {
      meta.implied_relation = rule.implied_head.relation;
      meta.implied_arity = rule.implied_head.terms.size();
      for (const Term& t : rule.implied_head.terms) {
        rewritten.head.terms.push_back(t);
      }
    }
    meta.weight_args_begin = rewritten.head.terms.size();
    if (rule.weight.has_value()) {
      meta.num_weight_args = rule.weight->args.size();
      for (const std::string& arg : rule.weight->args) {
        rewritten.head.terms.push_back(Term::Var(arg));
      }
    }
    factor_rule_meta_.push_back(std::move(meta));
    rewritten_rules_.push_back(std::move(rewritten));
  }
  return Status::OK();
}

Status Grounder::CreateDerivedTables() {
  // Declared relations: create empty tables for any that are missing
  // (base tables are expected to be pre-populated by the caller, but a
  // missing empty one is not an error).
  for (const RelationDecl& decl : program_->declarations) {
    if (!catalog_->HasTable(decl.name)) {
      DD_RETURN_IF_ERROR(catalog_->CreateTable(decl.name, decl.schema).status());
    } else {
      // Schema must match.
      DD_ASSIGN_OR_RETURN(Table * existing, catalog_->GetTable(decl.name));
      if (!(existing->schema() == decl.schema)) {
        return Status::TypeError("table " + decl.name + " exists with schema " +
                                 existing->schema().ToString() + " but is declared " +
                                 decl.schema.ToString());
      }
    }
  }
  // Pseudo factor tables: schema from head terms of the original rule.
  for (const FactorRuleMeta& meta : factor_rule_meta_) {
    const DdlogRule& rule = program_->rules[meta.rule_index];
    std::map<std::string, ValueType> var_types;
    DD_RETURN_IF_ERROR(InferVarTypes(rule.rule, *program_, &var_types));

    std::vector<Column> columns;
    auto append_terms = [&](const Atom& atom, const std::string& decl_name,
                            const char* prefix) -> Status {
      const RelationDecl* decl = program_->FindDecl(decl_name);
      if (decl == nullptr) {
        return Status::InvalidArgument("undeclared relation: " + decl_name);
      }
      for (size_t i = 0; i < atom.terms.size(); ++i) {
        columns.push_back(
            Column{StrFormat("%s%zu", prefix, i), decl->schema.column(i).type});
      }
      return Status::OK();
    };
    DD_RETURN_IF_ERROR(append_terms(rule.rule.head, meta.head_relation, "h"));
    if (meta.is_correlation) {
      DD_RETURN_IF_ERROR(append_terms(rule.implied_head, meta.implied_relation, "g"));
    }
    if (rule.weight.has_value()) {
      for (size_t a = 0; a < rule.weight->args.size(); ++a) {
        auto it = var_types.find(rule.weight->args[a]);
        if (it == var_types.end()) {
          return Status::InvalidArgument("cannot infer type of weight argument " +
                                         rule.weight->args[a]);
        }
        columns.push_back(Column{StrFormat("w%zu", a), it->second});
      }
    }
    if (catalog_->HasTable(meta.pseudo_relation)) {
      DD_RETURN_IF_ERROR(catalog_->DropTable(meta.pseudo_relation));
    }
    DD_RETURN_IF_ERROR(
        catalog_->CreateTable(meta.pseudo_relation, Schema(std::move(columns)))
            .status());
  }
  return Status::OK();
}

Status Grounder::ClearDerivedTables() {
  std::set<std::string> derived;
  for (const ConjunctiveRule& rule : rewritten_rules_) derived.insert(rule.head.relation);
  for (const std::string& rel : derived) {
    DD_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(rel));
    table->Clear();
  }
  return Status::OK();
}

Status Grounder::Initialize() {
  DD_RETURN_IF_ERROR(AnalyzeProgram(*program_));
  // Fail fast on unregistered weight UDFs instead of during grounding.
  for (const DdlogRule& rule : program_->rules) {
    if (rule.weight.has_value() && rule.weight->kind == WeightSpec::Kind::kUdf &&
        !udfs_->Has(rule.weight->udf_name)) {
      return Status::NotFound("weight UDF not registered: " + rule.weight->udf_name);
    }
  }
  DD_RETURN_IF_ERROR(RewriteRules());
  DD_RETURN_IF_ERROR(CreateDerivedTables());
  DD_RETURN_IF_ERROR(ClearDerivedTables());

  // The incremental-vs-full path choice is made up front from the
  // program's stratification, so the recursive path can schedule stratum
  // evaluation and graph assembly in one task graph. IncrementalEngine
  // rejects exactly the recursive programs and both paths surface the
  // same validation/stratification errors, so behavior matches the old
  // try-incremental-then-fall-back flow.
  for (const ConjunctiveRule& rule : rewritten_rules_) {
    DD_RETURN_IF_ERROR(rule.Validate());
  }
  DD_ASSIGN_OR_RETURN(Stratification strat, Stratify(rewritten_rules_));
  initialized_ = true;

  if (!strat.has_recursion) {
    Stopwatch eval_watch;
    {
      DD_TRACE_SPAN("grounding.eval");
      incremental_ = std::make_unique<IncrementalEngine>(catalog_, rewritten_rules_,
                                                         Parallelism());
      DD_RETURN_IF_ERROR(incremental_->Initialize());
      use_incremental_ = true;
    }
    double eval_seconds = eval_watch.Seconds();
    DD_RETURN_IF_ERROR(BuildGraph(nullptr));
    stats_.eval_seconds = eval_seconds;
  } else {
    // Recursive program: full semi-naive evaluation, no DRed. Stratum
    // nodes join BuildGraph's task graph (which also sets eval_seconds
    // from their measured node times).
    use_incremental_ = false;
    incremental_.reset();
    DD_RETURN_IF_ERROR(BuildGraph(&strat));
  }
  // The initial grounding marks every variable as changed.
  changed_vars_.clear();
  for (uint32_t v = 0; v < var_info_.size(); ++v) changed_vars_.push_back(v);
  return Status::OK();
}

Status Grounder::ApplyDeltas(const std::map<std::string, DeltaSet>& base_deltas) {
  if (!initialized_) return Status::Internal("Grounder not initialized");
  if (!use_incremental_) {
    return Status::Unimplemented(
        "program is recursive; incremental grounding unavailable — use Reground()");
  }
  Stopwatch eval_watch;
  std::map<std::string, DeltaSet> all_deltas;
  {
    DD_TRACE_SPAN("grounding.eval");
    DD_ASSIGN_OR_RETURN(all_deltas, incremental_->ApplyDeltas(base_deltas));
  }
  double eval_seconds = eval_watch.Seconds();
  DD_RETURN_IF_ERROR(BuildGraph(nullptr));
  stats_.eval_seconds = eval_seconds;
  return CollectChangedVars(all_deltas);
}

Status Grounder::Reground() {
  if (!initialized_) return Status::Internal("Grounder not initialized");
  DD_RETURN_IF_ERROR(ClearDerivedTables());
  if (use_incremental_) {
    Stopwatch eval_watch;
    {
      DD_TRACE_SPAN("grounding.eval");
      incremental_ = std::make_unique<IncrementalEngine>(catalog_, rewritten_rules_,
                                                         Parallelism());
      DD_RETURN_IF_ERROR(incremental_->Initialize());
    }
    double eval_seconds = eval_watch.Seconds();
    DD_RETURN_IF_ERROR(BuildGraph(nullptr));
    stats_.eval_seconds = eval_seconds;
  } else {
    DD_ASSIGN_OR_RETURN(Stratification strat, Stratify(rewritten_rules_));
    DD_RETURN_IF_ERROR(BuildGraph(&strat));
  }
  changed_vars_.clear();
  for (uint32_t v = 0; v < var_info_.size(); ++v) changed_vars_.push_back(v);
  return Status::OK();
}

Status Grounder::BuildGraph(const Stratification* eval_strat) {
  stats_ = GroundingStats();
  // Resolve parallelism (creating the owned pool if needed) before any
  // node can run — see the note in Parallelism().
  const EvalParallelism par = Parallelism();

  TaskGraph tg;
  tg.set_trace_root(TraceSpan::CurrentPath());

  // Recursive programs evaluate their strata inside this same graph, so
  // factor drafting for stratum k's pseudo-relations overlaps with the
  // evaluation of strata it does not depend on. The engine and strat
  // must outlive tg.Run() — both live on this frame / in the caller.
  DatalogEngine engine(catalog_, par);
  std::vector<TaskGraph::NodeId> stratum_nodes;
  std::map<std::string, TaskGraph::NodeId> producer;  // derived rel -> eval node
  if (eval_strat != nullptr) {
    DD_RETURN_IF_ERROR(
        engine.Schedule(rewritten_rules_, *eval_strat, &tg, &stratum_nodes));
    for (size_t s = 0; s < eval_strat->strata.size(); ++s) {
      for (const std::string& rel : eval_strat->strata[s]) {
        producer[rel] = stratum_nodes[s];
      }
    }
  }

  // Shared node state lives on this stack frame; tg.Run() is synchronous,
  // so it outlives every node. Each draft node writes only its own slot.
  std::vector<int8_t> evidence;   // -1 none, 0/1 label
  std::vector<uint8_t> conflict;
  size_t orphans = 0;
  std::vector<std::vector<std::vector<FactorDraft>>> drafts(factor_rule_meta_.size());

  // Registry extension must see final query tables; evidence and draft
  // scans read the registry (and query tables transitively through it).
  const TaskGraph::NodeId reg =
      tg.AddNode("build.registry", [this]() { return ExtendVarRegistry(); });
  for (const RelationDecl& decl : program_->declarations) {
    if (!decl.is_query) continue;
    auto it = producer.find(decl.name);
    if (it != producer.end()) tg.AddEdge(it->second, reg);
  }

  const TaskGraph::NodeId ev =
      tg.AddNode("build.evidence", [this, &evidence, &conflict, &orphans]() {
        evidence.assign(var_info_.size(), -1);
        conflict.assign(var_info_.size(), 0);
        return ApplyEvidence(&evidence, &conflict, &orphans);
      });
  tg.AddEdge(reg, ev);

  std::vector<TaskGraph::NodeId> draft_nodes;
  for (size_t i = 0; i < factor_rule_meta_.size(); ++i) {
    const TaskGraph::NodeId node = tg.AddNode(
        "build.factors." + factor_rule_meta_[i].pseudo_relation,
        [this, &m = factor_rule_meta_[i], out = &drafts[i]]() {
          return BuildFactorDrafts(m, out);
        });
    tg.AddEdge(reg, node);
    auto it = producer.find(factor_rule_meta_[i].pseudo_relation);
    if (it != producer.end()) tg.AddEdge(it->second, node);
    draft_nodes.push_back(node);
  }

  const TaskGraph::NodeId assemble = tg.AddNode(
      "build.assemble",
      [this, &evidence, &conflict, &orphans, &drafts](TraceSpan* span) {
        return AssembleGraph(evidence, conflict, orphans, &drafts, span);
      });
  tg.AddEdge(ev, assemble);
  for (TaskGraph::NodeId n : draft_nodes) tg.AddEdge(n, assemble);

  DD_RETURN_IF_ERROR(tg.Run(par.pool));

  // Attribute time per node so eval-vs-build stays exact even when the
  // schedule interleaves them.
  stats_.eval_seconds = 0;
  for (TaskGraph::NodeId n : stratum_nodes) stats_.eval_seconds += tg.NodeSeconds(n);
  stats_.build_seconds =
      tg.NodeSeconds(reg) + tg.NodeSeconds(ev) + tg.NodeSeconds(assemble);
  for (TaskGraph::NodeId n : draft_nodes) stats_.build_seconds += tg.NodeSeconds(n);

  // Per-pass grounding throughput: tuples (live query variables) and
  // factors this (re-)grounding produced.
  size_t tuples_grounded = 0;
  for (const VarInfo& info : var_info_) {
    if (info.live) ++tuples_grounded;
  }
  DD_COUNTER_ADD("dd.grounding.tuples_grounded", tuples_grounded);
  DD_COUNTER_ADD("dd.grounding.factors_emitted", graph_.num_factors());
  return Status::OK();
}

Status Grounder::ExtendVarRegistry() {
  // Extend the variable registry with new live query tuples; mark
  // registry entries for vanished tuples as dead. Declaration order and
  // row order make the id assignment deterministic.
  for (const RelationDecl& decl : program_->declarations) {
    if (!decl.is_query) continue;
    DD_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(decl.name));
    const size_t cap = table->capacity();
    for (size_t row = 0; row < cap; ++row) {
      int64_t row_id = static_cast<int64_t>(row);
      auto key = std::make_pair(decl.name, row_id);
      auto it = var_registry_.find(key);
      if (table->is_live(row_id)) {
        if (it == var_registry_.end()) {
          uint32_t var = static_cast<uint32_t>(var_info_.size());
          var_registry_.emplace(key, var);
          var_info_.push_back(VarInfo{decl.name, row_id, true});
        } else {
          var_info_[it->second].live = true;
        }
      } else if (it != var_registry_.end()) {
        var_info_[it->second].live = false;
      }
    }
  }
  return Status::OK();
}

Status Grounder::ApplyEvidence(std::vector<int8_t>* evidence,
                               std::vector<uint8_t>* conflict, size_t* orphans) {
  const EvalParallelism par = Parallelism();
  const size_t morsel_size = par.MorselSizeFor(kEvidenceScanCost);
  for (const RelationDecl& decl : program_->declarations) {
    if (!decl.is_query) continue;
    std::string ev_name = decl.name + "_Ev";
    if (!catalog_->HasTable(ev_name)) continue;
    DD_ASSIGN_OR_RETURN(const Table* ev_table, catalog_->GetTable(ev_name));
    DD_ASSIGN_OR_RETURN(const Table* q_table, catalog_->GetTable(decl.name));
    const size_t n = decl.schema.num_columns();
    const size_t cap = ev_table->capacity();

    // Each morsel records its (var, label) hits in row order plus an
    // orphan count. The first-label-wins / conflict logic is order-
    // sensitive, so it runs only in the ordered merge below — which
    // replays the exact serial row order, making the result identical to
    // the single-threaded scan at any thread count.
    struct EvMorsel {
      std::vector<std::pair<uint32_t, int8_t>> hits;
      size_t orphans = 0;
    };
    std::vector<EvMorsel> morsels(NumMorsels(cap, morsel_size));
    DD_RETURN_IF_ERROR(ParallelMorsels(
        par.pool, cap, morsel_size,
        [&](size_t m, size_t begin, size_t end) -> Status {
          Stopwatch watch;
          EvMorsel& out = morsels[m];
          for (size_t row = begin; row < end; ++row) {
            if (!ev_table->is_live(static_cast<int64_t>(row))) continue;
            // Zero-copy read of the frozen column arrays.
            RowRef ev = ev_table->ref(static_cast<int64_t>(row));
            if (ev.size() != n + 1 || ev.at(n).type() != ValueType::kBool) continue;
            Tuple target;
            for (size_t i = 0; i < n; ++i) target.Append(ev.at(i));
            int64_t q_row = q_table->Find(target);
            if (q_row < 0) {
              ++out.orphans;
              continue;
            }
            auto it = var_registry_.find(std::make_pair(decl.name, q_row));
            if (it == var_registry_.end()) continue;
            out.hits.emplace_back(it->second,
                                  static_cast<int8_t>(ev.at(n).AsBool() ? 1 : 0));
          }
          DD_HISTOGRAM_OBSERVE("dd.grounding.morsel_seconds", watch.Seconds());
          return Status::OK();
        }));
    for (const EvMorsel& m : morsels) {
      *orphans += m.orphans;
      for (const auto& [var, label] : m.hits) {
        if ((*evidence)[var] >= 0 && (*evidence)[var] != label) {
          (*conflict)[var] = 1;
        } else {
          (*evidence)[var] = label;
        }
      }
    }
  }
  return Status::OK();
}

Status Grounder::BuildFactorDrafts(const FactorRuleMeta& meta,
                                   std::vector<std::vector<FactorDraft>>* drafts) {
  const EvalParallelism par = Parallelism();
  const DdlogRule& rule = program_->rules[meta.rule_index];
  DD_ASSIGN_OR_RETURN(const Table* pseudo, catalog_->GetTable(meta.pseudo_relation));
  DD_ASSIGN_OR_RETURN(const Table* head_table,
                      catalog_->GetTable(meta.head_relation));
  const Table* implied_table = nullptr;
  if (meta.is_correlation) {
    DD_ASSIGN_OR_RETURN(implied_table, catalog_->GetTable(meta.implied_relation));
  }
  const size_t cap = pseudo->capacity();
  const bool has_udf_weight = rule.weight.has_value() &&
                              rule.weight->kind == WeightSpec::Kind::kUdf;
  const size_t morsel_size =
      par.MorselSizeFor(has_udf_weight ? kFactorDraftUdfCost : kFactorDraftCost);

  // Workers resolve variables and compute weight tying keys (including
  // UDF calls — the expensive part) into per-morsel draft buffers; the
  // ordered merge in AssembleGraph then assigns weight ids and emits
  // factors in the exact serial row order, so weight ids, factor ids,
  // and the CSR the graph compiles from are byte-identical at any
  // thread count.
  drafts->clear();
  drafts->resize(NumMorsels(cap, morsel_size));
  return ParallelMorsels(
      par.pool, cap, morsel_size,
      [&](size_t m, size_t begin, size_t end) -> Status {
        Stopwatch watch;
        std::vector<FactorDraft>& out = (*drafts)[m];
        for (size_t row = begin; row < end; ++row) {
          if (!pseudo->is_live(static_cast<int64_t>(row))) continue;
          // Zero-copy read of the frozen column arrays.
          RowRef grounding = pseudo->ref(static_cast<int64_t>(row));

          // Resolve the head variable. Lookups use find() rather than
          // at(): a miss is an internal invariant violation, and worker
          // code must report it as a Status, never throw.
          Tuple head_tuple;
          for (size_t i = 0; i < meta.head_arity; ++i) {
            head_tuple.Append(grounding.at(i));
          }
          int64_t head_row = head_table->Find(head_tuple);
          if (head_row < 0) continue;  // candidate vanished: factor is moot
          auto head_it =
              var_registry_.find(std::make_pair(meta.head_relation, head_row));
          if (head_it == var_registry_.end()) {
            return Status::Internal("factor head missing from variable registry: " +
                                    meta.head_relation);
          }
          FactorDraft draft;
          draft.head_var = head_it->second;

          if (meta.is_correlation) {
            Tuple implied_tuple;
            for (size_t i = 0; i < meta.implied_arity; ++i) {
              implied_tuple.Append(grounding.at(meta.head_arity + i));
            }
            int64_t implied_row = implied_table->Find(implied_tuple);
            if (implied_row < 0) continue;
            auto imp_it = var_registry_.find(
                std::make_pair(meta.implied_relation, implied_row));
            if (imp_it == var_registry_.end()) {
              return Status::Internal(
                  "implied head missing from variable registry: " +
                  meta.implied_relation);
            }
            draft.implied_var = imp_it->second;
          }

          // Weight tying key.
          if (!rule.weight.has_value()) {
            draft.key = StrFormat("rule%zu", meta.rule_index);
          } else {
            switch (rule.weight->kind) {
              case WeightSpec::Kind::kFixed:
                draft.key = StrFormat("rule%zu:fixed", meta.rule_index);
                draft.init = rule.weight->fixed_value;
                draft.fixed = true;
                break;
              case WeightSpec::Kind::kLearnable:
                draft.key = StrFormat("rule%zu", meta.rule_index);
                break;
              case WeightSpec::Kind::kUdf: {
                std::vector<Value> args;
                for (size_t a = 0; a < meta.num_weight_args; ++a) {
                  args.push_back(grounding.at(meta.weight_args_begin + a));
                }
                DD_ASSIGN_OR_RETURN(Value feature,
                                    udfs_->Call(rule.weight->udf_name, args));
                draft.key = StrFormat("rule%zu:%s=%s", meta.rule_index,
                                      rule.weight->udf_name.c_str(),
                                      feature.ToString().c_str());
                break;
              }
              case WeightSpec::Kind::kVariables: {
                draft.key = StrFormat("rule%zu:", meta.rule_index);
                for (size_t a = 0; a < meta.num_weight_args; ++a) {
                  if (a > 0) draft.key += '|';
                  draft.key += grounding.at(meta.weight_args_begin + a).ToString();
                }
                break;
              }
            }
          }
          out.push_back(std::move(draft));
        }
        DD_HISTOGRAM_OBSERVE("dd.grounding.morsel_seconds", watch.Seconds());
        return Status::OK();
      });
}

Status Grounder::AssembleGraph(
    const std::vector<int8_t>& evidence, const std::vector<uint8_t>& conflict,
    size_t orphans, std::vector<std::vector<std::vector<FactorDraft>>>* drafts,
    TraceSpan* span) {
  graph_ = FactorGraph();
  weight_keys_.clear();
  holdout_.clear();
  stats_.num_orphan_evidence = orphans;

  auto held_out = [&](size_t v) {
    if (options_.holdout_fraction <= 0.0) return false;
    // Deterministic per-tuple coin so membership survives rebuilds.
    const VarInfo& info = var_info_[v];
    auto table = catalog_->GetTable(info.relation);
    if (!table.ok()) return false;
    uint64_t h = HashCombine((*table)->RowHash(info.row_id),
                             options_.holdout_seed);
    return (h % 10000) < static_cast<uint64_t>(options_.holdout_fraction * 10000);
  };

  for (size_t v = 0; v < var_info_.size(); ++v) {
    if (!var_info_[v].live) {
      // Inert placeholder: clamped false, never touched by factors.
      graph_.AddVariable(true, false);
      continue;
    }
    if (conflict[v]) {
      ++stats_.num_conflicting_labels;
      graph_.AddVariable(false, false);  // conflicting labels -> unlabeled
      continue;
    }
    if (evidence[v] >= 0) {
      if (held_out(v)) {
        ++stats_.num_holdout;
        holdout_.emplace_back(static_cast<uint32_t>(v), evidence[v] == 1);
        graph_.AddVariable(false, false);  // labeled but not clamped
      } else {
        ++stats_.num_evidence;
        graph_.AddVariable(true, evidence[v] == 1);
      }
    } else {
      graph_.AddVariable(false, false);
    }
  }

  // Ordered merge of the factor drafts in (rule, morsel, row) order —
  // the exact serial emission sequence, so weight and factor ids are
  // byte-identical to the single-threaded build.
  std::map<std::string, uint32_t> weight_ids;
  auto weight_id_for = [&](const std::string& key, double init,
                           bool fixed) -> uint32_t {
    auto it = weight_ids.find(key);
    if (it != weight_ids.end()) return it->second;
    double value = init;
    if (!fixed) {
      auto saved = saved_weights_.find(key);
      if (saved != saved_weights_.end()) value = saved->second;
    }
    uint32_t id = graph_.AddWeight(value, fixed, key);
    weight_ids.emplace(key, id);
    weight_keys_.push_back(key);
    return id;
  };
  for (size_t i = 0; i < factor_rule_meta_.size(); ++i) {
    const FactorRuleMeta& meta = factor_rule_meta_[i];
    for (const auto& morsel : (*drafts)[i]) {
      for (const FactorDraft& draft : morsel) {
        uint32_t weight = weight_id_for(draft.key, draft.init, draft.fixed);
        if (meta.is_correlation) {
          DD_RETURN_IF_ERROR(graph_.AddFactor(
              FactorFunc::kImply, weight,
              {{draft.head_var, true}, {draft.implied_var, true}}));
        } else {
          DD_RETURN_IF_ERROR(graph_.AddFactor(FactorFunc::kIsTrue, weight,
                                              {{draft.head_var, true}}));
        }
      }
    }
  }

  DD_RETURN_IF_ERROR(graph_.Finalize());
  weight_observations_.assign(graph_.num_weights(), 0);
  for (uint32_t f = 0; f < graph_.num_factors(); ++f) {
    weight_observations_[graph_.factor_weight(f)]++;
  }
  stats_.num_variables = graph_.num_variables();
  stats_.num_factors = graph_.num_factors();
  stats_.num_weights = graph_.num_weights();
  if (span != nullptr) {
    size_t tuples_grounded = 0;
    for (const VarInfo& info : var_info_) {
      if (info.live) ++tuples_grounded;
    }
    span->Attr("tuples_grounded", static_cast<double>(tuples_grounded));
    span->Attr("factors_emitted", static_cast<double>(graph_.num_factors()));
    span->Attr("num_threads", static_cast<double>(num_threads_));
  }
  return Status::OK();
}

Status Grounder::CollectChangedVars(const std::map<std::string, DeltaSet>& deltas) {
  std::unordered_set<uint32_t> changed;
  auto add_var_for = [&](const std::string& relation, const Tuple& tuple,
                         size_t arity_limit) {
    // Look up by the tuple prefix of the query relation's arity.
    auto table = catalog_->GetTable(relation);
    if (!table.ok()) return;
    Tuple prefix;
    for (size_t i = 0; i < arity_limit && i < tuple.size(); ++i) {
      prefix.Append(tuple.at(i));
    }
    // Deleted tuples keep their (tombstoned) row id, so their now-inert
    // variable is still reported as changed.
    int64_t row = (*table)->FindIncludingDeleted(prefix);
    if (row < 0) return;
    auto it = var_registry_.find(std::make_pair(relation, row));
    if (it != var_registry_.end()) changed.insert(it->second);
  };

  for (const auto& [relation, delta] : deltas) {
    // Query relation deltas: tuples appearing/disappearing.
    const RelationDecl* decl = program_->FindDecl(relation);
    if (decl != nullptr && decl->is_query) {
      for (const auto& [tuple, count] : delta) {
        (void)count;
        add_var_for(relation, tuple, decl->schema.num_columns());
      }
      continue;
    }
    // Evidence deltas.
    if (decl != nullptr && EndsWith(relation, "_Ev")) {
      std::string target = relation.substr(0, relation.size() - 3);
      const RelationDecl* target_decl = program_->FindDecl(target);
      if (target_decl != nullptr) {
        for (const auto& [tuple, count] : delta) {
          (void)count;
          add_var_for(target, tuple, target_decl->schema.num_columns());
        }
      }
      continue;
    }
    // Pseudo factor-table deltas: head (and implied head) variables.
    for (const FactorRuleMeta& meta : factor_rule_meta_) {
      if (relation != meta.pseudo_relation) continue;
      for (const auto& [tuple, count] : delta) {
        (void)count;
        add_var_for(meta.head_relation, tuple, meta.head_arity);
        if (meta.is_correlation) {
          Tuple implied;
          for (size_t i = 0; i < meta.implied_arity && meta.head_arity + i < tuple.size();
               ++i) {
            implied.Append(tuple.at(meta.head_arity + i));
          }
          int64_t row = -1;
          auto table = catalog_->GetTable(meta.implied_relation);
          if (table.ok()) row = (*table)->Find(implied);
          if (row >= 0) {
            auto it = var_registry_.find(std::make_pair(meta.implied_relation, row));
            if (it != var_registry_.end()) changed.insert(it->second);
          }
        }
      }
    }
  }
  changed_vars_.assign(changed.begin(), changed.end());
  std::sort(changed_vars_.begin(), changed_vars_.end());
  return Status::OK();
}

int64_t Grounder::VarIdFor(const std::string& relation, const Tuple& tuple) const {
  auto table = catalog_->GetTable(relation);
  if (!table.ok()) return -1;
  int64_t row = (*table)->Find(tuple);
  if (row < 0) return -1;
  auto it = var_registry_.find(std::make_pair(relation, row));
  return it == var_registry_.end() ? -1 : static_cast<int64_t>(it->second);
}

void Grounder::SaveWeights() {
  for (uint32_t w = 0; w < graph_.num_weights(); ++w) {
    if (graph_.weight(w).is_fixed) continue;
    saved_weights_[weight_keys_[w]] = graph_.weight(w).value;
  }
}

const std::string& Grounder::WeightKey(uint32_t weight_id) const {
  return weight_keys_[weight_id];
}

}  // namespace dd
