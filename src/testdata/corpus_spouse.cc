#include "testdata/corpus_spouse.h"

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace dd {

namespace {

const char* kFirstNames[] = {
    "Barack", "Michelle", "George",  "Laura",  "Bill",    "Hillary", "James",
    "Sarah",  "Robert",   "Emily",   "David",  "Anna",    "Thomas",  "Maria",
    "Daniel", "Sofia",    "Henry",   "Grace",  "Samuel",  "Alice",   "Victor",
    "Elena",  "Walter",   "Nina",    "Oscar",  "Julia",   "Peter",   "Clara",
    "Frank",  "Diana",    "Arthur",  "Rosa",   "Martin",  "Irene",   "Leon",
    "Vera",   "Hugo",     "Martha",  "Felix",  "Edith"};
const char* kLastNames[] = {
    "Obama",   "Smith",   "Johnson",  "Chen",    "Garcia",  "Kim",    "Patel",
    "Mueller", "Rossi",   "Tanaka",   "Novak",   "Silva",   "Dubois", "Larsen",
    "Petrov",  "Okafor",  "Haddad",   "Svensson", "Moreau",  "Ricci",  "Weber",
    "Castillo", "Yamamoto", "Kowalski", "Andersen", "Popescu", "Fischer",
    "Romano",  "Vargas",  "Nakamura"};

/// Positive (spouse-indicating) sentence templates; %1 and %2 are names.
const char* kPositiveTemplates[] = {
    "%s and his wife %s attended the state dinner.",
    "%s married %s in a small ceremony.",
    "%s and %s celebrated their wedding anniversary.",
    "%s , who wed %s years ago , smiled at the crowd.",
    "The couple %s and %s bought a house together.",
    "%s and her husband %s hosted the gala.",
};

/// Negative templates mentioning two people without a marriage relation.
const char* kNegativeTemplates[] = {
    "%s met %s at the annual conference.",
    "%s debated %s on live television.",
    "%s and %s are siblings who grew up in Ohio.",
    "%s criticized %s during the hearing.",
    "%s interviewed %s about the new book.",
    "%s succeeded %s as chief executive.",
    "%s and his colleague %s published a report.",
};

/// Filler sentences with no person pair.
const char* kFillerSentences[] = {
    "The committee approved the budget after a long debate.",
    "Markets rallied on news of the trade agreement.",
    "The museum reopened after extensive renovations.",
    "Heavy rain delayed the championship game.",
    "The city council voted to expand the park.",
};

/// Apply OCR-style corruption: swap two characters and drop one space.
std::string Corrupt(const std::string& text, Rng* rng) {
  std::string out = text;
  if (out.size() > 4) {
    size_t i = 1 + rng->NextBounded(out.size() - 3);
    std::swap(out[i], out[i + 1]);
  }
  size_t space = out.find(' ', out.size() / 2);
  if (space != std::string::npos) out.erase(space, 1);
  return out;
}

}  // namespace

SpouseCorpus GenerateSpouseCorpus(const SpouseCorpusOptions& options) {
  Rng rng(options.seed);
  SpouseCorpus corpus;

  // Unique person names: first + last, no repeats.
  std::set<std::string> used;
  const size_t nf = sizeof(kFirstNames) / sizeof(kFirstNames[0]);
  const size_t nl = sizeof(kLastNames) / sizeof(kLastNames[0]);
  while (corpus.persons.size() < static_cast<size_t>(options.num_persons) &&
         used.size() < nf * nl) {
    std::string name = std::string(kFirstNames[rng.NextBounded(nf)]) + " " +
                       kLastNames[rng.NextBounded(nl)];
    if (used.insert(name).second) corpus.persons.push_back(name);
  }

  auto ordered = [](std::string a, std::string b) {
    if (b < a) std::swap(a, b);
    return std::make_pair(std::move(a), std::move(b));
  };

  // Disjoint married and sibling pairs.
  std::vector<size_t> shuffled(corpus.persons.size());
  for (size_t i = 0; i < shuffled.size(); ++i) shuffled[i] = i;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  size_t cursor = 0;
  for (int p = 0; p < options.num_married_pairs && cursor + 1 < shuffled.size();
       ++p, cursor += 2) {
    corpus.married_truth.push_back(ordered(corpus.persons[shuffled[cursor]],
                                           corpus.persons[shuffled[cursor + 1]]));
  }
  for (int p = 0; p < options.num_sibling_pairs && cursor + 1 < shuffled.size();
       ++p, cursor += 2) {
    corpus.kb_siblings.push_back(ordered(corpus.persons[shuffled[cursor]],
                                         corpus.persons[shuffled[cursor + 1]]));
  }

  // The distant-supervision KB covers only part of the truth.
  for (const auto& pair : corpus.married_truth) {
    if (rng.NextDouble() < options.kb_coverage) corpus.kb_married.push_back(pair);
  }

  // Documents: each sentence is positive (about a married pair), negative
  // (about a sibling/random pair), or filler.
  for (int d = 0; d < options.num_documents; ++d) {
    std::string text;
    for (int s = 0; s < options.sentences_per_doc; ++s) {
      double dice = rng.NextDouble();
      std::string sentence;
      if (dice < 0.35 && !corpus.married_truth.empty()) {
        const auto& pair = corpus.married_truth[rng.NextBounded(
            corpus.married_truth.size())];
        const char* tmpl =
            kPositiveTemplates[rng.NextBounded(sizeof(kPositiveTemplates) /
                                               sizeof(kPositiveTemplates[0]))];
        bool flip = rng.NextBernoulli(0.5);
        sentence = StrFormat(tmpl, (flip ? pair.second : pair.first).c_str(),
                             (flip ? pair.first : pair.second).c_str());
      } else if (dice < 0.7) {
        // Negative pair: siblings or a random non-married pair.
        std::pair<std::string, std::string> pair;
        if (!corpus.kb_siblings.empty() && rng.NextBernoulli(0.4)) {
          pair = corpus.kb_siblings[rng.NextBounded(corpus.kb_siblings.size())];
        } else {
          // Random pair that is not married.
          for (int attempt = 0; attempt < 10; ++attempt) {
            std::string a = corpus.persons[rng.NextBounded(corpus.persons.size())];
            std::string b = corpus.persons[rng.NextBounded(corpus.persons.size())];
            if (a == b) continue;
            auto candidate = ordered(a, b);
            if (std::find(corpus.married_truth.begin(), corpus.married_truth.end(),
                          candidate) == corpus.married_truth.end()) {
              pair = candidate;
              break;
            }
          }
          if (pair.first.empty()) continue;
        }
        const char* tmpl =
            kNegativeTemplates[rng.NextBounded(sizeof(kNegativeTemplates) /
                                               sizeof(kNegativeTemplates[0]))];
        bool flip = rng.NextBernoulli(0.5);
        sentence = StrFormat(tmpl, (flip ? pair.second : pair.first).c_str(),
                             (flip ? pair.first : pair.second).c_str());
      } else {
        sentence = kFillerSentences[rng.NextBounded(sizeof(kFillerSentences) /
                                                    sizeof(kFillerSentences[0]))];
      }
      if (options.corruption > 0 && rng.NextBernoulli(options.corruption)) {
        sentence = Corrupt(sentence, &rng);
      }
      text += sentence;
      text += ' ';
    }
    corpus.documents.emplace_back(StrFormat("doc%04d", d), std::move(text));
  }
  return corpus;
}

}  // namespace dd
