#ifndef DEEPDIVE_TESTDATA_SPOUSE_APP_H_
#define DEEPDIVE_TESTDATA_SPOUSE_APP_H_

#include <string>
#include <unordered_set>

#include "core/pipeline.h"
#include "testdata/corpus_spouse.h"

namespace dd {

/// Feature/rule toggles for the spouse application — the knobs the
/// scripted development loop (§5) turns one iteration at a time.
struct SpouseAppOptions {
  bool use_distance_features = true;
  bool use_bow_features = true;
  bool use_phrase_features = true;
  bool use_pos_features = true;
  bool use_window_features = true;
  bool use_sibling_negatives = true;
  /// Negative supervision from KB closure: if the KB knows n1's spouse
  /// and it is not n2, label (n1, n2) false (Example 3.3's "largely
  /// disjoint relations" idea applied to the KB itself).
  bool use_closure_negatives = true;
  /// Candidate-generation fix from the §5.2 debugging loop: require
  /// person names to span at least this many tokens (1 = accept single
  /// capitalized tokens like "Ohio", the classic bad-person-name bug).
  int min_name_tokens = 2;
  /// Include the entity-level MarriedPair relation, aggregated from
  /// mention-level evidence through correlation (imply) factors.
  bool entity_level = true;
  int window = 2;
};

/// The spouse application's DDlog program (the paper's running example,
/// §3). With entity_level, adds the MarriedPair relation plus the
/// mention→entity imply rule.
std::string SpouseDdlog(const SpouseAppOptions& options);

/// Candidate-generation + feature-extraction UDF for the spouse app:
/// finds person-mention pairs per sentence, emits MentionPair rows and
/// PairFeature rows per enabled feature family.
Extractor MakeSpouseExtractor(const SpouseAppOptions& options);

/// Queue the distant-supervision KB (married + sibling pairs) into the
/// pipeline. Call before the first Run().
void LoadSpouseKb(DeepDivePipeline* pipeline, const SpouseCorpus& corpus,
                  const SpouseAppOptions& options);

/// Ground-truth entity pairs as tuples of the MarriedPair relation.
std::unordered_set<Tuple, TupleHash> SpouseTruthTuples(const SpouseCorpus& corpus);

/// Convenience: build a fully wired pipeline over the corpus (program
/// loaded, extractor registered, KB queued, documents added) — ready to
/// Run().
Result<std::unique_ptr<DeepDivePipeline>> MakeSpousePipeline(
    const SpouseCorpus& corpus, const SpouseAppOptions& app_options,
    const PipelineOptions& pipeline_options);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_SPOUSE_APP_H_
