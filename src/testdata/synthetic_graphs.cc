#include "testdata/synthetic_graphs.h"

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace dd {

FactorGraph MakeRandomGraph(const SyntheticGraphOptions& options) {
  Rng rng(options.seed);
  FactorGraph graph;
  for (size_t v = 0; v < options.num_variables; ++v) {
    bool evidence = rng.NextDouble() < options.evidence_fraction;
    graph.AddVariable(evidence, rng.NextBernoulli(0.5));
  }
  for (size_t w = 0; w < options.num_weights; ++w) {
    graph.AddWeight(rng.NextGaussian() * options.weight_scale, false,
                    StrFormat("w%zu", w));
  }
  const size_t num_factors = static_cast<size_t>(
      options.factors_per_variable * static_cast<double>(options.num_variables));
  for (size_t f = 0; f < num_factors; ++f) {
    uint32_t weight = static_cast<uint32_t>(rng.NextBounded(options.num_weights));
    double dice = rng.NextDouble();
    uint32_t a = static_cast<uint32_t>(rng.NextBounded(options.num_variables));
    if (dice < 0.4) {
      DD_CHECK(graph.AddFactor(FactorFunc::kIsTrue, weight, {{a, true}}).ok());
    } else {
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(options.num_variables));
      FactorFunc func = dice < 0.8 ? FactorFunc::kImply : FactorFunc::kAnd;
      DD_CHECK(graph.AddFactor(func, weight, {{a, true}, {b, true}}).ok());
    }
  }
  DD_CHECK(graph.Finalize().ok());
  return graph;
}

FactorGraph MakeChainGraph(size_t num_variables, double coupling, uint64_t seed) {
  Rng rng(seed);
  FactorGraph graph;
  for (size_t v = 0; v < num_variables; ++v) graph.AddVariable();
  uint32_t couple = graph.AddWeight(coupling, false, "couple");
  uint32_t prior = graph.AddWeight(rng.NextGaussian() * 0.5, false, "prior");
  for (uint32_t v = 0; v + 1 < num_variables; ++v) {
    DD_CHECK(
        graph.AddFactor(FactorFunc::kImply, couple, {{v, true}, {v + 1, true}}).ok());
  }
  for (uint32_t v = 0; v < num_variables; ++v) {
    if (v % 7 == 0) {
      DD_CHECK(graph.AddFactor(FactorFunc::kIsTrue, prior, {{v, true}}).ok());
    }
  }
  DD_CHECK(graph.Finalize().ok());
  return graph;
}

FactorGraph ExtendGraph(const FactorGraph& base, size_t extra_vars,
                        double factors_per_new_var, uint64_t seed,
                        std::vector<uint32_t>* changed) {
  Rng rng(seed);
  FactorGraph graph = base;  // value copy; CSR is rebuilt by Finalize below
  changed->clear();
  const size_t base_vars = base.num_variables();
  uint32_t weight = graph.AddWeight(rng.NextGaussian(), false, "ext");
  for (size_t k = 0; k < extra_vars; ++k) {
    uint32_t v = graph.AddVariable();
    changed->push_back(v);
    int attach = static_cast<int>(factors_per_new_var + 0.5);
    if (attach < 1) attach = 1;
    for (int f = 0; f < attach; ++f) {
      if (base_vars > 0 && rng.NextBernoulli(0.7)) {
        uint32_t u = static_cast<uint32_t>(rng.NextBounded(base_vars));
        DD_CHECK(
            graph.AddFactor(FactorFunc::kImply, weight, {{u, true}, {v, true}}).ok());
        changed->push_back(u);
      } else {
        DD_CHECK(graph.AddFactor(FactorFunc::kIsTrue, weight, {{v, true}}).ok());
      }
    }
  }
  DD_CHECK(graph.Finalize().ok());
  return graph;
}

FactorGraph MakeClassificationGraph(size_t num_items, size_t num_features,
                                    size_t features_per_item, uint64_t seed) {
  Rng rng(seed);
  FactorGraph graph;
  // Planted feature weights decide the labels.
  std::vector<double> planted(num_features);
  std::vector<uint32_t> weight_ids(num_features);
  for (size_t f = 0; f < num_features; ++f) {
    planted[f] = rng.NextGaussian() * 1.5;
    weight_ids[f] = graph.AddWeight(0.0, false, StrFormat("feat%zu", f));
  }
  for (size_t i = 0; i < num_items; ++i) {
    // Item's features and planted score.
    double score = 0.0;
    std::vector<size_t> features;
    for (size_t k = 0; k < features_per_item; ++k) {
      size_t f = rng.NextBounded(num_features);
      features.push_back(f);
      score += planted[f];
    }
    bool label = rng.NextDouble() < 1.0 / (1.0 + std::exp(-score));
    uint32_t v = graph.AddVariable(true, label);
    for (size_t f : features) {
      DD_CHECK(graph.AddFactor(FactorFunc::kIsTrue, weight_ids[f], {{v, true}}).ok());
    }
  }
  DD_CHECK(graph.Finalize().ok());
  return graph;
}

}  // namespace dd
