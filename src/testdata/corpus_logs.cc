#include "testdata/corpus_logs.h"

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace dd {

std::string LogLine::Format() const {
  return StrFormat("ts=%lld host=%s service=%s level=%s code=%s msg=\"%s\"",
                   static_cast<long long>(ts), host.c_str(), service.c_str(),
                   level.c_str(), code.c_str(), msg.c_str());
}

namespace {

const char* const kServicePool[] = {
    "auth",     "billing",  "cart",    "search", "checkout", "gateway",
    "inventory", "payments", "profile", "shipping", "notify", "ledger"};
constexpr int kServicePoolSize = 12;

// Spontaneous error classes. E503 appears here too, so the cascade
// signature below is informative but not a perfect label proxy (§8's
// supervision-warning failure mode).
const char* const kNoiseCodes[] = {"E500", "E404", "E429", "E503"};
// Downstream errors of a cascade: overload/timeout classes.
const char* const kCascadeCodes[] = {"E503", "E504"};

const char* const kErrorMsgs[] = {"request failed", "upstream timeout",
                                  "connection reset", "rpc deadline exceeded"};
const char* const kInfoMsgs[] = {"heartbeat ok", "request served",
                                 "cache refreshed", "gc pause 12ms"};

}  // namespace

LogsCorpus GenerateLogsCorpus(const LogsCorpusOptions& options) {
  LogsCorpus corpus;
  Rng rng(options.seed);

  const int num_services = std::min(options.num_services, kServicePoolSize);
  for (int i = 0; i < num_services; ++i) {
    corpus.services.push_back(kServicePool[i]);
  }
  for (int i = 0; i < options.num_hosts; ++i) {
    corpus.hosts.push_back(StrFormat("host-%d", i));
  }

  // Plant distinct ordered causal pairs.
  std::set<std::pair<int, int>> used;
  while (static_cast<int>(corpus.causal_pairs.size()) <
             options.num_causal_pairs &&
         static_cast<int>(used.size()) < num_services * (num_services - 1)) {
    int a = static_cast<int>(rng.NextBounded(num_services));
    int b = static_cast<int>(rng.NextBounded(num_services));
    if (a == b || !used.insert({a, b}).second) continue;
    corpus.causal_pairs.emplace_back(corpus.services[a], corpus.services[b]);
  }
  // Held-out planted pairs (beyond the first floor(fraction * n)) are
  // the real test: they must be recovered through the weights the
  // supervised pairs train, never through their own labels.
  size_t kb_known = static_cast<size_t>(options.kb_fraction *
                                        corpus.causal_pairs.size());
  if (kb_known == 0 && !corpus.causal_pairs.empty()) kb_known = 1;
  for (size_t i = 0; i < kb_known && i < corpus.causal_pairs.size(); ++i) {
    corpus.kb_causes.push_back(corpus.causal_pairs[i]);
  }
  // Negative supervision: pairs known to be independent (never planted
  // in either direction).
  std::set<std::pair<std::string, std::string>> causal_set(
      corpus.causal_pairs.begin(), corpus.causal_pairs.end());
  int negatives_tried = 0;
  while (static_cast<int>(corpus.kb_not_causes.size()) <
             options.num_kb_negatives &&
         ++negatives_tried < 1000) {
    int a = static_cast<int>(rng.NextBounded(num_services));
    int b = static_cast<int>(rng.NextBounded(num_services));
    if (a == b) continue;
    std::pair<std::string, std::string> pair(corpus.services[a],
                                             corpus.services[b]);
    std::pair<std::string, std::string> rev(pair.second, pair.first);
    if (causal_set.count(pair) > 0 || causal_set.count(rev) > 0) continue;
    if (std::find(corpus.kb_not_causes.begin(), corpus.kb_not_causes.end(),
                  pair) != corpus.kb_not_causes.end()) {
      continue;
    }
    corpus.kb_not_causes.push_back(pair);
  }

  auto pick = [&rng](const auto& list, size_t n) {
    return list[rng.NextBounded(n)];
  };
  for (int w = 0; w < options.num_windows; ++w) {
    const int64_t base_ts = static_cast<int64_t>(w) * options.window_seconds;
    int64_t offset = 0;
    auto emit = [&](const std::string& service, const std::string& level,
                    const std::string& code, const std::string& msg) {
      LogLine line;
      line.ts = base_ts + offset;
      offset = std::min<int64_t>(offset + 1 + rng.NextBounded(3),
                                 options.window_seconds - 1);
      line.host = corpus.hosts[rng.NextBounded(corpus.hosts.size())];
      line.service = service;
      line.level = level;
      line.code = code;
      line.msg = msg;
      corpus.lines.push_back(std::move(line));
    };

    for (int i = 0; i < options.info_lines_per_window; ++i) {
      emit(corpus.services[rng.NextBounded(corpus.services.size())], "INFO",
           "-", pick(kInfoMsgs, 4));
    }
    // At most one incident per window: a cascade of one planted causal
    // pair, or 1-2 spontaneous unrelated errors. Causal pairs therefore
    // co-error in many windows while coincidence pairs co-error in few —
    // the frequency signal the tied per-window factors turn into
    // probability mass.
    if (!rng.NextBernoulli(options.incident_rate)) continue;
    if (!corpus.causal_pairs.empty() &&
        rng.NextBernoulli(options.cascade_share)) {
      const auto& [upstream, downstream] =
          corpus.causal_pairs[rng.NextBounded(corpus.causal_pairs.size())];
      emit(upstream, "ERROR", pick(kNoiseCodes, 4), pick(kErrorMsgs, 4));
      emit(downstream, "ERROR", pick(kCascadeCodes, 2),
           "upstream timeout from " + upstream);
    } else {
      const size_t first = rng.NextBounded(corpus.services.size());
      emit(corpus.services[first], "ERROR", pick(kNoiseCodes, 4),
           pick(kErrorMsgs, 4));
      if (rng.NextBernoulli(0.5)) {
        size_t second = rng.NextBounded(corpus.services.size());
        if (second == first) second = (second + 1) % corpus.services.size();
        emit(corpus.services[second], "ERROR", pick(kNoiseCodes, 4),
             pick(kErrorMsgs, 4));
      }
    }
  }

  for (const LogLine& line : corpus.lines) {
    corpus.text += line.Format();
    corpus.text += '\n';
  }
  return corpus;
}

}  // namespace dd
