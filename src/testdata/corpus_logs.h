#ifndef DEEPDIVE_TESTDATA_CORPUS_LOGS_H_
#define DEEPDIVE_TESTDATA_CORPUS_LOGS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dd {

/// Synthetic machine-log stream for the log/telemetry KBC workload: a
/// fleet of services emits `ts= host= service= level= code= msg=` lines,
/// and a planted set of causal pairs (upstream -> downstream) makes the
/// downstream service error shortly after the upstream one does. The KBC
/// task is to recover "A causes B" (and the weaker "A co-occurs with B")
/// from nothing but the interleaved text stream — the dark-data framing
/// of the paper applied to telemetry instead of prose.
struct LogsCorpusOptions {
  int num_services = 8;
  int num_hosts = 4;
  /// Timeline length; one co-occurrence window per `window_seconds`.
  int num_windows = 60;
  int num_causal_pairs = 3;
  /// Chance per window that an incident happens at all. Each window
  /// carries at most one incident — either a cascade of one causal pair
  /// or independent noise — so co-occurrence *frequency* separates
  /// planted pairs from coincidence instead of being confounded by busy
  /// windows.
  double incident_rate = 0.95;
  /// Of the incident windows, the fraction that are cascades (the rest
  /// are 1-2 spontaneous unrelated errors).
  double cascade_share = 0.6;
  /// Fraction of planted causal pairs the distant-supervision KB knows
  /// (the first ceil(fraction * n) pairs, deterministically).
  double kb_fraction = 0.7;
  /// Known-independent service pairs (negative supervision).
  int num_kb_negatives = 6;
  /// INFO-level filler per window (the "dark" 99% of a log stream).
  int info_lines_per_window = 3;
  int64_t window_seconds = 60;
  uint64_t seed = 1234;
};

struct LogLine {
  int64_t ts = 0;
  std::string host;
  std::string service;
  std::string level;  ///< INFO | WARN | ERROR
  std::string code;   ///< error class, e.g. "E503" ("-" for non-errors)
  std::string msg;

  /// The wire form: `ts=... host=... service=... level=... code=... msg="..."`.
  std::string Format() const;
};

struct LogsCorpus {
  std::vector<LogLine> lines;  ///< time-ordered
  /// The '\n'-joined stream, ready for a StringSource / log file.
  std::string text;
  std::vector<std::string> services;
  std::vector<std::string> hosts;
  /// Planted truth: ordered (upstream, downstream) causal pairs.
  std::vector<std::pair<std::string, std::string>> causal_pairs;
  /// Distant supervision: the subset of causal pairs the KB knows...
  std::vector<std::pair<std::string, std::string>> kb_causes;
  /// ...and pairs the KB knows to be independent.
  std::vector<std::pair<std::string, std::string>> kb_not_causes;
};

LogsCorpus GenerateLogsCorpus(const LogsCorpusOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_CORPUS_LOGS_H_
