#ifndef DEEPDIVE_TESTDATA_ADS_APP_H_
#define DEEPDIVE_TESTDATA_ADS_APP_H_

#include <memory>
#include <string>

#include "core/pipeline.h"
#include "testdata/corpus_ads.h"

namespace dd {

/// The human-trafficking application of §6.4 as a reusable component:
/// structure classified ads into (handle, price, city). Price candidates
/// are every number in the ad (high recall); distant supervision labels
/// the strict "$ N per hour" pattern true and implausible prices false.
std::string AdsDdlog();

Extractor MakeAdsExtractor();

/// Fully wired pipeline over the corpus, ready to Run().
Result<std::unique_ptr<DeepDivePipeline>> MakeAdsPipeline(
    const AdsCorpus& corpus, const PipelineOptions& pipeline_options);

/// Highest-probability extracted price per ad (>= threshold), keyed by
/// ad id.
std::map<std::string, int64_t> BestPricePerAd(const DeepDivePipeline& pipeline,
                                              double threshold);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_ADS_APP_H_
