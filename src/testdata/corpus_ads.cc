#include "testdata/corpus_ads.h"

#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace dd {

namespace {

const char* kCities[] = {"Dallas",  "Houston", "Phoenix", "Seattle", "Denver",
                         "Atlanta", "Miami",   "Chicago", "Boston",  "Portland"};

const char* kOpeners[] = {
    "Sweet girl new in town",
    "Upscale companion available tonight",
    "100 percent real pics no games",
    "Visiting this week only dont miss out",
    "Sexy and classy your dream date",
    "New to the area available now",
};

const char* kPriceForms[] = {
    "$ %lld per hour",
    "%lld roses for an hour",
    "special %lld dollars hh",
    "$ %lld hr incall",
};

const char* kClosers[] = {
    "call me at %s",
    "text %s anytime",
    "serious gentlemen only %s",
    "no blocked numbers %s",
};

}  // namespace

AdsCorpus GenerateAdsCorpus(const AdsCorpusOptions& options) {
  Rng rng(options.seed);
  AdsCorpus corpus;
  const size_t ncities = sizeof(kCities) / sizeof(kCities[0]);
  for (size_t c = 0; c < ncities; ++c) corpus.cities.push_back(kCities[c]);

  struct Worker {
    std::string handle;
    int64_t base_price;
    std::vector<std::string> cities;
    bool multi_city;
  };
  std::vector<Worker> workers;
  std::set<std::string> seen_handles;
  for (int w = 0; w < options.num_workers; ++w) {
    Worker worker;
    do {
      worker.handle = StrFormat("555-%04d", static_cast<int>(rng.NextBounded(10000)));
    } while (!seen_handles.insert(worker.handle).second);
    bool low_price = rng.NextDouble() < options.low_price_fraction;
    worker.base_price = low_price ? 40 + static_cast<int64_t>(rng.NextBounded(4)) * 10
                                  : 150 + static_cast<int64_t>(rng.NextBounded(20)) * 10;
    worker.multi_city = rng.NextDouble() < options.multi_city_fraction;
    size_t home = rng.NextBounded(ncities);
    worker.cities.push_back(kCities[home]);
    if (worker.multi_city) {
      for (int extra = 0; extra < 3; ++extra) {
        worker.cities.push_back(kCities[rng.NextBounded(ncities)]);
      }
      corpus.multi_city_workers.push_back(worker.handle);
    }
    workers.push_back(std::move(worker));
  }

  for (int a = 0; a < options.num_ads; ++a) {
    const Worker& worker = workers[rng.NextBounded(workers.size())];
    Ad ad;
    ad.id = StrFormat("ad%05d", a);
    ad.worker = worker.handle;
    ad.price = worker.base_price + static_cast<int64_t>(rng.NextBounded(3)) * 10 - 10;
    if (ad.price < 30) ad.price = 30;
    ad.city = worker.cities[rng.NextBounded(worker.cities.size())];

    std::string text = kOpeners[rng.NextBounded(sizeof(kOpeners) / sizeof(char*))];
    text += ". ";
    text += StrFormat(kPriceForms[rng.NextBounded(sizeof(kPriceForms) / sizeof(char*))],
                      static_cast<long long>(ad.price));
    text += ". ";
    text += ad.city;
    text += " area. ";
    text += StrFormat(kClosers[rng.NextBounded(sizeof(kClosers) / sizeof(char*))],
                      ad.worker.c_str());
    text += ".";
    ad.text = std::move(text);
    corpus.ads.push_back(std::move(ad));
  }
  return corpus;
}

}  // namespace dd
