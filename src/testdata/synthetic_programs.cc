#include "testdata/synthetic_programs.h"

#include <set>
#include <utility>

#include "ddlog/parser.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace dd {

Result<SyntheticWorkload> MakeSyntheticWorkload(const SyntheticProgramOptions& options) {
  SyntheticWorkload w;
  Rng rng(options.seed);

  // ---- Program: a fixed schema plus a per-seed menu of feature rules,
  // covering every weight kind the grounder handles.
  const bool use_lower = rng.NextBernoulli(0.5);
  const bool use_condition = rng.NextBernoulli(0.5);
  const bool use_prior = rng.NextBernoulli(0.5);
  const bool use_negation = rng.NextBernoulli(0.5);
  const bool use_varlist = rng.NextBernoulli(0.5);
  const bool use_correlation = rng.NextBernoulli(0.5);

  std::string p;
  p += "Token(s: int, t: text).\n";
  p += "Pair(s: int, a: int, b: int).\n";
  p += "Link(a: int, b: int).\n";
  p += "Q?(a: int, b: int).\n";
  p += "Q_Ev(a: int, b: int, label: bool).\n";
  if (use_correlation) p += "R?(a: int).\n";
  p += "Q(a, b) :- Pair(s, a, b).\n";
  p += "Q(a, b) :- Pair(s, a, b), Token(s, t) weight = identity(t).\n";
  if (use_lower) {
    p += "Q(a, b) :- Pair(s, a, b), Token(s, t) weight = lower(t).\n";
  }
  if (use_condition) {
    p += "Q(a, b) :- Pair(s, a, b), Token(s, t), a < b weight = concat(t, a).\n";
  }
  if (use_prior) {
    p += "Q(a, b) :- Pair(s, a, b) weight = ?.\n";
  }
  if (use_negation) {
    p += "Q(a, b) :- Pair(s, a, b), !Link(a, b) weight = 0.25.\n";
  }
  if (use_varlist) {
    p += "Q(a, b) :- Pair(s, a, b), Token(s, t) weight = t.\n";
  }
  if (use_correlation) {
    p += "R(a) :- Link(a, b).\n";
    p += "Q(a, b) => R(a) :- Pair(s, a, b), Link(a, b) weight = 0.9.\n";
  }
  if (options.recursive) {
    // Transitive closure of Link through a helper relation: Reach and
    // Hop derive from each other, one SCC => one recursive stratum.
    p += "Reach?(a: int, b: int).\n";
    p += "Hop?(a: int, b: int).\n";
    p += "Reach(a, b) :- Link(a, b).\n";
    p += "Reach(a, c) :- Hop(a, b), Link(b, c).\n";
    p += "Hop(a, b) :- Reach(a, b).\n";
    p += "Reach(a, b) :- Link(a, b) weight = ?.\n";
    p += "Q(a, b) :- Pair(s, a, b), Reach(a, b) weight = 0.8.\n";
  }
  w.ddlog = p;
  DD_ASSIGN_OR_RETURN(w.program, ParseDdlog(p));

  // ---- Corpus. Mixed-case vocabulary so lower() is not the identity.
  std::vector<std::string> vocab;
  for (size_t i = 0; i < options.vocab_size; ++i) {
    vocab.push_back(StrFormat(i % 2 == 0 ? "w%zu" : "W%zu", i));
  }
  auto emit_sentence = [&](int64_t s, std::vector<Tuple>* tokens,
                           std::vector<Tuple>* pairs) {
    for (size_t k = 0; k < options.tokens_per_sentence; ++k) {
      tokens->push_back(Tuple(
          {Value::Int(s), Value::String(vocab[rng.NextBounded(vocab.size())])}));
    }
    const size_t num_pairs = rng.NextBounded(options.max_pairs_per_sentence + 1);
    for (size_t k = 0; k < num_pairs; ++k) {
      int64_t a = static_cast<int64_t>(rng.NextBounded(options.num_entities));
      int64_t b = static_cast<int64_t>(rng.NextBounded(options.num_entities));
      pairs->push_back(Tuple({Value::Int(s), Value::Int(a), Value::Int(b)}));
    }
  };
  for (size_t s = 0; s < options.num_sentences; ++s) {
    emit_sentence(static_cast<int64_t>(s), &w.tokens, &w.pairs);
  }
  for (size_t a = 0; a < options.num_entities; ++a) {
    for (size_t b = 0; b < options.num_entities; ++b) {
      if (rng.NextBernoulli(0.25)) {
        w.links.push_back(Tuple({Value::Int(static_cast<int64_t>(a)),
                                 Value::Int(static_cast<int64_t>(b))}));
      }
    }
  }

  // ---- Distant labels over distinct candidates in first-seen order,
  // with deliberate conflicts and orphans to exercise those paths.
  std::set<std::pair<int64_t, int64_t>> seen;
  std::vector<std::pair<int64_t, int64_t>> candidates;
  for (const Tuple& pr : w.pairs) {
    auto key = std::make_pair(pr.at(1).AsInt(), pr.at(2).AsInt());
    if (seen.insert(key).second) candidates.push_back(key);
  }
  for (const auto& [a, b] : candidates) {
    if (!rng.NextBernoulli(options.label_fraction)) continue;
    bool label = rng.NextBernoulli(0.6);
    w.labels.push_back(Tuple({Value::Int(a), Value::Int(b), Value::Bool(label)}));
    if (rng.NextBernoulli(options.conflict_fraction)) {
      w.labels.push_back(Tuple({Value::Int(a), Value::Int(b), Value::Bool(!label)}));
    }
  }
  for (size_t i = 0; i < options.num_orphan_labels; ++i) {
    int64_t ghost = static_cast<int64_t>(options.num_entities + 1000 + i);
    w.labels.push_back(
        Tuple({Value::Int(ghost), Value::Int(ghost), Value::Bool(true)}));
  }

  // ---- Delta batch: fresh sentences plus deletions of existing pairs.
  DeltaSet delta_tokens, delta_pairs, delta_labels;
  std::vector<Tuple> new_tokens, new_pairs;
  for (size_t s = 0; s < options.delta_sentences; ++s) {
    emit_sentence(static_cast<int64_t>(options.num_sentences + s), &new_tokens,
                  &new_pairs);
  }
  for (const Tuple& t : new_tokens) delta_tokens[t] = 1;
  for (const Tuple& pr : new_pairs) {
    delta_pairs[pr] = 1;
    if (rng.NextBernoulli(options.label_fraction)) {
      delta_labels[Tuple({pr.at(1), pr.at(2),
                          Value::Bool(rng.NextBernoulli(0.5))})] = 1;
    }
  }
  for (const Tuple& pr : w.pairs) {
    if (rng.NextBernoulli(options.delta_delete_fraction)) delta_pairs[pr] = -1;
  }
  if (!delta_tokens.empty()) w.delta["Token"] = std::move(delta_tokens);
  if (!delta_pairs.empty()) w.delta["Pair"] = std::move(delta_pairs);
  if (!delta_labels.empty()) w.delta["Q_Ev"] = std::move(delta_labels);
  return w;
}

Status PopulateCatalog(const SyntheticWorkload& workload, Catalog* catalog) {
  DD_ASSIGN_OR_RETURN(
      Table * token,
      catalog->CreateTable(
          "Token", Schema({{"s", ValueType::kInt}, {"t", ValueType::kString}})));
  DD_ASSIGN_OR_RETURN(
      Table * pair,
      catalog->CreateTable("Pair", Schema({{"s", ValueType::kInt},
                                           {"a", ValueType::kInt},
                                           {"b", ValueType::kInt}})));
  DD_ASSIGN_OR_RETURN(
      Table * link,
      catalog->CreateTable(
          "Link", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  DD_ASSIGN_OR_RETURN(
      Table * ev,
      catalog->CreateTable("Q_Ev", Schema({{"a", ValueType::kInt},
                                           {"b", ValueType::kInt},
                                           {"label", ValueType::kBool}})));
  for (const Tuple& t : workload.tokens) DD_RETURN_IF_ERROR(token->Insert(t).status());
  for (const Tuple& t : workload.pairs) DD_RETURN_IF_ERROR(pair->Insert(t).status());
  for (const Tuple& t : workload.links) DD_RETURN_IF_ERROR(link->Insert(t).status());
  for (const Tuple& t : workload.labels) DD_RETURN_IF_ERROR(ev->Insert(t).status());
  return Status::OK();
}

}  // namespace dd
