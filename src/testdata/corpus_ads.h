#ifndef DEEPDIVE_TESTDATA_CORPUS_ADS_H_
#define DEEPDIVE_TESTDATA_CORPUS_ADS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dd {

/// Synthetic Craigslist-style classified ads modeled on the human-
/// trafficking application (§6.4): short, non-standard English, a price,
/// a location, a contact handle. Some "workers" post from multiple
/// cities in rapid succession — the trafficking warning sign the paper
/// describes — and the generator plants that ground truth.
struct AdsCorpusOptions {
  int num_workers = 30;
  int num_ads = 200;
  double multi_city_fraction = 0.2;  ///< workers that post across cities
  double low_price_fraction = 0.15;  ///< workers with anomalously low prices
  uint64_t seed = 99;
};

struct Ad {
  std::string id;
  std::string text;
  // Planted truth:
  std::string worker;  ///< contact handle (phone-like)
  int64_t price = 0;   ///< dollars per hour
  std::string city;
};

struct AdsCorpus {
  std::vector<Ad> ads;
  std::vector<std::string> cities;
  /// Workers flagged as multi-city posters (trafficking warning sign).
  std::vector<std::string> multi_city_workers;
};

AdsCorpus GenerateAdsCorpus(const AdsCorpusOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_CORPUS_ADS_H_
