#include "testdata/corpus_genomics.h"

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace dd {

namespace {

const char* kGeneStems[] = {"BRCA", "TP",  "EGFR", "KRAS", "MYC",  "PTEN", "RB",
                            "APC",  "VHL", "MLH",  "MSH",  "ATM",  "CFTR", "DMD",
                            "FBN",  "HTT", "LMNA", "NF",   "PKD",  "SMN"};

const char* kPhenotypeAdjectives[] = {"hereditary", "congenital", "progressive",
                                      "juvenile",   "familial",   "idiopathic",
                                      "chronic",    "acute"};
const char* kPhenotypeNouns[] = {"anemia",        "cardiomyopathy", "neuropathy",
                                 "retinopathy",   "dystrophy",      "ataxia",
                                 "nephropathy",   "myopathy",       "deafness",
                                 "blindness",     "epilepsy",       "dementia"};

const char* kPositiveTemplates[] = {
    "Mutations in %s cause %s in affected families.",
    "%s is associated with %s according to our cohort study.",
    "We found that %s variants lead to %s.",
    "Loss of %s function results in %s.",
    "Patients carrying %s mutations exhibited %s.",
};

const char* kNegativeTemplates[] = {
    "%s was sequenced in patients screened for %s but showed no association.",
    "Expression of %s was unchanged in %s cases.",
    "%s lies outside the locus linked to %s.",
    "No variants of %s were enriched among %s probands.",
};

const char* kFillerTemplates[] = {
    "The study enrolled 120 participants across three centers.",
    "Sequencing was performed on the HiSeq platform.",
    "Statistical analysis used a Bonferroni correction.",
    "Informed consent was obtained from all subjects.",
};

}  // namespace

GenomicsCorpus GenerateGenomicsCorpus(const GenomicsCorpusOptions& options) {
  Rng rng(options.seed);
  GenomicsCorpus corpus;

  std::set<std::string> used;
  const size_t nstem = sizeof(kGeneStems) / sizeof(kGeneStems[0]);
  while (corpus.genes.size() < static_cast<size_t>(options.num_genes)) {
    std::string gene = StrFormat("%s%d", kGeneStems[rng.NextBounded(nstem)],
                                 static_cast<int>(rng.NextBounded(9)) + 1);
    if (used.insert(gene).second) corpus.genes.push_back(gene);
    if (used.size() >= nstem * 9) break;
  }
  const size_t nadj = sizeof(kPhenotypeAdjectives) / sizeof(kPhenotypeAdjectives[0]);
  const size_t nnoun = sizeof(kPhenotypeNouns) / sizeof(kPhenotypeNouns[0]);
  used.clear();
  while (corpus.phenotypes.size() < static_cast<size_t>(options.num_phenotypes)) {
    std::string phen = std::string(kPhenotypeAdjectives[rng.NextBounded(nadj)]) + " " +
                       kPhenotypeNouns[rng.NextBounded(nnoun)];
    if (used.insert(phen).second) corpus.phenotypes.push_back(phen);
    if (used.size() >= nadj * nnoun) break;
  }

  std::set<std::pair<std::string, std::string>> truth_set;
  while (truth_set.size() < static_cast<size_t>(options.num_true_associations) &&
         truth_set.size() < corpus.genes.size() * corpus.phenotypes.size()) {
    truth_set.emplace(corpus.genes[rng.NextBounded(corpus.genes.size())],
                      corpus.phenotypes[rng.NextBounded(corpus.phenotypes.size())]);
  }
  corpus.association_truth.assign(truth_set.begin(), truth_set.end());
  for (const auto& pair : corpus.association_truth) {
    if (rng.NextDouble() < options.kb_coverage) corpus.kb_associations.push_back(pair);
  }

  for (int d = 0; d < options.num_abstracts; ++d) {
    std::string text;
    for (int s = 0; s < options.sentences_per_abstract; ++s) {
      double dice = rng.NextDouble();
      std::string sentence;
      if (dice < 0.35 && !corpus.association_truth.empty()) {
        const auto& pair = corpus.association_truth[rng.NextBounded(
            corpus.association_truth.size())];
        sentence = StrFormat(
            kPositiveTemplates[rng.NextBounded(sizeof(kPositiveTemplates) /
                                               sizeof(kPositiveTemplates[0]))],
            pair.first.c_str(), pair.second.c_str());
      } else if (dice < 0.7) {
        // Negative pair: not in the truth.
        for (int attempt = 0; attempt < 10; ++attempt) {
          std::string g = corpus.genes[rng.NextBounded(corpus.genes.size())];
          std::string p =
              corpus.phenotypes[rng.NextBounded(corpus.phenotypes.size())];
          if (truth_set.count({g, p}) == 0) {
            sentence = StrFormat(
                kNegativeTemplates[rng.NextBounded(sizeof(kNegativeTemplates) /
                                                   sizeof(kNegativeTemplates[0]))],
                g.c_str(), p.c_str());
            break;
          }
        }
        if (sentence.empty()) continue;
      } else {
        sentence = kFillerTemplates[rng.NextBounded(sizeof(kFillerTemplates) /
                                                    sizeof(kFillerTemplates[0]))];
      }
      text += sentence;
      text += ' ';
    }
    corpus.documents.emplace_back(StrFormat("pmid%05d", 10000 + d), std::move(text));
  }
  return corpus;
}

}  // namespace dd
