#ifndef DEEPDIVE_TESTDATA_CORPUS_SPOUSE_H_
#define DEEPDIVE_TESTDATA_CORPUS_SPOUSE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dd {

/// Knobs for the synthetic spouse (TAC-KBP-style) news corpus. The
/// corpus plants a complete ground truth — which the paper could only
/// approximate with human annotation — while reproducing the error
/// structure §5 describes: distractor relations (siblings, colleagues),
/// ambiguous phrasing, OCR-style corruption, and a *partial* KB for
/// distant supervision (Example 3.3's incomplete Married list).
struct SpouseCorpusOptions {
  int num_persons = 60;
  int num_married_pairs = 20;
  int num_sibling_pairs = 10;
  int num_documents = 80;
  int sentences_per_doc = 4;
  double kb_coverage = 0.5;   ///< fraction of married pairs the KB knows
  double corruption = 0.0;    ///< per-sentence OCR-noise probability
  uint64_t seed = 42;
};

struct SpouseCorpus {
  /// (document id, raw text).
  std::vector<std::pair<std::string, std::string>> documents;
  /// Complete planted truth: married pairs by canonical name, ordered
  /// (first < second lexicographically).
  std::vector<std::pair<std::string, std::string>> married_truth;
  /// The incomplete KB for distant supervision (subset of the truth).
  std::vector<std::pair<std::string, std::string>> kb_married;
  /// Sibling pairs — the "largely disjoint relation" used to generate
  /// negative labels (§3.2).
  std::vector<std::pair<std::string, std::string>> kb_siblings;
  /// All person names (the entity-linking dictionary).
  std::vector<std::string> persons;
};

SpouseCorpus GenerateSpouseCorpus(const SpouseCorpusOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_CORPUS_SPOUSE_H_
