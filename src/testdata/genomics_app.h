#ifndef DEEPDIVE_TESTDATA_GENOMICS_APP_H_
#define DEEPDIVE_TESTDATA_GENOMICS_APP_H_

#include <memory>
#include <unordered_set>

#include "core/pipeline.h"
#include "testdata/corpus_genomics.h"

namespace dd {

/// The medical-genetics application of §6.1 as a reusable library
/// component: gazetteer NER over gene/phenotype dictionaries, mention-
/// level AssocMention with distant supervision from the incomplete
/// OMIM-like KB, entity-level Association aggregated through imply
/// factors.
struct GenomicsAppOptions {
  double entity_prior = -2.0;     ///< fixed weight on entity pairs
  double mention_implies = 3.0;   ///< mention -> entity imply weight
  bool use_closure_negatives = true;
};

/// The application's DDlog program.
std::string GenomicsDdlog(const GenomicsAppOptions& options);

/// Candidate + feature extractor bound to the corpus dictionaries.
Extractor MakeGenomicsExtractor(const GenomicsCorpus& corpus);

/// Ground-truth tuples of the Association relation.
std::unordered_set<Tuple, TupleHash> GenomicsTruthTuples(
    const GenomicsCorpus& corpus);

/// Fully wired pipeline over the corpus, ready to Run().
Result<std::unique_ptr<DeepDivePipeline>> MakeGenomicsPipeline(
    const GenomicsCorpus& corpus, const GenomicsAppOptions& app_options,
    const PipelineOptions& pipeline_options);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_GENOMICS_APP_H_
