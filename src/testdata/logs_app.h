#ifndef DEEPDIVE_TESTDATA_LOGS_APP_H_
#define DEEPDIVE_TESTDATA_LOGS_APP_H_

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "core/pipeline.h"
#include "stream/ingester.h"
#include "testdata/corpus_logs.h"

namespace dd {

/// The log/telemetry KBC application: entities are services, hosts, and
/// error classes; the query relations are Causes (directed service
/// dependence) and CoOccurs. Unlike the document apps, the input is a
/// byte stream of log lines consumed through the streaming front end —
/// the workload behind the stream-vs-batch differential suite and the
/// streaming bench.
struct LogsAppOptions {
  /// Co-occurrence window: errors whose `ts / window_seconds` match are
  /// candidate cause/effect pairs. Must match the corpus generator's.
  int64_t window_seconds = 60;
};

std::string LogsDdlog();

/// Record-level extractor for one log line. Emits
/// ErrorEvent(service, host, code, window) for ERROR-level lines and
/// nothing for the rest; malformed lines fail with ParseError (and are
/// quarantined by the ingester's record hardening).
StreamExtractor MakeLogsStreamExtractor(
    const LogsAppOptions& options = LogsAppOptions());

/// Distant supervision: load the corpus's KbCauses / KbNotCauses pairs.
void LoadLogsKb(DeepDivePipeline* pipeline, const LogsCorpus& corpus);

/// Pipeline fed through the streaming front end: program + KB loaded,
/// corpus text ingested with `stream_options`, ready to Run(). When
/// `stats` is non-null the ingest statistics are copied out.
Result<std::unique_ptr<DeepDivePipeline>> MakeLogsPipeline(
    const LogsCorpus& corpus, const PipelineOptions& pipeline_options,
    const StreamOptions& stream_options, IngestStats* stats = nullptr);

/// The batch oracle: identical program and KB, but the corpus lines are
/// extracted sequentially in stream order with no chunking, no queues,
/// and no workers. The differential contract says a streamed pipeline
/// must be indistinguishable from this one.
Result<std::unique_ptr<DeepDivePipeline>> MakeLogsBatchPipeline(
    const LogsCorpus& corpus, const PipelineOptions& pipeline_options,
    const LogsAppOptions& app_options = LogsAppOptions());

/// Extracted (upstream, downstream) pairs with marginal >= threshold.
std::set<std::pair<std::string, std::string>> ExtractedCauses(
    const DeepDivePipeline& pipeline, double threshold);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_LOGS_APP_H_
