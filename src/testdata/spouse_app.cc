#include "testdata/spouse_app.h"

#include <algorithm>

#include "core/features.h"
#include "nlp/ner.h"
#include "util/string_util.h"

namespace dd {

std::string SpouseDdlog(const SpouseAppOptions& options) {
  std::string program = R"(
    # Base relations written by the extractor.
    MentionPair(doc: text, s: int, m1: int, m2: int, n1: text, n2: text).
    PairFeature(doc: text, s: int, m1: int, m2: int, f: text).
    # Distant-supervision KBs.
    KbMarried(e1: text, e2: text).
    KbSiblings(e1: text, e2: text).

    # Mention-level query relation (the paper's MarriedMentions).
    MarriedMention?(doc: text, s: int, m1: int, m2: int).
    MarriedMention_Ev(doc: text, s: int, m1: int, m2: int, label: bool).

    # R1: candidate mapping.
    MarriedMention(doc, s, m1, m2) :- MentionPair(doc, s, m1, m2, n1, n2).

    # FE1: one tied weight per feature string (Example 3.2).
    MarriedMention(doc, s, m1, m2) :-
        MentionPair(doc, s, m1, m2, n1, n2),
        PairFeature(doc, s, m1, m2, f) weight = identity(f).

    # S1: distant supervision from the incomplete Married KB (Example 3.3).
    MarriedMention_Ev(doc, s, m1, m2, true) :-
        MentionPair(doc, s, m1, m2, n1, n2), KbMarried(n1, n2).
  )";
  if (options.use_sibling_negatives) {
    program += R"(
    # Negative supervision from the largely disjoint sibling relation.
    MarriedMention_Ev(doc, s, m1, m2, false) :-
        MentionPair(doc, s, m1, m2, n1, n2), KbSiblings(n1, n2).
    )";
  }
  if (options.use_closure_negatives) {
    program += R"(
    # Negative supervision by KB closure: the KB already knows n1's (or
    # n2's) spouse and it is somebody else.
    MarriedMention_Ev(doc, s, m1, m2, false) :-
        MentionPair(doc, s, m1, m2, n1, n2), KbMarried(n1, other), other != n2.
    MarriedMention_Ev(doc, s, m1, m2, false) :-
        MentionPair(doc, s, m1, m2, n1, n2), KbMarried(other, n2), other != n1.
    MarriedMention_Ev(doc, s, m1, m2, false) :-
        MentionPair(doc, s, m1, m2, n1, n2), KbMarried(n2, other), other != n1.
    MarriedMention_Ev(doc, s, m1, m2, false) :-
        MentionPair(doc, s, m1, m2, n1, n2), KbMarried(other, n1), other != n2.
    )";
  }
  if (options.entity_level) {
    program += R"(
    # Entity-level aggregate: do these two PEOPLE (not mentions) appear
    # to be married anywhere in the corpus?
    MarriedPair?(n1: text, n2: text).
    MarriedPair(n1, n2) :- MentionPair(doc, s, m1, m2, n1, n2).

    # Entity pairs are false unless mentions push them up.
    MarriedPair(n1, n2) :- MentionPair(doc, s, m1, m2, n1, n2) weight = -2.0.

    # Each confident mention implies the entity-level fact.
    MarriedMention(doc, s, m1, m2) => MarriedPair(n1, n2) :-
        MentionPair(doc, s, m1, m2, n1, n2) weight = 3.0.
    )";
  }
  return program;
}

Extractor MakeSpouseExtractor(const SpouseAppOptions& options) {
  return [options](const Document& doc, TupleEmitter* emitter) -> Status {
    for (const Sentence& sentence : doc.sentences) {
      auto mentions = Gazetteer::FindPersonCandidates(sentence);
      if (options.min_name_tokens > 1) {
        // §5.2 fix: single capitalized tokens ("Ohio", "Dallas") are not
        // person names in this domain.
        mentions.erase(std::remove_if(mentions.begin(), mentions.end(),
                                      [&](const Mention& m) {
                                        return m.token_end - m.token_begin <
                                               options.min_name_tokens;
                                      }),
                       mentions.end());
      }
      for (size_t i = 0; i < mentions.size(); ++i) {
        for (size_t j = i + 1; j < mentions.size(); ++j) {
          const Mention* a = &mentions[i];
          const Mention* b = &mentions[j];
          // Canonical order: by name so (n1, n2) matches the KB's order.
          if (b->text < a->text) std::swap(a, b);
          if (a->text == b->text) continue;  // same entity twice

          Tuple key({Value::String(doc.id), Value::Int(sentence.index),
                     Value::Int(a->token_begin), Value::Int(b->token_begin)});
          Tuple pair = key;
          pair.Append(Value::String(a->text));
          pair.Append(Value::String(b->text));
          emitter->Emit("MentionPair", std::move(pair));

          auto emit_feature = [&](const std::string& f) {
            Tuple feat = key;
            feat.Append(Value::String(f));
            emitter->Emit("PairFeature", std::move(feat));
          };
          if (options.use_distance_features) {
            emit_feature(DistanceFeature(*a, *b));
          }
          if (options.use_bow_features) {
            for (const auto& f : BagOfWordsBetween(sentence, *a, *b)) {
              emit_feature(f);
            }
          }
          if (options.use_phrase_features) {
            std::string phrase = PhraseBetween(sentence, *a, *b);
            if (!phrase.empty() && phrase.size() < 64) {
              emit_feature("phrase=" + phrase);
            }
          }
          if (options.use_pos_features) {
            emit_feature(PosSequenceBetween(sentence, *a, *b));
          }
          if (options.use_window_features) {
            for (const auto& f : WindowFeatures(sentence, *a, options.window)) {
              emit_feature("m1_" + f);
            }
            for (const auto& f : WindowFeatures(sentence, *b, options.window)) {
              emit_feature("m2_" + f);
            }
          }
        }
      }
    }
    return Status::OK();
  };
}

void LoadSpouseKb(DeepDivePipeline* pipeline, const SpouseCorpus& corpus,
                  const SpouseAppOptions& options) {
  for (const auto& [a, b] : corpus.kb_married) {
    pipeline->QueueDelta("KbMarried",
                         Tuple({Value::String(a), Value::String(b)}), 1);
  }
  if (options.use_sibling_negatives) {
    for (const auto& [a, b] : corpus.kb_siblings) {
      pipeline->QueueDelta("KbSiblings",
                           Tuple({Value::String(a), Value::String(b)}), 1);
    }
  }
}

std::unordered_set<Tuple, TupleHash> SpouseTruthTuples(const SpouseCorpus& corpus) {
  std::unordered_set<Tuple, TupleHash> truth;
  for (const auto& [a, b] : corpus.married_truth) {
    truth.insert(Tuple({Value::String(a), Value::String(b)}));
  }
  return truth;
}

Result<std::unique_ptr<DeepDivePipeline>> MakeSpousePipeline(
    const SpouseCorpus& corpus, const SpouseAppOptions& app_options,
    const PipelineOptions& pipeline_options) {
  auto pipeline = std::make_unique<DeepDivePipeline>(pipeline_options);
  DD_RETURN_IF_ERROR(pipeline->LoadProgram(SpouseDdlog(app_options)));
  pipeline->RegisterExtractor(MakeSpouseExtractor(app_options));
  LoadSpouseKb(pipeline.get(), corpus, app_options);
  for (const auto& [id, text] : corpus.documents) {
    DD_RETURN_IF_ERROR(pipeline->AddDocument(id, text));
  }
  return pipeline;
}

}  // namespace dd
