#ifndef DEEPDIVE_TESTDATA_SYNTHETIC_PROGRAMS_H_
#define DEEPDIVE_TESTDATA_SYNTHETIC_PROGRAMS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ddlog/ast.h"
#include "query/source.h"
#include "storage/catalog.h"
#include "util/result.h"

namespace dd {

/// Knobs for the randomized DDlog program + corpus generator used by the
/// differential grounding tests and the parallel-grounding benchmark.
/// Everything is a pure function of `seed`, so a (seed, thread-count)
/// test matrix reproduces exactly.
struct SyntheticProgramOptions {
  uint64_t seed = 1;
  /// Corpus shape: sentences of random tokens, candidate pairs per
  /// sentence drawn from a small entity id space.
  size_t num_sentences = 30;
  size_t num_entities = 10;
  size_t vocab_size = 12;
  size_t tokens_per_sentence = 5;
  size_t max_pairs_per_sentence = 2;
  /// Fraction of distinct candidates given a distant label; a further
  /// slice of those gets a second, opposite label (conflict path) and a
  /// few labels target tuples with no candidate (orphan path).
  double label_fraction = 0.4;
  double conflict_fraction = 0.1;
  size_t num_orphan_labels = 2;
  /// Incremental batch: this many new sentences arrive (tokens + pairs +
  /// labels) and this fraction of the original pairs is deleted.
  size_t delta_sentences = 4;
  double delta_delete_fraction = 0.2;
  /// Append a mutually recursive transitive-closure block over Link
  /// (query relations Reach/Hop forming one SCC) plus feature rules
  /// tying Reach into the graph. Added after the base menu with zero
  /// extra rng draws, so a given seed produces the identical corpus and
  /// base program with or without it. Recursive programs take the
  /// semi-naive path: Grounder::ApplyDeltas returns Unimplemented.
  bool recursive = false;
};

/// A generated workload: program text (randomized rule menu — UDF /
/// learnable / fixed / variable-list weights, negation, a condition, and
/// optionally a correlation rule to a second query relation), base rows
/// in a deterministic insertion order, and one delta batch for
/// Grounder::ApplyDeltas.
struct SyntheticWorkload {
  std::string ddlog;
  DdlogProgram program;
  /// Base rows in insertion order. Insertion order determines row ids and
  /// therefore variable ids — keep it.
  std::vector<Tuple> tokens;  ///< Token(s: int, t: text)
  std::vector<Tuple> pairs;   ///< Pair(s: int, a: int, b: int)
  std::vector<Tuple> links;   ///< Link(a: int, b: int)
  std::vector<Tuple> labels;  ///< Q_Ev(a: int, b: int, label: bool)
  /// Presence deltas on base relations (Token/Pair/Q_Ev): additions from
  /// fresh sentences plus deletions of existing pairs.
  std::map<std::string, DeltaSet> delta;
};

/// Generate program + corpus + delta from `options`. The program always
/// has the candidate rule and an identity-UDF feature rule; other rules
/// join per-seed coin flips.
Result<SyntheticWorkload> MakeSyntheticWorkload(const SyntheticProgramOptions& options);

/// Create the base tables (Token, Pair, Link, Q_Ev) in `catalog` and
/// insert the workload's rows in order. The catalog must not already
/// contain those tables.
Status PopulateCatalog(const SyntheticWorkload& workload, Catalog* catalog);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_SYNTHETIC_PROGRAMS_H_
