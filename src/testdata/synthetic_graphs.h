#ifndef DEEPDIVE_TESTDATA_SYNTHETIC_GRAPHS_H_
#define DEEPDIVE_TESTDATA_SYNTHETIC_GRAPHS_H_

#include <cstdint>

#include "factor/graph.h"

namespace dd {

/// Synthetic factor graphs for the sampler/learner benchmarks (the
/// stand-ins for the paper's paleobiology-scale graphs, §4.2).
struct SyntheticGraphOptions {
  size_t num_variables = 1000;
  /// Average factors per variable (graph density knob for EXP-INC).
  double factors_per_variable = 2.0;
  /// Fraction of variables clamped as evidence.
  double evidence_fraction = 0.1;
  /// Weight magnitude scale.
  double weight_scale = 1.0;
  /// Number of distinct (tied) weights.
  size_t num_weights = 64;
  uint64_t seed = 123;
};

/// Random pairwise-imply/istrue graph with tied weights — the shape
/// grounded DeepDive programs produce.
FactorGraph MakeRandomGraph(const SyntheticGraphOptions& options);

/// A chain of implications v0 -> v1 -> ... -> v(n-1) with unary priors;
/// high correlation, used to stress statistical efficiency.
FactorGraph MakeChainGraph(size_t num_variables, double coupling, uint64_t seed);

/// Copy `base` and append `extra_vars` new variables, each attached to
/// the existing graph by `factors_per_new_var` imply/istrue factors.
/// Models the output of incremental grounding: surviving variable ids
/// keep their meaning, new ids extend the space. `changed` receives the
/// new variable ids plus the existing attachment endpoints (whose factor
/// neighborhoods changed).
FactorGraph ExtendGraph(const FactorGraph& base, size_t extra_vars,
                        double factors_per_new_var, uint64_t seed,
                        std::vector<uint32_t>* changed);

/// Binary-classification graph with planted weights: `num_items`
/// labeled variables, each with `features_per_item` istrue factors whose
/// weights are shared across items. Used by the learner benchmarks.
FactorGraph MakeClassificationGraph(size_t num_items, size_t num_features,
                                    size_t features_per_item, uint64_t seed);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_SYNTHETIC_GRAPHS_H_
