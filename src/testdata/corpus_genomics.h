#ifndef DEEPDIVE_TESTDATA_CORPUS_GENOMICS_H_
#define DEEPDIVE_TESTDATA_CORPUS_GENOMICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dd {

/// Synthetic medical-genetics literature (§6.1): abstracts mentioning
/// gene-phenotype associations, with a planted truth set and a partial
/// OMIM-like curated database for distant supervision. Gene symbols and
/// phenotype phrases come from fixed dictionaries so the gazetteer NER
/// exercises the same code path a real deployment would.
struct GenomicsCorpusOptions {
  int num_genes = 40;
  int num_phenotypes = 25;
  int num_true_associations = 30;
  int num_abstracts = 100;
  int sentences_per_abstract = 4;
  double kb_coverage = 0.4;  ///< fraction of true associations in the KB
  uint64_t seed = 7;
};

struct GenomicsCorpus {
  std::vector<std::pair<std::string, std::string>> documents;  ///< (id, text)
  std::vector<std::string> genes;
  std::vector<std::string> phenotypes;
  /// Complete truth: (gene, phenotype) associations.
  std::vector<std::pair<std::string, std::string>> association_truth;
  /// The incomplete curated KB (OMIM stand-in).
  std::vector<std::pair<std::string, std::string>> kb_associations;
};

GenomicsCorpus GenerateGenomicsCorpus(const GenomicsCorpusOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_TESTDATA_CORPUS_GENOMICS_H_
