#include "testdata/logs_app.h"

#include <cstdlib>

#include "util/string_util.h"

namespace dd {

std::string LogsDdlog() {
  return R"(
    # Written by the streaming extractor: one row per ERROR-level line.
    ErrorEvent(service: text, host: text, code: text, w: int).
    # Distant-supervision KBs over service pairs.
    KbCauses(s1: text, s2: text).
    KbNotCauses(s1: text, s2: text).

    # Query relations: directed causal dependence and plain coincidence.
    Causes?(s1: text, s2: text).
    Causes_Ev(s1: text, s2: text, label: bool).
    CoOccurs?(s1: text, s2: text).

    # Candidate mapping: two distinct services erroring in one window.
    Causes(s1, s2) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2.
    CoOccurs(s1, s2) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2.

    # Co-occurrence alone is weak evidence of causation (prior), but each
    # co-erroring window is strong evidence of co-occurrence.
    Causes(s1, s2) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2
        weight = -1.0.
    CoOccurs(s1, s2) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2
        weight = 2.0.

    # FE: one tied weight per downstream error class — cascades surface
    # as overload/timeout codes, so identity(c2) is the learnable signal.
    Causes(s1, s2) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2
        weight = identity(c2).

    # Causation implies co-occurrence.
    Causes(s1, s2) => CoOccurs(s1, s2) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2
        weight = 3.0.

    # Distant supervision from the (incomplete) dependency KB.
    Causes_Ev(s1, s2, true) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2,
        KbCauses(s1, s2).
    Causes_Ev(s1, s2, false) :-
        ErrorEvent(s1, h1, c1, w), ErrorEvent(s2, h2, c2, w), s1 != s2,
        KbNotCauses(s1, s2).
  )";
}

StreamExtractor MakeLogsStreamExtractor(const LogsAppOptions& options) {
  const int64_t window_seconds =
      options.window_seconds > 0 ? options.window_seconds : 1;
  return [window_seconds](const StreamRecord& record,
                          TupleEmitter* emitter) -> Status {
    if (record.line.empty()) return Status::OK();
    int64_t ts = -1;
    std::string host, service, level, code;
    for (const std::string& token : SplitWhitespace(std::string(record.line))) {
      if (token.rfind("ts=", 0) == 0) {
        ts = std::strtoll(token.c_str() + 3, nullptr, 10);
      } else if (token.rfind("host=", 0) == 0) {
        host = token.substr(5);
      } else if (token.rfind("service=", 0) == 0) {
        service = token.substr(8);
      } else if (token.rfind("level=", 0) == 0) {
        level = token.substr(6);
      } else if (token.rfind("code=", 0) == 0) {
        code = token.substr(5);
      }
    }
    if (ts < 0 || host.empty() || service.empty() || level.empty()) {
      return Status::ParseError(StrFormat(
          "malformed log record %llu: missing ts/host/service/level",
          static_cast<unsigned long long>(record.index)));
    }
    if (level != "ERROR") return Status::OK();  // the dark 99%
    emitter->Emit("ErrorEvent",
                  Tuple({Value::String(service), Value::String(host),
                         Value::String(code), Value::Int(ts / window_seconds)}));
    return Status::OK();
  };
}

void LoadLogsKb(DeepDivePipeline* pipeline, const LogsCorpus& corpus) {
  for (const auto& [a, b] : corpus.kb_causes) {
    pipeline->QueueDelta("KbCauses",
                         Tuple({Value::String(a), Value::String(b)}), 1);
  }
  for (const auto& [a, b] : corpus.kb_not_causes) {
    pipeline->QueueDelta("KbNotCauses",
                         Tuple({Value::String(a), Value::String(b)}), 1);
  }
}

Result<std::unique_ptr<DeepDivePipeline>> MakeLogsPipeline(
    const LogsCorpus& corpus, const PipelineOptions& pipeline_options,
    const StreamOptions& stream_options, IngestStats* stats) {
  auto pipeline = std::make_unique<DeepDivePipeline>(pipeline_options);
  DD_RETURN_IF_ERROR(pipeline->LoadProgram(LogsDdlog()));
  LoadLogsKb(pipeline.get(), corpus);
  StreamIngester ingester(stream_options, MakeLogsStreamExtractor());
  StringSource source(corpus.text);
  DD_RETURN_IF_ERROR(pipeline->IngestStream(&ingester, &source));
  if (stats != nullptr) *stats = ingester.stats();
  return pipeline;
}

Result<std::unique_ptr<DeepDivePipeline>> MakeLogsBatchPipeline(
    const LogsCorpus& corpus, const PipelineOptions& pipeline_options,
    const LogsAppOptions& app_options) {
  auto pipeline = std::make_unique<DeepDivePipeline>(pipeline_options);
  DD_RETURN_IF_ERROR(pipeline->LoadProgram(LogsDdlog()));
  LoadLogsKb(pipeline.get(), corpus);
  StreamExtractor extractor = MakeLogsStreamExtractor(app_options);
  uint64_t index = 0;
  size_t start = 0;
  while (start <= corpus.text.size()) {
    size_t end = corpus.text.find('\n', start);
    if (end == std::string::npos) {
      if (start == corpus.text.size()) break;  // no unterminated tail
      end = corpus.text.size();
    }
    StreamRecord record;
    record.index = index++;
    record.line =
        std::string_view(corpus.text.data() + start, end - start);
    TupleEmitter emitter;
    DD_RETURN_IF_ERROR(extractor(record, &emitter));
    for (const auto& [relation, rows] : emitter.emitted()) {
      for (const Tuple& tuple : rows) {
        pipeline->QueueDelta(relation, tuple, 1);
      }
    }
    start = end + 1;
  }
  return pipeline;
}

std::set<std::pair<std::string, std::string>> ExtractedCauses(
    const DeepDivePipeline& pipeline, double threshold) {
  std::set<std::pair<std::string, std::string>> causes;
  auto marginals = pipeline.Marginals("Causes");
  if (!marginals.ok()) return causes;
  for (const auto& [tuple, prob] : *marginals) {
    if (prob >= threshold) {
      causes.emplace(tuple.at(0).AsString(), tuple.at(1).AsString());
    }
  }
  return causes;
}

}  // namespace dd
