#include "testdata/genomics_app.h"

#include "core/features.h"
#include "nlp/ner.h"
#include "util/string_util.h"

namespace dd {

std::string GenomicsDdlog(const GenomicsAppOptions& options) {
  std::string program = R"(
    GenePhenMention(doc: text, s: int, g: text, p: text).
    GpFeature(doc: text, s: int, g: text, p: text, f: text).
    KbAssociation(g: text, p: text).

    # Mention-level: does this sentence assert gene g causes/regulates p?
    AssocMention?(doc: text, s: int, g: text, p: text).
    AssocMention_Ev(doc: text, s: int, g: text, p: text, label: bool).

    # Entity-level aspirational relation (the clinician's database, §6.1).
    Association?(g: text, p: text).

    AssocMention(doc, s, g, p) :- GenePhenMention(doc, s, g, p).
    AssocMention(doc, s, g, p) :-
        GenePhenMention(doc, s, g, p), GpFeature(doc, s, g, p, f)
        weight = identity(f).
    AssocMention_Ev(doc, s, g, p, true) :-
        GenePhenMention(doc, s, g, p), KbAssociation(g, p).
  )";
  if (options.use_closure_negatives) {
    program += R"(
    AssocMention_Ev(doc, s, g, p, false) :-
        GenePhenMention(doc, s, g, p), KbAssociation(g, other), other != p.
    )";
  }
  program += StrFormat(R"(
    Association(g, p) :- GenePhenMention(doc, s, g, p).
    Association(g, p) :- GenePhenMention(doc, s, g, p) weight = %.2f.
    AssocMention(doc, s, g, p) => Association(g, p) :-
        GenePhenMention(doc, s, g, p) weight = %.2f.
  )",
                       options.entity_prior, options.mention_implies);
  return program;
}

Extractor MakeGenomicsExtractor(const GenomicsCorpus& corpus) {
  auto gazetteer = std::make_shared<Gazetteer>();
  for (const std::string& gene : corpus.genes) gazetteer->Add(gene, "GENE");
  for (const std::string& phen : corpus.phenotypes) {
    gazetteer->Add(phen, "PHENOTYPE");
  }
  return [gazetteer](const Document& doc, TupleEmitter* emitter) -> Status {
    for (const Sentence& sentence : doc.sentences) {
      auto mentions = gazetteer->FindMentions(sentence);
      for (const Mention& gene : mentions) {
        if (gene.type != "GENE") continue;
        for (const Mention& phen : mentions) {
          if (phen.type != "PHENOTYPE") continue;
          Tuple key({Value::String(doc.id), Value::Int(sentence.index),
                     Value::String(gene.text), Value::String(phen.text)});
          emitter->Emit("GenePhenMention", key);
          for (const std::string& f :
               RelationFeatureTemplates(sentence, gene, phen)) {
            Tuple feat = key;
            feat.Append(Value::String(f));
            emitter->Emit("GpFeature", std::move(feat));
          }
        }
      }
    }
    return Status::OK();
  };
}

std::unordered_set<Tuple, TupleHash> GenomicsTruthTuples(
    const GenomicsCorpus& corpus) {
  std::unordered_set<Tuple, TupleHash> truth;
  for (const auto& [g, p] : corpus.association_truth) {
    truth.insert(Tuple({Value::String(g), Value::String(p)}));
  }
  return truth;
}

Result<std::unique_ptr<DeepDivePipeline>> MakeGenomicsPipeline(
    const GenomicsCorpus& corpus, const GenomicsAppOptions& app_options,
    const PipelineOptions& pipeline_options) {
  auto pipeline = std::make_unique<DeepDivePipeline>(pipeline_options);
  DD_RETURN_IF_ERROR(pipeline->LoadProgram(GenomicsDdlog(app_options)));
  pipeline->RegisterExtractor(MakeGenomicsExtractor(corpus));
  for (const auto& [g, p] : corpus.kb_associations) {
    pipeline->QueueDelta("KbAssociation",
                         Tuple({Value::String(g), Value::String(p)}), 1);
  }
  for (const auto& [id, text] : corpus.documents) {
    DD_RETURN_IF_ERROR(pipeline->AddDocument(id, text));
  }
  return pipeline;
}

}  // namespace dd
