#include "testdata/ads_app.h"

#include <cstdlib>
#include <set>

#include "util/string_util.h"

namespace dd {

std::string AdsDdlog() {
  return R"(
    # Candidates from the extractor: every number that might be a price,
    # every token that might be a city, the contact handle.
    PriceCandidate(ad: text, price: int, f: text).
    CityCandidate(ad: text, city: text).
    Contact(ad: text, handle: text).

    # Query relation: is this candidate the ad's hourly price?
    AdPrice?(ad: text, price: int).
    AdPrice_Ev(ad: text, price: int, label: bool).

    AdPrice(ad, price) :- PriceCandidate(ad, price, f).
    AdPrice(ad, price) :- PriceCandidate(ad, price, f) weight = identity(f).

    # Distant supervision: the strict "$ N ... hour" pattern is reliable
    # enough to label true; implausible prices are labeled false.
    AdPrice_Ev(ad, price, true) :- PriceCandidate(ad, price, "pattern=dollar_hour").
    AdPrice_Ev(ad, price, false) :- PriceCandidate(ad, price, f), price < 20.
    AdPrice_Ev(ad, price, false) :- PriceCandidate(ad, price, f), price > 2000.
  )";
}

namespace {

int64_t ParseNumber(const std::string& text) {
  std::string digits;
  for (char c : text) {
    if (c >= '0' && c <= '9') digits += c;
  }
  if (digits.empty() || digits.size() > 9) return -1;
  return std::strtoll(digits.c_str(), nullptr, 10);
}

}  // namespace

Extractor MakeAdsExtractor() {
  return [](const Document& doc, TupleEmitter* emitter) -> Status {
    static const std::set<std::string> kCityNames = {
        "Dallas",  "Houston", "Phoenix", "Seattle", "Denver",
        "Atlanta", "Miami",   "Chicago", "Boston",  "Portland"};
    for (const Sentence& sentence : doc.sentences) {
      const auto& tokens = sentence.tokens;
      for (size_t i = 0; i < tokens.size(); ++i) {
        const std::string& text = tokens[i].text;
        // Contact handles: 555-1234 style.
        if (text.size() >= 8 && text.rfind("555-", 0) == 0) {
          emitter->Emit("Contact",
                        Tuple({Value::String(doc.id), Value::String(text)}));
          continue;
        }
        if (kCityNames.count(text) > 0) {
          emitter->Emit("CityCandidate",
                        Tuple({Value::String(doc.id), Value::String(text)}));
          continue;
        }
        // Price candidates: any number — high recall, low precision (§3).
        int64_t number = ParseNumber(text);
        if (number <= 0 || tokens[i].pos != "CD") continue;
        auto emit = [&](const std::string& feature) {
          emitter->Emit("PriceCandidate",
                        Tuple({Value::String(doc.id), Value::Int(number),
                               Value::String(feature)}));
        };
        bool dollar_left = i > 0 && tokens[i - 1].text == "$";
        std::string right1 =
            i + 1 < tokens.size() ? ToLower(tokens[i + 1].text) : "";
        std::string right2 =
            i + 2 < tokens.size() ? ToLower(tokens[i + 2].text) : "";
        if (dollar_left) emit("left=$");
        if (!right1.empty()) emit("right1=" + right1);
        bool hourly = right1 == "roses" || right1 == "dollars" ||
                      right2 == "hour" || right1 == "hr" || right1 == "hh";
        if (dollar_left && (right2 == "hour" || right1 == "hr")) {
          emit("pattern=dollar_hour");
        }
        if (hourly) emit("unit=hourly");
      }
    }
    return Status::OK();
  };
}

Result<std::unique_ptr<DeepDivePipeline>> MakeAdsPipeline(
    const AdsCorpus& corpus, const PipelineOptions& pipeline_options) {
  auto pipeline = std::make_unique<DeepDivePipeline>(pipeline_options);
  DD_RETURN_IF_ERROR(pipeline->LoadProgram(AdsDdlog()));
  pipeline->RegisterExtractor(MakeAdsExtractor());
  for (const Ad& ad : corpus.ads) {
    DD_RETURN_IF_ERROR(pipeline->AddDocument(ad.id, ad.text));
  }
  return pipeline;
}

std::map<std::string, int64_t> BestPricePerAd(const DeepDivePipeline& pipeline,
                                              double threshold) {
  std::map<std::string, int64_t> best;
  std::map<std::string, double> best_prob;
  auto marginals = pipeline.Marginals("AdPrice");
  if (!marginals.ok()) return best;
  for (const auto& [tuple, prob] : *marginals) {
    const std::string& ad = tuple.at(0).AsString();
    if (prob >= threshold && prob > best_prob[ad]) {
      best[ad] = tuple.at(1).AsInt();
      best_prob[ad] = prob;
    }
  }
  return best;
}

}  // namespace dd
