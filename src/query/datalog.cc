#include "query/datalog.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "query/evaluator.h"
#include "util/logging.h"

namespace dd {

namespace {

/// Tarjan SCC over the relation dependency graph (edge head -> body
/// relation when the body relation is also derived).
struct SccState {
  std::map<std::string, std::vector<std::pair<std::string, bool>>> edges;  // (dep, negated)
  std::map<std::string, int> index, lowlink;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int counter = 0;
  std::vector<std::vector<std::string>> sccs;  // reverse topological order

  void Visit(const std::string& v) {
    index[v] = lowlink[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    for (const auto& [w, negated] : edges[v]) {
      (void)negated;
      if (index.find(w) == index.end()) {
        Visit(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

}  // namespace

Result<Stratification> Stratify(const std::vector<ConjunctiveRule>& rules) {
  std::set<std::string> derived;
  for (const ConjunctiveRule& rule : rules) derived.insert(rule.head.relation);

  SccState scc;
  for (const std::string& r : derived) scc.edges[r];  // ensure node exists
  for (const ConjunctiveRule& rule : rules) {
    for (const Atom& atom : rule.body) {
      if (derived.count(atom.relation) > 0) {
        scc.edges[rule.head.relation].emplace_back(atom.relation, atom.negated);
      }
    }
  }
  for (const std::string& r : derived) {
    if (scc.index.find(r) == scc.index.end()) scc.Visit(r);
  }

  // Map relation -> scc id; sccs are in reverse topological order, so
  // evaluation order is scc.sccs as-is (Tarjan emits sinks first; sinks
  // are dependencies, which must be evaluated first).
  std::map<std::string, size_t> scc_of;
  for (size_t i = 0; i < scc.sccs.size(); ++i) {
    for (const std::string& r : scc.sccs[i]) scc_of[r] = i;
  }

  Stratification out;
  out.strata = scc.sccs;
  out.rules_by_stratum.resize(scc.sccs.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    out.rules_by_stratum[scc_of[rules[i].head.relation]].push_back(i);
  }
  // Detect recursion and reject negation within a component.
  for (size_t i = 0; i < scc.sccs.size(); ++i) {
    std::set<std::string> members(scc.sccs[i].begin(), scc.sccs[i].end());
    bool recursive = members.size() > 1;
    for (size_t rid : out.rules_by_stratum[i]) {
      for (const Atom& atom : rules[rid].body) {
        if (members.count(atom.relation) == 0) continue;
        recursive = true;  // self-loop or intra-component dependency
        if (atom.negated) {
          return Status::InvalidArgument(
              "program is not stratifiable: negation through recursion at relation " +
              atom.relation);
        }
      }
    }
    if (recursive) out.has_recursion = true;
  }
  return out;
}

Status DatalogEngine::Evaluate(const std::vector<ConjunctiveRule>& rules) {
  for (const ConjunctiveRule& rule : rules) DD_RETURN_IF_ERROR(rule.Validate());
  DD_ASSIGN_OR_RETURN(Stratification strat, Stratify(rules));
  for (size_t s = 0; s < strat.strata.size(); ++s) {
    std::set<std::string> members(strat.strata[s].begin(), strat.strata[s].end());
    DD_RETURN_IF_ERROR(EvaluateStratum(rules, strat.rules_by_stratum[s], members));
  }
  return Status::OK();
}

Status DatalogEngine::EvaluateStratum(const std::vector<ConjunctiveRule>& rules,
                                      const std::vector<size_t>& rule_ids,
                                      const std::set<std::string>& stratum_relations) {
  RuleEvaluator evaluator(catalog_);

  // Morsel-parallel scans are only used for non-recursive strata: there
  // a rule's body never reads its own stratum's head tables, so the
  // tables a parallel scan probes are frozen for the whole fan-out and
  // deferring the head inserts to the ordered merge cannot change what
  // any probe observes. In a recursive stratum, serial evaluation
  // interleaves inserts with probes, so it stays on the serial path
  // (which is also the fixpoint-iteration-friendly one).
  bool recursive = stratum_relations.size() > 1;
  for (size_t rid : rule_ids) {
    for (const Atom& atom : rules[rid].body) {
      if (stratum_relations.count(atom.relation) > 0) recursive = true;
    }
  }
  const EvalParallelism par = recursive ? EvalParallelism() : par_;

  // Pass 1: evaluate every rule once over current state.
  std::map<std::string, std::vector<Tuple>> delta;
  for (size_t rid : rule_ids) {
    const ConjunctiveRule& rule = rules[rid];
    DD_ASSIGN_OR_RETURN(Table* head_table, catalog_->GetTable(rule.head.relation));
    DD_RETURN_IF_ERROR(evaluator.Evaluate(
        rule,
        [&](const Tuple& t) {
          Status st = head_table->CheckTuple(t);
          if (!st.ok()) {
            DD_LOG(Error) << "dropping ill-typed derived tuple " << t.ToString()
                          << ": " << st.ToString();
            return;
          }
          auto [id, inserted] = head_table->InsertUnchecked(t);
          (void)id;
          if (inserted) delta[rule.head.relation].push_back(t);
        },
        par));
  }

  // Semi-naive iteration: a rule only needs re-evaluation if its body
  // mentions an in-stratum relation that changed. We re-run the full rule
  // (set-semantics dedup makes this correct); the delta restriction below
  // keeps the common non-recursive case to a single pass.
  while (true) {
    std::map<std::string, std::vector<Tuple>> next_delta;
    bool any = false;
    for (size_t rid : rule_ids) {
      const ConjunctiveRule& rule = rules[rid];
      bool affected = false;
      for (const Atom& atom : rule.body) {
        if (stratum_relations.count(atom.relation) > 0 &&
            delta.count(atom.relation) > 0 && !delta.at(atom.relation).empty()) {
          affected = true;
          break;
        }
      }
      if (!affected) continue;
      DD_ASSIGN_OR_RETURN(Table* head_table, catalog_->GetTable(rule.head.relation));
      DD_RETURN_IF_ERROR(evaluator.Evaluate(rule, [&](const Tuple& t) {
        if (!head_table->CheckTuple(t).ok()) return;
        auto [id, inserted] = head_table->InsertUnchecked(t);
        (void)id;
        if (inserted) {
          next_delta[rule.head.relation].push_back(t);
          any = true;
        }
      }));
    }
    if (!any) break;
    delta = std::move(next_delta);
  }
  return Status::OK();
}

}  // namespace dd
