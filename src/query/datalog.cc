#include "query/datalog.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "query/evaluator.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace dd {

namespace {

/// Tarjan SCC over the relation dependency graph (edge head -> body
/// relation when the body relation is also derived).
struct SccState {
  std::map<std::string, std::vector<std::pair<std::string, bool>>> edges;  // (dep, negated)
  std::map<std::string, int> index, lowlink;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int counter = 0;
  std::vector<std::vector<std::string>> sccs;  // reverse topological order

  void Visit(const std::string& v) {
    index[v] = lowlink[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    for (const auto& [w, negated] : edges[v]) {
      (void)negated;
      if (index.find(w) == index.end()) {
        Visit(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

}  // namespace

Result<Stratification> Stratify(const std::vector<ConjunctiveRule>& rules) {
  std::set<std::string> derived;
  for (const ConjunctiveRule& rule : rules) derived.insert(rule.head.relation);

  SccState scc;
  for (const std::string& r : derived) scc.edges[r];  // ensure node exists
  for (const ConjunctiveRule& rule : rules) {
    for (const Atom& atom : rule.body) {
      if (derived.count(atom.relation) > 0) {
        scc.edges[rule.head.relation].emplace_back(atom.relation, atom.negated);
      }
    }
  }
  for (const std::string& r : derived) {
    if (scc.index.find(r) == scc.index.end()) scc.Visit(r);
  }

  // Map relation -> scc id; sccs are in reverse topological order, so
  // evaluation order is scc.sccs as-is (Tarjan emits sinks first; sinks
  // are dependencies, which must be evaluated first).
  std::map<std::string, size_t> scc_of;
  for (size_t i = 0; i < scc.sccs.size(); ++i) {
    for (const std::string& r : scc.sccs[i]) scc_of[r] = i;
  }

  Stratification out;
  out.strata = scc.sccs;
  out.rules_by_stratum.resize(scc.sccs.size());
  out.recursive.assign(scc.sccs.size(), false);
  for (size_t i = 0; i < rules.size(); ++i) {
    out.rules_by_stratum[scc_of[rules[i].head.relation]].push_back(i);
  }
  // Detect recursion and reject negation within a component.
  for (size_t i = 0; i < scc.sccs.size(); ++i) {
    std::set<std::string> members(scc.sccs[i].begin(), scc.sccs[i].end());
    bool recursive = members.size() > 1;
    for (size_t rid : out.rules_by_stratum[i]) {
      for (const Atom& atom : rules[rid].body) {
        if (members.count(atom.relation) == 0) continue;
        recursive = true;  // self-loop or intra-component dependency
        if (atom.negated) {
          return Status::InvalidArgument(
              "program is not stratifiable: negation through recursion at relation " +
              atom.relation);
        }
      }
    }
    out.recursive[i] = recursive;
    if (recursive) out.has_recursion = true;
  }
  return out;
}

Status DatalogEngine::Evaluate(const std::vector<ConjunctiveRule>& rules) {
  DD_ASSIGN_OR_RETURN(Stratification strat, Stratify(rules));
  TaskGraph graph;
  graph.set_trace_root(TraceSpan::CurrentPath());
  std::vector<TaskGraph::NodeId> nodes;
  DD_RETURN_IF_ERROR(Schedule(rules, strat, &graph, &nodes));
  return graph.Run(par_.pool);
}

Status DatalogEngine::Schedule(const std::vector<ConjunctiveRule>& rules,
                               const Stratification& strat, TaskGraph* graph,
                               std::vector<TaskGraph::NodeId>* node_of_stratum) {
  for (const ConjunctiveRule& rule : rules) DD_RETURN_IF_ERROR(rule.Validate());
  std::map<std::string, size_t> stratum_of;
  for (size_t s = 0; s < strat.strata.size(); ++s) {
    for (const std::string& r : strat.strata[s]) stratum_of[r] = s;
  }

  node_of_stratum->clear();
  for (size_t s = 0; s < strat.strata.size(); ++s) {
    const bool recursive = s < strat.recursive.size() && strat.recursive[s];
    node_of_stratum->push_back(graph->AddNode(
        "datalog.s" + std::to_string(s),
        [this, &rules, &strat, s, recursive]() -> Status {
          std::set<std::string> members(strat.strata[s].begin(),
                                        strat.strata[s].end());
          return EvaluateStratum(rules, strat.rules_by_stratum[s], members,
                                 recursive);
        }));
  }
  // One edge per inter-stratum dependency: stratum s reads a relation
  // another stratum derives. Tarjan's reverse-topological SCC order
  // guarantees producers have smaller stratum ids, so the serial oracle
  // (ascending node ids) is exactly the legacy strata-in-order loop.
  for (size_t s = 0; s < strat.strata.size(); ++s) {
    std::set<size_t> deps;
    for (size_t rid : strat.rules_by_stratum[s]) {
      for (const Atom& atom : rules[rid].body) {
        auto it = stratum_of.find(atom.relation);
        if (it != stratum_of.end() && it->second != s) deps.insert(it->second);
      }
    }
    for (size_t p : deps) {
      graph->AddEdge((*node_of_stratum)[p], (*node_of_stratum)[s]);
    }
  }
  return Status::OK();
}

Status DatalogEngine::EvaluateStratum(const std::vector<ConjunctiveRule>& rules,
                                      const std::vector<size_t>& rule_ids,
                                      const std::set<std::string>& stratum_relations,
                                      bool recursive) {
  RuleEvaluator evaluator(catalog_);

  // Per-rule cap on individually logged ill-typed-tuple drops; past it
  // we count silently and emit one summary line per rule at the end.
  constexpr size_t kMaxDropLogsPerRule = 5;
  std::vector<size_t> drop_logged(rule_ids.size(), 0);
  std::vector<size_t> drop_count(rule_ids.size(), 0);

  // Semi-naive iteration with frozen rounds: each round evaluates the
  // affected rules against the table state as of round start (inserts
  // are deferred to the ordered barrier merge below), so workers probe
  // strictly read-only tables and the morsel decomposition + merge make
  // the emission sequence — hence derived row order — identical to the
  // serial oracle at any thread count. Monotone rules reach the same
  // fixpoint as insert-during-scan evaluation; for non-recursive strata
  // (no rule reads an in-stratum head) the single round reproduces the
  // legacy emission order exactly.
  std::map<std::string, std::vector<Tuple>> delta;
  bool first_round = true;
  while (true) {
    std::vector<size_t> active;  // positions into rule_ids
    for (size_t i = 0; i < rule_ids.size(); ++i) {
      if (first_round) {
        active.push_back(i);
        continue;
      }
      for (const Atom& atom : rules[rule_ids[i]].body) {
        if (stratum_relations.count(atom.relation) > 0 &&
            delta.count(atom.relation) > 0 && !delta.at(atom.relation).empty()) {
          active.push_back(i);
          break;
        }
      }
    }
    if (active.empty()) break;

    // Compile the round's rules against the frozen state. The shared
    // index cache holds raw row pointers, valid exactly because nothing
    // mutates a table until the merge — it lives one round, never longer.
    JoinIndexCache cache;
    struct RoundRule {
      RuleEvaluator::CompiledRule cr;
      size_t n = 0;            // top-level enumeration units
      size_t morsel_size = 1;
      size_t num_morsels = 0;
      size_t unit_base = 0;    // first slot in the flattened unit space
    };
    std::vector<RoundRule> round(active.size());
    size_t total_units = 0;
    for (size_t k = 0; k < active.size(); ++k) {
      RoundRule& rr = round[k];
      DD_RETURN_IF_ERROR(
          evaluator.Compile(rules[rule_ids[active[k]]], &cache, &rr.cr));
      rr.cr.cc.PrepareIndexes();
      rr.n = rr.cr.cc.TopLevelSize();
      rr.morsel_size = par_.MorselSizeFor(rr.cr.cc.EstimatedUnitCost());
      rr.num_morsels = NumMorsels(rr.n, rr.morsel_size);
      rr.unit_base = total_units;
      total_units += rr.num_morsels;
    }

    // All (rule, morsel) pairs flattened into one unit space so a single
    // fan-out covers the whole round regardless of per-rule skew.
    std::vector<size_t> unit_rule(total_units);
    for (size_t k = 0; k < active.size(); ++k) {
      for (size_t u = 0; u < round[k].num_morsels; ++u) {
        unit_rule[round[k].unit_base + u] = k;
      }
    }
    std::vector<std::vector<Tuple>> drafts(total_units);
    DD_RETURN_IF_ERROR(ParallelMorsels(
        par_.pool, total_units, 1, [&](size_t unit, size_t, size_t) -> Status {
          const RoundRule& rr = round[unit_rule[unit]];
          const size_t m = unit - rr.unit_base;
          const size_t begin = m * rr.morsel_size;
          const size_t end = std::min(begin + rr.morsel_size, rr.n);
          std::vector<Tuple>& out = drafts[unit];
          rr.cr.cc.RunMorsel(
              begin, end, [&](const std::vector<Value>& slots, int64_t) {
                out.push_back(RuleEvaluator::ProjectHead(rr.cr.rule->head,
                                                         rr.cr.cc, slots));
              });
          return Status::OK();
        }));

    // Barrier merge in (rule order, morsel order): the only place this
    // round inserts, so every probe above saw the frozen state.
    std::map<std::string, std::vector<Tuple>> next_delta;
    bool any = false;
    for (size_t k = 0; k < active.size(); ++k) {
      const size_t i = active[k];
      const ConjunctiveRule& rule = rules[rule_ids[i]];
      DD_ASSIGN_OR_RETURN(Table* head_table,
                          catalog_->GetTable(rule.head.relation));
      for (size_t u = round[k].unit_base;
           u < round[k].unit_base + round[k].num_morsels; ++u) {
        for (Tuple& t : drafts[u]) {
          Status st = head_table->CheckTuple(t);
          if (!st.ok()) {
            ++drop_count[i];
            DD_COUNTER_ADD("dd.datalog.dropped_tuples", 1);
            if (drop_logged[i] < kMaxDropLogsPerRule) {
              ++drop_logged[i];
              DD_LOG(Error) << "dropping ill-typed derived tuple "
                            << t.ToString() << ": " << st.ToString();
            }
            continue;
          }
          auto [id, inserted] = head_table->InsertUnchecked(t);
          (void)id;
          if (inserted) {
            next_delta[rule.head.relation].push_back(std::move(t));
            any = true;
          }
        }
      }
    }
    first_round = false;
    if (!recursive || !any) break;
    delta = std::move(next_delta);
  }

  for (size_t i = 0; i < rule_ids.size(); ++i) {
    if (drop_count[i] > drop_logged[i]) {
      DD_LOG(Error) << "rule for " << rules[rule_ids[i]].head.relation
                    << " dropped " << drop_count[i]
                    << " ill-typed derived tuples total ("
                    << (drop_count[i] - drop_logged[i])
                    << " not logged individually)";
    }
  }
  return Status::OK();
}

}  // namespace dd
