#include "query/dred.h"

#include <algorithm>
#include <memory>

#include "query/datalog.h"
#include "query/evaluator.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace dd {

Status IncrementalEngine::Initialize() {
  for (const ConjunctiveRule& rule : rules_) DD_RETURN_IF_ERROR(rule.Validate());
  DD_ASSIGN_OR_RETURN(Stratification strat, Stratify(rules_));
  if (strat.has_recursion) {
    return Status::Unimplemented(
        "IncrementalEngine supports non-recursive programs only; use DatalogEngine");
  }
  topo_order_.clear();
  derived_.clear();
  rules_of_.clear();
  counts_.clear();
  for (const auto& stratum : strat.strata) {
    for (const std::string& rel : stratum) {
      topo_order_.push_back(rel);
      derived_.insert(rel);
    }
  }
  for (size_t i = 0; i < rules_.size(); ++i) {
    rules_of_[rules_[i].head.relation].push_back(i);
  }

  // Full evaluation in dependency order, accumulating derivation counts.
  RuleEvaluator evaluator(catalog_);
  for (const std::string& rel : topo_order_) {
    DD_ASSIGN_OR_RETURN(Table* table, catalog_->GetTable(rel));
    if (!table->empty()) {
      return Status::InvalidArgument("derived table must start empty: " + rel);
    }
    CountMap& counts = counts_[rel];
    for (size_t rid : rules_of_[rel]) {
      DD_RETURN_IF_ERROR(evaluator.Evaluate(
          rules_[rid], [&](const Tuple& t) { counts[t] += 1; }, par_));
    }
    // Known-size re-materialization: size storage and index up front so
    // the insert loop never rehashes.
    table->Reserve(counts.size());
    for (const auto& [tuple, count] : counts) {
      if (count > 0) {
        DD_RETURN_IF_ERROR(table->CheckTuple(tuple));
        table->InsertUnchecked(tuple);
      }
    }
  }
  initialized_ = true;
  return Status::OK();
}

int64_t IncrementalEngine::DerivationCount(const std::string& relation,
                                           const Tuple& tuple) const {
  auto it = counts_.find(relation);
  if (it == counts_.end()) return 0;
  auto jt = it->second.find(tuple);
  return jt == it->second.end() ? 0 : jt->second;
}

Status IncrementalEngine::DeltaJoin(const ConjunctiveRule& rule, size_t delta_pos,
                                    const std::map<std::string, DeltaSet>& pending,
                                    JoinIndexCache* index_cache, CountMap* out) {
  // Atom order: positives first then negatives (matching RuleEvaluator) —
  // the telescoping identity sum_i (new_<i, delta_i, old_>i) is valid for
  // any fixed order, so we fix this one.
  std::vector<const Atom*> ordered;
  for (const Atom& a : rule.body) {
    if (!a.negated) ordered.push_back(&a);
  }
  for (const Atom& a : rule.body) {
    if (a.negated) ordered.push_back(&a);
  }

  const Atom* delta_atom = ordered[delta_pos];
  auto pend_it = pending.find(delta_atom->relation);
  if (pend_it == pending.end() || pend_it->second.empty()) return Status::OK();

  // Build (atom, source) pairs in identity order — new state before the
  // delta position, old state after — then *evaluate* with the delta
  // atom first so the join cost is O(|delta| · probes), not O(|R1|).
  // Evaluation order does not affect the result set, only the plan.
  std::vector<std::unique_ptr<TupleSource>> owned_sources;
  std::vector<AtomInput> identity_inputs;
  for (size_t j = 0; j < ordered.size(); ++j) {
    const Atom* atom = ordered[j];
    DD_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(atom->relation));
    std::unique_ptr<TupleSource> src;
    if (j == delta_pos) {
      src = std::make_unique<DeltaSource>(&pend_it->second);
    } else {
      auto it = pending.find(atom->relation);
      const DeltaSet* delta = (it != pending.end() && !it->second.empty())
                                  ? &it->second
                                  : nullptr;
      if (j < delta_pos && delta != nullptr) {
        src = std::make_unique<OverlaySource>(table, delta);  // new state
      } else {
        src = std::make_unique<TableSource>(table);  // old state
      }
    }
    owned_sources.push_back(std::move(src));
    identity_inputs.push_back(AtomInput{atom, owned_sources.back().get()});
  }

  // The delta-position atom participates positively in the scan even if
  // negated in the rule; the sign flip below accounts for complement
  // semantics (a tuple entering R leaves !R and vice versa).
  Atom stripped;
  if (delta_atom->negated) {
    stripped = *delta_atom;
    stripped.negated = false;
    identity_inputs[delta_pos].atom = &stripped;
  }

  // Plan order: delta scan first, then remaining positives, negated last
  // (they must be fully bound when reached).
  std::vector<AtomInput> inputs;
  inputs.push_back(identity_inputs[delta_pos]);
  for (size_t j = 0; j < identity_inputs.size(); ++j) {
    if (j == delta_pos || identity_inputs[j].atom->negated) continue;
    inputs.push_back(identity_inputs[j]);
  }
  for (size_t j = 0; j < identity_inputs.size(); ++j) {
    if (j == delta_pos || !identity_inputs[j].atom->negated) continue;
    inputs.push_back(identity_inputs[j]);
  }

  CompiledConjunction cc;
  DD_RETURN_IF_ERROR(cc.Build(std::move(inputs), &rule.conditions, index_cache));
  const int sign = delta_atom->negated ? -1 : 1;

  if (par_.pool != nullptr) {
    // Index building (including JoinIndexCache population) happens here,
    // on the coordinating thread; workers afterwards only probe.
    cc.PrepareIndexes();
    const size_t n = cc.TopLevelSize();
    const size_t morsel_size = par_.MorselSizeFor(cc.EstimatedUnitCost());
    const size_t num_morsels = NumMorsels(n, morsel_size);
    if (num_morsels > 1) {
      std::vector<std::vector<std::pair<Tuple, int64_t>>> buffers(num_morsels);
      DD_RETURN_IF_ERROR(ParallelMorsels(
          par_.pool, n, morsel_size,
          [&](size_t m, size_t begin, size_t end) {
            auto& buf = buffers[m];
            cc.RunMorsel(begin, end, [&](const std::vector<Value>& slots,
                                         int64_t mult) {
              buf.emplace_back(RuleEvaluator::ProjectHead(rule.head, cc, slots),
                               mult);
            });
            return Status::OK();
          }));
      // Ordered merge: accumulating in morsel order reproduces the exact
      // CountMap the serial scan builds (same insertion sequence).
      for (const auto& buffer : buffers) {
        for (const auto& [head, mult] : buffer) (*out)[head] += sign * mult;
      }
      return Status::OK();
    }
  }

  cc.Run([&](const std::vector<Value>& slots, int64_t mult) {
    Tuple head = RuleEvaluator::ProjectHead(rule.head, cc, slots);
    (*out)[head] += sign * mult;
  });
  return Status::OK();
}

Result<std::map<std::string, DeltaSet>> IncrementalEngine::ApplyDeltas(
    const std::map<std::string, DeltaSet>& base_deltas) {
  if (!initialized_) return Status::Internal("IncrementalEngine not initialized");

  // Normalize base deltas against current table state: presence semantics,
  // counts in {-1, +1}, drop no-ops. Reject deltas on derived relations.
  std::map<std::string, DeltaSet> pending;
  for (const auto& [rel, delta] : base_deltas) {
    if (derived_.count(rel) > 0) {
      return Status::InvalidArgument("cannot apply base delta to derived relation: " +
                                     rel);
    }
    DD_ASSIGN_OR_RETURN(Table* table, catalog_->GetTable(rel));
    DeltaSet normalized;
    for (const auto& [tuple, count] : delta) {
      if (count == 0) continue;
      DD_RETURN_IF_ERROR(table->CheckTuple(tuple));
      bool present = table->Contains(tuple);
      if (count > 0 && !present) normalized[tuple] = 1;
      if (count < 0 && present) normalized[tuple] = -1;
    }
    if (!normalized.empty()) pending[rel] = std::move(normalized);
  }
  if (pending.empty()) return pending;

  // Propagate through derived relations in dependency order. Tables still
  // hold the OLD state; "new" views are overlays. The index cache is
  // valid for the whole batch because no table mutates until commit; it
  // must be dropped before the commit loop below.
  {
  JoinIndexCache index_cache;
  for (const std::string& rel : topo_order_) {
    CountMap dcount;
    for (size_t rid : rules_of_[rel]) {
      const ConjunctiveRule& rule = rules_[rid];
      size_t n = rule.body.size();
      for (size_t i = 0; i < n; ++i) {
        // Position i indexes the positive-then-negated order used by
        // DeltaJoin; reconstruct which atom sits there.
        DD_RETURN_IF_ERROR(DeltaJoin(rule, i, pending, &index_cache, &dcount));
      }
    }
    if (dcount.empty()) continue;
    CountMap& counts = counts_[rel];
    DeltaSet presence;
    for (const auto& [tuple, dc] : dcount) {
      if (dc == 0) continue;
      int64_t before = 0;
      auto it = counts.find(tuple);
      if (it != counts.end()) before = it->second;
      int64_t after = before + dc;
      if (after < 0) {
        return Status::Internal("negative derivation count for " + rel + " tuple " +
                                tuple.ToString());
      }
      if (after == 0) {
        counts.erase(tuple);
      } else {
        counts[tuple] = after;
      }
      if (before == 0 && after > 0) presence[tuple] = 1;
      if (before > 0 && after == 0) presence[tuple] = -1;
    }
    if (!presence.empty()) pending[rel] = std::move(presence);
  }
  }  // index_cache destroyed: safe to mutate tables below.

  // Commit: apply every presence delta to its table.
  for (const auto& [rel, delta] : pending) {
    DD_ASSIGN_OR_RETURN(Table* table, catalog_->GetTable(rel));
    for (const auto& [tuple, count] : delta) {
      if (count > 0) {
        table->InsertUnchecked(tuple);
      } else if (count < 0) {
        table->Erase(tuple);
      }
    }
  }
  return pending;
}

}  // namespace dd
