#ifndef DEEPDIVE_QUERY_RULE_H_
#define DEEPDIVE_QUERY_RULE_H_

#include <string>
#include <vector>

#include "storage/tuple.h"
#include "storage/value.h"
#include "util/status.h"

namespace dd {

/// A term in a datalog atom: either a named variable or a constant.
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  std::string var;  // valid when kind == kVariable
  Value constant;   // valid when kind == kConstant

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVariable;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConstant;
    t.constant = std::move(v);
    return t;
  }

  bool is_var() const { return kind == Kind::kVariable; }

  std::string ToString() const {
    return is_var() ? var : constant.ToString();
  }
};

/// A (possibly negated) relational atom: R(t1, ..., tn).
struct Atom {
  std::string relation;
  std::vector<Term> terms;
  bool negated = false;

  std::string ToString() const;
};

/// Comparison operators available in rule bodies (e.g., m1 != m2).
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// A comparison condition between two terms. Both sides must be bound
/// by positive body atoms (or be constants) by the time it is checked.
struct Condition {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;

  std::string ToString() const;
};

/// Evaluate `lhs op rhs` over concrete values. Comparisons between
/// different types order by type tag (consistent with Value::operator<).
bool EvalCondition(const Value& lhs, CmpOp op, const Value& rhs);

/// A conjunctive datalog rule: head :- body, conditions.
/// Safety requirements (checked by Validate):
///  * every head variable appears in a positive body atom;
///  * every variable of a negated atom appears in a positive body atom;
///  * every condition variable appears in a positive body atom.
struct ConjunctiveRule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Condition> conditions;

  Status Validate() const;
  std::string ToString() const;
};

}  // namespace dd

#endif  // DEEPDIVE_QUERY_RULE_H_
