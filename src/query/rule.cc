#include "query/rule.h"

#include <set>

namespace dd {

std::string Atom::ToString() const {
  std::string out = negated ? "!" : "";
  out += relation + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  out += ")";
  return out;
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::string Condition::ToString() const {
  return lhs.ToString() + " " + CmpOpName(op) + " " + rhs.ToString();
}

bool EvalCondition(const Value& lhs, CmpOp op, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return !(rhs < lhs);
    case CmpOp::kGt: return rhs < lhs;
    case CmpOp::kGe: return !(lhs < rhs);
  }
  return false;
}

Status ConjunctiveRule::Validate() const {
  std::set<std::string> positive_vars;
  bool has_positive = false;
  for (const Atom& atom : body) {
    if (atom.negated) continue;
    has_positive = true;
    for (const Term& t : atom.terms) {
      if (t.is_var()) positive_vars.insert(t.var);
    }
  }
  if (!has_positive) {
    return Status::InvalidArgument("rule has no positive body atom: " + ToString());
  }
  auto check_bound = [&](const Term& t, const char* where) -> Status {
    if (t.is_var() && positive_vars.count(t.var) == 0) {
      return Status::InvalidArgument(std::string("unsafe variable ") + t.var + " in " +
                                     where + " of rule " + ToString());
    }
    return Status::OK();
  };
  for (const Term& t : head.terms) DD_RETURN_IF_ERROR(check_bound(t, "head"));
  for (const Atom& atom : body) {
    if (!atom.negated) continue;
    for (const Term& t : atom.terms) {
      DD_RETURN_IF_ERROR(check_bound(t, "negated atom"));
    }
  }
  for (const Condition& c : conditions) {
    DD_RETURN_IF_ERROR(check_bound(c.lhs, "condition"));
    DD_RETURN_IF_ERROR(check_bound(c.rhs, "condition"));
  }
  return Status::OK();
}

std::string ConjunctiveRule::ToString() const {
  std::string out = head.ToString() + " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  for (const Condition& c : conditions) {
    out += ", " + c.ToString();
  }
  out += ".";
  return out;
}

}  // namespace dd
