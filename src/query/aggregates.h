#ifndef DEEPDIVE_QUERY_AGGREGATES_H_
#define DEEPDIVE_QUERY_AGGREGATES_H_

#include <string>
#include <vector>

#include "storage/table.h"
#include "util/result.h"

namespace dd {

/// Aggregate functions for OLAP-style queries over extracted tables —
/// the paper's opening promise: "a relational database that can be used
/// with standard data management tools, such as OLAP query processors"
/// (§1). Covers the analyses of the introduction ("Which doctors were
/// responsible for the most claims?") over the probabilistic output.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc func);

struct AggregateSpec {
  AggFunc func = AggFunc::kCount;
  /// Column to aggregate (by name); ignored for kCount with empty name
  /// (COUNT(*)). Numeric columns required for kSum/kAvg.
  std::string column;
};

/// GROUP BY `group_by` columns with the given aggregates. Output schema:
/// the group-by columns followed by one double/int column per aggregate.
/// Rows are returned in deterministic (sorted) group order.
Result<std::vector<Tuple>> GroupBy(const Table& table,
                                   const std::vector<std::string>& group_by,
                                   const std::vector<AggregateSpec>& aggregates);

/// Convenience: SELECT col, COUNT(*) FROM table GROUP BY col ORDER BY
/// count DESC — the "which X was responsible for the most Y" query shape.
Result<std::vector<std::pair<Value, int64_t>>> TopCounts(const Table& table,
                                                         const std::string& column,
                                                         size_t limit = 10);

}  // namespace dd

#endif  // DEEPDIVE_QUERY_AGGREGATES_H_
