#ifndef DEEPDIVE_QUERY_DRED_H_
#define DEEPDIVE_QUERY_DRED_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "query/evaluator.h"
#include "query/rule.h"
#include "query/source.h"
#include "storage/catalog.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

/// Incremental view maintenance in the style the paper describes (§4.1):
/// each derived relation R_i carries a delta relation with a `count`
/// column recording the number of derivations of each tuple; on an
/// update, delta rules propagate signed count changes through the
/// program, and a tuple's presence flips when its count crosses zero.
///
/// Supported programs: stratified and non-recursive (DeepDive grounding
/// programs are non-recursive in practice). Recursive programs are
/// rejected at Initialize() with Unimplemented; callers fall back to full
/// re-evaluation via DatalogEngine.
class IncrementalEngine {
 public:
  /// The engine takes ownership of the rule list; `catalog` must outlive
  /// the engine. Derived tables must already exist (empty) in the catalog.
  /// `par` controls morsel-parallel join scans (both the initial full
  /// evaluation and every delta join); derivation counts, table contents,
  /// and — crucially for grounding — derived-table row order are
  /// identical to serial evaluation at any thread count.
  IncrementalEngine(Catalog* catalog, std::vector<ConjunctiveRule> rules,
                    const EvalParallelism& par = EvalParallelism())
      : catalog_(catalog), rules_(std::move(rules)), par_(par) {}

  /// Full evaluation: populate derived tables and derivation counts.
  Status Initialize();

  /// Apply a batch of base-relation presence changes. Positive counts are
  /// insertions, negative deletions; no-op changes (inserting a present
  /// tuple, deleting an absent one) are ignored. On success the catalog —
  /// base and derived tables — reflects the new state, and the returned
  /// map holds the presence delta of every relation that changed
  /// (including the normalized base deltas).
  Result<std::map<std::string, DeltaSet>> ApplyDeltas(
      const std::map<std::string, DeltaSet>& base_deltas);

  /// Number of derivations currently recorded for a derived tuple.
  int64_t DerivationCount(const std::string& relation, const Tuple& tuple) const;

  /// Derived relations in dependency (evaluation) order.
  const std::vector<std::string>& topo_order() const { return topo_order_; }

 private:
  using CountMap = std::unordered_map<Tuple, int64_t, TupleHash>;

  /// Evaluate one rule with the "delta expansion" at body position
  /// `delta_pos`: positions before it read the new state, the delta
  /// position scans `delta`, positions after it read the old state.
  /// Signed head-count contributions accumulate into `out`.
  Status DeltaJoin(const ConjunctiveRule& rule, size_t delta_pos,
                   const std::map<std::string, DeltaSet>& pending,
                   JoinIndexCache* index_cache, CountMap* out);

  Catalog* catalog_;
  std::vector<ConjunctiveRule> rules_;
  EvalParallelism par_;
  std::vector<std::string> topo_order_;
  std::set<std::string> derived_;
  std::map<std::string, std::vector<size_t>> rules_of_;  // head relation -> rule ids
  std::map<std::string, CountMap> counts_;
  bool initialized_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_QUERY_DRED_H_
