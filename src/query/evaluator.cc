#include "query/evaluator.h"

#include <cassert>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace dd {

const JoinIndexCache::SharedIndex* JoinIndexCache::Get(
    const Table* table, const std::vector<int>& positions) {
  auto key = std::make_pair(table, positions);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.get();
  auto index = std::make_unique<SharedIndex>();
  const size_t cap = table->capacity();
  for (size_t row = 0; row < cap; ++row) {
    int64_t id = static_cast<int64_t>(row);
    if (!table->is_live(id)) continue;
    // Refs read the frozen column arrays in place; nothing is copied.
    Tuple key_tuple;
    for (int pos : positions) {
      key_tuple.Append(table->ValueAt(id, static_cast<size_t>(pos)));
    }
    index->map[key_tuple].emplace_back(table->ref(id), 1);
  }
  const SharedIndex* out = index.get();
  cache_.emplace(std::move(key), std::move(index));
  return out;
}

Status CompiledConjunction::Build(std::vector<AtomInput> atoms,
                                  const std::vector<Condition>* conditions,
                                  JoinIndexCache* index_cache) {
  index_cache_ = index_cache;
  atoms_.clear();
  conditions_.clear();
  slot_names_.clear();
  slot_of_.clear();
  indexes_.clear();

  auto slot_for = [&](const std::string& var) {
    auto it = slot_of_.find(var);
    if (it != slot_of_.end()) return it->second;
    int slot = static_cast<int>(slot_names_.size());
    slot_names_.push_back(var);
    slot_of_.emplace(var, slot);
    return slot;
  };

  std::vector<bool> bound;  // per slot, bound after previously planned atoms
  for (const AtomInput& input : atoms) {
    if (input.atom == nullptr || input.source == nullptr) {
      return Status::InvalidArgument("AtomInput with null atom or source");
    }
    AtomPlan plan;
    plan.source = input.source;
    plan.negated = input.atom->negated;
    bool any_unbound = false;
    // Only positions whose value is known *before* this atom starts may be
    // used as index-key positions. A variable repeated within this atom is
    // bound mid-unification, so later occurrences become equality checks,
    // not key positions.
    const std::vector<bool> bound_before = bound;
    for (size_t pos = 0; pos < input.atom->terms.size(); ++pos) {
      const Term& term = input.atom->terms[pos];
      TermPlan tp;
      if (!term.is_var()) {
        tp.is_constant = true;
        tp.constant = term.constant;
        plan.bound_positions.push_back(static_cast<int>(pos));
      } else {
        tp.slot = slot_for(term.var);
        if (static_cast<size_t>(tp.slot) >= bound.size()) bound.resize(tp.slot + 1, false);
        bool was_bound_before =
            static_cast<size_t>(tp.slot) < bound_before.size() && bound_before[tp.slot];
        if (was_bound_before) {
          plan.bound_positions.push_back(static_cast<int>(pos));
        } else if (!bound[tp.slot]) {
          tp.first_occurrence = true;
          bound[tp.slot] = true;
          any_unbound = true;
        }
        // else: repeated within this atom -> equality check during unify.
      }
      plan.terms.push_back(std::move(tp));
    }
    plan.all_bound = !any_unbound;
    if (plan.negated && !plan.all_bound) {
      return Status::InvalidArgument("negated atom reached with unbound variables: " +
                                     input.atom->ToString());
    }
    atoms_.push_back(std::move(plan));
  }

  if (conditions != nullptr) {
    for (const Condition& c : *conditions) {
      ConditionPlan cp;
      cp.op = c.op;
      int max_depth = -1;
      auto plan_side = [&](const Term& t, bool* is_const, Value* value,
                           int* slot) -> Status {
        if (!t.is_var()) {
          *is_const = true;
          *value = t.constant;
          return Status::OK();
        }
        auto it = slot_of_.find(t.var);
        if (it == slot_of_.end()) {
          return Status::InvalidArgument("condition variable never bound: " + t.var);
        }
        *slot = it->second;
        return Status::OK();
      };
      DD_RETURN_IF_ERROR(plan_side(c.lhs, &cp.lhs_const, &cp.lhs_value, &cp.lhs_slot));
      DD_RETURN_IF_ERROR(plan_side(c.rhs, &cp.rhs_const, &cp.rhs_value, &cp.rhs_slot));
      // Find the first atom depth after which both sides are bound.
      std::vector<bool> seen(slot_names_.size(), false);
      for (size_t d = 0; d < atoms_.size(); ++d) {
        for (const TermPlan& tp : atoms_[d].terms) {
          if (tp.slot >= 0) seen[tp.slot] = true;
        }
        bool lhs_ok = cp.lhs_const || seen[cp.lhs_slot];
        bool rhs_ok = cp.rhs_const || seen[cp.rhs_slot];
        if (lhs_ok && rhs_ok) {
          max_depth = static_cast<int>(d);
          break;
        }
      }
      if (max_depth < 0) {
        return Status::InvalidArgument("condition never becomes bound: " + c.ToString());
      }
      int cond_id = static_cast<int>(conditions_.size());
      conditions_.push_back(cp);
      atoms_[max_depth].conditions_ready.push_back(cond_id);
    }
  }

  indexes_.resize(atoms_.size());
  return Status::OK();
}

int CompiledConjunction::SlotOf(const std::string& var) const {
  auto it = slot_of_.find(var);
  return it == slot_of_.end() ? -1 : it->second;
}

bool CompiledConjunction::CheckCondition(const ConditionPlan& c,
                                         const std::vector<Value>& slots) const {
  const Value& lhs = c.lhs_const ? c.lhs_value : slots[c.lhs_slot];
  const Value& rhs = c.rhs_const ? c.rhs_value : slots[c.rhs_slot];
  return EvalCondition(lhs, c.op, rhs);
}

const CompiledConjunction::Index& CompiledConjunction::GetIndex(size_t depth) const {
  Index& index = indexes_[depth];
  if (index.built) return index;
  const AtomPlan& plan = atoms_[depth];
  const Table* table = plan.source->backing_table();
  if (index_cache_ != nullptr && table != nullptr) {
    index.shared = index_cache_->Get(table, plan.bound_positions);
    index.built = true;
    return index;
  }
  plan.source->ForEach([&](const RowRef& t, int64_t count) {
    if (t.size() != plan.terms.size()) return;  // arity mismatch: no match
    Tuple key;
    for (int pos : plan.bound_positions) key.Append(t.at(static_cast<size_t>(pos)));
    // The ref's storage (frozen table or delta-map key) outlives the index.
    index.map[key].emplace_back(t, count);
  });
  index.built = true;
  return index;
}

void CompiledConjunction::Run(const BindingEmit& emit) const {
  std::vector<Value> slots(slot_names_.size());
  Recurse(0, slots, 1, emit);
}

void CompiledConjunction::PrepareIndexes() const {
  for (size_t depth = 0; depth < atoms_.size(); ++depth) {
    if (!atoms_[depth].all_bound) GetIndex(depth);
  }
}

const JoinIndexCache::MatchList* CompiledConjunction::TopLevelRows() const {
  if (atoms_.empty() || atoms_[0].all_bound) return nullptr;
  const AtomPlan& plan = atoms_[0];
  const Index& index = GetIndex(0);
  // At depth 0 nothing is bound yet, so bound_positions are all constant
  // terms; the key is the same for the whole enumeration.
  Tuple key;
  for (int pos : plan.bound_positions) {
    key.Append(plan.terms[static_cast<size_t>(pos)].constant);
  }
  const auto& index_map = index.shared != nullptr ? index.shared->map : index.map;
  auto it = index_map.find(key);
  if (it == index_map.end()) return nullptr;
  return &it->second;
}

size_t CompiledConjunction::TopLevelSize() const {
  if (atoms_.empty() || atoms_[0].all_bound) return 1;
  const auto* rows = TopLevelRows();
  return rows == nullptr ? 0 : rows->size();
}

void CompiledConjunction::RunMorsel(size_t begin, size_t end,
                                    const BindingEmit& emit) const {
  if (begin >= end) return;
  std::vector<Value> slots(slot_names_.size());
  if (atoms_.empty() || atoms_[0].all_bound) {
    // Single indivisible unit: run fully for the morsel covering unit 0.
    if (begin == 0) Recurse(0, slots, 1, emit);
    return;
  }
  const auto* rows = TopLevelRows();
  if (rows == nullptr) return;
  if (end > rows->size()) end = rows->size();
  for (size_t i = begin; i < end; ++i) {
    TryRow(0, (*rows)[i].first, (*rows)[i].second, slots, 1, emit);
  }
}

void CompiledConjunction::Recurse(size_t depth, std::vector<Value>& slots, int64_t mult,
                                  const BindingEmit& emit) const {
  if (depth == atoms_.size()) {
    emit(slots, mult);
    return;
  }
  const AtomPlan& plan = atoms_[depth];

  if (plan.all_bound) {
    auto conditions_hold = [&]() {
      for (int cid : plan.conditions_ready) {
        if (!CheckCondition(conditions_[cid], slots)) return false;
      }
      return true;
    };
    // Membership (or absence, for negated atoms) probe.
    Tuple probe;
    for (const TermPlan& tp : plan.terms) {
      probe.Append(tp.is_constant ? tp.constant : slots[tp.slot]);
    }
    int64_t count = plan.source->Count(probe);
    if (plan.negated) {
      if (count > 0) return;
      if (!conditions_hold()) return;
      Recurse(depth + 1, slots, mult, emit);
    } else {
      if (count == 0) return;
      if (!conditions_hold()) return;
      Recurse(depth + 1, slots, mult * count, emit);
    }
    return;
  }

  // Enumerate matching rows via the index on bound positions.
  const Index& index = GetIndex(depth);
  Tuple key;
  for (int pos : plan.bound_positions) {
    const TermPlan& tp = plan.terms[static_cast<size_t>(pos)];
    key.Append(tp.is_constant ? tp.constant : slots[tp.slot]);
  }
  const auto& index_map = index.shared != nullptr ? index.shared->map : index.map;
  auto it = index_map.find(key);
  if (it == index_map.end()) return;

  for (const auto& [row, count] : it->second) {
    TryRow(depth, row, count, slots, mult, emit);
  }
}

void CompiledConjunction::TryRow(size_t depth, const RowRef& row, int64_t count,
                                 std::vector<Value>& slots, int64_t mult,
                                 const BindingEmit& emit) const {
  const AtomPlan& plan = atoms_[depth];
  // Unify: bind first occurrences, check repeated occurrences.
  for (size_t pos = 0; pos < plan.terms.size(); ++pos) {
    const TermPlan& tp = plan.terms[pos];
    if (tp.first_occurrence) {
      slots[tp.slot] = row.at(pos);
    } else if (!tp.is_constant) {
      // Bound earlier within this atom or before it; the index key already
      // guarantees equality for positions in bound_positions, but repeated
      // first occurrences within this atom need an explicit check.
      if (!(slots[tp.slot] == row.at(pos))) return;
    }
  }
  for (int cid : plan.conditions_ready) {
    if (!CheckCondition(conditions_[cid], slots)) return;
  }
  Recurse(depth + 1, slots, mult * count, emit);
}

double CompiledConjunction::EstimatedUnitCost() const {
  constexpr double kProbeCost = 8.0;  // index lookup + unification
  const size_t joins = atoms_.empty() ? 0 : atoms_.size() - 1;
  return 1.0 + kProbeCost * static_cast<double>(joins) +
         static_cast<double>(conditions_.size());
}

size_t EvalParallelism::MorselSizeFor(double cost_per_item) const {
  if (morsel_size != 0) return morsel_size;
  return AdaptiveMorselSize(cost_per_item);
}

Status RuleEvaluator::Compile(const ConjunctiveRule& rule, JoinIndexCache* cache,
                              CompiledRule* out) const {
  DD_RETURN_IF_ERROR(rule.Validate());
  out->rule = &rule;
  out->sources.clear();

  // Order atoms positive-first so negated atoms are fully bound.
  std::vector<const Atom*> ordered;
  for (const Atom& a : rule.body) {
    if (!a.negated) ordered.push_back(&a);
  }
  for (const Atom& a : rule.body) {
    if (a.negated) ordered.push_back(&a);
  }

  std::vector<AtomInput> inputs;
  for (const Atom* atom : ordered) {
    DD_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(atom->relation));
    out->sources.push_back(std::make_unique<TableSource>(table));
    inputs.push_back(AtomInput{atom, out->sources.back().get()});
  }
  DD_RETURN_IF_ERROR(out->cc.Build(std::move(inputs), &rule.conditions, cache));

  // Pre-resolve head slots.
  for (const Term& t : rule.head.terms) {
    if (t.is_var() && out->cc.SlotOf(t.var) < 0) {
      return Status::InvalidArgument("head variable not bound: " + t.var);
    }
  }
  return Status::OK();
}

Status RuleEvaluator::Evaluate(const ConjunctiveRule& rule,
                               const std::function<void(const Tuple&)>& emit,
                               const EvalParallelism& par) const {
  CompiledRule cr;
  DD_RETURN_IF_ERROR(Compile(rule, nullptr, &cr));
  const CompiledConjunction& cc = cr.cc;

  if (par.pool != nullptr) {
    cc.PrepareIndexes();
    const size_t n = cc.TopLevelSize();
    const size_t morsel_size = par.MorselSizeFor(cc.EstimatedUnitCost());
    if (NumMorsels(n, morsel_size) > 1) {
      // Workers project head tuples into per-morsel buffers; the merge
      // emits them in morsel order, reproducing the serial sequence.
      std::vector<std::vector<Tuple>> buffers(NumMorsels(n, morsel_size));
      DD_RETURN_IF_ERROR(ParallelMorsels(
          par.pool, n, morsel_size,
          [&](size_t m, size_t begin, size_t end) {
            std::vector<Tuple>& out = buffers[m];
            cc.RunMorsel(begin, end, [&](const std::vector<Value>& slots,
                                         int64_t mult) {
              (void)mult;  // set semantics over tables: always 1
              out.push_back(ProjectHead(rule.head, cc, slots));
            });
            return Status::OK();
          }));
      for (const std::vector<Tuple>& buffer : buffers) {
        for (const Tuple& t : buffer) emit(t);
      }
      return Status::OK();
    }
  }

  cc.Run([&](const std::vector<Value>& slots, int64_t mult) {
    (void)mult;  // set semantics over tables: always 1
    emit(ProjectHead(rule.head, cc, slots));
  });
  return Status::OK();
}

Tuple RuleEvaluator::ProjectHead(const Atom& head, const CompiledConjunction& cc,
                                 const std::vector<Value>& slots) {
  Tuple out;
  for (const Term& t : head.terms) {
    if (t.is_var()) {
      out.Append(slots[static_cast<size_t>(cc.SlotOf(t.var))]);
    } else {
      out.Append(t.constant);
    }
  }
  return out;
}

}  // namespace dd
