#ifndef DEEPDIVE_QUERY_EVALUATOR_H_
#define DEEPDIVE_QUERY_EVALUATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <map>

#include "query/rule.h"
#include "query/source.h"
#include "storage/catalog.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

/// One body atom paired with the relation view it should read from.
/// Pairing atoms with explicit views (instead of always the catalog) is
/// what lets the same evaluator run full evaluation, semi-naive deltas,
/// and DRed old/new split joins.
struct AtomInput {
  const Atom* atom = nullptr;
  const TupleSource* source = nullptr;
};

/// Callback receiving one satisfying assignment: `slots` holds the value
/// of every variable (indexed by CompiledConjunction::SlotOf), `mult` is
/// the signed multiplicity (product of source counts along the join).
using BindingEmit = std::function<void(const std::vector<Value>& slots, int64_t mult)>;

/// Shared hash indexes over frozen tables, keyed by (table, key
/// positions). Lets repeated delta joins over the same relations reuse
/// one index instead of rebuilding per join — the difference between
/// O(|delta|) and O(|R|) incremental maintenance. The cache must not
/// outlive a mutation of any indexed table.
class JoinIndexCache {
 public:
  /// Rows matching one key: zero-copy refs into frozen columnar storage.
  using MatchList = std::vector<std::pair<RowRef, int64_t>>;

  struct SharedIndex {
    std::unordered_map<Tuple, MatchList, TupleHash> map;
  };

  /// Index of `table` on `positions` (built on first request).
  const SharedIndex* Get(const Table* table, const std::vector<int>& positions);

 private:
  std::map<std::pair<const Table*, std::vector<int>>, std::unique_ptr<SharedIndex>>
      cache_;
};

/// A conjunctive body compiled to slot-based form and evaluated with
/// hash-join indexes built lazily per atom position.
///
/// Evaluation order is the given atom order. Positive atoms with unbound
/// variables are enumerated (via an index on their bound positions);
/// fully-bound positive atoms become membership probes; negated atoms
/// must be fully bound at their position and become absence probes.
///
/// Morsel-parallel evaluation (DESIGN.md §10): the outermost loop — the
/// enumeration of the first atom's matching rows — can be split into
/// contiguous slices and run concurrently. Call PrepareIndexes() once
/// (builds every join index on the calling thread), then RunMorsel()
/// from any number of threads; after preparation the conjunction is
/// strictly read-only. RunMorsel(b, e) emits exactly the bindings Run()
/// would emit while enumerating top-level rows [b, e), in the same
/// order, so concatenating morsel outputs in morsel order reproduces the
/// serial emission sequence bit-for-bit.
class CompiledConjunction {
 public:
  /// Compile; fails if a negated atom would be reached with unbound
  /// variables, or a condition references a variable no atom binds.
  /// With a non-null `index_cache`, table-backed atoms reuse shared
  /// indexes instead of building private ones.
  Status Build(std::vector<AtomInput> atoms, const std::vector<Condition>* conditions,
               JoinIndexCache* index_cache = nullptr);

  /// Slot index of a variable, or -1 if the variable never occurs.
  int SlotOf(const std::string& var) const;

  size_t num_slots() const { return slot_names_.size(); }

  /// Enumerate all satisfying bindings. Indexes are built on first use
  /// and reused across the enumeration.
  void Run(const BindingEmit& emit) const;

  /// Build every join index now (on the calling thread). Required before
  /// concurrent RunMorsel calls: afterwards evaluation only reads.
  void PrepareIndexes() const;

  /// Number of top-level enumeration units: the match-list size of the
  /// first atom's index (1 when the first atom is a probe, or the body
  /// is empty — a single indivisible unit). Builds the first index if
  /// needed; call from one thread before fanning out.
  size_t TopLevelSize() const;

  /// Enumerate bindings whose top-level unit lies in [begin, end).
  /// Thread-safe after PrepareIndexes(); each caller passes its own
  /// emit closure (typically appending to a per-morsel buffer).
  void RunMorsel(size_t begin, size_t end, const BindingEmit& emit) const;

  /// Rough cost of expanding one top-level unit, in probe units (one
  /// hash probe ≈ 1): each atom past the first is about one index probe
  /// plus unification, plus one unit per condition. Feeds
  /// EvalParallelism::MorselSizeFor so join-heavy rules split finer.
  double EstimatedUnitCost() const;

 private:
  struct TermPlan {
    bool is_constant = false;
    Value constant;
    int slot = -1;
    bool first_occurrence = false;  // binds the slot (vs. consistency check)
  };
  struct AtomPlan {
    const TupleSource* source = nullptr;
    bool negated = false;
    bool all_bound = false;          // membership probe instead of scan
    std::vector<TermPlan> terms;
    std::vector<int> bound_positions;    // term positions with known value
    std::vector<int> conditions_ready;   // condition ids checkable after this atom
  };
  struct ConditionPlan {
    bool lhs_const = false, rhs_const = false;
    Value lhs_value, rhs_value;
    int lhs_slot = -1, rhs_slot = -1;
    CmpOp op = CmpOp::kEq;
  };
  /// Hash index on an atom's bound positions: key tuple -> matching rows.
  /// Match lists hold RowRefs into the source's stable storage (columnar
  /// table rows or delta-map keys), so nothing is copied per row.
  struct Index {
    bool built = false;
    const JoinIndexCache::SharedIndex* shared = nullptr;  // cache-owned
    std::unordered_map<Tuple, JoinIndexCache::MatchList, TupleHash> map;
  };

  void Recurse(size_t depth, std::vector<Value>& slots, int64_t mult,
               const BindingEmit& emit) const;
  /// Unify one enumerated row at `depth`, check its ready conditions,
  /// and recurse. Shared by Run (all rows) and RunMorsel (a slice).
  void TryRow(size_t depth, const RowRef& row, int64_t count,
              std::vector<Value>& slots, int64_t mult, const BindingEmit& emit) const;
  bool CheckCondition(const ConditionPlan& c, const std::vector<Value>& slots) const;
  const Index& GetIndex(size_t depth) const;
  /// Match list of the first atom's index (key built from constants
  /// only), or nullptr when the first atom is a probe / body is empty.
  const JoinIndexCache::MatchList* TopLevelRows() const;

  std::vector<AtomPlan> atoms_;
  std::vector<ConditionPlan> conditions_;
  JoinIndexCache* index_cache_ = nullptr;
  std::vector<std::string> slot_names_;
  std::unordered_map<std::string, int> slot_of_;
  mutable std::vector<Index> indexes_;
};

class ThreadPool;

/// How a query-side scan may fan out. A null pool means strictly serial
/// evaluation (the differential-testing oracle); with a pool, scans are
/// split into morsels and the per-morsel results are merged in morsel
/// order, which makes the parallel result — including emission order —
/// identical to serial at any thread count.
struct EvalParallelism {
  ThreadPool* pool = nullptr;
  /// Rows per morsel. 0 (the default) = adaptive per-operator sizing:
  /// MorselSizeFor picks a deterministic power of two from the
  /// operator's estimated per-item cost (AdaptiveMorselSize). Tests pin
  /// small fixed values to force multi-morsel merges on tiny inputs.
  size_t morsel_size = 0;

  /// Morsel size for a scan whose items cost ~cost_per_item probe units
  /// each: `morsel_size` when pinned, else AdaptiveMorselSize. Pure in
  /// its inputs, so the decomposition the merge depends on never varies
  /// with thread count or machine.
  size_t MorselSizeFor(double cost_per_item) const;
};

/// Convenience: evaluate a validated rule against the current catalog
/// state and emit head tuples (set semantics: duplicates may be emitted;
/// the caller dedups by inserting into a Table).
class RuleEvaluator {
 public:
  explicit RuleEvaluator(const Catalog* catalog) : catalog_(catalog) {}

  /// A rule compiled for repeated or parallel evaluation: the planned
  /// conjunction plus the table sources backing it. Movable. Valid only
  /// while the rule and catalog outlive it, and only until a table it
  /// reads is mutated — fixpoint evaluation recompiles per round against
  /// the round's frozen table state.
  struct CompiledRule {
    const ConjunctiveRule* rule = nullptr;
    CompiledConjunction cc;
    std::vector<std::unique_ptr<TableSource>> sources;
  };

  /// Compile `rule` against current catalog state: validates, orders
  /// atoms positive-first (so negated atoms are fully bound), checks
  /// head slots. With a non-null `cache`, table-backed atoms share
  /// indexes with other rules compiled in the same frozen round.
  Status Compile(const ConjunctiveRule& rule, JoinIndexCache* cache,
                 CompiledRule* out) const;

  /// Evaluate rule body over catalog tables; call emit(head_tuple) once
  /// per derivation. With non-serial `par`, the join runs morsel-
  /// parallel but emit is still called on this thread, in the exact
  /// order the serial evaluation would produce.
  Status Evaluate(const ConjunctiveRule& rule,
                  const std::function<void(const Tuple&)>& emit,
                  const EvalParallelism& par = EvalParallelism()) const;

  /// Project a head tuple out of a slot assignment.
  static Tuple ProjectHead(const Atom& head, const CompiledConjunction& cc,
                           const std::vector<Value>& slots);

 private:
  const Catalog* catalog_;
};

}  // namespace dd

#endif  // DEEPDIVE_QUERY_EVALUATOR_H_
