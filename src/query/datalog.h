#ifndef DEEPDIVE_QUERY_DATALOG_H_
#define DEEPDIVE_QUERY_DATALOG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "query/evaluator.h"
#include "query/rule.h"
#include "storage/catalog.h"
#include "util/result.h"
#include "util/status.h"
#include "util/task_graph.h"

namespace dd {

/// Stratification result for a rule set: relations grouped into strata
/// that must be evaluated in order; within a stratum relations may be
/// mutually recursive.
struct Stratification {
  /// Strata in evaluation order; each stratum lists derived relations.
  std::vector<std::vector<std::string>> strata;
  /// Rule indexes grouped by the stratum of their head relation.
  std::vector<std::vector<size_t>> rules_by_stratum;
  /// Per stratum: true when the stratum is (self- or mutually-)
  /// recursive. Computed once here; evaluation consumes it instead of
  /// re-deriving recursion from the rule bodies.
  std::vector<bool> recursive;
  /// True if some stratum is recursive.
  bool has_recursion = false;
};

/// Compute a stratification of `rules`. Fails if a negation cycle exists
/// (negated dependency within a recursive component).
Result<Stratification> Stratify(const std::vector<ConjunctiveRule>& rules);

/// Semi-naive, stratified datalog evaluation over a Catalog. Derived
/// tables must already exist in the catalog (the caller declares their
/// schemas); base tables are whatever the rules reference but never
/// derive.
///
/// Evaluation is round-based with frozen inputs (DESIGN.md §11): every
/// fixpoint round compiles its rules against the table state frozen at
/// round start, workers emit per-morsel head-tuple drafts, and a barrier
/// merges the drafts in (rule order, morsel order) before any insert.
/// Serial and parallel execution therefore produce byte-identical
/// derived tables — row ids included — at any thread count, including
/// for recursive strata.
class DatalogEngine {
 public:
  /// `par` controls morsel-parallel rule scans; results (and derived-
  /// table row order) are identical to serial at any thread count.
  explicit DatalogEngine(Catalog* catalog,
                         const EvalParallelism& par = EvalParallelism())
      : catalog_(catalog), par_(par) {}

  /// Evaluate all rules to fixpoint. Derived relations accumulate into
  /// their tables (existing rows are kept; evaluation is monotone).
  Status Evaluate(const std::vector<ConjunctiveRule>& rules);

  /// Add one node per stratum of `strat` to `graph`, with edges for
  /// every inter-stratum dependency; node_of_stratum[i] receives the
  /// node id of stratum i. Lets callers overlap stratum evaluation with
  /// their own downstream nodes (the grounder hangs factor-drafting off
  /// the strata that feed it). The engine, `rules`, and `strat` must
  /// outlive the graph's Run().
  Status Schedule(const std::vector<ConjunctiveRule>& rules,
                  const Stratification& strat, TaskGraph* graph,
                  std::vector<TaskGraph::NodeId>* node_of_stratum);

 private:
  Status EvaluateStratum(const std::vector<ConjunctiveRule>& rules,
                         const std::vector<size_t>& rule_ids,
                         const std::set<std::string>& stratum_relations,
                         bool recursive);

  Catalog* catalog_;
  EvalParallelism par_;
};

}  // namespace dd

#endif  // DEEPDIVE_QUERY_DATALOG_H_
