#ifndef DEEPDIVE_QUERY_DATALOG_H_
#define DEEPDIVE_QUERY_DATALOG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "query/evaluator.h"
#include "query/rule.h"
#include "storage/catalog.h"
#include "util/result.h"
#include "util/status.h"

namespace dd {

/// Stratification result for a rule set: relations grouped into strata
/// that must be evaluated in order; within a stratum relations may be
/// mutually recursive.
struct Stratification {
  /// Strata in evaluation order; each stratum lists derived relations.
  std::vector<std::vector<std::string>> strata;
  /// Rule indexes grouped by the stratum of their head relation.
  std::vector<std::vector<size_t>> rules_by_stratum;
  /// True if some stratum contains a (mutually) recursive relation.
  bool has_recursion = false;
};

/// Compute a stratification of `rules`. Fails if a negation cycle exists
/// (negated dependency within a recursive component).
Result<Stratification> Stratify(const std::vector<ConjunctiveRule>& rules);

/// Semi-naive, stratified datalog evaluation over a Catalog. Derived
/// tables must already exist in the catalog (the caller declares their
/// schemas); base tables are whatever the rules reference but never
/// derive.
class DatalogEngine {
 public:
  /// `par` controls morsel-parallel rule scans; results (and derived-
  /// table row order) are identical to serial at any thread count.
  explicit DatalogEngine(Catalog* catalog,
                         const EvalParallelism& par = EvalParallelism())
      : catalog_(catalog), par_(par) {}

  /// Evaluate all rules to fixpoint. Derived relations accumulate into
  /// their tables (existing rows are kept; evaluation is monotone).
  Status Evaluate(const std::vector<ConjunctiveRule>& rules);

 private:
  Status EvaluateStratum(const std::vector<ConjunctiveRule>& rules,
                         const std::vector<size_t>& rule_ids,
                         const std::set<std::string>& stratum_relations);

  Catalog* catalog_;
  EvalParallelism par_;
};

}  // namespace dd

#endif  // DEEPDIVE_QUERY_DATALOG_H_
