#include "query/aggregates.h"

#include <algorithm>
#include <map>

#include "util/string_util.h"

namespace dd {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool any = false;
  Value min, max;
};

Result<double> NumericValue(const Value& v) {
  if (v.type() == ValueType::kInt) return static_cast<double>(v.AsInt());
  if (v.type() == ValueType::kDouble) return v.AsDouble();
  return Status::TypeError("aggregate over non-numeric value " + v.ToString());
}

}  // namespace

Result<std::vector<Tuple>> GroupBy(const Table& table,
                                   const std::vector<std::string>& group_by,
                                   const std::vector<AggregateSpec>& aggregates) {
  // Resolve columns.
  std::vector<int> group_cols;
  for (const std::string& name : group_by) {
    int col = table.schema().FindColumn(name);
    if (col < 0) return Status::NotFound("no such column: " + name);
    group_cols.push_back(col);
  }
  std::vector<int> agg_cols;
  for (const AggregateSpec& spec : aggregates) {
    if (spec.func == AggFunc::kCount && spec.column.empty()) {
      agg_cols.push_back(-1);  // COUNT(*)
      continue;
    }
    int col = table.schema().FindColumn(spec.column);
    if (col < 0) return Status::NotFound("no such column: " + spec.column);
    agg_cols.push_back(col);
  }

  // Accumulate (std::map gives deterministic sorted group order).
  std::map<Tuple, std::vector<AggState>> groups;
  const size_t cap = table.capacity();
  for (size_t row = 0; row < cap; ++row) {
    int64_t id = static_cast<int64_t>(row);
    if (!table.is_live(id)) continue;
    RowRef t = table.ref(id);
    Tuple key;
    for (int col : group_cols) key.Append(t.at(static_cast<size_t>(col)));
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) it->second.resize(aggregates.size());
    for (size_t a = 0; a < aggregates.size(); ++a) {
      AggState& state = it->second[a];
      state.count++;
      if (agg_cols[a] < 0) continue;
      const Value v = t.at(static_cast<size_t>(agg_cols[a]));
      if (v.is_null()) continue;
      switch (aggregates[a].func) {
        case AggFunc::kCount:
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          DD_ASSIGN_OR_RETURN(double x, NumericValue(v));
          state.sum += x;
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          if (!state.any) {
            state.min = state.max = v;
            state.any = true;
          } else {
            if (v < state.min) state.min = v;
            if (state.max < v) state.max = v;
          }
          break;
      }
    }
  }

  std::vector<Tuple> out;
  out.reserve(groups.size());
  for (const auto& [key, states] : groups) {
    Tuple row = key;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggState& state = states[a];
      switch (aggregates[a].func) {
        case AggFunc::kCount:
          row.Append(Value::Int(state.count));
          break;
        case AggFunc::kSum:
          row.Append(Value::Double(state.sum));
          break;
        case AggFunc::kAvg:
          row.Append(state.count == 0 ? Value::Null()
                                      : Value::Double(state.sum / state.count));
          break;
        case AggFunc::kMin:
          row.Append(state.any ? state.min : Value::Null());
          break;
        case AggFunc::kMax:
          row.Append(state.any ? state.max : Value::Null());
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<std::pair<Value, int64_t>>> TopCounts(const Table& table,
                                                         const std::string& column,
                                                         size_t limit) {
  DD_ASSIGN_OR_RETURN(auto rows,
                      GroupBy(table, {column}, {AggregateSpec{AggFunc::kCount, ""}}));
  std::vector<std::pair<Value, int64_t>> out;
  out.reserve(rows.size());
  for (const Tuple& row : rows) {
    out.emplace_back(row.at(0), row.at(1).AsInt());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace dd
