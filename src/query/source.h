#ifndef DEEPDIVE_QUERY_SOURCE_H_
#define DEEPDIVE_QUERY_SOURCE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "storage/table.h"
#include "storage/tuple.h"

namespace dd {

/// A signed multiset of tuples; the unit of change in incremental
/// maintenance. Positive counts are insertions, negative deletions.
/// Transparent hash/eq let table scans probe by RowRef without
/// materializing a Tuple per row.
using DeltaSet = std::unordered_map<Tuple, int64_t, TupleHash, TupleEq>;

/// Abstract relation view consumed by the join evaluator. A source yields
/// (row, count) pairs; for ordinary tables counts are always 1 (set
/// semantics), for delta views they are signed.
///
/// Rows are handed out as RowRef — a zero-allocation view into columnar
/// table storage or into a delta-map key. The referenced storage is
/// stable for the lifetime of the source's frozen round (tables are not
/// mutated mid-scan, delta-map keys do not move), so the evaluator may
/// retain the refs in join indexes.
class TupleSource {
 public:
  virtual ~TupleSource() = default;

  /// Enumerate every row with its count (count never 0).
  virtual void ForEach(
      const std::function<void(const RowRef&, int64_t)>& fn) const = 0;

  /// Count of a specific tuple (0 if absent).
  virtual int64_t Count(const Tuple& tuple) const = 0;

  /// The Table this source is a plain view of, or nullptr. Non-null
  /// lets the evaluator share hash indexes across joins (the table must
  /// not be mutated while such indexes are alive).
  virtual const Table* backing_table() const { return nullptr; }
};

/// View over a live Table (count 1 per live row).
class TableSource : public TupleSource {
 public:
  explicit TableSource(const Table* table) : table_(table) {}

  void ForEach(const std::function<void(const RowRef&, int64_t)>& fn) const override {
    size_t n = table_->capacity();
    for (size_t i = 0; i < n; ++i) {
      int64_t id = static_cast<int64_t>(i);
      if (table_->is_live(id)) fn(table_->ref(id), 1);
    }
  }

  int64_t Count(const Tuple& tuple) const override {
    return table_->Contains(tuple) ? 1 : 0;
  }

  const Table* backing_table() const override { return table_; }

 private:
  const Table* table_;
};

/// View over a DeltaSet (signed counts).
class DeltaSource : public TupleSource {
 public:
  explicit DeltaSource(const DeltaSet* delta) : delta_(delta) {}

  void ForEach(const std::function<void(const RowRef&, int64_t)>& fn) const override {
    for (const auto& [tuple, count] : *delta_) {
      if (count != 0) fn(RowRef(&tuple), count);
    }
  }

  int64_t Count(const Tuple& tuple) const override {
    auto it = delta_->find(tuple);
    return it == delta_->end() ? 0 : it->second;
  }

 private:
  const DeltaSet* delta_;
};

/// Presence view of "table after applying delta" without mutating the
/// table. Presence (count 1) iff base + delta > 0. Used as the "new
/// state" view during batch incremental maintenance.
class OverlaySource : public TupleSource {
 public:
  OverlaySource(const Table* table, const DeltaSet* delta)
      : table_(table), delta_(delta) {}

  void ForEach(const std::function<void(const RowRef&, int64_t)>& fn) const override {
    size_t n = table_->capacity();
    for (size_t i = 0; i < n; ++i) {
      int64_t id = static_cast<int64_t>(i);
      if (!table_->is_live(id)) continue;
      // A live row has base count 1; present unless the delta drives the
      // total to zero. Probed by ref — no per-row materialization.
      RowRef row = table_->ref(id);
      auto it = delta_->find(row);
      int64_t d = it == delta_->end() ? 0 : it->second;
      if (1 + d > 0) fn(row, 1);
    }
    // Tuples introduced purely by the delta.
    for (const auto& [tuple, count] : *delta_) {
      if (count > 0 && !table_->Contains(tuple)) fn(RowRef(&tuple), 1);
    }
  }

  int64_t Count(const Tuple& tuple) const override { return Present(tuple) ? 1 : 0; }

 private:
  bool Present(const Tuple& t) const {
    int64_t base = table_->Contains(t) ? 1 : 0;
    auto it = delta_->find(t);
    int64_t d = it == delta_->end() ? 0 : it->second;
    return base + d > 0;
  }

  const Table* table_;
  const DeltaSet* delta_;
};

}  // namespace dd

#endif  // DEEPDIVE_QUERY_SOURCE_H_
