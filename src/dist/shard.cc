#include "dist/shard.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "dist/protocol.h"
#include "dist/wire.h"
#include "factor/io.h"
#include "inference/gibbs.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace dd {

namespace {

constexpr char kShardSnapshotKind[] = "dist-shard";

/// The full mutable state of one shard worker. Every field below is
/// either shipped in the assignment or reconstructed bit-identically
/// from the checkpoint, which is what makes respawn deterministic.
struct ShardState {
  AssignMsg assign;
  FactorGraph graph;
  uint32_t graph_crc = 0;
  std::vector<uint32_t> free_set;  ///< owned local ids, the inference sweep set
  std::unique_ptr<GibbsSampler> pos;    ///< learning, evidence clamped
  std::unique_ptr<GibbsSampler> neg;    ///< learning, free
  std::unique_ptr<GibbsSampler> chain;  ///< inference over owned vars

  uint32_t phase = kPhaseLearn;
  uint32_t next = 0;  ///< next epoch (learn) / next round (infer)
  double lr = 0.1;
  uint64_t done_sweeps = 0;

  uint64_t total_sweeps() const {
    return static_cast<uint64_t>(assign.burn_in) + assign.num_samples;
  }
  bool durable() const { return !assign.checkpoint_path.empty(); }
};

std::vector<uint8_t> BoundarySlice(const std::vector<uint8_t>& assignment,
                                   const std::vector<uint32_t>& locals) {
  std::vector<uint8_t> out(locals.size());
  for (size_t i = 0; i < locals.size(); ++i) out[i] = assignment[locals[i]];
  return out;
}

/// The carried result for exchange state.next - 1, reconstructed from
/// state alone — the checkpoint never stores a second copy, so the
/// result a resumed worker re-sends is bitwise the one it would have
/// sent before the crash.
std::string CarriedResult(const ShardState& state) {
  const auto& boundary = state.assign.owned_boundary;
  if (state.phase == kPhaseLearn) {
    EpochResultMsg result;
    result.epoch = state.next - 1;
    result.weights.resize(state.graph.num_weights());
    for (uint32_t w = 0; w < state.graph.num_weights(); ++w) {
      result.weights[w] = state.graph.weight_value(w);
    }
    result.boundary_bits = BoundarySlice(state.pos->assignment(), boundary);
    result.boundary_estimates.resize(boundary.size());
    for (size_t i = 0; i < boundary.size(); ++i) {
      result.boundary_estimates[i] = result.boundary_bits[i] ? 1.0 : 0.0;
    }
    return EncodeEpochResult(result);
  }
  RoundResultMsg result;
  result.round = state.next - 1;
  result.is_final = state.done_sweeps == state.total_sweeps();
  result.boundary_bits = BoundarySlice(state.chain->assignment(), boundary);
  result.boundary_estimates.resize(boundary.size());
  const uint64_t acc = state.chain->num_accumulated();
  const std::vector<uint64_t>& counts = state.chain->true_counts();
  for (size_t i = 0; i < boundary.size(); ++i) {
    result.boundary_estimates[i] =
        acc > 0 ? static_cast<double>(counts[boundary[i]]) / acc
                : (result.boundary_bits[i] ? 1.0 : 0.0);
  }
  if (result.is_final) {
    result.num_accumulated = acc;
    result.owned_marginals.resize(state.assign.num_owned);
    for (size_t v = 0; v < state.assign.num_owned; ++v) {
      result.owned_marginals[v] = static_cast<double>(counts[v]) / acc;
    }
  }
  return EncodeRoundResult(result);
}

Status WriteShardCheckpoint(const ShardState& state) {
  GraphSnapshot snap;
  snap.meta["kind"] = kShardSnapshotKind;
  snap.meta["shard"] = StrFormat("%u", state.assign.shard);
  snap.meta["num_shards"] = StrFormat("%u", state.assign.num_shards);
  snap.meta["graph_crc"] = StrFormat("%u", state.graph_crc);
  snap.meta["learn_seed"] = StrFormat(
      "%llu", static_cast<unsigned long long>(state.assign.learn_seed));
  snap.meta["inference_seed"] = StrFormat(
      "%llu", static_cast<unsigned long long>(state.assign.inference_seed));
  snap.meta["phase"] = StrFormat("%u", state.phase);
  snap.meta["next"] = StrFormat("%u", state.next);
  snap.meta["lr"] = FormatExactDouble(state.lr);
  snap.meta["done_sweeps"] =
      StrFormat("%llu", static_cast<unsigned long long>(state.done_sweeps));
  snap.weights.resize(state.graph.num_weights());
  for (uint32_t w = 0; w < state.graph.num_weights(); ++w) {
    snap.weights[w] = state.graph.weight_value(w);
  }
  if (state.phase == kPhaseLearn) {
    snap.chains = {state.pos->assignment(), state.neg->assignment()};
    snap.rng_states = {state.pos->rng_state(), state.neg->rng_state()};
  } else {
    snap.chains = {state.chain->assignment()};
    snap.rng_states = {state.chain->rng_state()};
    snap.counts = state.chain->true_counts();
    snap.meta["num_accumulated"] = StrFormat(
        "%llu", static_cast<unsigned long long>(state.chain->num_accumulated()));
  }
  return WriteGraphSnapshot(snap, state.assign.checkpoint_path);
}

Result<uint64_t> MetaU64(const GraphSnapshot& snap, const std::string& key) {
  auto it = snap.meta.find(key);
  if (it == snap.meta.end()) {
    return Status::InvalidArgument("shard checkpoint missing meta key " + key);
  }
  return static_cast<uint64_t>(strtoull(it->second.c_str(), nullptr, 10));
}

/// Restore state from the checkpoint file. Any mismatch with the
/// assignment (foreign shard, different subgraph, different seeds) is an
/// error — resuming someone else's chains must fail loudly, not restart
/// silently.
Status RestoreShardCheckpoint(ShardState* state) {
  DD_ASSIGN_OR_RETURN(GraphSnapshot snap,
                      ReadGraphSnapshot(state->assign.checkpoint_path));
  auto kind = snap.meta.find("kind");
  if (kind == snap.meta.end() || kind->second != kShardSnapshotKind) {
    return Status::InvalidArgument("snapshot is not a dist-shard checkpoint: " +
                                   state->assign.checkpoint_path);
  }
  uint64_t value = 0;
  DD_ASSIGN_OR_RETURN(value, MetaU64(snap, "shard"));
  if (value != state->assign.shard) {
    return Status::InvalidArgument(
        StrFormat("checkpoint belongs to shard %llu, this worker is shard %u",
                  static_cast<unsigned long long>(value), state->assign.shard));
  }
  DD_ASSIGN_OR_RETURN(value, MetaU64(snap, "num_shards"));
  if (value != state->assign.num_shards) {
    return Status::InvalidArgument("checkpoint was written under a different "
                                   "shard count");
  }
  DD_ASSIGN_OR_RETURN(value, MetaU64(snap, "graph_crc"));
  if (value != state->graph_crc) {
    return Status::InvalidArgument(
        "checkpoint belongs to a different subgraph (fingerprint mismatch)");
  }
  DD_ASSIGN_OR_RETURN(value, MetaU64(snap, "learn_seed"));
  if (value != state->assign.learn_seed) {
    return Status::InvalidArgument("checkpoint was written with a different "
                                   "learning seed");
  }
  DD_ASSIGN_OR_RETURN(value, MetaU64(snap, "inference_seed"));
  if (value != state->assign.inference_seed) {
    return Status::InvalidArgument("checkpoint was written with a different "
                                   "inference seed");
  }
  if (snap.weights.size() != state->graph.num_weights()) {
    return Status::InvalidArgument(
        StrFormat("shard checkpoint has %zu weights, subgraph has %zu",
                  snap.weights.size(), state->graph.num_weights()));
  }
  DD_ASSIGN_OR_RETURN(value, MetaU64(snap, "phase"));
  if (value != kPhaseLearn && value != kPhaseInfer) {
    return Status::InvalidArgument("shard checkpoint has an unknown phase");
  }
  state->phase = static_cast<uint32_t>(value);
  DD_ASSIGN_OR_RETURN(value, MetaU64(snap, "next"));
  state->next = static_cast<uint32_t>(value);
  auto lr = snap.meta.find("lr");
  if (lr == snap.meta.end()) {
    return Status::InvalidArgument("shard checkpoint missing lr");
  }
  DD_ASSIGN_OR_RETURN(state->lr, ParseExactDouble(lr->second));
  DD_ASSIGN_OR_RETURN(state->done_sweeps, MetaU64(snap, "done_sweeps"));

  for (uint32_t w = 0; w < state->graph.num_weights(); ++w) {
    state->graph.set_weight_value(w, snap.weights[w]);
  }
  if (state->phase == kPhaseLearn) {
    if (snap.chains.size() != 2 || snap.rng_states.size() != 2) {
      return Status::InvalidArgument(
          "learn-phase shard checkpoint must carry two chains");
    }
    DD_RETURN_IF_ERROR(
        state->pos->RestoreState(snap.chains[0], {}, 0, snap.rng_states[0]));
    DD_RETURN_IF_ERROR(
        state->neg->RestoreState(snap.chains[1], {}, 0, snap.rng_states[1]));
  } else {
    if (snap.chains.size() != 1 || snap.rng_states.size() != 1) {
      return Status::InvalidArgument(
          "infer-phase shard checkpoint must carry one chain");
    }
    uint64_t acc = 0;
    DD_ASSIGN_OR_RETURN(acc, MetaU64(snap, "num_accumulated"));
    DD_RETURN_IF_ERROR(state->chain->RestoreState(snap.chains[0], snap.counts,
                                                  acc, snap.rng_states[0]));
  }
  return Status::OK();
}

/// One learning exchange: install the averaged weights and ghost pins,
/// run the epoch's sweeps on both chains, and take the same
/// contrastive-divergence step Learner::Learn takes (identical
/// arithmetic and iteration order — the one-shard differential test
/// holds the two bit-for-bit equal).
Status RunLearnEpoch(ShardState* state, const EpochStartMsg& start) {
  FactorGraph& graph = state->graph;
  const size_t nw = graph.num_weights();
  const size_t nf = graph.num_factors();
  if (start.weights.size() != nw) {
    return Status::InvalidArgument(
        StrFormat("epoch start carries %zu weights, subgraph has %zu",
                  start.weights.size(), nw));
  }
  const size_t num_ghosts = graph.num_variables() - state->assign.num_owned;
  if (start.pins.size() != num_ghosts) {
    return Status::InvalidArgument(
        StrFormat("epoch start carries %zu ghost pins, shard has %zu",
                  start.pins.size(), num_ghosts));
  }
  for (uint32_t w = 0; w < nw; ++w) {
    graph.set_weight_value(w, start.weights[w]);
  }
  // Ghost replicas are evidence in the subgraph, so the positive chain
  // never resamples them — poking the exchanged values pins them for
  // the whole epoch. The negative chain deliberately leaves ghosts
  // free: it estimates the unconditioned model term locally.
  std::vector<uint8_t>* pos_assignment = state->pos->mutable_assignment();
  for (size_t g = 0; g < num_ghosts; ++g) {
    (*pos_assignment)[state->assign.num_owned + g] = start.pins[g] ? 1 : 0;
  }

  for (uint32_t s = 0; s < state->assign.sweeps_per_epoch; ++s) {
    state->pos->Sweep();
    state->neg->Sweep();
  }
  std::vector<double> gradient(nw, 0.0);
  const uint8_t* pos = state->pos->assignment().data();
  const uint8_t* neg = state->neg->assignment().data();
  for (uint32_t f = 0; f < nf; ++f) {
    // Replicated cut factors (first literal is a ghost) belong to
    // another shard's gradient domain; counting them here would count
    // them once per replica across the cluster.
    size_t arity = 0;
    const Literal* lits = graph.factor_literals(f, &arity);
    if (arity > 0 && lits[0].var >= state->assign.num_owned) continue;
    const uint32_t w = graph.factor_weight(f);
    if (graph.weight(w).is_fixed) continue;
    const double h_pos = graph.EvalFactor(f, pos);
    const double h_neg = graph.EvalFactor(f, neg);
    if (h_pos != h_neg) gradient[w] += h_pos - h_neg;
  }
  // The coordinator averages the shards' updated replicas (model
  // averaging), which would shrink the effective gradient to 1/N of the
  // cluster-wide sum — each factor contributes to exactly one shard.
  // Scaling the local gradient by N makes the averaged update apply the
  // full summed gradient (and the L2 term, identical on every replica,
  // exactly once). N = 1 multiplies by 1.0, which is bit-exact, so the
  // single-shard run still matches Learner::Learn to the last bit.
  const double gradient_scale = static_cast<double>(state->assign.num_shards);
  for (uint32_t w = 0; w < nw; ++w) {
    if (graph.weight(w).is_fixed) continue;
    const double value = graph.weight_value(w);
    const double g = gradient_scale * gradient[w] - state->assign.l2 * value;
    const double updated = value + state->lr * g;
    if (!std::isfinite(g) || !std::isfinite(updated)) {
      return Status::InvalidArgument(StrFormat(
          "shard %u learning diverged at epoch %u: weight %u ('%s') became "
          "non-finite (value=%g, gradient=%g, lr=%g)",
          state->assign.shard, start.epoch, w,
          graph.weight(w).description.c_str(), updated, g, state->lr));
    }
    graph.set_weight_value(w, updated);
  }
  state->lr *= state->assign.decay;
  DD_COUNTER_ADD("dd.dist.shard_epochs", 1);
  return Status::OK();
}

/// One inference exchange: pin ghosts, install weights, run this round's
/// slice of the burn-in + sampling schedule. The sweep/accumulate
/// sequence is exactly IncrementalInference's sampling materialization,
/// cut at exchange boundaries that do not perturb it.
Status RunInferRound(ShardState* state, const RoundStartMsg& start) {
  FactorGraph& graph = state->graph;
  if (start.weights.size() != graph.num_weights()) {
    return Status::InvalidArgument(
        StrFormat("round start carries %zu weights, subgraph has %zu",
                  start.weights.size(), graph.num_weights()));
  }
  const size_t num_ghosts = graph.num_variables() - state->assign.num_owned;
  if (start.pins.size() != num_ghosts) {
    return Status::InvalidArgument(
        StrFormat("round start carries %zu ghost pins, shard has %zu",
                  start.pins.size(), num_ghosts));
  }
  for (uint32_t w = 0; w < graph.num_weights(); ++w) {
    graph.set_weight_value(w, start.weights[w]);
  }
  std::vector<uint8_t>* assignment = state->chain->mutable_assignment();
  for (size_t g = 0; g < num_ghosts; ++g) {
    (*assignment)[state->assign.num_owned + g] = start.pins[g] ? 1 : 0;
  }
  const uint64_t total = state->total_sweeps();
  uint64_t budget = state->assign.sweeps_per_exchange;
  while (budget > 0 && state->done_sweeps < total) {
    state->chain->Sweep();
    if (state->done_sweeps >= static_cast<uint64_t>(state->assign.burn_in)) {
      state->chain->Accumulate();
    }
    ++state->done_sweeps;
    --budget;
  }
  DD_COUNTER_ADD("dd.dist.shard_rounds", 1);
  return Status::OK();
}

Status RunShardWorkerImpl(const ShardWorkerOptions& options) {
  Rng retry_rng(0xd157ULL * (options.shard + 1));
  auto deadline = [&options]() {
    return Deadline::AfterMillis(options.io_deadline_ms);
  };

  DD_ASSIGN_OR_RETURN(
      WireConn conn, DialRetry(options.endpoint, deadline(), &retry_rng));
  HelloMsg hello;
  hello.shard = options.shard;
  DD_RETURN_IF_ERROR(SendFrameRetry(&conn, kMsgHello, EncodeHello(hello),
                                    deadline(), &retry_rng));

  DD_ASSIGN_OR_RETURN(Frame frame,
                      RecvFrameRetry(&conn, deadline(), &retry_rng));
  if (frame.type != kMsgAssign) {
    return Status::Internal(
        StrFormat("shard %u expected kMsgAssign, got frame type %u",
                  options.shard, frame.type));
  }
  ShardState state;
  DD_ASSIGN_OR_RETURN(state.assign, DecodeAssign(frame.payload));
  if (state.assign.shard != options.shard) {
    return Status::Internal(
        StrFormat("shard %u received an assignment for shard %u",
                  options.shard, state.assign.shard));
  }
  DD_ASSIGN_OR_RETURN(GraphSnapshot graph_snap,
                      DecodeGraphSnapshot(state.assign.graph_snapshot));
  if (!graph_snap.has_graph) {
    return Status::InvalidArgument("shard assignment carries no graph");
  }
  state.graph = std::move(graph_snap.graph);
  DD_RETURN_IF_ERROR(state.graph.Finalize());
  state.graph_crc = GraphFingerprint(state.graph);
  state.lr = state.assign.learning_rate;

  const uint64_t seed_mix = ShardSeedMix(state.assign.shard);
  GibbsOptions pos_opts;
  pos_opts.seed = state.assign.learn_seed + seed_mix;
  pos_opts.clamp_evidence = true;
  state.pos = std::make_unique<GibbsSampler>(&state.graph, pos_opts);
  GibbsOptions neg_opts;
  neg_opts.seed = (state.assign.learn_seed + seed_mix) ^ 0x5bd1e995;
  neg_opts.clamp_evidence = false;
  state.neg = std::make_unique<GibbsSampler>(&state.graph, neg_opts);
  state.free_set.resize(state.assign.num_owned);
  for (size_t v = 0; v < state.free_set.size(); ++v) {
    state.free_set[v] = static_cast<uint32_t>(v);
  }
  GibbsOptions chain_opts;
  chain_opts.seed = state.assign.inference_seed + seed_mix;
  chain_opts.clamp_evidence = false;
  chain_opts.free_set = &state.free_set;
  state.chain = std::make_unique<GibbsSampler>(&state.graph, chain_opts);

  if (state.durable() && FileExists(state.assign.checkpoint_path)) {
    DD_RETURN_IF_ERROR(RestoreShardCheckpoint(&state));
    if (state.phase == kPhaseInfer) {
      DD_RETURN_IF_ERROR(state.pos->Init());  // unused past learning
      DD_RETURN_IF_ERROR(state.neg->Init());
    }
  } else {
    DD_RETURN_IF_ERROR(state.pos->Init());
    DD_RETURN_IF_ERROR(state.neg->Init());
  }

  ReadyMsg ready;
  ready.phase = state.phase;
  ready.next = state.next;
  if (state.next > 0) {
    ready.has_result = true;
    ready.result = CarriedResult(state);
  }
  DD_RETURN_IF_ERROR(SendFrameRetry(&conn, kMsgReady, EncodeReady(ready),
                                    deadline(), &retry_rng));

  for (;;) {
    DD_ASSIGN_OR_RETURN(frame, RecvFrameRetry(&conn, deadline(), &retry_rng));
    switch (frame.type) {
      case kMsgFinish:
        return Status::OK();
      case kMsgEpochStart: {
        if (state.phase != kPhaseLearn) {
          return Status::Internal("epoch start received during inference");
        }
        EpochStartMsg start;
        DD_ASSIGN_OR_RETURN(start, DecodeEpochStart(frame.payload));
        if (start.epoch != state.next) {
          return Status::Internal(
              StrFormat("shard %u is at epoch %u but coordinator started %u",
                        state.assign.shard, state.next, start.epoch));
        }
        DD_RETURN_IF_ERROR(RunLearnEpoch(&state, start));
        Status injected;
        DD_FAILPOINT(failpoints::kDistBarrier, &injected);
        DD_RETURN_IF_ERROR(injected);
        ++state.next;
        if (state.durable()) DD_RETURN_IF_ERROR(WriteShardCheckpoint(state));
        DD_RETURN_IF_ERROR(SendFrameRetry(&conn, kMsgEpochResult,
                                          CarriedResult(state), deadline(),
                                          &retry_rng));
        break;
      }
      case kMsgRoundStart: {
        RoundStartMsg start;
        DD_ASSIGN_OR_RETURN(start, DecodeRoundStart(frame.payload));
        if (state.phase == kPhaseLearn) {
          if (state.next != state.assign.epochs || start.round != 0) {
            return Status::Internal(StrFormat(
                "shard %u got round %u start at learning epoch %u",
                state.assign.shard, start.round, state.next));
          }
          // Learning is complete; open the inference phase with a fresh
          // chain (deterministic from the inference seed).
          state.phase = kPhaseInfer;
          state.next = 0;
          state.done_sweeps = 0;
          DD_RETURN_IF_ERROR(state.chain->Init());
        }
        if (start.round != state.next) {
          return Status::Internal(
              StrFormat("shard %u is at round %u but coordinator started %u",
                        state.assign.shard, state.next, start.round));
        }
        DD_RETURN_IF_ERROR(RunInferRound(&state, start));
        Status injected;
        DD_FAILPOINT(failpoints::kDistBarrier, &injected);
        DD_RETURN_IF_ERROR(injected);
        ++state.next;
        if (state.durable()) DD_RETURN_IF_ERROR(WriteShardCheckpoint(state));
        DD_RETURN_IF_ERROR(SendFrameRetry(&conn, kMsgRoundResult,
                                          CarriedResult(state), deadline(),
                                          &retry_rng));
        break;
      }
      default:
        return Status::Internal(
            StrFormat("shard %u received unexpected frame type %u",
                      state.assign.shard, frame.type));
    }
  }
}

}  // namespace

Status RunShardWorker(const ShardWorkerOptions& options) {
  return RunShardWorkerImpl(options);
}

}  // namespace dd
