#include "dist/wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/string_util.h"

namespace dd {

namespace {

constexpr size_t kFrameHeaderBytes = 16;  // magic + type + payload_len

void PutRaw(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(StrFormat("fcntl(O_NONBLOCK): %s", strerror(errno)));
  }
  return Status::OK();
}

/// Poll fd for `events` until the deadline; kDeadlineExceeded on timeout.
Status PollFd(int fd, short events, const Deadline& deadline,
              const char* stage) {
  for (;;) {
    DD_RETURN_IF_ERROR(deadline.Check(stage));
    struct pollfd pfd = {fd, events, 0};
    const double remaining = deadline.remaining_millis();
    const int timeout =
        remaining > 100.0 ? 100 : (remaining < 1.0 ? 1 : static_cast<int>(remaining));
    const int rc = poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("poll: %s", strerror(errno)));
    }
    if (rc > 0) return Status::OK();
  }
}

/// Split "tcp:host:port" / "unix:/path". Fills exactly one of the pair.
Status ParseEndpoint(const std::string& endpoint, std::string* tcp_host,
                     int* tcp_port, std::string* unix_path) {
  if (endpoint.rfind("unix:", 0) == 0) {
    *unix_path = endpoint.substr(5);
    if (unix_path->empty()) {
      return Status::InvalidArgument("empty unix socket path: " + endpoint);
    }
    if (unix_path->size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + endpoint);
    }
    return Status::OK();
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string rest = endpoint.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("tcp endpoint needs host:port: " + endpoint);
    }
    *tcp_host = rest.substr(0, colon);
    char* end = nullptr;
    const long port = strtol(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return Status::InvalidArgument("bad tcp port in endpoint: " + endpoint);
    }
    *tcp_port = static_cast<int>(port);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "endpoint must start with tcp: or unix:, got " + endpoint);
}

}  // namespace

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  memcpy(buf, &v, 4);
  PutRaw(out, buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  memcpy(buf, &v, 8);
  PutRaw(out, buf, 8);
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

void PutBytes(std::string* out, std::string_view bytes) {
  PutU64(out, bytes.size());
  PutRaw(out, bytes.data(), bytes.size());
}

Status WireCursor::Take(size_t n, const char** p) {
  if (data_.size() - pos_ < n) {
    return Status::Corruption(
        StrFormat("wire payload truncated at offset %zu (need %zu bytes, "
                  "have %zu)",
                  pos_, n, data_.size() - pos_));
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status WireCursor::ReadU32(uint32_t* v) {
  const char* p = nullptr;
  DD_RETURN_IF_ERROR(Take(4, &p));
  memcpy(v, p, 4);
  return Status::OK();
}

Status WireCursor::ReadU64(uint64_t* v) {
  const char* p = nullptr;
  DD_RETURN_IF_ERROR(Take(8, &p));
  memcpy(v, p, 8);
  return Status::OK();
}

Status WireCursor::ReadDouble(double* v) {
  uint64_t bits = 0;
  DD_RETURN_IF_ERROR(ReadU64(&bits));
  memcpy(v, &bits, 8);
  return Status::OK();
}

Status WireCursor::ReadBytes(std::string* out) {
  uint64_t n = 0;
  DD_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kWireMaxPayload) {
    return Status::Corruption(
        StrFormat("wire byte field claims %llu bytes (cap %llu)",
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(kWireMaxPayload)));
  }
  const char* p = nullptr;
  DD_RETURN_IF_ERROR(Take(static_cast<size_t>(n), &p));
  out->assign(p, static_cast<size_t>(n));
  return Status::OK();
}

Status WireCursor::ExpectEnd() const {
  if (pos_ != data_.size()) {
    return Status::Corruption(
        StrFormat("wire payload has %zu trailing bytes", data_.size() - pos_));
  }
  return Status::OK();
}

WireConn::WireConn(WireConn&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

WireConn& WireConn::operator=(WireConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

WireConn::~WireConn() { Close(); }

void WireConn::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<WireConn> WireConn::Dial(const std::string& endpoint,
                                const Deadline& deadline) {
  Status injected;
  DD_FAILPOINT(failpoints::kDistConnect, &injected);
  DD_RETURN_IF_ERROR(injected);

  std::string host, unix_path;
  int port = 0;
  DD_RETURN_IF_ERROR(ParseEndpoint(endpoint, &host, &port, &unix_path));

  int fd = -1;
  sockaddr_storage addr;
  socklen_t addr_len = 0;
  memset(&addr, 0, sizeof(addr));
  if (!unix_path.empty()) {
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    auto* sun = reinterpret_cast<sockaddr_un*>(&addr);
    sun->sun_family = AF_UNIX;
    strncpy(sun->sun_path, unix_path.c_str(), sizeof(sun->sun_path) - 1);
    addr_len = sizeof(sockaddr_un);
  } else {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    auto* sin = reinterpret_cast<sockaddr_in*>(&addr);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
      if (fd >= 0) close(fd);
      return Status::InvalidArgument("bad IPv4 host in endpoint: " + endpoint);
    }
    addr_len = sizeof(sockaddr_in);
  }
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", strerror(errno)));
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) != 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      st = PollFd(fd, POLLOUT, deadline, "dial");
      if (st.ok()) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
        if (err != 0) {
          st = Status::Unavailable(StrFormat("connect %s: %s", endpoint.c_str(),
                                             strerror(err)));
        }
      }
    } else {
      st = Status::Unavailable(
          StrFormat("connect %s: %s", endpoint.c_str(), strerror(errno)));
    }
    if (!st.ok()) {
      close(fd);
      return st;
    }
  }
  return WireConn(fd);
}

Status WireConn::WriteAll(const char* buf, size_t n, size_t* written,
                          const Deadline& deadline) {
  *written = 0;
  while (*written < n) {
    const ssize_t rc = send(fd_, buf + *written, n - *written, MSG_NOSIGNAL);
    if (rc > 0) {
      *written += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      DD_RETURN_IF_ERROR(PollFd(fd_, POLLOUT, deadline, "wire send"));
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return Status::Unavailable(StrFormat("send: %s", strerror(errno)));
  }
  return Status::OK();
}

Status WireConn::ReadAll(char* buf, size_t n, size_t* got,
                         const Deadline& deadline) {
  *got = 0;
  while (*got < n) {
    const ssize_t rc = recv(fd_, buf + *got, n - *got, 0);
    if (rc > 0) {
      *got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      return Status::Unavailable("connection closed by peer");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DD_RETURN_IF_ERROR(PollFd(fd_, POLLIN, deadline, "wire recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(StrFormat("recv: %s", strerror(errno)));
  }
  return Status::OK();
}

Status WireConn::SendFrame(uint32_t type, std::string_view payload,
                           const Deadline& deadline) {
  Status injected;
  DD_FAILPOINT(failpoints::kDistSend, &injected);
  DD_RETURN_IF_ERROR(injected);
  if (fd_ < 0) return Status::Internal("SendFrame on a closed connection");
  if (payload.size() > kWireMaxPayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %zu bytes exceeds cap", payload.size()));
  }
  std::string wire;
  wire.reserve(kFrameHeaderBytes + payload.size() + 4);
  PutU32(&wire, kWireMagic);
  PutU32(&wire, type);
  PutU64(&wire, payload.size());
  wire.append(payload.data(), payload.size());
  // CRC over type + payload_len + payload (everything after the magic).
  const uint32_t crc = Crc32c(wire.data() + 4, wire.size() - 4);
  PutU32(&wire, crc);

  size_t written = 0;
  Status st = WriteAll(wire.data(), wire.size(), &written, deadline);
  if (!st.ok() && written > 0 && st.code() != StatusCode::kDeadlineExceeded) {
    // Part of the frame is on the wire: the stream is desynchronized and
    // retrying in place would corrupt it. Only a reconnect can recover.
    return Status::Internal("wire stream desynchronized mid-send: " +
                            st.ToString());
  }
  return st;
}

Result<Frame> WireConn::RecvFrame(const Deadline& deadline) {
  Status injected;
  DD_FAILPOINT(failpoints::kDistRecv, &injected);
  DD_RETURN_IF_ERROR(injected);
  if (fd_ < 0) return Status::Internal("RecvFrame on a closed connection");

  char header[kFrameHeaderBytes];
  size_t got = 0;
  Status st = ReadAll(header, sizeof(header), &got, deadline);
  if (!st.ok()) {
    if (got > 0 && st.code() == StatusCode::kUnavailable) {
      return Status::Internal("wire stream desynchronized mid-frame: " +
                              st.ToString());
    }
    return st;
  }
  uint32_t magic = 0, type = 0;
  uint64_t payload_len = 0;
  memcpy(&magic, header, 4);
  memcpy(&type, header + 4, 4);
  memcpy(&payload_len, header + 8, 8);
  if (magic != kWireMagic) {
    return Status::Corruption(
        StrFormat("bad frame magic 0x%08x (want 0x%08x)", magic, kWireMagic));
  }
  if (payload_len > kWireMaxPayload) {
    return Status::Corruption(
        StrFormat("frame claims %llu payload bytes (cap %llu)",
                  static_cast<unsigned long long>(payload_len),
                  static_cast<unsigned long long>(kWireMaxPayload)));
  }
  Frame frame;
  frame.type = type;
  frame.payload.resize(static_cast<size_t>(payload_len));
  if (payload_len > 0) {
    st = ReadAll(frame.payload.data(), frame.payload.size(), &got, deadline);
    if (!st.ok()) {
      if (st.code() == StatusCode::kUnavailable) {
        return Status::Internal("wire stream desynchronized mid-frame: " +
                                st.ToString());
      }
      return st;
    }
  }
  char crc_buf[4];
  st = ReadAll(crc_buf, 4, &got, deadline);
  if (!st.ok()) {
    if (st.code() == StatusCode::kUnavailable) {
      return Status::Internal("wire stream desynchronized mid-frame: " +
                              st.ToString());
    }
    return st;
  }
  uint32_t wire_crc = 0;
  memcpy(&wire_crc, crc_buf, 4);
  uint32_t crc = Crc32c(header + 4, sizeof(header) - 4);
  crc = Crc32cExtend(crc, frame.payload.data(), frame.payload.size());
  if (crc != wire_crc) {
    return Status::Corruption(
        StrFormat("bad frame CRC: computed 0x%08x, wire carries 0x%08x "
                  "(type %u, %llu payload bytes)",
                  crc, wire_crc, type,
                  static_cast<unsigned long long>(payload_len)));
  }
  return frame;
}

WireListener::WireListener(WireListener&& other) noexcept
    : fd_(other.fd_),
      endpoint_(std::move(other.endpoint_)),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

WireListener& WireListener::operator=(WireListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

WireListener::~WireListener() { Close(); }

void WireListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

void WireListener::CloseInChild() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  unix_path_.clear();
}

Result<WireListener> WireListener::Listen(const std::string& endpoint) {
  std::string host, unix_path;
  int port = 0;
  DD_RETURN_IF_ERROR(ParseEndpoint(endpoint, &host, &port, &unix_path));

  WireListener listener;
  if (!unix_path.empty()) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError(StrFormat("socket: %s", strerror(errno)));
    sockaddr_un sun;
    memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    strncpy(sun.sun_path, unix_path.c_str(), sizeof(sun.sun_path) - 1);
    unlink(unix_path.c_str());  // stale socket from a previous run
    if (bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) != 0) {
      const Status st =
          Status::IoError(StrFormat("bind %s: %s", endpoint.c_str(), strerror(errno)));
      close(fd);
      return st;
    }
    listener.fd_ = fd;
    listener.endpoint_ = endpoint;
    listener.unix_path_ = unix_path;
  } else {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError(StrFormat("socket: %s", strerror(errno)));
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sin;
    memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
      close(fd);
      return Status::InvalidArgument("bad IPv4 host in endpoint: " + endpoint);
    }
    if (bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
      const Status st =
          Status::IoError(StrFormat("bind %s: %s", endpoint.c_str(), strerror(errno)));
      close(fd);
      return st;
    }
    socklen_t len = sizeof(sin);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) != 0) {
      const Status st = Status::IoError(StrFormat("getsockname: %s", strerror(errno)));
      close(fd);
      return st;
    }
    listener.fd_ = fd;
    listener.endpoint_ = StrFormat("tcp:%s:%d", host.c_str(),
                                   static_cast<int>(ntohs(sin.sin_port)));
  }
  DD_RETURN_IF_ERROR(SetNonBlocking(listener.fd_));
  if (listen(listener.fd_, 64) != 0) {
    const Status st = Status::IoError(StrFormat("listen: %s", strerror(errno)));
    listener.Close();
    return st;
  }
  return listener;
}

Result<WireConn> WireListener::Accept(const Deadline& deadline) {
  if (fd_ < 0) return Status::Internal("Accept on a closed listener");
  for (;;) {
    const int conn_fd = accept(fd_, nullptr, nullptr);
    if (conn_fd >= 0) {
      const Status st = SetNonBlocking(conn_fd);
      if (!st.ok()) {
        close(conn_fd);
        return st;
      }
      return WireConn(conn_fd);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      DD_RETURN_IF_ERROR(PollFd(fd_, POLLIN, deadline, "accept"));
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Status::IoError(StrFormat("accept: %s", strerror(errno)));
  }
}

bool WireRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoError;
}

namespace {

RetryOptions WireRetryOptions() {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff_ms = 5.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 100.0;
  options.should_retry = WireRetryable;
  return options;
}

}  // namespace

Status SendFrameRetry(WireConn* conn, uint32_t type, std::string_view payload,
                      const Deadline& deadline, Rng* rng) {
  return RetryWithBackoff(WireRetryOptions(), rng, [&]() {
    return conn->SendFrame(type, payload, deadline);
  });
}

Result<Frame> RecvFrameRetry(WireConn* conn, const Deadline& deadline,
                             Rng* rng) {
  Frame frame;
  DD_RETURN_IF_ERROR(RetryWithBackoff(WireRetryOptions(), rng, [&]() -> Status {
    DD_ASSIGN_OR_RETURN(frame, conn->RecvFrame(deadline));
    return Status::OK();
  }));
  return frame;
}

Result<WireConn> DialRetry(const std::string& endpoint,
                           const Deadline& deadline, Rng* rng) {
  RetryOptions options = WireRetryOptions();
  options.max_attempts = 8;
  WireConn conn;
  DD_RETURN_IF_ERROR(RetryWithBackoff(options, rng, [&]() -> Status {
    DD_ASSIGN_OR_RETURN(conn, WireConn::Dial(endpoint, deadline));
    return Status::OK();
  }));
  return conn;
}

}  // namespace dd
