#ifndef DEEPDIVE_DIST_PARTITION_H_
#define DEEPDIVE_DIST_PARTITION_H_

#include <cstdint>
#include <vector>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

/// One boundary (cut) variable: a variable appearing in at least one
/// cut factor. `readers` lists every non-owner shard holding a ghost
/// replica of it, ascending.
struct BoundaryVar {
  uint32_t var = 0;
  uint32_t owner = 0;
  std::vector<uint32_t> readers;
};

struct PartitionOptions {
  int num_shards = 2;
  uint64_t seed = 0x9e3779b9;
  /// Greedy refinement passes over the variables after the seeded random
  /// initial partition. Every accepted move strictly decreases the cut,
  /// so the final cut is <= the random baseline by construction.
  int refine_passes = 4;
  /// A shard may grow to ceil(nv / shards) * (1 + balance_slack)
  /// variables during refinement (and never shrink to zero).
  double balance_slack = 0.10;
};

/// A deterministic partition of a finalized factor graph's bipartite
/// variable/factor graph. Every variable is owned by exactly one shard;
/// every factor lives on the shard owning its first literal's variable
/// (the DimmWitted convention the NUMA learner also uses), so factor
/// ownership is a pure function of variable ownership.
struct GraphPartition {
  int num_shards = 1;
  std::vector<uint32_t> var_shard;     ///< size num_variables
  std::vector<uint32_t> factor_shard;  ///< size num_factors
  /// Per shard, the globally ascending ids it owns / hosts.
  std::vector<std::vector<uint32_t>> shard_vars;
  std::vector<std::vector<uint32_t>> shard_factors;
  /// Per shard, the ascending global ids of variables it hosts as ghost
  /// replicas: every variable of a cut factor the shard holds (owned or
  /// replicated) that it does not own. Cut factors are replicated onto
  /// each shard owning one of their variables so owners always sample
  /// with complete Gibbs conditionals.
  std::vector<std::vector<uint32_t>> shard_ghosts;
  /// The boundary-variable catalog, ascending by variable id. Complete:
  /// a variable of any cut factor appears here with every non-owner
  /// shard holding that factor as a reader.
  std::vector<BoundaryVar> boundary;
  /// Cut size: number of (factor, literal) edges whose variable lives on
  /// a different shard than the factor.
  uint64_t cut_edges = 0;
  /// Cut of the seeded random initial partition, before refinement —
  /// the baseline the greedy passes improve on.
  uint64_t initial_cut_edges = 0;
};

/// Partition `graph` into `options.num_shards` shards: balanced seeded
/// random assignment, then greedy min-cut refinement accepting only
/// strictly-improving balanced moves. Deterministic for a given
/// (graph, options). Honors the dist.partition failpoint.
Result<GraphPartition> PartitionGraph(const FactorGraph& graph,
                                      const PartitionOptions& options);

/// One shard's materialized subgraph. Local variable ids are the shard's
/// owned variables in ascending global order (so chain RNG consumption
/// matches a single-node run when num_shards == 1), followed by its
/// ghost replicas in ascending global order. Ghosts are marked evidence
/// in the subgraph so clamping chains pin them; their values are poked
/// each exchange. All weights are replicated with their global ids —
/// weight tying spans shards, which is what model averaging averages.
struct ShardGraph {
  FactorGraph graph;
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  size_t num_owned = 0;  ///< local ids [0, num_owned) are owned
  /// Local factor ids [0, num_owned_factors) are owned by this shard
  /// (ascending global order — the gradient domain); the rest are
  /// replicas of cut factors owned elsewhere, present so boundary
  /// variables sample with their full neighborhoods. A replica is
  /// recognizable locally: its first literal is a ghost.
  size_t num_owned_factors = 0;
  std::vector<uint32_t> local_to_global;
  /// Local ids (ascending) of owned variables some other shard reads —
  /// the values this shard publishes each exchange.
  std::vector<uint32_t> owned_boundary;
};

Result<ShardGraph> BuildShardGraph(const FactorGraph& graph,
                                   const GraphPartition& partition,
                                   uint32_t shard);

}  // namespace dd

#endif  // DEEPDIVE_DIST_PARTITION_H_
