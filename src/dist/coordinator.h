#ifndef DEEPDIVE_DIST_COORDINATOR_H_
#define DEEPDIVE_DIST_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/partition.h"
#include "factor/graph.h"
#include "util/result.h"

namespace dd {

/// How the coordinator launches its shard workers. Both run the same
/// RunShardWorker entry point over the same wire protocol.
enum class DistLaunchMode {
  /// In-process threads. No respawn on failure (a dead thread took its
  /// address space with it); the worker's own Status is preferred in the
  /// error report. TSan-safe — workers share no mutable state with the
  /// coordinator except the sockets.
  kThreads,
  /// fork()ed child processes, one per shard. A worker that dies from a
  /// transient fault (socket error, crash, deadline) is respawned up to
  /// max_shard_restarts times and resumes from its shard checkpoint.
  kForkedProcesses,
};

/// Configuration for one distributed learning + inference run. The
/// learning block mirrors LearnOptions and the inference block mirrors
/// the single-node sampling schedule so that a num_shards == 1 run is
/// bit-identical to Learner::Learn + GibbsSampler marginals.
struct DistributedOptions {
  int num_shards = 2;
  DistLaunchMode launch = DistLaunchMode::kThreads;
  /// "tcp:127.0.0.1:0" (free port) or "unix:/path".
  std::string endpoint = "tcp:127.0.0.1:0";
  PartitionOptions partition;

  // Learning schedule (mirrors LearnOptions).
  int epochs = 200;
  double learning_rate = 0.1;
  double decay = 0.99;
  double l2 = 0.01;
  int sweeps_per_epoch = 1;
  uint64_t learn_seed = 1234;

  // Inference schedule (mirrors the single-node sampling pipeline).
  int burn_in = 300;
  int num_samples = 1000;
  uint64_t inference_seed = 7;
  /// Sweeps each shard runs between boundary-value exchanges. Exchange
  /// frequency trades marginal quality on the cut against wire traffic;
  /// it never perturbs the sweep/accumulate schedule itself.
  int sweeps_per_exchange = 8;

  /// When non-empty, each shard checkpoints <dir>/shard<k>.snap after
  /// every exchange and a respawned worker resumes bit-identically.
  std::string checkpoint_dir;
  /// Per-shard respawn budget (fork mode only).
  int max_shard_restarts = 2;
  double io_deadline_ms = 30000;
  double accept_deadline_ms = 30000;

  /// Fault injection for fork-mode tests: failpoint spec (see
  /// Failpoints::Configure) applied inside shard k's child process right
  /// after fork — first spawn and respawns respectively. The coordinator
  /// process itself is never reconfigured.
  std::map<uint32_t, std::string> shard_failpoints;
  std::map<uint32_t, std::string> respawn_failpoints;
};

struct DistributedResult {
  /// P(v = 1) for every global variable, assembled from the owning
  /// shards' accumulators.
  std::vector<double> marginals;
  /// Final model-averaged weights, one per global weight id.
  std::vector<double> weights;
  /// Samples behind each shard's marginals (identical across shards).
  uint64_t num_accumulated = 0;
  int epochs_run = 0;
  /// Partition quality, copied from the GraphPartition.
  uint64_t cut_edges = 0;
  uint64_t initial_cut_edges = 0;
  size_t boundary_vars = 0;
  /// Total worker respawns the run needed (fork mode).
  int restarts = 0;
};

/// Run distributed learning + inference over `graph` (must be
/// finalized): partition into shards, launch one worker per shard,
/// drive epoch-synchronous exchanges — averaged weights plus boundary
/// values every learning epoch, boundary values every inference round —
/// and assemble the global marginals. On success the graph's weights
/// hold the averaged learned values.
Result<DistributedResult> RunDistributed(FactorGraph* graph,
                                         const DistributedOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_DIST_COORDINATOR_H_
