#include "dist/partition.h"

#include <algorithm>
#include <numeric>

#include "util/failpoint.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace dd {

namespace {

/// Cut contribution of factor f under `var_shard`: the number of its
/// literals living off the shard of its first literal (the owner).
uint64_t FactorCut(const FactorGraph& graph,
                   const std::vector<uint32_t>& var_shard, uint32_t f) {
  size_t n = 0;
  const Literal* lits = graph.factor_literals(f, &n);
  if (n == 0) return 0;
  const uint32_t owner = var_shard[lits[0].var];
  uint64_t cut = 0;
  for (size_t i = 0; i < n; ++i) {
    if (var_shard[lits[i].var] != owner) ++cut;
  }
  return cut;
}

uint64_t TotalCut(const FactorGraph& graph,
                  const std::vector<uint32_t>& var_shard) {
  uint64_t cut = 0;
  for (uint32_t f = 0; f < graph.num_factors(); ++f) {
    cut += FactorCut(graph, var_shard, f);
  }
  return cut;
}

}  // namespace

Result<GraphPartition> PartitionGraph(const FactorGraph& graph,
                                      const PartitionOptions& options) {
  Status injected;
  DD_FAILPOINT(failpoints::kDistPartition, &injected);
  DD_RETURN_IF_ERROR(injected);

  if (!graph.finalized()) {
    return Status::InvalidArgument("PartitionGraph requires a finalized graph");
  }
  const size_t nv = graph.num_variables();
  const size_t nf = graph.num_factors();
  const int shards = options.num_shards;
  if (shards < 1) {
    return Status::InvalidArgument(
        StrFormat("num_shards must be >= 1, got %d", shards));
  }
  if (nv > 0 && static_cast<size_t>(shards) > nv) {
    return Status::InvalidArgument(
        StrFormat("cannot cut %zu variables into %d shards", nv, shards));
  }

  GraphPartition p;
  p.num_shards = shards;
  p.var_shard.assign(nv, 0);

  // Balanced seeded random initial partition: Fisher-Yates shuffle of
  // the variable ids, dealt round-robin. Shard sizes differ by <= 1.
  Rng rng(options.seed);
  std::vector<uint32_t> order(nv);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = nv; i > 1; --i) {
    const size_t j = rng.NextBounded(i);
    std::swap(order[i - 1], order[j]);
  }
  for (size_t i = 0; i < nv; ++i) {
    p.var_shard[order[i]] = static_cast<uint32_t>(i % shards);
  }
  p.initial_cut_edges = TotalCut(graph, p.var_shard);

  // Greedy refinement: visit variables in the shuffled order, move one
  // to whichever shard strictly decreases the cut the most, subject to
  // the balance envelope. Only strict improvements are accepted, so the
  // cut decreases monotonically from the random baseline.
  if (shards > 1 && nv > 0) {
    std::vector<size_t> shard_size(shards, 0);
    for (uint32_t v = 0; v < nv; ++v) ++shard_size[p.var_shard[v]];
    const size_t max_size = static_cast<size_t>(
        static_cast<double>((nv + shards - 1) / shards) *
        (1.0 + options.balance_slack)) + 1;

    // Cut delta of moving v to shard `to`: recompute the contribution of
    // every factor touching v (moves can change a factor's owner when v
    // is its first literal, so per-edge bookkeeping is not enough).
    auto move_delta = [&](uint32_t v, uint32_t to) -> int64_t {
      size_t nfac = 0;
      const uint32_t* facs = graph.var_factors(v, &nfac);
      int64_t before = 0, after = 0;
      for (size_t i = 0; i < nfac; ++i) {
        before += static_cast<int64_t>(FactorCut(graph, p.var_shard, facs[i]));
      }
      const uint32_t from = p.var_shard[v];
      p.var_shard[v] = to;
      for (size_t i = 0; i < nfac; ++i) {
        after += static_cast<int64_t>(FactorCut(graph, p.var_shard, facs[i]));
      }
      p.var_shard[v] = from;
      return after - before;
    };

    for (int pass = 0; pass < options.refine_passes; ++pass) {
      bool moved = false;
      for (uint32_t v : order) {
        const uint32_t from = p.var_shard[v];
        if (shard_size[from] <= 1) continue;  // never empty a shard
        int64_t best_delta = 0;
        int best_to = -1;
        for (int to = 0; to < shards; ++to) {
          if (static_cast<uint32_t>(to) == from) continue;
          if (shard_size[to] + 1 > max_size) continue;
          const int64_t delta = move_delta(v, static_cast<uint32_t>(to));
          if (delta < best_delta) {
            best_delta = delta;
            best_to = to;
          }
        }
        if (best_to >= 0) {
          p.var_shard[v] = static_cast<uint32_t>(best_to);
          --shard_size[from];
          ++shard_size[best_to];
          moved = true;
        }
      }
      if (!moved) break;
    }
  }

  // Factor ownership + the boundary catalog fall out of var_shard.
  p.factor_shard.assign(nf, 0);
  p.shard_vars.assign(shards, {});
  p.shard_factors.assign(shards, {});
  p.shard_ghosts.assign(shards, {});
  for (uint32_t v = 0; v < nv; ++v) {
    p.shard_vars[p.var_shard[v]].push_back(v);
  }
  p.cut_edges = 0;
  // readers[v] = sorted unique shards hosting a ghost replica of v. A
  // cut factor is replicated onto every shard owning one of its
  // variables, so each variable's owner samples it with the factor's
  // contribution present (its Gibbs conditional stays complete); every
  // replica-holding shard therefore needs ghosts of all the factor's
  // variables it does not own.
  std::vector<std::vector<uint32_t>> readers(nv);
  std::vector<uint32_t> incident;
  for (uint32_t f = 0; f < nf; ++f) {
    size_t n = 0;
    const Literal* lits = graph.factor_literals(f, &n);
    const uint32_t owner = n == 0 ? 0 : p.var_shard[lits[0].var];
    p.factor_shard[f] = owner;
    p.shard_factors[owner].push_back(f);
    incident.clear();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t s = p.var_shard[lits[i].var];
      if (s != owner) ++p.cut_edges;
      if (std::find(incident.begin(), incident.end(), s) == incident.end()) {
        incident.push_back(s);
      }
    }
    if (incident.size() <= 1) continue;  // fully internal factor
    for (size_t i = 0; i < n; ++i) {
      const uint32_t v = lits[i].var;
      for (uint32_t s : incident) {
        if (s == p.var_shard[v]) continue;
        auto& r = readers[v];
        if (std::find(r.begin(), r.end(), s) == r.end()) r.push_back(s);
      }
    }
  }
  for (uint32_t v = 0; v < nv; ++v) {
    if (readers[v].empty()) continue;
    std::sort(readers[v].begin(), readers[v].end());
    for (uint32_t s : readers[v]) p.shard_ghosts[s].push_back(v);
    p.boundary.push_back({v, p.var_shard[v], std::move(readers[v])});
  }
  return p;
}

Result<ShardGraph> BuildShardGraph(const FactorGraph& graph,
                                   const GraphPartition& partition,
                                   uint32_t shard) {
  if (shard >= static_cast<uint32_t>(partition.num_shards)) {
    return Status::InvalidArgument(
        StrFormat("shard %u out of range (%d shards)", shard,
                  partition.num_shards));
  }
  ShardGraph sg;
  sg.shard = shard;
  sg.num_shards = static_cast<uint32_t>(partition.num_shards);

  const std::vector<uint32_t>& owned = partition.shard_vars[shard];
  const std::vector<uint32_t>& ghosts = partition.shard_ghosts[shard];
  sg.num_owned = owned.size();
  sg.local_to_global.reserve(owned.size() + ghosts.size());
  std::vector<uint32_t> global_to_local(graph.num_variables(), UINT32_MAX);
  // Owned variables first, ascending global id, so the local scan order
  // (and thus the chains' RNG consumption) matches a single-node run
  // when there is one shard. Ghosts follow, also ascending, marked
  // evidence so clamping chains pin them at the exchanged values.
  for (uint32_t v : owned) {
    global_to_local[v] = static_cast<uint32_t>(sg.local_to_global.size());
    sg.local_to_global.push_back(v);
    sg.graph.AddVariable(graph.is_evidence(v), graph.evidence_value(v));
  }
  for (uint32_t v : ghosts) {
    global_to_local[v] = static_cast<uint32_t>(sg.local_to_global.size());
    sg.local_to_global.push_back(v);
    sg.graph.AddVariable(true, graph.is_evidence(v) && graph.evidence_value(v));
  }
  for (uint32_t w = 0; w < graph.num_weights(); ++w) {
    const Weight& weight = graph.weight(w);
    sg.graph.AddWeight(graph.weight_value(w), weight.is_fixed,
                       weight.description);
  }
  auto add_factor = [&](uint32_t f) -> Status {
    size_t n = 0;
    const Literal* lits = graph.factor_literals(f, &n);
    std::vector<Literal> local(n);
    for (size_t i = 0; i < n; ++i) {
      local[i] = {global_to_local[lits[i].var], lits[i].is_positive};
    }
    return sg.graph.AddFactor(graph.factor_func(f), graph.factor_weight(f),
                              std::move(local));
  };
  // Owned factors first, ascending global id (the identity map when
  // there is one shard) — the shard's gradient domain. Replicas of cut
  // factors owned elsewhere follow, also ascending: they complete the
  // sampling neighborhoods of this shard's boundary variables but are
  // excluded from its gradient (their owner counts them).
  sg.num_owned_factors = partition.shard_factors[shard].size();
  for (uint32_t f : partition.shard_factors[shard]) {
    DD_RETURN_IF_ERROR(add_factor(f));
  }
  for (uint32_t f = 0; f < graph.num_factors(); ++f) {
    if (partition.factor_shard[f] == shard) continue;
    size_t n = 0;
    const Literal* lits = graph.factor_literals(f, &n);
    bool incident = false;
    for (size_t i = 0; i < n && !incident; ++i) {
      incident = partition.var_shard[lits[i].var] == shard;
    }
    if (incident) DD_RETURN_IF_ERROR(add_factor(f));
  }
  DD_RETURN_IF_ERROR(sg.graph.Finalize());

  for (const BoundaryVar& b : partition.boundary) {
    if (b.owner == shard) sg.owned_boundary.push_back(global_to_local[b.var]);
  }
  return sg;
}

}  // namespace dd
