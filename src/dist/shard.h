#ifndef DEEPDIVE_DIST_SHARD_H_
#define DEEPDIVE_DIST_SHARD_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace dd {

/// Bootstrap parameters of one shard worker — everything else (the
/// subgraph, schedules, checkpoint path) arrives over the wire in the
/// kMsgAssign handshake, so a worker process needs only an endpoint and
/// its identity. The coordinator launches workers as threads or forked
/// processes; both run this entry point.
struct ShardWorkerOptions {
  std::string endpoint;
  uint32_t shard = 0;
  /// Per frame-operation deadline; also bounds the initial dial.
  double io_deadline_ms = 30000;
};

/// Run one shard worker to completion: dial the coordinator, receive the
/// subgraph assignment, then serve epoch-synchronous learning exchanges
/// followed by inference rounds until kMsgFinish.
///
/// Durability: when the assignment names a checkpoint path, the worker
/// snapshots its full sampler state (chains, RNG states, replica
/// weights, marginal tallies) after every exchange, *before* sending the
/// result. A respawned worker therefore resumes in one of exactly two
/// positions — about to redo the interrupted exchange, or holding its
/// finished result — and reports both through kMsgReady so the
/// coordinator replays or consumes deterministically; the resumed run is
/// bit-identical to an uninterrupted one. Honors the dist.barrier
/// failpoint at every exchange boundary.
Status RunShardWorker(const ShardWorkerOptions& options);

}  // namespace dd

#endif  // DEEPDIVE_DIST_SHARD_H_
