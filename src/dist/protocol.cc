#include "dist/protocol.h"

#include <cstring>

#include "dist/wire.h"
#include "util/string_util.h"

namespace dd {

namespace {

/// Vectors travel as one length-prefixed byte field holding the raw
/// little-endian element images — bounds-checked by WireCursor, cheap to
/// slice back into typed vectors.
template <typename T>
void PutVec(std::string* out, const std::vector<T>& v) {
  PutBytes(out, std::string_view(reinterpret_cast<const char*>(v.data()),
                                 v.size() * sizeof(T)));
}

template <typename T>
Status ReadVec(WireCursor* cursor, std::vector<T>* out) {
  std::string bytes;
  DD_RETURN_IF_ERROR(cursor->ReadBytes(&bytes));
  if (bytes.size() % sizeof(T) != 0) {
    return Status::Corruption(
        StrFormat("wire vector of %zu bytes is not a multiple of %zu",
                  bytes.size(), sizeof(T)));
  }
  out->resize(bytes.size() / sizeof(T));
  if (!bytes.empty()) memcpy(out->data(), bytes.data(), bytes.size());
  return Status::OK();
}

void PutBool(std::string* out, bool v) { PutU32(out, v ? 1 : 0); }

Status ReadBool(WireCursor* cursor, bool* v) {
  uint32_t raw = 0;
  DD_RETURN_IF_ERROR(cursor->ReadU32(&raw));
  if (raw > 1) {
    return Status::Corruption(StrFormat("wire bool field holds %u", raw));
  }
  *v = raw == 1;
  return Status::OK();
}

}  // namespace

std::string EncodeHello(const HelloMsg& msg) {
  std::string out;
  PutU32(&out, msg.version);
  PutU32(&out, msg.shard);
  return out;
}

Result<HelloMsg> DecodeHello(const std::string& payload) {
  WireCursor cursor(payload);
  HelloMsg msg;
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.version));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.shard));
  DD_RETURN_IF_ERROR(cursor.ExpectEnd());
  if (msg.version != kDistProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("peer speaks dist protocol v%u, this build speaks v%u",
                  msg.version, kDistProtocolVersion));
  }
  return msg;
}

std::string EncodeAssign(const AssignMsg& msg) {
  std::string out;
  PutU32(&out, msg.shard);
  PutU32(&out, msg.num_shards);
  PutU64(&out, msg.num_owned);
  PutVec(&out, msg.local_to_global);
  PutVec(&out, msg.owned_boundary);
  PutU32(&out, msg.epochs);
  PutDouble(&out, msg.learning_rate);
  PutDouble(&out, msg.decay);
  PutDouble(&out, msg.l2);
  PutU32(&out, msg.sweeps_per_epoch);
  PutU64(&out, msg.learn_seed);
  PutU32(&out, msg.burn_in);
  PutU32(&out, msg.num_samples);
  PutU64(&out, msg.inference_seed);
  PutU32(&out, msg.sweeps_per_exchange);
  PutBytes(&out, msg.checkpoint_path);
  PutBytes(&out, msg.graph_snapshot);
  return out;
}

Result<AssignMsg> DecodeAssign(const std::string& payload) {
  WireCursor cursor(payload);
  AssignMsg msg;
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.shard));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.num_shards));
  DD_RETURN_IF_ERROR(cursor.ReadU64(&msg.num_owned));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.local_to_global));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.owned_boundary));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.epochs));
  DD_RETURN_IF_ERROR(cursor.ReadDouble(&msg.learning_rate));
  DD_RETURN_IF_ERROR(cursor.ReadDouble(&msg.decay));
  DD_RETURN_IF_ERROR(cursor.ReadDouble(&msg.l2));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.sweeps_per_epoch));
  DD_RETURN_IF_ERROR(cursor.ReadU64(&msg.learn_seed));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.burn_in));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.num_samples));
  DD_RETURN_IF_ERROR(cursor.ReadU64(&msg.inference_seed));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.sweeps_per_exchange));
  DD_RETURN_IF_ERROR(cursor.ReadBytes(&msg.checkpoint_path));
  DD_RETURN_IF_ERROR(cursor.ReadBytes(&msg.graph_snapshot));
  DD_RETURN_IF_ERROR(cursor.ExpectEnd());
  return msg;
}

std::string EncodeReady(const ReadyMsg& msg) {
  std::string out;
  PutU32(&out, msg.phase);
  PutU32(&out, msg.next);
  PutBool(&out, msg.has_result);
  PutBytes(&out, msg.result);
  return out;
}

Result<ReadyMsg> DecodeReady(const std::string& payload) {
  WireCursor cursor(payload);
  ReadyMsg msg;
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.phase));
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.next));
  DD_RETURN_IF_ERROR(ReadBool(&cursor, &msg.has_result));
  DD_RETURN_IF_ERROR(cursor.ReadBytes(&msg.result));
  DD_RETURN_IF_ERROR(cursor.ExpectEnd());
  return msg;
}

std::string EncodeEpochStart(const EpochStartMsg& msg) {
  std::string out;
  PutU32(&out, msg.epoch);
  PutVec(&out, msg.weights);
  PutVec(&out, msg.pins);
  return out;
}

Result<EpochStartMsg> DecodeEpochStart(const std::string& payload) {
  WireCursor cursor(payload);
  EpochStartMsg msg;
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.epoch));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.weights));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.pins));
  DD_RETURN_IF_ERROR(cursor.ExpectEnd());
  return msg;
}

std::string EncodeEpochResult(const EpochResultMsg& msg) {
  std::string out;
  PutU32(&out, msg.epoch);
  PutVec(&out, msg.weights);
  PutVec(&out, msg.boundary_bits);
  PutVec(&out, msg.boundary_estimates);
  return out;
}

Result<EpochResultMsg> DecodeEpochResult(const std::string& payload) {
  WireCursor cursor(payload);
  EpochResultMsg msg;
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.epoch));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.weights));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.boundary_bits));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.boundary_estimates));
  DD_RETURN_IF_ERROR(cursor.ExpectEnd());
  return msg;
}

std::string EncodeRoundStart(const RoundStartMsg& msg) {
  std::string out;
  PutU32(&out, msg.round);
  PutVec(&out, msg.weights);
  PutVec(&out, msg.pins);
  return out;
}

Result<RoundStartMsg> DecodeRoundStart(const std::string& payload) {
  WireCursor cursor(payload);
  RoundStartMsg msg;
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.round));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.weights));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.pins));
  DD_RETURN_IF_ERROR(cursor.ExpectEnd());
  return msg;
}

std::string EncodeRoundResult(const RoundResultMsg& msg) {
  std::string out;
  PutU32(&out, msg.round);
  PutBool(&out, msg.is_final);
  PutVec(&out, msg.boundary_bits);
  PutVec(&out, msg.boundary_estimates);
  PutVec(&out, msg.owned_marginals);
  PutU64(&out, msg.num_accumulated);
  return out;
}

Result<RoundResultMsg> DecodeRoundResult(const std::string& payload) {
  WireCursor cursor(payload);
  RoundResultMsg msg;
  DD_RETURN_IF_ERROR(cursor.ReadU32(&msg.round));
  DD_RETURN_IF_ERROR(ReadBool(&cursor, &msg.is_final));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.boundary_bits));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.boundary_estimates));
  DD_RETURN_IF_ERROR(ReadVec(&cursor, &msg.owned_marginals));
  DD_RETURN_IF_ERROR(cursor.ReadU64(&msg.num_accumulated));
  DD_RETURN_IF_ERROR(cursor.ExpectEnd());
  return msg;
}

}  // namespace dd
