#include "dist/coordinator.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "core/checkpoint.h"
#include "dist/protocol.h"
#include "dist/shard.h"
#include "dist/wire.h"
#include "factor/io.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace dd {

namespace {

/// Errors that justify respawning a forked worker: transient transport
/// faults, a desynchronized stream (reconnect fixes it), a crashed or
/// hung child. Corruption is deliberately absent — a corrupt frame means
/// a bug or torn data, and retrying would mask it.
bool RespawnWorthy(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kIoError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

struct WorkerHandle {
  uint32_t shard = 0;
  WireConn conn;
  bool connected = false;
  // Thread mode.
  std::thread thread;
  std::shared_ptr<Status> thread_status;
  // Fork mode.
  pid_t pid = -1;
  int restarts = 0;
  // Last kMsgReady, pending until the exchange loop reconciles it.
  ReadyMsg ready;
  bool ready_pending = false;
};

class Coordinator {
 public:
  Coordinator(FactorGraph* graph, const DistributedOptions& options)
      : graph_(graph), options_(options), rng_(0xc00d1ULL) {}

  ~Coordinator() { Teardown(); }

  Result<DistributedResult> Run();

 private:
  Status Validate() const;
  Status Setup();
  Status Spawn(uint32_t shard, bool is_respawn);
  Status AcceptHello();
  Status HandshakeShard(uint32_t shard);
  Status Recover(uint32_t shard, const Status& failure);
  Status ReapChild(WorkerHandle* handle);

  /// Reconcile the shard's pending kMsgReady against exchange
  /// (phase, index). Outputs either the carried result (done) or
  /// clearance to send the start frame.
  Status Reconcile(uint32_t shard, uint32_t phase, uint32_t index,
                   bool* have_result, std::string* result);

  /// Drive exchange `index` of `phase` across every shard: send all
  /// start frames, then collect all results, respawning forked workers
  /// that fail with transient errors. Returns the raw result payloads.
  Result<std::vector<std::string>> RunExchange(
      uint32_t phase, uint32_t index, uint32_t start_type,
      const std::vector<std::string>& start_payloads, uint32_t result_type);

  Status RunLearning();
  Status RunInference(DistributedResult* result);
  Status Finish();
  void Teardown();

  std::vector<uint8_t> PinsFor(uint32_t shard) const;
  void AbsorbBoundary(uint32_t shard, const std::vector<uint8_t>& bits,
                      const std::vector<double>& estimates);

  Deadline IoDeadline() const {
    return Deadline::AfterMillis(options_.io_deadline_ms);
  }

  FactorGraph* graph_;
  DistributedOptions options_;
  Rng rng_;

  GraphPartition partition_;
  /// Per shard: the encoded kMsgAssign payload (reused verbatim on
  /// respawn — the assignment is immutable for the whole run) and the
  /// local-id maps needed to route boundary values and marginals.
  std::vector<std::string> assign_payloads_;
  std::vector<std::vector<uint32_t>> local_to_global_;
  std::vector<std::vector<uint32_t>> owned_boundary_;
  std::vector<size_t> num_owned_;

  WireListener listener_;
  std::vector<WorkerHandle> handles_;

  std::vector<double> avg_weights_;
  /// Current chain bit / running estimate of every global variable that
  /// appears in the boundary catalog (other entries stay at the evidence
  /// default and are never read).
  std::vector<uint8_t> global_bits_;
  std::vector<double> global_estimates_;

  int total_restarts_ = 0;
  bool finished_ = false;
};

Status Coordinator::Validate() const {
  if (graph_ == nullptr || !graph_->finalized()) {
    return Status::InvalidArgument(
        "RunDistributed requires a finalized factor graph");
  }
  if (options_.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (static_cast<size_t>(options_.num_shards) > graph_->num_variables()) {
    return Status::InvalidArgument(
        StrFormat("cannot cut %zu variables into %d shards",
                  graph_->num_variables(), options_.num_shards));
  }
  if (options_.epochs < 0) {
    return Status::InvalidArgument("epochs must be >= 0");
  }
  if (options_.num_samples < 1) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  if (options_.burn_in < 0) {
    return Status::InvalidArgument("burn_in must be >= 0");
  }
  if (options_.sweeps_per_epoch < 1 || options_.sweeps_per_exchange < 1) {
    return Status::InvalidArgument(
        "sweeps_per_epoch and sweeps_per_exchange must be >= 1");
  }
  if (options_.max_shard_restarts < 0) {
    return Status::InvalidArgument("max_shard_restarts must be >= 0");
  }
  return Status::OK();
}

Status Coordinator::Setup() {
  PartitionOptions popts = options_.partition;
  popts.num_shards = options_.num_shards;
  DD_ASSIGN_OR_RETURN(partition_, PartitionGraph(*graph_, popts));

  std::string checkpoint_base;
  if (!options_.checkpoint_dir.empty()) {
    RunDirectory dir(options_.checkpoint_dir);
    DD_RETURN_IF_ERROR(dir.Create());
    // A stale shard checkpoint from an earlier run must not leak into
    // this one: the coordinator's exchange counters start at zero, so a
    // worker resuming from old state would be unresumable anyway.
    DD_RETURN_IF_ERROR(dir.ClearShardSnapshots());
    checkpoint_base = dir.path();
  }

  const uint32_t n = static_cast<uint32_t>(options_.num_shards);
  assign_payloads_.resize(n);
  local_to_global_.resize(n);
  owned_boundary_.resize(n);
  num_owned_.resize(n);
  for (uint32_t s = 0; s < n; ++s) {
    DD_ASSIGN_OR_RETURN(ShardGraph sg, BuildShardGraph(*graph_, partition_, s));
    local_to_global_[s] = sg.local_to_global;
    owned_boundary_[s] = sg.owned_boundary;
    num_owned_[s] = sg.num_owned;

    AssignMsg assign;
    assign.shard = s;
    assign.num_shards = n;
    assign.num_owned = sg.num_owned;
    assign.local_to_global = sg.local_to_global;
    assign.owned_boundary = sg.owned_boundary;
    assign.epochs = static_cast<uint32_t>(options_.epochs);
    assign.learning_rate = options_.learning_rate;
    assign.decay = options_.decay;
    assign.l2 = options_.l2;
    assign.sweeps_per_epoch = static_cast<uint32_t>(options_.sweeps_per_epoch);
    assign.learn_seed = options_.learn_seed;
    assign.burn_in = static_cast<uint32_t>(options_.burn_in);
    assign.num_samples = static_cast<uint32_t>(options_.num_samples);
    assign.inference_seed = options_.inference_seed;
    assign.sweeps_per_exchange =
        static_cast<uint32_t>(options_.sweeps_per_exchange);
    if (!checkpoint_base.empty()) {
      assign.checkpoint_path =
          RunDirectory(checkpoint_base).ShardSnapshotPath(static_cast<int>(s));
    }
    GraphSnapshot snap;
    snap.has_graph = true;
    snap.graph = std::move(sg.graph);
    assign.graph_snapshot = EncodeGraphSnapshot(snap);
    assign_payloads_[s] = EncodeAssign(assign);
  }

  avg_weights_.resize(graph_->num_weights());
  for (uint32_t w = 0; w < graph_->num_weights(); ++w) {
    avg_weights_[w] = graph_->weight_value(w);
  }
  global_bits_.assign(graph_->num_variables(), 0);
  global_estimates_.assign(graph_->num_variables(), 0.0);
  for (uint32_t v = 0; v < graph_->num_variables(); ++v) {
    if (graph_->is_evidence(v) && graph_->evidence_value(v)) {
      global_bits_[v] = 1;
      global_estimates_[v] = 1.0;
    }
  }

  DD_ASSIGN_OR_RETURN(listener_, WireListener::Listen(options_.endpoint));
  handles_.resize(n);
  for (uint32_t s = 0; s < n; ++s) handles_[s].shard = s;
  return Status::OK();
}

Status Coordinator::Spawn(uint32_t shard, bool is_respawn) {
  WorkerHandle& handle = handles_[shard];
  ShardWorkerOptions wo;
  wo.endpoint = listener_.endpoint();
  wo.shard = shard;
  wo.io_deadline_ms = options_.io_deadline_ms;

  if (options_.launch == DistLaunchMode::kThreads) {
    auto status = std::make_shared<Status>();
    handle.thread_status = status;
    handle.thread = std::thread([wo, status] { *status = RunShardWorker(wo); });
    return Status::OK();
  }

  const pid_t pid = fork();
  if (pid < 0) {
    return Status::IoError(StrFormat("fork shard %u: %s", shard,
                                     std::strerror(errno)));
  }
  if (pid == 0) {
    // Child: drop every socket inherited from the coordinator, apply any
    // test-requested fault configuration, run the worker, and _exit
    // without unwinding parent state.
    listener_.CloseInChild();
    for (WorkerHandle& h : handles_) h.conn.Close();
    const auto& specs =
        is_respawn ? options_.respawn_failpoints : options_.shard_failpoints;
    auto it = specs.find(shard);
    if (it != specs.end()) {
      Failpoints::Instance().Reset();
      if (!Failpoints::Instance().Configure(it->second).ok()) _exit(9);
    }
    const Status st = RunShardWorker(wo);
    if (!st.ok()) {
      DD_LOG(Warning) << "shard " << shard << " worker: " << st.ToString();
    }
    _exit(st.ok() ? 0 : 3);
  }
  handle.pid = pid;
  return Status::OK();
}

Status Coordinator::AcceptHello() {
  DD_ASSIGN_OR_RETURN(
      WireConn conn,
      listener_.Accept(Deadline::AfterMillis(options_.accept_deadline_ms)));
  DD_ASSIGN_OR_RETURN(Frame frame, RecvFrameRetry(&conn, IoDeadline(), &rng_));
  if (frame.type != kMsgHello) {
    return Status::Internal(
        StrFormat("expected kMsgHello, got frame type %u", frame.type));
  }
  DD_ASSIGN_OR_RETURN(HelloMsg hello, DecodeHello(frame.payload));
  if (hello.shard >= handles_.size()) {
    return Status::Internal(
        StrFormat("hello from unknown shard %u (run has %zu)", hello.shard,
                  handles_.size()));
  }
  handles_[hello.shard].conn = std::move(conn);
  handles_[hello.shard].connected = true;
  return Status::OK();
}

Status Coordinator::HandshakeShard(uint32_t shard) {
  WorkerHandle& handle = handles_[shard];
  DD_RETURN_IF_ERROR(SendFrameRetry(&handle.conn, kMsgAssign,
                                    assign_payloads_[shard], IoDeadline(),
                                    &rng_));
  DD_ASSIGN_OR_RETURN(Frame frame,
                      RecvFrameRetry(&handle.conn, IoDeadline(), &rng_));
  if (frame.type != kMsgReady) {
    return Status::Internal(
        StrFormat("shard %u: expected kMsgReady, got frame type %u", shard,
                  frame.type));
  }
  DD_ASSIGN_OR_RETURN(handle.ready, DecodeReady(frame.payload));
  handle.ready_pending = true;
  return Status::OK();
}

Status Coordinator::ReapChild(WorkerHandle* handle) {
  if (handle->pid < 0) return Status::OK();
  int wstatus = 0;
  const pid_t r = waitpid(handle->pid, &wstatus, 0);
  if (r < 0 && errno != ECHILD) {
    return Status::IoError(StrFormat("waitpid shard %u: %s", handle->shard,
                                     std::strerror(errno)));
  }
  handle->pid = -1;
  return Status::OK();
}

Status Coordinator::Recover(uint32_t shard, const Status& failure) {
  WorkerHandle& handle = handles_[shard];
  Status cause = failure;
  for (;;) {
    handle.conn.Close();
    handle.connected = false;
    handle.ready_pending = false;

    if (options_.launch == DistLaunchMode::kThreads) {
      // A thread worker shares our address space; there is nothing safe
      // to respawn. When our own error only names the broken socket,
      // surface the worker's status instead — it names the root cause.
      // But when we hold a substantive error (corruption, protocol
      // violation), keep it: closing the conn just made the worker see
      // a hangup, and its kUnavailable would mask the real failure.
      if (handle.thread.joinable()) handle.thread.join();
      const bool conn_error = cause.code() == StatusCode::kUnavailable ||
                              cause.code() == StatusCode::kIoError;
      if (conn_error && handle.thread_status && !handle.thread_status->ok()) {
        return *handle.thread_status;
      }
      return cause;
    }
    if (!RespawnWorthy(cause)) return cause;
    if (handle.restarts >= options_.max_shard_restarts) {
      return Status(
          cause.code(),
          StrFormat("shard %u exhausted its %d restarts; last error: %s",
                    shard, options_.max_shard_restarts,
                    cause.message().c_str()));
    }
    DD_RETURN_IF_ERROR(ReapChild(&handle));
    ++handle.restarts;
    ++total_restarts_;
    DD_COUNTER_ADD("dd.dist.respawns", 1);
    DD_LOG(Warning) << "respawning shard " << shard << " (restart "
                    << handle.restarts << "): " << cause.ToString();
    DD_RETURN_IF_ERROR(Spawn(shard, /*is_respawn=*/true));
    Status st = Status::OK();
    while (st.ok() && !handle.connected) st = AcceptHello();
    if (st.ok()) st = HandshakeShard(shard);
    if (st.ok()) return st;
    // The respawned worker failed before completing its handshake (it
    // may itself have been fault-injected); burn another restart on it.
    cause = st;
  }
}

Status Coordinator::Reconcile(uint32_t shard, uint32_t phase, uint32_t index,
                              bool* have_result, std::string* result) {
  WorkerHandle& handle = handles_[shard];
  *have_result = false;
  if (!handle.ready_pending) return Status::OK();
  const ReadyMsg& ready = handle.ready;
  handle.ready_pending = false;
  // The worker checkpoints before sending, so it reports exactly one of:
  // "about to run this exchange" or "holding this exchange's result".
  if (ready.phase == phase && ready.next == index) return Status::OK();
  if (ready.phase == phase && ready.next == index + 1 && ready.has_result) {
    *have_result = true;
    *result = ready.result;
    return Status::OK();
  }
  // A worker that finished learning but never started round 0 still
  // reports (learn, epochs); its carried learning result was already
  // consumed, so just start the round.
  if (phase == kPhaseInfer && index == 0 && ready.phase == kPhaseLearn &&
      ready.next == static_cast<uint32_t>(options_.epochs)) {
    return Status::OK();
  }
  return Status::Internal(StrFormat(
      "shard %u is unresumable: it reports phase %u exchange %u, the "
      "coordinator is at phase %u exchange %u",
      shard, ready.phase, ready.next, phase, index));
}

Result<std::vector<std::string>> Coordinator::RunExchange(
    uint32_t phase, uint32_t index, uint32_t start_type,
    const std::vector<std::string>& start_payloads, uint32_t result_type) {
  const size_t n = handles_.size();
  std::vector<std::string> results(n);
  // 0 = start not yet sent, 1 = sent (result outstanding), 2 = done.
  std::vector<int> state(n, 0);

  auto try_start = [&](uint32_t s) -> Status {
    bool have = false;
    DD_RETURN_IF_ERROR(Reconcile(s, phase, index, &have, &results[s]));
    if (have) {
      state[s] = 2;
      return Status::OK();
    }
    DD_RETURN_IF_ERROR(SendFrameRetry(&handles_[s].conn, start_type,
                                      start_payloads[s], IoDeadline(), &rng_));
    state[s] = 1;
    return Status::OK();
  };
  auto try_recv = [&](uint32_t s) -> Status {
    DD_ASSIGN_OR_RETURN(Frame frame,
                        RecvFrameRetry(&handles_[s].conn, IoDeadline(), &rng_));
    if (frame.type != result_type) {
      return Status::Internal(
          StrFormat("shard %u: expected frame type %u, got %u", s, result_type,
                    frame.type));
    }
    results[s] = std::move(frame.payload);
    state[s] = 2;
    return Status::OK();
  };
  // Recover + redo one shard's exchange until it lands or is hopeless.
  // max_shard_restarts bounds the loop: every iteration either succeeds
  // or consumes a restart (Recover fails once the budget is gone).
  auto drive = [&](uint32_t s) -> Status {
    for (;;) {
      Status st = Status::OK();
      if (state[s] == 0) st = try_start(s);
      if (st.ok() && state[s] == 1) st = try_recv(s);
      if (st.ok()) return st;
      state[s] = 0;
      DD_RETURN_IF_ERROR(Recover(s, st));
    }
  };

  // Send everything first so all shards compute concurrently, then
  // collect — the epoch barrier is the collection pass itself.
  for (uint32_t s = 0; s < n; ++s) {
    if (state[s] != 0) continue;
    Status st = try_start(s);
    if (!st.ok()) {
      state[s] = 0;
      DD_RETURN_IF_ERROR(Recover(s, st));
    }
  }
  for (uint32_t s = 0; s < n; ++s) {
    DD_RETURN_IF_ERROR(drive(s));
  }
  return results;
}

std::vector<uint8_t> Coordinator::PinsFor(uint32_t shard) const {
  const std::vector<uint32_t>& ghosts = partition_.shard_ghosts[shard];
  std::vector<uint8_t> pins(ghosts.size());
  for (size_t i = 0; i < ghosts.size(); ++i) pins[i] = global_bits_[ghosts[i]];
  return pins;
}

void Coordinator::AbsorbBoundary(uint32_t shard,
                                 const std::vector<uint8_t>& bits,
                                 const std::vector<double>& estimates) {
  const std::vector<uint32_t>& boundary = owned_boundary_[shard];
  for (size_t i = 0; i < boundary.size(); ++i) {
    const uint32_t global = local_to_global_[shard][boundary[i]];
    global_bits_[global] = bits[i];
    global_estimates_[global] = estimates[i];
  }
}

Status Coordinator::RunLearning() {
  const size_t n = handles_.size();
  const size_t nw = graph_->num_weights();
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<std::string> starts(n);
    for (uint32_t s = 0; s < n; ++s) {
      EpochStartMsg start;
      start.epoch = static_cast<uint32_t>(epoch);
      start.weights = avg_weights_;
      start.pins = PinsFor(s);
      starts[s] = EncodeEpochStart(start);
    }
    DD_ASSIGN_OR_RETURN(
        std::vector<std::string> payloads,
        RunExchange(kPhaseLearn, static_cast<uint32_t>(epoch), kMsgEpochStart,
                    starts, kMsgEpochResult));

    std::vector<double> sum(nw, 0.0);
    for (uint32_t s = 0; s < n; ++s) {
      EpochResultMsg result;
      DD_ASSIGN_OR_RETURN(result, DecodeEpochResult(payloads[s]));
      if (result.epoch != static_cast<uint32_t>(epoch)) {
        return Status::Internal(
            StrFormat("shard %u answered epoch %u during epoch %d", s,
                      result.epoch, epoch));
      }
      if (result.weights.size() != nw ||
          result.boundary_bits.size() != owned_boundary_[s].size() ||
          result.boundary_estimates.size() != owned_boundary_[s].size()) {
        return Status::Internal(
            StrFormat("shard %u epoch result has mismatched sizes", s));
      }
      for (size_t w = 0; w < nw; ++w) sum[w] += result.weights[w];
      AbsorbBoundary(s, result.boundary_bits, result.boundary_estimates);
    }
    // Model averaging (Zinkevich-style parameter mixing). Fixed weights
    // are identical replicas; keep them bit-exact instead of dividing a
    // possibly-rounded sum.
    for (size_t w = 0; w < nw; ++w) {
      if (graph_->weight(static_cast<uint32_t>(w)).is_fixed) continue;
      avg_weights_[w] = sum[w] / static_cast<double>(n);
    }
    DD_COUNTER_ADD("dd.dist.epochs", 1);
  }
  return Status::OK();
}

Status Coordinator::RunInference(DistributedResult* result) {
  const size_t n = handles_.size();
  const uint64_t total = static_cast<uint64_t>(options_.burn_in) +
                         static_cast<uint64_t>(options_.num_samples);
  const uint64_t spe = static_cast<uint64_t>(options_.sweeps_per_exchange);
  const uint32_t rounds = static_cast<uint32_t>((total + spe - 1) / spe);

  result->marginals.assign(graph_->num_variables(), 0.0);
  result->num_accumulated = 0;

  for (uint32_t round = 0; round < rounds; ++round) {
    std::vector<std::string> starts(n);
    for (uint32_t s = 0; s < n; ++s) {
      RoundStartMsg start;
      start.round = round;
      start.weights = avg_weights_;
      start.pins = PinsFor(s);
      starts[s] = EncodeRoundStart(start);
    }
    DD_ASSIGN_OR_RETURN(std::vector<std::string> payloads,
                        RunExchange(kPhaseInfer, round, kMsgRoundStart, starts,
                                    kMsgRoundResult));
    const bool expect_final = round + 1 == rounds;
    for (uint32_t s = 0; s < n; ++s) {
      RoundResultMsg rr;
      DD_ASSIGN_OR_RETURN(rr, DecodeRoundResult(payloads[s]));
      if (rr.round != round) {
        return Status::Internal(StrFormat(
            "shard %u answered round %u during round %u", s, rr.round, round));
      }
      if (rr.is_final != expect_final) {
        return Status::Internal(StrFormat(
            "shard %u finished at round %u, the schedule says %u rounds", s,
            round, rounds));
      }
      if (rr.boundary_bits.size() != owned_boundary_[s].size() ||
          rr.boundary_estimates.size() != owned_boundary_[s].size()) {
        return Status::Internal(
            StrFormat("shard %u round result has mismatched sizes", s));
      }
      AbsorbBoundary(s, rr.boundary_bits, rr.boundary_estimates);
      if (expect_final) {
        if (rr.owned_marginals.size() != num_owned_[s]) {
          return Status::Internal(
              StrFormat("shard %u reported %zu marginals for %zu owned "
                        "variables",
                        s, rr.owned_marginals.size(), num_owned_[s]));
        }
        if (s == 0) {
          result->num_accumulated = rr.num_accumulated;
        } else if (rr.num_accumulated != result->num_accumulated) {
          return Status::Internal(StrFormat(
              "shard %u accumulated %llu samples, shard 0 accumulated %llu",
              s, static_cast<unsigned long long>(rr.num_accumulated),
              static_cast<unsigned long long>(result->num_accumulated)));
        }
        for (size_t v = 0; v < num_owned_[s]; ++v) {
          result->marginals[local_to_global_[s][v]] = rr.owned_marginals[v];
        }
      }
    }
    DD_COUNTER_ADD("dd.dist.rounds", 1);
  }
  return Status::OK();
}

Status Coordinator::Finish() {
  Status first;
  for (WorkerHandle& handle : handles_) {
    if (!handle.connected) continue;
    Status st =
        SendFrameRetry(&handle.conn, kMsgFinish, "", IoDeadline(), &rng_);
    if (!st.ok() && first.ok()) first = st;
    // Closing the socket unblocks a worker whose finish frame was lost.
    handle.conn.Close();
    handle.connected = false;
  }
  for (WorkerHandle& handle : handles_) {
    if (handle.thread.joinable()) handle.thread.join();
    if (handle.thread_status && !handle.thread_status->ok() && first.ok()) {
      first = *handle.thread_status;
    }
    Status st = ReapChild(&handle);
    if (!st.ok() && first.ok()) first = st;
  }
  finished_ = true;
  return first;
}

void Coordinator::Teardown() {
  if (finished_) return;
  // Error path: drop the sockets (workers unblock with kUnavailable and
  // exit on their own), then join/reap so no thread or zombie outlives
  // the run.
  for (WorkerHandle& handle : handles_) {
    handle.conn.Close();
    handle.connected = false;
  }
  listener_.Close();
  for (WorkerHandle& handle : handles_) {
    if (handle.thread.joinable()) handle.thread.join();
    if (handle.pid >= 0) {
      int wstatus = 0;
      waitpid(handle.pid, &wstatus, 0);
      handle.pid = -1;
    }
  }
  finished_ = true;
}

Result<DistributedResult> Coordinator::Run() {
  DD_TRACE_SPAN_VAR(span, "dist.run");
  DD_RETURN_IF_ERROR(Validate());
  DD_RETURN_IF_ERROR(Setup());

  for (uint32_t s = 0; s < handles_.size(); ++s) {
    DD_RETURN_IF_ERROR(Spawn(s, /*is_respawn=*/false));
  }
  size_t connected = 0;
  while (connected < handles_.size()) {
    DD_RETURN_IF_ERROR(AcceptHello());
    connected = 0;
    for (const WorkerHandle& h : handles_) connected += h.connected ? 1 : 0;
  }
  for (uint32_t s = 0; s < handles_.size(); ++s) {
    Status st = HandshakeShard(s);
    if (!st.ok()) {
      DD_RETURN_IF_ERROR(Recover(s, st));
    }
  }

  DistributedResult result;
  DD_RETURN_IF_ERROR(RunLearning());
  DD_RETURN_IF_ERROR(RunInference(&result));
  DD_RETURN_IF_ERROR(Finish());

  for (uint32_t w = 0; w < graph_->num_weights(); ++w) {
    graph_->set_weight_value(w, avg_weights_[w]);
  }
  result.weights = avg_weights_;
  result.epochs_run = options_.epochs;
  result.cut_edges = partition_.cut_edges;
  result.initial_cut_edges = partition_.initial_cut_edges;
  result.boundary_vars = partition_.boundary.size();
  result.restarts = total_restarts_;
  span.Attr("num_shards", static_cast<double>(options_.num_shards));
  span.Attr("restarts", static_cast<double>(total_restarts_));
  return result;
}

}  // namespace

Result<DistributedResult> RunDistributed(FactorGraph* graph,
                                         const DistributedOptions& options) {
  Coordinator coordinator(graph, options);
  return coordinator.Run();
}

}  // namespace dd
