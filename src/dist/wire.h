#ifndef DEEPDIVE_DIST_WIRE_H_
#define DEEPDIVE_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/deadline.h"
#include "util/result.h"
#include "util/rng.h"

namespace dd {

/// ---- Framed wire protocol ---------------------------------------------
///
/// Every message is one length-prefixed, CRC'd frame:
///
///   magic       u32   "DDW1" (0x31574444 little-endian on the wire)
///   type        u32   application message type
///   payload_len u64
///   payload     payload_len bytes
///   crc32c      u32   over type + payload_len + payload
///
/// All integers little-endian. Reads are bounds-checked; a bad magic,
/// an oversized length, or a CRC mismatch is Status::Corruption — the
/// stream is declared poisoned and is never retried. Transient faults
/// (connection refused/reset before any frame byte moved) surface as
/// kUnavailable/kIoError, which the *Retry helpers below back off and
/// retry; a failure after part of a frame moved is kInternal (the
/// stream is desynchronized — only reconnecting can fix it).
///
/// Endpoints: "tcp:host:port" (IPv4) or "unix:/path". Sockets are
/// non-blocking; every blocking point polls against the caller's
/// Deadline.

inline constexpr uint32_t kWireMagic = 0x31574444;  // "DDW1"
inline constexpr uint64_t kWireMaxPayload = 1ull << 30;

struct Frame {
  uint32_t type = 0;
  std::string payload;
};

/// ---- Payload encoding helpers -----------------------------------------

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutDouble(std::string* out, double v);  ///< bit-exact (u64 image)
void PutBytes(std::string* out, std::string_view bytes);  ///< u64 len + bytes

/// Bounds-checked sequential decoder over a payload. Every overrun is
/// Status::Corruption with the offset, never undefined behavior.
class WireCursor {
 public:
  explicit WireCursor(std::string_view data) : data_(data) {}

  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadDouble(double* v);
  Status ReadBytes(std::string* out);

  size_t remaining() const { return data_.size() - pos_; }
  Status ExpectEnd() const;

 private:
  Status Take(size_t n, const char** p);
  std::string_view data_;
  size_t pos_ = 0;
};

/// ---- Connections ------------------------------------------------------

class WireConn {
 public:
  WireConn() = default;
  WireConn(WireConn&& other) noexcept;
  WireConn& operator=(WireConn&& other) noexcept;
  WireConn(const WireConn&) = delete;
  WireConn& operator=(const WireConn&) = delete;
  ~WireConn();

  /// Connect to `endpoint`, polling against `deadline`. A refused or
  /// unreachable peer is kUnavailable (retryable); honors dist.connect.
  static Result<WireConn> Dial(const std::string& endpoint,
                               const Deadline& deadline);

  bool ok() const { return fd_ >= 0; }
  void Close();

  /// Write one frame. Honors the dist.send failpoint (evaluated before
  /// any byte moves, so an injected fault leaves the stream clean and
  /// the frame can be retried in place).
  Status SendFrame(uint32_t type, std::string_view payload,
                   const Deadline& deadline);

  /// Read one frame. Honors dist.recv (same pre-I/O evaluation). A peer
  /// that closed cleanly between frames is kUnavailable.
  Result<Frame> RecvFrame(const Deadline& deadline);

 private:
  friend class WireListener;
  explicit WireConn(int fd) : fd_(fd) {}
  Status WriteAll(const char* buf, size_t n, size_t* written,
                  const Deadline& deadline);
  /// Reads exactly n bytes; *got reports progress on error (0 means the
  /// stream is still at a frame boundary).
  Status ReadAll(char* buf, size_t n, size_t* got, const Deadline& deadline);
  int fd_ = -1;
};

class WireListener {
 public:
  WireListener() = default;
  WireListener(WireListener&& other) noexcept;
  WireListener& operator=(WireListener&& other) noexcept;
  WireListener(const WireListener&) = delete;
  WireListener& operator=(const WireListener&) = delete;
  ~WireListener();

  /// Bind + listen. "tcp:127.0.0.1:0" picks a free port; endpoint()
  /// reports the resolved address to hand to workers.
  static Result<WireListener> Listen(const std::string& endpoint);

  const std::string& endpoint() const { return endpoint_; }
  bool ok() const { return fd_ >= 0; }
  void Close();

  /// Close the inherited listening socket in a forked child *without*
  /// unlinking a unix socket path — the parent still serves it.
  void CloseInChild();

  /// Accept one connection; kDeadlineExceeded when none arrives in time
  /// (the coordinator polls this with short deadlines so it can check
  /// for dead workers between waits).
  Result<WireConn> Accept(const Deadline& deadline);

 private:
  int fd_ = -1;
  std::string endpoint_;
  std::string unix_path_;  ///< unlinked on Close for unix sockets
};

/// ---- Retry wrappers ---------------------------------------------------
///
/// Retry transient frame-boundary faults (kUnavailable, kIoError) with
/// jittered exponential backoff; everything else — Corruption above all
/// — is permanent and returned immediately.

bool WireRetryable(const Status& status);

Status SendFrameRetry(WireConn* conn, uint32_t type, std::string_view payload,
                      const Deadline& deadline, Rng* rng);
Result<Frame> RecvFrameRetry(WireConn* conn, const Deadline& deadline,
                             Rng* rng);
/// Dial with backoff — covers the worker racing the coordinator's bind.
Result<WireConn> DialRetry(const std::string& endpoint,
                           const Deadline& deadline, Rng* rng);

}  // namespace dd

#endif  // DEEPDIVE_DIST_WIRE_H_
