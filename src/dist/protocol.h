#ifndef DEEPDIVE_DIST_PROTOCOL_H_
#define DEEPDIVE_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dist/partition.h"
#include "factor/graph.h"
#include "util/result.h"

namespace dd {

/// Application message types carried in wire frames, in handshake order.
/// The protocol is strictly epoch-synchronous: the coordinator sends one
/// *Start per shard per exchange, every shard answers with one *Result,
/// and the coordinator averages before the next exchange begins.
enum DistMsgType : uint32_t {
  kMsgHello = 1,        ///< shard -> coord: version + shard id
  kMsgAssign = 2,       ///< coord -> shard: subgraph + run configuration
  kMsgReady = 3,        ///< shard -> coord: resume position (+ carried result)
  kMsgEpochStart = 4,   ///< coord -> shard: averaged weights + ghost pins
  kMsgEpochResult = 5,  ///< shard -> coord: replica weights + boundary values
  kMsgRoundStart = 6,   ///< coord -> shard: final weights + ghost pins
  kMsgRoundResult = 7,  ///< shard -> coord: boundary values (+ final marginals)
  kMsgFinish = 8,       ///< coord -> shard: run complete, shut down
};

inline constexpr uint32_t kDistProtocolVersion = 1;

/// Phases a shard reports in kMsgReady.
enum DistPhase : uint32_t {
  kPhaseLearn = 0,
  kPhaseInfer = 1,
};

struct HelloMsg {
  uint32_t version = kDistProtocolVersion;
  uint32_t shard = 0;
};

/// Everything a shard worker needs to run: its subgraph (shipped as an
/// encoded graph snapshot so the existing container validation covers
/// the transfer) plus the learning/inference schedule. The schedule is
/// part of the assignment so a respawned worker rebuilds bit-identical
/// state from its checkpoint + this message alone.
struct AssignMsg {
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  uint64_t num_owned = 0;
  std::vector<uint32_t> local_to_global;
  std::vector<uint32_t> owned_boundary;  ///< local ids, ascending
  // Learning schedule (mirrors LearnOptions).
  uint32_t epochs = 0;
  double learning_rate = 0.1;
  double decay = 0.99;
  double l2 = 0.01;
  uint32_t sweeps_per_epoch = 1;
  uint64_t learn_seed = 1234;
  // Inference schedule.
  uint32_t burn_in = 300;
  uint32_t num_samples = 1000;
  uint64_t inference_seed = 7;
  uint32_t sweeps_per_exchange = 8;
  std::string checkpoint_path;  ///< empty = not durable
  std::string graph_snapshot;   ///< EncodeGraphSnapshot bytes (subgraph)
};

struct ReadyMsg {
  uint32_t phase = kPhaseLearn;
  uint32_t next = 0;  ///< next epoch (learn) / next round (infer) to run
  /// When next > 0, the result of exchange next-1 rides along so a
  /// coordinator whose recv raced the crash still gets it exactly once.
  bool has_result = false;
  std::string result;  ///< encoded EpochResultMsg / RoundResultMsg
};

struct EpochStartMsg {
  uint32_t epoch = 0;
  std::vector<double> weights;  ///< averaged, one per global weight id
  std::vector<uint8_t> pins;    ///< ghost values, shard's ghost order
};

struct EpochResultMsg {
  uint32_t epoch = 0;
  std::vector<double> weights;  ///< shard replica after its local update
  std::vector<uint8_t> boundary_bits;       ///< pos-chain values, owned_boundary order
  std::vector<double> boundary_estimates;   ///< running estimates, same order
};

struct RoundStartMsg {
  uint32_t round = 0;
  std::vector<double> weights;
  std::vector<uint8_t> pins;
};

struct RoundResultMsg {
  uint32_t round = 0;
  bool is_final = false;
  std::vector<uint8_t> boundary_bits;
  std::vector<double> boundary_estimates;
  /// Populated on the final round: empirical marginals of the shard's
  /// owned variables (local order) and the sample count behind them.
  std::vector<double> owned_marginals;
  uint64_t num_accumulated = 0;
};

std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(const std::string& payload);

std::string EncodeAssign(const AssignMsg& msg);
Result<AssignMsg> DecodeAssign(const std::string& payload);

std::string EncodeReady(const ReadyMsg& msg);
Result<ReadyMsg> DecodeReady(const std::string& payload);

std::string EncodeEpochStart(const EpochStartMsg& msg);
Result<EpochStartMsg> DecodeEpochStart(const std::string& payload);

std::string EncodeEpochResult(const EpochResultMsg& msg);
Result<EpochResultMsg> DecodeEpochResult(const std::string& payload);

std::string EncodeRoundStart(const RoundStartMsg& msg);
Result<RoundStartMsg> DecodeRoundStart(const std::string& payload);

std::string EncodeRoundResult(const RoundResultMsg& msg);
Result<RoundResultMsg> DecodeRoundResult(const std::string& payload);

/// Seed offset decorrelating shard chains; shard 0 keeps the base seed
/// so a one-shard run is bit-identical to the single-node engines.
inline uint64_t ShardSeedMix(uint32_t shard) {
  return 0x9e3779b97f4a7c15ULL * shard;
}

}  // namespace dd

#endif  // DEEPDIVE_DIST_PROTOCOL_H_
