#include "ddlog/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace dd {

const char* TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kString: return "string";
    case TokKind::kTrue: return "true";
    case TokKind::kFalse: return "false";
    case TokKind::kNull: return "NULL";
    case TokKind::kLParen: return "(";
    case TokKind::kRParen: return ")";
    case TokKind::kComma: return ",";
    case TokKind::kDot: return ".";
    case TokKind::kColon: return ":";
    case TokKind::kColonDash: return ":-";
    case TokKind::kBang: return "!";
    case TokKind::kQuestion: return "?";
    case TokKind::kEq: return "=";
    case TokKind::kNeq: return "!=";
    case TokKind::kLt: return "<";
    case TokKind::kLe: return "<=";
    case TokKind::kGt: return ">";
    case TokKind::kGe: return ">=";
    case TokKind::kImplies: return "=>";
    case TokKind::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Tok>> LexDdlog(std::string_view source) {
  std::vector<Tok> tokens;
  int line = 1, column = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto make = [&](TokKind kind) {
    Tok t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  };
  auto error = [&](const std::string& msg) {
    return Status::ParseError(StrFormat("line %d col %d: %s", line, column,
                                        msg.c_str()));
  };
  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '#' || (c == '/' && i + 1 < n && source[i + 1] == '/')) {
      while (i < n && source[i] != '\n') advance(1);
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Tok t = make(TokKind::kIdent);
      size_t begin = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        advance(1);
      }
      t.text = std::string(source.substr(begin, i - begin));
      if (t.text == "true") t.kind = TokKind::kTrue;
      else if (t.text == "false") t.kind = TokKind::kFalse;
      else if (t.text == "NULL" || t.text == "null") t.kind = TokKind::kNull;
      tokens.push_back(std::move(t));
      continue;
    }
    // Numbers. The grammar has no arithmetic, so '-' directly before a
    // digit is always a sign.
    bool starts_number =
        std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])));
    if (starts_number) {
      Tok t = make(TokKind::kNumber);
      size_t begin = i;
      if (source[i] == '-') advance(1);
      bool has_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       (source[i] == '.' && !has_dot && i + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(source[i + 1]))))) {
        if (source[i] == '.') has_dot = true;
        advance(1);
      }
      t.text = std::string(source.substr(begin, i - begin));
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.is_integer = !has_dot;
      tokens.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      Tok t = make(TokKind::kString);
      advance(1);
      std::string payload;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n) {
          char esc = source[i + 1];
          payload += esc == 'n' ? '\n' : esc == 't' ? '\t' : esc;
          advance(2);
          continue;
        }
        if (source[i] == '"') {
          advance(1);
          closed = true;
          break;
        }
        if (source[i] == '\n') break;
        payload += source[i];
        advance(1);
      }
      if (!closed) return error("unterminated string literal");
      t.text = std::move(payload);
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && source[i + 1] == b;
    };
    if (two(':', '-')) { tokens.push_back(make(TokKind::kColonDash)); advance(2); continue; }
    if (two('!', '=')) { tokens.push_back(make(TokKind::kNeq)); advance(2); continue; }
    if (two('<', '=')) { tokens.push_back(make(TokKind::kLe)); advance(2); continue; }
    if (two('>', '=')) { tokens.push_back(make(TokKind::kGe)); advance(2); continue; }
    if (two('=', '>')) { tokens.push_back(make(TokKind::kImplies)); advance(2); continue; }
    TokKind kind;
    switch (c) {
      case '(': kind = TokKind::kLParen; break;
      case ')': kind = TokKind::kRParen; break;
      case ',': kind = TokKind::kComma; break;
      case '.': kind = TokKind::kDot; break;
      case ':': kind = TokKind::kColon; break;
      case '!': kind = TokKind::kBang; break;
      case '?': kind = TokKind::kQuestion; break;
      case '=': kind = TokKind::kEq; break;
      case '<': kind = TokKind::kLt; break;
      case '>': kind = TokKind::kGt; break;
      default:
        return error(StrFormat("unexpected character '%c'", c));
    }
    tokens.push_back(make(kind));
    advance(1);
  }
  tokens.push_back(make(TokKind::kEof));
  return tokens;
}

}  // namespace dd
