#ifndef DEEPDIVE_DDLOG_PARSER_H_
#define DEEPDIVE_DDLOG_PARSER_H_

#include <string_view>

#include "ddlog/ast.h"
#include "util/result.h"

namespace dd {

/// Parse a DDlog source into a program. Grammar (statements end in '.'):
///
///   decl     := NAME ['?'] '(' col (',' col)* ')'
///   col      := NAME ':' ('int' | 'text' | 'double' | 'bool')
///   rule     := atom [ '=>' atom ] ':-' bodyitem (',' bodyitem)*
///               [ 'weight' '=' weightspec ]
///   bodyitem := ['!'] atom | term CMP term
///   atom     := NAME '(' term (',' term)* ')'
///   term     := VAR | NUMBER | STRING | true | false | NULL
///   weightspec := NUMBER | '?' | NAME '(' VAR (',' VAR)* ')' | VAR (',' VAR)*
///
/// Variables are lowercase-initial identifiers; relation names may be any
/// identifier (conventionally capitalized). Comments: '#' or '//'.
Result<DdlogProgram> ParseDdlog(std::string_view source);

/// Validate a parsed program: every referenced relation is declared with
/// matching arity, constants match column types, rules are safe, feature
/// and correlation heads are query relations, weight-clause variables are
/// bound by the body, and evidence relations (`X_Ev`) match their target
/// relation's schema plus one bool column.
Status AnalyzeProgram(const DdlogProgram& program);

}  // namespace dd

#endif  // DEEPDIVE_DDLOG_PARSER_H_
