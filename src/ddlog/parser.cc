#include "ddlog/parser.h"

#include <cctype>
#include <set>

#include "ddlog/lexer.h"
#include "util/string_util.h"

namespace dd {

namespace {

std::string WeightSpecToString(const WeightSpec& spec) {
  switch (spec.kind) {
    case WeightSpec::Kind::kFixed:
      return StrFormat("%g", spec.fixed_value);
    case WeightSpec::Kind::kLearnable:
      return "?";
    case WeightSpec::Kind::kUdf:
      return spec.udf_name + "(" + Join(spec.args, ", ") + ")";
    case WeightSpec::Kind::kVariables:
      return Join(spec.args, ", ");
  }
  return "?";
}

}  // namespace

std::string DdlogRule::ToString() const {
  std::string out = rule.head.ToString();
  if (kind == RuleKind::kCorrelation) out += " => " + implied_head.ToString();
  out += " :- ";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += rule.body[i].ToString();
  }
  for (const Condition& c : rule.conditions) out += ", " + c.ToString();
  if (weight.has_value()) out += " weight = " + WeightSpecToString(*weight);
  out += ".";
  return out;
}

std::string DdlogProgram::ToString() const {
  std::string out;
  for (const RelationDecl& decl : declarations) {
    out += decl.name;
    if (decl.is_query) out += '?';
    out += '(';
    for (size_t i = 0; i < decl.schema.num_columns(); ++i) {
      if (i > 0) out += ", ";
      const Column& col = decl.schema.column(i);
      out += col.name;
      out += ": ";
      switch (col.type) {
        case ValueType::kInt: out += "int"; break;
        case ValueType::kString: out += "text"; break;
        case ValueType::kDouble: out += "double"; break;
        case ValueType::kBool: out += "bool"; break;
        case ValueType::kNull: out += "text"; break;
      }
    }
    out += ").\n";
  }
  for (const DdlogRule& rule : rules) {
    out += rule.ToString();
    out += '\n';
  }
  return out;
}

namespace {

bool IsVariableName(const std::string& name) {
  return !name.empty() && (std::islower(static_cast<unsigned char>(name[0])) ||
                           name[0] == '_');
}

class Parser {
 public:
  explicit Parser(std::vector<Tok> tokens) : tokens_(std::move(tokens)) {}

  Result<DdlogProgram> Parse() {
    DdlogProgram program;
    while (!Check(TokKind::kEof)) {
      DD_RETURN_IF_ERROR(ParseStatement(&program));
    }
    return program;
  }

 private:
  const Tok& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokKind kind) const { return Peek().kind == kind; }
  const Tok& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  Status Expect(TokKind kind, const char* context) {
    if (Check(kind)) {
      Advance();
      return Status::OK();
    }
    return Error(StrFormat("expected %s in %s, got %s", TokKindName(kind), context,
                           TokKindName(Peek().kind)));
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("line %d col %d: %s", Peek().line, Peek().column, msg.c_str()));
  }

  Status ParseStatement(DdlogProgram* program) {
    if (!Check(TokKind::kIdent)) {
      return Error("statement must start with a relation name");
    }
    // Lookahead to distinguish a declaration `Name(col: type ...)` from a
    // rule head `Name(term ...) :-` — declarations have ':' after the
    // first identifier inside the parens.
    // Parse the head atom generically, then branch.
    int line = Peek().line;
    std::string name = Advance().text;
    bool is_query = Match(TokKind::kQuestion);
    DD_RETURN_IF_ERROR(Expect(TokKind::kLParen, "relation"));

    // Peek: IDENT ':' means declaration.
    bool is_decl = Check(TokKind::kIdent) && Peek(1).kind == TokKind::kColon;
    if (is_decl || is_query) {
      if (!is_decl) {
        return Error("query relation declaration needs typed columns: name: type");
      }
      RelationDecl decl;
      decl.name = std::move(name);
      decl.is_query = is_query;
      decl.line = line;
      std::vector<Column> columns;
      while (true) {
        if (!Check(TokKind::kIdent)) return Error("expected column name");
        Column col;
        col.name = Advance().text;
        DD_RETURN_IF_ERROR(Expect(TokKind::kColon, "column declaration"));
        if (!Check(TokKind::kIdent)) return Error("expected column type");
        std::string type = Advance().text;
        if (type == "int" || type == "bigint") col.type = ValueType::kInt;
        else if (type == "text" || type == "string") col.type = ValueType::kString;
        else if (type == "double" || type == "float") col.type = ValueType::kDouble;
        else if (type == "bool" || type == "boolean") col.type = ValueType::kBool;
        else return Error("unknown column type: " + type);
        columns.push_back(std::move(col));
        if (!Match(TokKind::kComma)) break;
      }
      DD_RETURN_IF_ERROR(Expect(TokKind::kRParen, "declaration"));
      DD_RETURN_IF_ERROR(Expect(TokKind::kDot, "declaration"));
      decl.schema = Schema(std::move(columns));
      program->declarations.push_back(std::move(decl));
      return Status::OK();
    }

    // Rule: finish the head atom.
    DdlogRule rule;
    rule.line = line;
    rule.rule.head.relation = std::move(name);
    DD_RETURN_IF_ERROR(ParseTermList(&rule.rule.head.terms));
    DD_RETURN_IF_ERROR(Expect(TokKind::kRParen, "head atom"));

    if (Match(TokKind::kImplies)) {
      rule.kind = RuleKind::kCorrelation;
      if (!Check(TokKind::kIdent)) return Error("expected implied head atom");
      rule.implied_head.relation = Advance().text;
      DD_RETURN_IF_ERROR(Expect(TokKind::kLParen, "implied head"));
      DD_RETURN_IF_ERROR(ParseTermList(&rule.implied_head.terms));
      DD_RETURN_IF_ERROR(Expect(TokKind::kRParen, "implied head"));
    }

    DD_RETURN_IF_ERROR(Expect(TokKind::kColonDash, "rule"));
    DD_RETURN_IF_ERROR(ParseBody(&rule));

    // Optional weight clause.
    if (Check(TokKind::kIdent) && Peek().text == "weight") {
      Advance();
      DD_RETURN_IF_ERROR(Expect(TokKind::kEq, "weight clause"));
      WeightSpec spec;
      DD_RETURN_IF_ERROR(ParseWeightSpec(&spec));
      rule.weight = std::move(spec);
      if (rule.kind != RuleKind::kCorrelation) rule.kind = RuleKind::kFeature;
    }
    DD_RETURN_IF_ERROR(Expect(TokKind::kDot, "rule"));
    program->rules.push_back(std::move(rule));
    return Status::OK();
  }

  Status ParseBody(DdlogRule* rule) {
    while (true) {
      bool negated = Match(TokKind::kBang);
      if (Check(TokKind::kIdent) && Peek(1).kind == TokKind::kLParen &&
          Peek().text != "weight") {
        Atom atom;
        atom.negated = negated;
        atom.relation = Advance().text;
        DD_RETURN_IF_ERROR(Expect(TokKind::kLParen, "body atom"));
        DD_RETURN_IF_ERROR(ParseTermList(&atom.terms));
        DD_RETURN_IF_ERROR(Expect(TokKind::kRParen, "body atom"));
        rule->rule.body.push_back(std::move(atom));
      } else {
        if (negated) return Error("'!' must precede a relation atom");
        // Condition: term CMP term.
        Condition cond;
        DD_RETURN_IF_ERROR(ParseTerm(&cond.lhs));
        switch (Peek().kind) {
          case TokKind::kEq: cond.op = CmpOp::kEq; break;
          case TokKind::kNeq: cond.op = CmpOp::kNe; break;
          case TokKind::kLt: cond.op = CmpOp::kLt; break;
          case TokKind::kLe: cond.op = CmpOp::kLe; break;
          case TokKind::kGt: cond.op = CmpOp::kGt; break;
          case TokKind::kGe: cond.op = CmpOp::kGe; break;
          default:
            return Error("expected comparison operator in condition");
        }
        Advance();
        DD_RETURN_IF_ERROR(ParseTerm(&cond.rhs));
        rule->rule.conditions.push_back(std::move(cond));
      }
      if (!Match(TokKind::kComma)) break;
    }
    return Status::OK();
  }

  Status ParseTermList(std::vector<Term>* terms) {
    while (true) {
      Term term;
      DD_RETURN_IF_ERROR(ParseTerm(&term));
      terms->push_back(std::move(term));
      if (!Match(TokKind::kComma)) break;
    }
    return Status::OK();
  }

  Status ParseTerm(Term* term) {
    const Tok& tok = Peek();
    switch (tok.kind) {
      case TokKind::kIdent: {
        std::string name = Advance().text;
        if (IsVariableName(name)) {
          *term = Term::Var(std::move(name));
        } else {
          // Capitalized bare identifier: treat as a string constant
          // (handy for type tags like PERSON).
          *term = Term::Const(Value::String(std::move(name)));
        }
        return Status::OK();
      }
      case TokKind::kNumber: {
        const Tok& t = Advance();
        *term = t.is_integer
                    ? Term::Const(Value::Int(static_cast<int64_t>(t.number)))
                    : Term::Const(Value::Double(t.number));
        return Status::OK();
      }
      case TokKind::kString:
        *term = Term::Const(Value::String(Advance().text));
        return Status::OK();
      case TokKind::kTrue:
        Advance();
        *term = Term::Const(Value::Bool(true));
        return Status::OK();
      case TokKind::kFalse:
        Advance();
        *term = Term::Const(Value::Bool(false));
        return Status::OK();
      case TokKind::kNull:
        Advance();
        *term = Term::Const(Value::Null());
        return Status::OK();
      default:
        return Error(StrFormat("expected term, got %s", TokKindName(tok.kind)));
    }
  }

  Status ParseWeightSpec(WeightSpec* spec) {
    if (Check(TokKind::kNumber)) {
      spec->kind = WeightSpec::Kind::kFixed;
      spec->fixed_value = Advance().number;
      return Status::OK();
    }
    if (Match(TokKind::kQuestion)) {
      spec->kind = WeightSpec::Kind::kLearnable;
      return Status::OK();
    }
    if (!Check(TokKind::kIdent)) {
      return Error("expected weight specification (number, '?', udf(...), or vars)");
    }
    std::string first = Advance().text;
    if (Check(TokKind::kLParen)) {
      // UDF call.
      spec->kind = WeightSpec::Kind::kUdf;
      spec->udf_name = std::move(first);
      Advance();  // '('
      while (true) {
        if (!Check(TokKind::kIdent)) return Error("UDF arguments must be variables");
        spec->args.push_back(Advance().text);
        if (!Match(TokKind::kComma)) break;
      }
      return Expect(TokKind::kRParen, "weight UDF");
    }
    // Variable list.
    spec->kind = WeightSpec::Kind::kVariables;
    spec->args.push_back(std::move(first));
    while (Match(TokKind::kComma)) {
      if (!Check(TokKind::kIdent)) return Error("expected variable in weight list");
      spec->args.push_back(Advance().text);
    }
    return Status::OK();
  }

  std::vector<Tok> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<DdlogProgram> ParseDdlog(std::string_view source) {
  DD_ASSIGN_OR_RETURN(std::vector<Tok> tokens, LexDdlog(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

namespace {

Status CheckAtomAgainstDecl(const Atom& atom, const DdlogProgram& program, int line) {
  const RelationDecl* decl = program.FindDecl(atom.relation);
  if (decl == nullptr) {
    return Status::InvalidArgument(
        StrFormat("line %d: undeclared relation %s", line, atom.relation.c_str()));
  }
  if (atom.terms.size() != decl->schema.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "line %d: relation %s has %zu columns, atom uses %zu", line,
        atom.relation.c_str(), decl->schema.num_columns(), atom.terms.size()));
  }
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_var() || t.constant.is_null()) continue;
    if (t.constant.type() != decl->schema.column(i).type) {
      return Status::TypeError(StrFormat(
          "line %d: constant %s in %s column %zu expects %s", line,
          t.constant.ToString().c_str(), atom.relation.c_str(), i,
          ValueTypeName(decl->schema.column(i).type)));
    }
  }
  return Status::OK();
}

}  // namespace

Status AnalyzeProgram(const DdlogProgram& program) {
  // Unique declarations.
  std::set<std::string> names;
  for (const RelationDecl& decl : program.declarations) {
    if (!names.insert(decl.name).second) {
      return Status::InvalidArgument(
          StrFormat("line %d: duplicate declaration of %s", decl.line,
                    decl.name.c_str()));
    }
    if (decl.schema.num_columns() == 0) {
      return Status::InvalidArgument("relation has no columns: " + decl.name);
    }
  }
  // Evidence relations: X_Ev must pair a declared X with schema + bool.
  for (const RelationDecl& decl : program.declarations) {
    if (!EndsWith(decl.name, "_Ev")) continue;
    std::string target = decl.name.substr(0, decl.name.size() - 3);
    const RelationDecl* target_decl = program.FindDecl(target);
    if (target_decl == nullptr) {
      return Status::InvalidArgument("evidence relation " + decl.name +
                                     " has no target relation " + target);
    }
    if (!target_decl->is_query) {
      return Status::InvalidArgument("evidence target must be a query relation: " +
                                     target);
    }
    size_t n = target_decl->schema.num_columns();
    if (decl.schema.num_columns() != n + 1 ||
        decl.schema.column(n).type != ValueType::kBool) {
      return Status::InvalidArgument(
          "evidence relation " + decl.name +
          " must have the target schema plus one trailing bool column");
    }
    for (size_t i = 0; i < n; ++i) {
      if (decl.schema.column(i).type != target_decl->schema.column(i).type) {
        return Status::TypeError("evidence column " + decl.schema.column(i).name +
                                 " type mismatch with target " + target);
      }
    }
  }

  for (const DdlogRule& rule : program.rules) {
    DD_RETURN_IF_ERROR(CheckAtomAgainstDecl(rule.rule.head, program, rule.line));
    for (const Atom& atom : rule.rule.body) {
      DD_RETURN_IF_ERROR(CheckAtomAgainstDecl(atom, program, rule.line));
    }
    DD_RETURN_IF_ERROR(rule.rule.Validate());

    // Collect body variables for weight-arg checks.
    std::set<std::string> body_vars;
    for (const Atom& atom : rule.rule.body) {
      if (atom.negated) continue;
      for (const Term& t : atom.terms) {
        if (t.is_var()) body_vars.insert(t.var);
      }
    }

    const RelationDecl* head_decl = program.FindDecl(rule.rule.head.relation);
    switch (rule.kind) {
      case RuleKind::kDerivation:
        break;
      case RuleKind::kFeature:
        if (!head_decl->is_query) {
          return Status::InvalidArgument(StrFormat(
              "line %d: feature rule head %s must be a query relation", rule.line,
              rule.rule.head.relation.c_str()));
        }
        break;
      case RuleKind::kCorrelation: {
        DD_RETURN_IF_ERROR(CheckAtomAgainstDecl(rule.implied_head, program, rule.line));
        const RelationDecl* implied_decl = program.FindDecl(rule.implied_head.relation);
        if (!head_decl->is_query || !implied_decl->is_query) {
          return Status::InvalidArgument(StrFormat(
              "line %d: correlation rules connect query relations", rule.line));
        }
        for (const Term& t : rule.implied_head.terms) {
          if (t.is_var() && body_vars.count(t.var) == 0) {
            return Status::InvalidArgument(
                StrFormat("line %d: implied head variable %s not bound by body",
                          rule.line, t.var.c_str()));
          }
        }
        break;
      }
    }
    if (rule.weight.has_value()) {
      for (const std::string& arg : rule.weight->args) {
        if (body_vars.count(arg) == 0) {
          return Status::InvalidArgument(StrFormat(
              "line %d: weight argument %s not bound by body", rule.line,
              arg.c_str()));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace dd
