#ifndef DEEPDIVE_DDLOG_AST_H_
#define DEEPDIVE_DDLOG_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "query/rule.h"
#include "storage/schema.h"

namespace dd {

/// A relation declaration: `Name(col: type, ...).` or `Name?(...)` for
/// query (uncertain) relations whose tuples become random variables.
struct RelationDecl {
  std::string name;
  Schema schema;
  bool is_query = false;
  int line = 0;
};

/// The weight clause of a feature or correlation rule (Example 3.2's
/// `weight = phrase(m1, m2, sent)` and friends).
struct WeightSpec {
  enum class Kind {
    kFixed,      ///< weight = 2.5          (fixed, not learned)
    kLearnable,  ///< weight = ?             (one learned weight per rule)
    kUdf,        ///< weight = udf(v1, v2)   (tied per UDF return value)
    kVariables,  ///< weight = v1, v2        (tied per variable values)
  };
  Kind kind = Kind::kLearnable;
  double fixed_value = 0.0;
  std::string udf_name;
  std::vector<std::string> args;  ///< body variables feeding the tying key
};

/// Rule flavors DeepDive distinguishes during grounding.
enum class RuleKind {
  kDerivation,   ///< Head(..) :- Body.            candidate mapping / ETL
  kFeature,      ///< Head(..) :- Body weight=...  classifier evidence (§3.1)
  kCorrelation,  ///< H1(..) => H2(..) :- Body.    MLN-style imply factor
};

/// One parsed DDlog rule.
struct DdlogRule {
  RuleKind kind = RuleKind::kDerivation;
  ConjunctiveRule rule;            ///< head + body + conditions
  Atom implied_head;               ///< kCorrelation: the implied atom (H2)
  std::optional<WeightSpec> weight;
  int line = 0;

  /// Render the full rule as parseable DDlog text.
  std::string ToString() const;
};

/// A parsed DDlog program.
struct DdlogProgram {
  std::vector<RelationDecl> declarations;
  std::vector<DdlogRule> rules;

  /// Render the whole program back to parseable DDlog text.
  std::string ToString() const;

  const RelationDecl* FindDecl(const std::string& name) const {
    for (const RelationDecl& d : declarations) {
      if (d.name == name) return &d;
    }
    return nullptr;
  }
};

}  // namespace dd

#endif  // DEEPDIVE_DDLOG_AST_H_
