#ifndef DEEPDIVE_DDLOG_LEXER_H_
#define DEEPDIVE_DDLOG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace dd {

enum class TokKind {
  kIdent,      // MarriedCandidate, m1, phrase
  kNumber,     // 42, 3.14, -7
  kString,     // "text"
  kTrue,       // true
  kFalse,      // false
  kNull,       // NULL / null
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kDot,        // .
  kColon,      // :
  kColonDash,  // :-
  kBang,       // !
  kQuestion,   // ?
  kEq,         // =
  kNeq,        // !=
  kLt,         // <
  kLe,         // <=
  kGt,         // >
  kGe,         // >=
  kImplies,    // =>
  kEof,
};

const char* TokKindName(TokKind kind);

struct Tok {
  TokKind kind = TokKind::kEof;
  std::string text;    // identifier / string payload / number literal
  double number = 0.0; // valid for kNumber
  bool is_integer = false;
  int line = 1;
  int column = 1;
};

/// Tokenize a DDlog source. Comments run from '#' or "//" to end of line.
/// Fails with ParseError (and position info) on unterminated strings or
/// unexpected characters.
Result<std::vector<Tok>> LexDdlog(std::string_view source);

}  // namespace dd

#endif  // DEEPDIVE_DDLOG_LEXER_H_
