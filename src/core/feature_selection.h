#ifndef DEEPDIVE_CORE_FEATURE_SELECTION_H_
#define DEEPDIVE_CORE_FEATURE_SELECTION_H_

#include <string>
#include <vector>

#include "grounding/grounder.h"
#include "inference/learner.h"

namespace dd {

/// One feature's fate after regularized selection.
struct SelectedFeature {
  uint32_t weight_id = 0;
  std::string key;
  double learned_weight = 0.0;
  uint64_t observations = 0;
  bool kept = false;
};

struct FeatureSelectionOptions {
  /// L2 strength for the selection pass (stronger than production
  /// training: we want mass pulled off useless features).
  double selection_l2 = 0.05;
  /// |w| below this after the selection pass -> pruned.
  double min_abs_weight = 0.05;
  /// Features observed fewer times are pruned outright (they cannot be
  /// estimated; §5.2's "insufficient training data" case).
  uint64_t min_observations = 2;
  LearnOptions learn;
};

/// The feature library system of §5.3: "automatically proposes a massive
/// number of features that plausibly work across many domains, and then
/// uses statistical regularization to throw away all but the most
/// effective features. ... the hypothesized features are designed to
/// always be human-understandable."
///
/// The proposal side is `RelationFeatureTemplates` (core/features.h);
/// this class is the pruning side: train under strong regularization,
/// rank by |learned weight|, and report which (human-readable) features
/// survive. Callers can then restrict the production run to the kept
/// set, or simply surface the report in error analysis.
class FeatureSelector {
 public:
  /// Train the grounder's graph under the selection regime and classify
  /// every learnable weight. The graph's weights are modified (call
  /// Grounder::SaveWeights() only if you want to keep them).
  static Result<std::vector<SelectedFeature>> Run(
      Grounder* grounder, const FeatureSelectionOptions& options);

  /// Keys of kept features.
  static std::vector<std::string> KeptKeys(const std::vector<SelectedFeature>& all);

  /// Render a report, most-effective-first.
  static std::string Report(const std::vector<SelectedFeature>& all,
                            size_t max_rows = 30);
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_FEATURE_SELECTION_H_
