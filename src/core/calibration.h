#ifndef DEEPDIVE_CORE_CALIBRATION_H_
#define DEEPDIVE_CORE_CALIBRATION_H_

#include <string>
#include <vector>

namespace dd {

/// One probability bucket of a calibration report.
struct CalibrationBucket {
  double lo = 0.0;
  double hi = 0.0;
  size_t num_predictions = 0;   ///< predictions with prob in [lo, hi)
  size_t num_with_truth = 0;    ///< of those, how many have known truth
  size_t num_actually_true = 0; ///< of those, how many are true
  /// Empirical accuracy of the bucket (NaN if no truth available).
  double Accuracy() const;
};

/// The three diagrams DeepDive emits after every training run (Fig. 5):
/// (a) a calibration plot — predicted probability vs empirical fraction
/// correct on a held-out set; (b) a histogram of predicted probabilities
/// on the test set; (c) the same histogram on the training set. Healthy
/// histograms are U-shaped; a healthy calibration plot hugs the
/// diagonal.
class CalibrationReport {
 public:
  /// `probabilities[i]` is the system's P(true); `truth[i]` is 1 / 0 for
  /// known labels and -1 for unknown. Buckets are equal-width.
  static CalibrationReport Build(const std::vector<double>& probabilities,
                                 const std::vector<int>& truth, int num_buckets = 10);

  const std::vector<CalibrationBucket>& buckets() const { return buckets_; }

  /// Maximum |bucket accuracy − bucket midpoint| over buckets with truth
  /// (expected calibration gap; 0 = perfectly calibrated).
  double MaxCalibrationGap() const;

  /// Fraction of predictions in the two extreme buckets — the "U-shape"
  /// health measure for Fig. 5(b)/(c).
  double ExtremeMassFraction() const;

  /// Render the three diagrams as ASCII (one figure per paper panel).
  std::string ToText() const;

 private:
  std::vector<CalibrationBucket> buckets_;
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_CALIBRATION_H_
