#ifndef DEEPDIVE_CORE_UDF_H_
#define DEEPDIVE_CORE_UDF_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"
#include "util/result.h"

namespace dd {

/// A user-defined function over tuple values, used in weight clauses
/// (Example 3.2's `weight = phrase(m1, m2, sent)`). UDFs must be pure
/// and deterministic: the same arguments must produce the same value,
/// because the returned value is the weight-tying key.
using UdfFn = std::function<Result<Value>(const std::vector<Value>&)>;

/// Registry of named UDFs, consulted during grounding.
class UdfRegistry {
 public:
  UdfRegistry();

  /// Register (or replace) a UDF.
  void Register(const std::string& name, UdfFn fn);

  bool Has(const std::string& name) const { return fns_.count(name) > 0; }

  /// Invoke; NotFound if unregistered.
  Result<Value> Call(const std::string& name, const std::vector<Value>& args) const;

 private:
  std::unordered_map<std::string, UdfFn> fns_;
};

/// Built-in UDFs registered by the default constructor:
///  * identity(v)          — the value itself
///  * lower(text)          — lowercase
///  * concat(a, b, ...)    — string concatenation with '|' separators
///  * bucket(x)            — order-of-magnitude bucket for numbers
/// These cover the common tying keys without custom code.
void RegisterBuiltinUdfs(UdfRegistry* registry);

}  // namespace dd

#endif  // DEEPDIVE_CORE_UDF_H_
