#include "core/error_analysis.h"

#include <algorithm>
#include <map>

#include "util/string_util.h"

namespace dd {

EvaluationResult Evaluate(const std::vector<Tuple>& extracted,
                          const std::unordered_set<Tuple, TupleHash>& truth) {
  EvaluationResult result;
  std::unordered_set<Tuple, TupleHash> extracted_set(extracted.begin(),
                                                     extracted.end());
  for (const Tuple& t : extracted_set) {
    if (truth.count(t) > 0) {
      ++result.true_positives;
    } else {
      ++result.false_positives;
    }
  }
  for (const Tuple& t : truth) {
    if (extracted_set.count(t) == 0) ++result.false_negatives;
  }
  size_t p_denom = result.true_positives + result.false_positives;
  size_t r_denom = result.true_positives + result.false_negatives;
  result.precision =
      p_denom == 0 ? 0.0 : static_cast<double>(result.true_positives) / p_denom;
  result.recall =
      r_denom == 0 ? 0.0 : static_cast<double>(result.true_positives) / r_denom;
  result.f1 = (result.precision + result.recall) == 0
                  ? 0.0
                  : 2 * result.precision * result.recall /
                        (result.precision + result.recall);
  return result;
}

ErrorAnalysis ErrorAnalysis::Build(
    const std::vector<std::pair<Tuple, double>>& marginals, double threshold,
    const std::unordered_set<Tuple, TupleHash>& truth, const TagFn& tag_fn,
    size_t examples_per_bucket) {
  ErrorAnalysis analysis;
  std::vector<Tuple> extracted;
  for (const auto& [tuple, prob] : marginals) {
    if (prob >= threshold) extracted.push_back(tuple);
  }
  analysis.metrics_ = Evaluate(extracted, truth);

  std::map<std::string, FailureBucket> buckets;
  auto record = [&](const Tuple& tuple, bool is_fp, double prob) {
    std::string tag = tag_fn(tuple, is_fp);
    FailureBucket& bucket = buckets[tag];
    bucket.tag = tag;
    bucket.count++;
    if (bucket.examples.size() < examples_per_bucket) {
      bucket.examples.push_back(StrFormat("%s %s (p=%.3f)",
                                          is_fp ? "FP" : "FN",
                                          tuple.ToString().c_str(), prob));
    }
  };

  std::unordered_set<Tuple, TupleHash> extracted_set(extracted.begin(),
                                                     extracted.end());
  for (const auto& [tuple, prob] : marginals) {
    bool above = prob >= threshold;
    bool is_true = truth.count(tuple) > 0;
    if (above && !is_true) record(tuple, true, prob);
    if (!above && is_true) record(tuple, false, prob);
  }
  // Truth tuples that never became candidates (candidate-generation
  // misses): probability is effectively 0 and unknown to the system.
  for (const Tuple& t : truth) {
    bool seen = false;
    for (const auto& [tuple, prob] : marginals) {
      if (tuple == t) {
        seen = true;
        break;
      }
    }
    if (!seen) record(t, false, 0.0);
  }

  for (auto& [tag, bucket] : buckets) analysis.buckets_.push_back(std::move(bucket));
  std::sort(analysis.buckets_.begin(), analysis.buckets_.end(),
            [](const FailureBucket& a, const FailureBucket& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.tag < b.tag;
            });
  return analysis;
}

std::string ErrorAnalysis::ToText(const Grounder* grounder,
                                  size_t max_features) const {
  std::string out = "=== Error Analysis ===\n";
  out += StrFormat("precision %.3f  recall %.3f  F1 %.3f  (TP %zu, FP %zu, FN %zu)\n",
                   metrics_.precision, metrics_.recall, metrics_.f1,
                   metrics_.true_positives, metrics_.false_positives,
                   metrics_.false_negatives);
  out += "--- Failure modes (attack the largest bucket first) ---\n";
  for (const FailureBucket& bucket : buckets_) {
    out += StrFormat("  [%zu errors] %s\n", bucket.count, bucket.tag.c_str());
    for (const std::string& example : bucket.examples) {
      out += "      " + example + "\n";
    }
  }
  if (grounder != nullptr) {
    out += "--- Feature statistics (weight, observations) ---\n";
    const FactorGraph& graph = grounder->graph();
    std::vector<uint32_t> ids(graph.num_weights());
    for (uint32_t w = 0; w < ids.size(); ++w) ids[w] = w;
    std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
      return std::abs(graph.weight(a).value) > std::abs(graph.weight(b).value);
    });
    size_t shown = 0;
    for (uint32_t w : ids) {
      if (shown++ >= max_features) break;
      uint64_t obs = grounder->weight_observations()[w];
      out += StrFormat("  w=%+8.3f  n=%-6llu %s%s\n", graph.weight(w).value,
                       static_cast<unsigned long long>(obs),
                       grounder->WeightKey(w).c_str(),
                       obs < 3 ? "   <-- few observations!" : "");
    }
  }
  return out;
}

}  // namespace dd
