#include "core/pipeline.h"

#include <cstdlib>

#include "core/diagnostics.h"
#include "ddlog/parser.h"
#include "stream/ingester.h"
#include "serve/epoch.h"
#include "util/failpoint.h"
#include "util/retry.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/task_graph.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace dd {

void TupleEmitter::Emit(const std::string& relation, Tuple tuple) {
  emitted_[relation].push_back(std::move(tuple));
}

DeepDivePipeline::DeepDivePipeline(PipelineOptions options)
    : options_(std::move(options)) {}

DeepDivePipeline::~DeepDivePipeline() = default;

Status DeepDivePipeline::LoadProgram(std::string_view ddlog_source) {
  if (has_run_) return Status::Internal("cannot reload program after Run()");
  DD_ASSIGN_OR_RETURN(program_, ParseDdlog(ddlog_source));
  DD_RETURN_IF_ERROR(AnalyzeProgram(program_));
  program_loaded_ = true;
  return Status::OK();
}

void DeepDivePipeline::RegisterExtractor(Extractor extractor) {
  extractors_.push_back(std::move(extractor));
}

Status DeepDivePipeline::AddDocument(std::string id, const std::string& text) {
  for (const Document& doc : documents_) {
    if (doc.id == id) return Status::AlreadyExists("duplicate document id: " + id);
  }
  documents_.push_back(AnnotateDocument(std::move(id), text, options_.html_documents));
  return Status::OK();
}

void DeepDivePipeline::QueueDelta(const std::string& relation, Tuple tuple,
                                  int64_t count) {
  queued_deltas_[relation][std::move(tuple)] += count;
}

namespace {

/// Feeds merged chunk results straight into QueueDelta in exact record
/// order — the same call sequence a batch loop over the same records
/// would make, so everything downstream (delta-set iteration, table row
/// ids, factor graph bytes) is identical to the batch path.
class QueueDeltaSink : public StreamSink {
 public:
  explicit QueueDeltaSink(DeepDivePipeline* pipeline) : pipeline_(pipeline) {}
  Status Apply(ChunkResult&& result) override {
    for (auto& [relation, tuple] : result.tuples) {
      pipeline_->QueueDelta(relation, std::move(tuple), 1);
    }
    return Status::OK();
  }

 private:
  DeepDivePipeline* pipeline_;
};

}  // namespace

Status DeepDivePipeline::IngestStream(StreamIngester* ingester,
                                      ByteSource* source) {
  QueueDeltaSink sink(this);
  return ingester->Ingest(source, &sink);
}

Status DeepDivePipeline::ExtractDocument(const Document& doc,
                                         TupleEmitter* emitter) {
  Status injected;
  DD_FAILPOINT(failpoints::kPipelineExtractor, &injected);
  DD_RETURN_IF_ERROR(injected);
  for (const Extractor& extractor : extractors_) {
    DD_RETURN_IF_ERROR(extractor(doc, emitter));
  }
  return Status::OK();
}

Status DeepDivePipeline::RunExtraction(std::map<std::string, DeltaSet>* deltas) {
  run_stats_ = RunStats();
  const size_t batch_size = documents_.size() - next_document_;
  // UDFs are the flakiest part of a KBC system: retry each document once
  // on a fresh emitter, then quarantine it rather than let one bad
  // document kill hours of work. The policy (attempts, no backoff —
  // extraction is deterministic, so sleeping buys nothing) lives in the
  // shared retry helper.
  RetryOptions retry;
  retry.max_attempts = 2;
  retry.initial_backoff_ms = 0;
  retry.jitter_fraction = 0;
  Rng retry_rng(0);  // unused while backoff is 0; RetryWithBackoff needs one
  for (; next_document_ < documents_.size(); ++next_document_) {
    const Document& doc = documents_[next_document_];
    TupleEmitter emitter;
    Status status = RetryWithBackoff(
        retry, &retry_rng,
        [&]() -> Status { return ExtractDocument(doc, &emitter); },
        /*sleep_fn=*/{},
        [&](int /*attempt*/, const Status& /*error*/, double /*sleep_ms*/) {
          ++run_stats_.extractor_retries;
          DD_COUNTER_ADD("dd.pipeline.extractor_retries", 1);
          emitter = TupleEmitter();
        });
    if (!status.ok()) {
      ++run_stats_.documents_quarantined;
      DD_COUNTER_ADD("dd.pipeline.documents_quarantined", 1);
      run_stats_.quarantined.push_back({doc.id, status});
      DD_LOG(Warning) << "quarantined document '" << doc.id
                      << "': " << status.ToString();
      continue;
    }
    ++run_stats_.documents_processed;
    for (const auto& [relation, tuples] : emitter.emitted()) {
      for (const Tuple& t : tuples) {
        (*deltas)[relation][t] += 1;
      }
    }
  }
  if (run_stats_.documents_quarantined > 0 &&
      static_cast<double>(run_stats_.documents_quarantined) >
          options_.max_quarantine_fraction * static_cast<double>(batch_size)) {
    // Systematic extractor failure, not occasional flakiness — surface
    // the first error with its original code and message.
    return run_stats_.quarantined.front().error;
  }
  // Fold in raw queued deltas.
  for (auto& [relation, delta] : queued_deltas_) {
    for (auto& [tuple, count] : delta) {
      (*deltas)[relation][tuple] += count;
    }
  }
  queued_deltas_.clear();
  return Status::OK();
}

Status DeepDivePipeline::RunGrounding(
    const std::map<std::string, DeltaSet>& deltas) {
  if (!has_run_) {
    // Bulk-load the first batch directly into the base tables.
    for (const auto& [relation, delta] : deltas) {
      const RelationDecl* decl = program_.FindDecl(relation);
      if (decl == nullptr) {
        return Status::NotFound(
            "extractor emitted into undeclared relation: " + relation);
      }
      DD_ASSIGN_OR_RETURN(Table * table,
                          catalog_.GetOrCreateTable(relation, decl->schema));
      for (const auto& [tuple, count] : delta) {
        if (count <= 0) continue;  // deletions meaningless on first load
        DD_RETURN_IF_ERROR(table->Insert(tuple).status());
      }
    }
    GroundingOptions grounding_options;
    grounding_options.holdout_fraction = options_.holdout_fraction;
    grounding_options.pool = pool_.get();
    // Sequential pipeline => sequential grounder (the full oracle).
    if (pool_ == nullptr) grounding_options.num_threads = 1;
    grounder_ = std::make_unique<Grounder>(&catalog_, &program_, &udfs_,
                                           grounding_options);
    DD_RETURN_IF_ERROR(grounder_->Initialize());
  } else if (!deltas.empty()) {
    DD_RETURN_IF_ERROR(grounder_->ApplyDeltas(deltas));
  }
  return Status::OK();
}

Status DeepDivePipeline::RunCalibration() {
  run_calibration_.clear();
  for (const RelationDecl& decl : program_.declarations) {
    if (!decl.is_query) continue;
    DD_ASSIGN_OR_RETURN(CalibrationPair pair, Calibration(decl.name));
    run_calibration_.emplace(decl.name, std::move(pair));
  }
  return Status::OK();
}

Result<DistributedResult> DeepDivePipeline::RunDistributed(
    const DistributedOptions& dist) {
  if (!program_loaded_) return Status::Internal("LoadProgram() before Run()");
  DD_TRACE_SPAN_VAR(run_span, "pipeline.distributed");

  Stopwatch extraction_watch;
  std::map<std::string, DeltaSet> deltas;
  DD_RETURN_IF_ERROR(RunExtraction(&deltas));
  timings_.extraction_seconds = extraction_watch.Seconds();

  Stopwatch grounding_watch;
  DD_RETURN_IF_ERROR(RunGrounding(deltas));
  timings_.grounding_seconds = grounding_watch.Seconds();

  DD_RETURN_IF_ERROR(PrepareRunDirectory());

  // Topology comes from the caller; the schedule always comes from the
  // pipeline's own options so RunDistributed() answers the same question
  // Run() answers (and with one shard, with the same bits).
  DistributedOptions opts = dist;
  opts.epochs = options_.learn.epochs;
  opts.learning_rate = options_.learn.learning_rate;
  opts.decay = options_.learn.decay;
  opts.l2 = options_.learn.l2;
  opts.sweeps_per_epoch = options_.learn.sweeps_per_epoch;
  opts.learn_seed = options_.learn.seed;
  opts.burn_in = options_.inference.full_burn_in;
  opts.num_samples = options_.inference.num_samples;
  opts.inference_seed = options_.inference.seed;
  if (opts.checkpoint_dir.empty() && run_dir_ != nullptr) {
    opts.checkpoint_dir = run_dir_->path();
  }

  Stopwatch dist_watch;
  FactorGraph* graph = grounder_->mutable_graph();
  DD_RETURN_IF_ERROR(graph->Finalize());
  DD_ASSIGN_OR_RETURN(DistributedResult result,
                      dd::RunDistributed(graph, opts));
  grounder_->SaveWeights();
  marginals_ = result.marginals;
  // Distributed sampling leaves no single-node materialization to reuse;
  // a later incremental Run() rebuilds inference state from scratch.
  chosen_strategy_ = MaterializationStrategy::kSampling;
  inference_ = nullptr;
  inference_materialized_ = false;
  timings_.learning_seconds = 0;
  timings_.inference_seconds = dist_watch.Seconds();
  DD_RETURN_IF_ERROR(UpdateManifestPhase("done"));
  has_run_ = true;

  Stopwatch calibration_watch;
  DD_RETURN_IF_ERROR(RunCalibration());
  timings_.calibration_seconds = calibration_watch.Seconds();
  run_span.Attr("num_shards", static_cast<double>(opts.num_shards));
  return result;
}

Status DeepDivePipeline::SetRunDirectory(const std::string& dir) {
  if (has_run_) return Status::Internal("SetRunDirectory() before Run()");
  run_dir_ = std::make_unique<RunDirectory>(dir);
  resuming_ = false;
  return run_dir_->Create();
}

Status DeepDivePipeline::ResumeFrom(const std::string& dir) {
  DD_RETURN_IF_ERROR(SetRunDirectory(dir));
  resuming_ = true;
  return Status::OK();
}

Status DeepDivePipeline::PrepareRunDirectory() {
  if (run_dir_ == nullptr) return Status::OK();
  const uint32_t crc = GraphFingerprint(grounder_->graph());
  if (resuming_ && run_dir_->HasManifest()) {
    DD_ASSIGN_OR_RETURN(auto manifest, run_dir_->ReadManifest());
    auto it = manifest.find("graph_crc");
    if (it == manifest.end() ||
        std::strtoul(it->second.c_str(), nullptr, 10) != crc) {
      return Status::InvalidArgument(StrFormat(
          "run directory %s belongs to a different pipeline: manifest graph "
          "fingerprint %s, grounded graph %u",
          run_dir_->path().c_str(),
          it == manifest.end() ? "<missing>" : it->second.c_str(), crc));
    }
    return Status::OK();
  }
  // Fresh run (or resume of a run killed before its manifest existed):
  // drop stale snapshots so an unrelated checkpoint cannot leak in.
  if (!resuming_) DD_RETURN_IF_ERROR(run_dir_->Clear());
  return run_dir_->WriteManifest(
      {{"graph_crc", StrFormat("%u", crc)}, {"phase", "grounded"}});
}

Status DeepDivePipeline::UpdateManifestPhase(const std::string& phase) {
  if (run_dir_ == nullptr) return Status::OK();
  std::map<std::string, std::string> manifest;
  if (run_dir_->HasManifest()) {
    DD_ASSIGN_OR_RETURN(manifest, run_dir_->ReadManifest());
  }
  manifest["phase"] = phase;
  return run_dir_->WriteManifest(manifest);
}

MaterializationStrategy DeepDivePipeline::PickStrategy() const {
  switch (options_.strategy) {
    case PipelineOptions::Strategy::kSampling:
      return MaterializationStrategy::kSampling;
    case PipelineOptions::Strategy::kVariational:
      return MaterializationStrategy::kVariational;
    case PipelineOptions::Strategy::kAuto:
      break;
  }
  const FactorGraph& graph = grounder_->graph();
  double avg_degree = graph.num_variables() == 0
                          ? 0.0
                          : static_cast<double>(graph.num_edges()) /
                                graph.num_variables();
  return ChooseStrategy(graph.num_variables(), avg_degree,
                        options_.anticipated_changes);
}

Status DeepDivePipeline::Run() {
  if (!program_loaded_) return Status::Internal("LoadProgram() before Run()");
  // Root span: children named below are exactly the Fig. 2 phases and
  // surface as "phases" in RunMetrics::ToJson().
  DD_TRACE_SPAN_VAR(run_span, "pipeline");

  const size_t threads =
      options_.num_threads == 0 ? HardwareThreads() : options_.num_threads;
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }

  // The run is a task graph rather than a fixed call sequence: phases
  // with no data dependency on each other overlap (weight learning and
  // the inference warm-up below), while explicit edges order every
  // hand-off. With num_threads == 1 the graph degenerates to exactly the
  // sequential schedule (ready nodes in creation order) — the oracle the
  // differential tests compare against; results are byte-identical at
  // every thread count.
  TaskGraph tg;
  tg.set_trace_root(TraceSpan::CurrentPath());

  std::map<std::string, DeltaSet> deltas;

  // Phase 1: candidate generation + feature extraction UDFs (§3 step 1).
  const TaskGraph::NodeId extraction =
      tg.AddNode("extraction", [this, &deltas](TraceSpan* span) -> Status {
        DD_RETURN_IF_ERROR(RunExtraction(&deltas));
        if (span != nullptr) {
          span->Attr("documents_processed",
                     static_cast<double>(run_stats_.documents_processed));
          span->Attr("documents_quarantined",
                     static_cast<double>(run_stats_.documents_quarantined));
        }
        DD_COUNTER_ADD("dd.pipeline.documents_processed",
                       run_stats_.documents_processed);
        return Status::OK();
      });

  // Phase 2: grounding — candidate mappings, supervision rules, and
  // factor generation, incrementally after the first run (§3 steps 1-2,
  // §4.1). The grounder shares the pipeline's pool, so its own task
  // graph (datalog strata + factor build) nests inside this node.
  const TaskGraph::NodeId grounding =
      tg.AddNode("grounding", [this, &deltas](TraceSpan* span) -> Status {
        DD_RETURN_IF_ERROR(RunGrounding(deltas));
        if (span != nullptr) {
          span->Attr("variables",
                     static_cast<double>(grounder_->stats().num_variables));
          span->Attr("factors",
                     static_cast<double>(grounder_->stats().num_factors));
        }
        return Status::OK();
      });
  tg.AddEdge(extraction, grounding);

  // Bookkeeping between phases (never a Fig. 2 phase): crash-test
  // failpoint + run-directory manifest, once the graph fingerprint
  // exists.
  const TaskGraph::NodeId prepare =
      tg.AddUntracedNode("prepare", [this]() -> Status {
        Status injected;
        DD_FAILPOINT(failpoints::kPipelinePhase, &injected);
        DD_RETURN_IF_ERROR(injected);
        return PrepareRunDirectory();
      });
  tg.AddEdge(grounding, prepare);

  // Phase 3: weight learning (§3 step 3).
  const TaskGraph::NodeId learning =
      tg.AddNode("learning", [this](TraceSpan* span) -> Status {
        const bool learn = !has_run_ || options_.relearn_on_update;
        if (learn) {
          LearnOptions learn_opts = options_.learn;
          if (run_dir_ != nullptr) learn_opts.checkpoint_dir = run_dir_->path();
          Learner learner(grounder_->mutable_graph());
          DD_RETURN_IF_ERROR(learner.Learn(learn_opts));
          grounder_->SaveWeights();
        }
        if (span != nullptr) span->Attr("learned", learn ? 1 : 0);
        Status injected;
        DD_FAILPOINT(failpoints::kPipelinePhase, &injected);
        DD_RETURN_IF_ERROR(injected);
        return UpdateManifestPhase("learned");
      });
  tg.AddEdge(prepare, learning);

  // Overlap: while the learner fits weights, warm inference up with the
  // weight-oblivious part of its start-up — strategy choice, buffer
  // reservation, and reading the materialization checkpoint off disk.
  // Prewarm() reads no weight values, so sharing the graph with the
  // learner is race-free. Runs after prepare because PrepareRunDirectory
  // may clear stale snapshots on a fresh run.
  const TaskGraph::NodeId warmup =
      tg.AddUntracedNode("inference.warmup", [this]() -> Status {
        if (inference_materialized_) return Status::OK();  // Update path
        chosen_strategy_ = PickStrategy();
        IncrementalOptions opts = options_.inference;
        opts.clamp_evidence = false;  // probabilities for labeled tuples too
        if (run_dir_ != nullptr) {
          opts.checkpoint_path = run_dir_->InferenceSnapshotPath();
        }
        inference_ = std::make_unique<IncrementalInference>(
            &grounder_->graph(), chosen_strategy_, opts);
        return inference_->Prewarm();
      });
  tg.AddEdge(prepare, warmup);

  // Phase 4: inference (§3 step 3, §4.2).
  const TaskGraph::NodeId inference =
      tg.AddNode("inference", [this](TraceSpan* span) -> Status {
        DD_RETURN_IF_ERROR(RunInference());
        if (span != nullptr) {
          span->Attr("marginals", static_cast<double>(marginals_.size()));
        }
        DD_RETURN_IF_ERROR(UpdateManifestPhase("done"));
        has_run_ = true;
        return Status::OK();
      });
  tg.AddEdge(learning, inference);
  tg.AddEdge(warmup, inference);

  // Phase 5: calibration (Fig. 2's last phase / Fig. 5's input) — bucket
  // the fresh marginals of every query relation against its held-out and
  // clamped labels. Cheap (one pass over the variables per relation) but
  // measured, because the developer loop reads these plots every cycle.
  const TaskGraph::NodeId calibration =
      tg.AddNode("calibration", [this](TraceSpan* span) -> Status {
        DD_RETURN_IF_ERROR(RunCalibration());
        if (span != nullptr) {
          span->Attr("relations", static_cast<double>(run_calibration_.size()));
        }
        return Status::OK();
      });
  tg.AddEdge(inference, calibration);

  const Status run_status = tg.Run(pool_.get());

  // Per-phase time spent *inside* each node — accurate under overlap,
  // where stopwatch segments around blocking calls would double-count.
  auto record = [&tg](TaskGraph::NodeId id, double* out) {
    if (!tg.NodeSkipped(id)) *out = tg.NodeSeconds(id);
  };
  record(extraction, &timings_.extraction_seconds);
  record(grounding, &timings_.grounding_seconds);
  record(learning, &timings_.learning_seconds);
  record(inference, &timings_.inference_seconds);
  record(calibration, &timings_.calibration_seconds);

  return run_status;
}

std::string DeepDivePipeline::RunSummary() const {
  std::string out = StrFormat(
      "phases: extraction %.3fs, grounding %.3fs, learning %.3fs, "
      "inference %.3fs, calibration %.3fs (total %.3fs)\n",
      timings_.extraction_seconds, timings_.grounding_seconds,
      timings_.learning_seconds, timings_.inference_seconds,
      timings_.calibration_seconds, timings_.total_seconds());
  out += StrFormat("documents: %zu processed, %zu retried, %zu quarantined\n",
                   run_stats_.documents_processed, run_stats_.extractor_retries,
                   run_stats_.documents_quarantined);
  for (const QuarantinedDocument& q : run_stats_.quarantined) {
    out += StrFormat("  quarantined '%s': %s\n", q.document_id.c_str(),
                     q.error.ToString().c_str());
  }
  return out;
}

Status DeepDivePipeline::RunInference() {
  const FactorGraph* graph = &grounder_->graph();
  if (!inference_materialized_) {
    if (inference_ == nullptr) {
      // The warm-up node constructs inference_ on the normal Run() path;
      // this fallback keeps RunInference self-contained.
      chosen_strategy_ = PickStrategy();
      IncrementalOptions opts = options_.inference;
      opts.clamp_evidence = false;  // probabilities for labeled tuples too
      if (run_dir_ != nullptr) {
        opts.checkpoint_path = run_dir_->InferenceSnapshotPath();
      }
      inference_ =
          std::make_unique<IncrementalInference>(graph, chosen_strategy_, opts);
    }
    DD_RETURN_IF_ERROR(inference_->Materialize());
    marginals_ = inference_->marginals();
    inference_materialized_ = true;
    return Status::OK();
  }
  DD_ASSIGN_OR_RETURN(marginals_,
                      inference_->Update(graph, grounder_->changed_vars()));
  return Status::OK();
}

Result<std::vector<std::pair<Tuple, double>>> DeepDivePipeline::Marginals(
    const std::string& relation) const {
  if (!has_run_) return Status::Internal("Run() first");
  const RelationDecl* decl = program_.FindDecl(relation);
  if (decl == nullptr || !decl->is_query) {
    return Status::NotFound("not a query relation: " + relation);
  }
  DD_ASSIGN_OR_RETURN(const Table* table, catalog_.GetTable(relation));
  std::vector<std::pair<Tuple, double>> out;
  const auto& vars = grounder_->var_info();
  for (size_t v = 0; v < vars.size() && v < marginals_.size(); ++v) {
    if (!vars[v].live || vars[v].relation != relation) continue;
    out.emplace_back(table->row(vars[v].row_id), marginals_[v]);
  }
  return out;
}

Result<std::vector<Tuple>> DeepDivePipeline::Extractions(
    const std::string& relation) const {
  DD_ASSIGN_OR_RETURN(auto marginals, Marginals(relation));
  std::vector<Tuple> out;
  for (auto& [tuple, prob] : marginals) {
    if (prob >= options_.threshold) out.push_back(std::move(tuple));
  }
  return out;
}

Result<double> DeepDivePipeline::ProbabilityOf(const std::string& relation,
                                               const Tuple& tuple) const {
  if (!has_run_) return Status::Internal("Run() first");
  int64_t var = grounder_->VarIdFor(relation, tuple);
  if (var < 0 || static_cast<size_t>(var) >= marginals_.size()) {
    return Status::NotFound("tuple is not a live candidate of " + relation);
  }
  return marginals_[static_cast<size_t>(var)];
}

Status DeepDivePipeline::WriteMarginalTables() {
  if (!has_run_) return Status::Internal("Run() first");
  for (const RelationDecl& decl : program_.declarations) {
    if (!decl.is_query) continue;
    std::string name = decl.name + "__marginals";
    std::vector<Column> columns = decl.schema.columns();
    columns.push_back(Column{"prob", ValueType::kDouble});
    if (catalog_.HasTable(name)) DD_RETURN_IF_ERROR(catalog_.DropTable(name));
    DD_ASSIGN_OR_RETURN(Table * out, catalog_.CreateTable(name, Schema(columns)));
    DD_ASSIGN_OR_RETURN(auto marginals, Marginals(decl.name));
    for (const auto& [tuple, prob] : marginals) {
      Tuple row = tuple;
      row.Append(Value::Double(prob));
      DD_RETURN_IF_ERROR(out->Insert(std::move(row)).status());
    }
  }
  return Status::OK();
}

Status DeepDivePipeline::PublishEpoch(const std::string& dir) {
  if (!has_run_) return Status::Internal("Run() first");
  const FactorGraph& graph = grounder_->graph();
  if (marginals_.size() != graph.num_variables()) {
    return Status::Internal("marginals do not cover the grounded graph");
  }
  const auto& info = grounder_->var_info();
  std::vector<EpochVarEntry> vars;
  vars.reserve(info.size());
  for (const VarInfo& v : info) {
    vars.push_back(EpochVarEntry{v.relation, v.row_id, v.live});
  }

  EpochDirectory epochs(dir);
  DD_RETURN_IF_ERROR(epochs.Create());
  uint64_t next_id = 1;
  Result<uint64_t> current = epochs.CurrentEpochId();
  if (current.ok()) {
    next_id = *current + 1;
  } else if (current.status().code() != StatusCode::kNotFound) {
    return current.status();
  }
  std::string bytes = EncodeEpochSnapshot(graph, marginals_, vars, next_id);
  DD_RETURN_IF_ERROR(epochs.Publish(next_id, bytes));
  DD_LOG(Info) << "published serving epoch " << next_id << " ("
               << graph.num_variables() << " variables) to " << dir;
  return Status::OK();
}

Result<DeepDivePipeline::CalibrationPair> DeepDivePipeline::Calibration(
    const std::string& relation) const {
  if (!has_run_) return Status::Internal("Run() first");
  const RelationDecl* decl = program_.FindDecl(relation);
  if (decl == nullptr || !decl->is_query) {
    return Status::NotFound("not a query relation: " + relation);
  }
  const auto& vars = grounder_->var_info();
  const FactorGraph& graph = grounder_->graph();

  // Test set: held-out labels of this relation.
  std::vector<double> test_probs;
  std::vector<int> test_truth;
  for (const auto& [var, label] : grounder_->holdout()) {
    if (var >= marginals_.size() || vars[var].relation != relation) continue;
    test_probs.push_back(marginals_[var]);
    test_truth.push_back(label ? 1 : 0);
  }
  // Train set: clamped evidence of this relation (marginals come from the
  // unclamped inference pass, so they are informative, not pinned).
  std::vector<double> train_probs;
  std::vector<int> train_truth;
  for (uint32_t v = 0; v < graph.num_variables() && v < marginals_.size(); ++v) {
    if (!vars[v].live || vars[v].relation != relation) continue;
    if (!graph.is_evidence(v)) continue;
    train_probs.push_back(marginals_[v]);
    train_truth.push_back(graph.evidence_value(v) ? 1 : 0);
  }

  CalibrationPair out;
  out.test = CalibrationReport::Build(test_probs, test_truth);
  out.train = CalibrationReport::Build(train_probs, train_truth);
  out.num_test = test_probs.size();
  out.num_train = train_probs.size();
  return out;
}

Result<std::string> DeepDivePipeline::SupervisionWarnings() const {
  if (grounder_ == nullptr) return Status::Internal("Run() first");
  auto stats = SupervisionDiagnostics::Analyze(*grounder_);
  return SupervisionDiagnostics::Report(stats);
}

const GroundingStats& DeepDivePipeline::grounding_stats() const {
  static const GroundingStats kEmpty;
  return grounder_ == nullptr ? kEmpty : grounder_->stats();
}

}  // namespace dd
