#include "core/feature_selection.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace dd {

Result<std::vector<SelectedFeature>> FeatureSelector::Run(
    Grounder* grounder, const FeatureSelectionOptions& options) {
  FactorGraph* graph = grounder->mutable_graph();

  LearnOptions learn = options.learn;
  learn.l2 = options.selection_l2;
  Learner learner(graph);
  DD_RETURN_IF_ERROR(learner.Learn(learn));

  std::vector<SelectedFeature> out;
  for (uint32_t w = 0; w < graph->num_weights(); ++w) {
    const Weight& weight = graph->weight(w);
    if (weight.is_fixed) continue;  // priors/rules are not features
    SelectedFeature feature;
    feature.weight_id = w;
    feature.key = grounder->WeightKey(w);
    feature.learned_weight = weight.value;
    feature.observations = grounder->weight_observations()[w];
    feature.kept = feature.observations >= options.min_observations &&
                   std::fabs(feature.learned_weight) >= options.min_abs_weight;
    out.push_back(std::move(feature));
  }
  std::sort(out.begin(), out.end(), [](const SelectedFeature& a,
                                       const SelectedFeature& b) {
    return std::fabs(a.learned_weight) > std::fabs(b.learned_weight);
  });
  return out;
}

std::vector<std::string> FeatureSelector::KeptKeys(
    const std::vector<SelectedFeature>& all) {
  std::vector<std::string> out;
  for (const SelectedFeature& f : all) {
    if (f.kept) out.push_back(f.key);
  }
  return out;
}

std::string FeatureSelector::Report(const std::vector<SelectedFeature>& all,
                                    size_t max_rows) {
  size_t kept = 0;
  for (const SelectedFeature& f : all) kept += f.kept;
  std::string out = StrFormat("feature selection: kept %zu of %zu proposed\n", kept,
                              all.size());
  size_t shown = 0;
  for (const SelectedFeature& f : all) {
    if (shown++ >= max_rows) break;
    out += StrFormat("  %s w=%+7.3f n=%-5llu %s\n", f.kept ? "KEEP " : "prune",
                     f.learned_weight, static_cast<unsigned long long>(f.observations),
                     f.key.c_str());
  }
  return out;
}

}  // namespace dd
