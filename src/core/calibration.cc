#include "core/calibration.h"

#include <cmath>

#include "util/string_util.h"

namespace dd {

double CalibrationBucket::Accuracy() const {
  if (num_with_truth == 0) return std::nan("");
  return static_cast<double>(num_actually_true) / num_with_truth;
}

CalibrationReport CalibrationReport::Build(const std::vector<double>& probabilities,
                                           const std::vector<int>& truth,
                                           int num_buckets) {
  CalibrationReport report;
  if (num_buckets < 1) num_buckets = 1;
  report.buckets_.resize(static_cast<size_t>(num_buckets));
  for (int b = 0; b < num_buckets; ++b) {
    report.buckets_[b].lo = static_cast<double>(b) / num_buckets;
    report.buckets_[b].hi = static_cast<double>(b + 1) / num_buckets;
  }
  for (size_t i = 0; i < probabilities.size(); ++i) {
    double p = probabilities[i];
    int b = static_cast<int>(p * num_buckets);
    if (b >= num_buckets) b = num_buckets - 1;
    if (b < 0) b = 0;
    CalibrationBucket& bucket = report.buckets_[static_cast<size_t>(b)];
    bucket.num_predictions++;
    if (i < truth.size() && truth[i] >= 0) {
      bucket.num_with_truth++;
      if (truth[i] == 1) bucket.num_actually_true++;
    }
  }
  return report;
}

double CalibrationReport::MaxCalibrationGap() const {
  double gap = 0.0;
  for (const CalibrationBucket& b : buckets_) {
    if (b.num_with_truth == 0) continue;
    double mid = (b.lo + b.hi) / 2;
    double diff = std::fabs(b.Accuracy() - mid);
    if (diff > gap) gap = diff;
  }
  return gap;
}

double CalibrationReport::ExtremeMassFraction() const {
  size_t total = 0, extreme = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    total += buckets_[i].num_predictions;
    if (i == 0 || i + 1 == buckets_.size()) extreme += buckets_[i].num_predictions;
  }
  return total == 0 ? 0.0 : static_cast<double>(extreme) / total;
}

std::string CalibrationReport::ToText() const {
  std::string out;
  out += "(a) Calibration: predicted bucket -> empirical accuracy\n";
  for (const CalibrationBucket& b : buckets_) {
    out += StrFormat("  [%.1f,%.1f) ", b.lo, b.hi);
    if (b.num_with_truth == 0) {
      out += "(no labeled predictions)\n";
      continue;
    }
    double acc = b.Accuracy();
    out += StrFormat("acc=%.2f  n=%-6zu |", acc, b.num_with_truth);
    int stars = static_cast<int>(acc * 40 + 0.5);
    out.append(static_cast<size_t>(stars), '*');
    out += '\n';
  }
  size_t max_count = 1;
  for (const CalibrationBucket& b : buckets_) {
    if (b.num_predictions > max_count) max_count = b.num_predictions;
  }
  out += "(b/c) Probability histogram (all predictions)\n";
  for (const CalibrationBucket& b : buckets_) {
    out += StrFormat("  [%.1f,%.1f) %-7zu |", b.lo, b.hi, b.num_predictions);
    int bars = static_cast<int>(40.0 * b.num_predictions / max_count + 0.5);
    out.append(static_cast<size_t>(bars), '#');
    out += '\n';
  }
  return out;
}

}  // namespace dd
