#include "core/features.h"

#include <algorithm>

#include "util/string_util.h"

namespace dd {

namespace {

/// Orders the pair so the left mention comes first; returns the token
/// gap [gap_begin, gap_end).
void GapBetween(const Mention& m1, const Mention& m2, int* gap_begin, int* gap_end) {
  const Mention& left = m1.token_begin <= m2.token_begin ? m1 : m2;
  const Mention& right = m1.token_begin <= m2.token_begin ? m2 : m1;
  *gap_begin = left.token_end;
  *gap_end = right.token_begin;
  if (*gap_end < *gap_begin) *gap_end = *gap_begin;  // overlapping mentions
}

}  // namespace

std::string PhraseBetween(const Sentence& sentence, const Mention& m1,
                          const Mention& m2) {
  int begin = 0, end = 0;
  GapBetween(m1, m2, &begin, &end);
  std::string out;
  for (int i = begin; i < end && i < static_cast<int>(sentence.tokens.size()); ++i) {
    if (!out.empty()) out += ' ';
    out += ToLower(sentence.tokens[static_cast<size_t>(i)].text);
  }
  return out;
}

std::vector<std::string> BagOfWordsBetween(const Sentence& sentence, const Mention& m1,
                                           const Mention& m2) {
  int begin = 0, end = 0;
  GapBetween(m1, m2, &begin, &end);
  std::vector<std::string> out;
  for (int i = begin; i < end && i < static_cast<int>(sentence.tokens.size()); ++i) {
    out.push_back("word=" + ToLower(sentence.tokens[static_cast<size_t>(i)].text));
  }
  return out;
}

std::vector<std::string> WindowFeatures(const Sentence& sentence, const Mention& m,
                                        int window) {
  std::vector<std::string> out;
  const int n = static_cast<int>(sentence.tokens.size());
  for (int k = 1; k <= window; ++k) {
    int left = m.token_begin - k;
    if (left >= 0) {
      out.push_back(StrFormat("left%d=", k) +
                    ToLower(sentence.tokens[static_cast<size_t>(left)].text));
    }
    int right = m.token_end + k - 1;
    if (right < n) {
      out.push_back(StrFormat("right%d=", k) +
                    ToLower(sentence.tokens[static_cast<size_t>(right)].text));
    }
  }
  return out;
}

std::string PosSequenceBetween(const Sentence& sentence, const Mention& m1,
                               const Mention& m2) {
  int begin = 0, end = 0;
  GapBetween(m1, m2, &begin, &end);
  std::string out = "pos_between=";
  for (int i = begin; i < end && i < static_cast<int>(sentence.tokens.size()); ++i) {
    if (i > begin) out += ' ';
    out += sentence.tokens[static_cast<size_t>(i)].pos;
  }
  return out;
}

std::string DistanceFeature(const Mention& m1, const Mention& m2) {
  int begin = 0, end = 0;
  GapBetween(m1, m2, &begin, &end);
  int gap = end - begin;
  if (gap == 0) return "dist=adjacent";
  if (gap <= 3) return "dist=short";
  if (gap <= 8) return "dist=medium";
  return "dist=long";
}

std::vector<std::string> RelationFeatureTemplates(const Sentence& sentence,
                                                  const Mention& m1, const Mention& m2,
                                                  int window) {
  std::vector<std::string> out;
  std::string phrase = PhraseBetween(sentence, m1, m2);
  if (!phrase.empty() && phrase.size() < 64) out.push_back("phrase=" + phrase);
  for (auto& f : BagOfWordsBetween(sentence, m1, m2)) out.push_back(std::move(f));
  out.push_back(PosSequenceBetween(sentence, m1, m2));
  out.push_back(DistanceFeature(m1, m2));
  const Mention& left = m1.token_begin <= m2.token_begin ? m1 : m2;
  const Mention& right = m1.token_begin <= m2.token_begin ? m2 : m1;
  for (auto& f : WindowFeatures(sentence, left, window)) {
    out.push_back("m1_" + std::move(f));
  }
  for (auto& f : WindowFeatures(sentence, right, window)) {
    out.push_back("m2_" + std::move(f));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dd
