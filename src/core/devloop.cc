#include "core/devloop.h"

#include "util/string_util.h"
#include "util/timer.h"

namespace dd {

Result<IterationRecord> DevelopmentLoop::RunIteration(const std::string& action) {
  int iteration = static_cast<int>(history_.size());
  Stopwatch watch;
  DD_ASSIGN_OR_RETURN(last_pipeline_, factory_(iteration));
  DD_RETURN_IF_ERROR(last_pipeline_->Run());
  DD_ASSIGN_OR_RETURN(auto extractions, last_pipeline_->Extractions(relation_));

  IterationRecord record;
  record.iteration = iteration;
  record.action = action;
  record.metrics = Evaluate(extractions, truth_);
  record.seconds = watch.Seconds();
  record.num_factors = last_pipeline_->grounding_stats().num_factors;
  record.num_weights = last_pipeline_->grounding_stats().num_weights;
  history_.push_back(record);
  return record;
}

std::string DevelopmentLoop::ToText() const {
  std::string out =
      "iter  precision  recall   F1      factors  weights  action\n";
  for (const IterationRecord& r : history_) {
    out += StrFormat("%-4d  %.3f      %.3f    %.3f   %-8zu %-8zu %s\n", r.iteration,
                     r.metrics.precision, r.metrics.recall, r.metrics.f1,
                     r.num_factors, r.num_weights, r.action.c_str());
  }
  return out;
}

}  // namespace dd
