#ifndef DEEPDIVE_CORE_PIPELINE_H_
#define DEEPDIVE_CORE_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/udf.h"
#include "ddlog/ast.h"
#include "grounding/grounder.h"
#include "inference/incremental.h"
#include "inference/learner.h"
#include "nlp/document.h"
#include "storage/catalog.h"
#include "util/result.h"

namespace dd {

/// Collects the tuples a candidate-generation extractor produces. On the
/// first Run() emissions are bulk-loaded; on later runs they become
/// base-relation deltas for incremental grounding (§4.1).
class TupleEmitter {
 public:
  /// Queue an insertion into `relation`. Type checking happens when the
  /// batch is applied.
  void Emit(const std::string& relation, Tuple tuple);

  const std::map<std::string, std::vector<Tuple>>& emitted() const { return emitted_; }

 private:
  std::map<std::string, std::vector<Tuple>> emitted_;
};

/// A candidate-generation / supervision UDF (§3 phase 1 and 2): reads an
/// annotated document, writes tuples. Must be deterministic.
using Extractor = std::function<Status(const Document&, TupleEmitter*)>;

/// Per-phase wall-clock breakdown (the quantities of Figure 2).
struct PhaseTimings {
  double extraction_seconds = 0;  ///< candidate generation + feature extraction UDFs
  double grounding_seconds = 0;   ///< datalog evaluation + factor-graph build
  double learning_seconds = 0;
  double inference_seconds = 0;

  double total_seconds() const {
    return extraction_seconds + grounding_seconds + learning_seconds +
           inference_seconds;
  }
};

struct PipelineOptions {
  LearnOptions learn;
  IncrementalOptions inference;
  /// Output threshold (§3.4): tuples with marginal >= threshold go into
  /// the output database.
  double threshold = 0.9;
  /// Hint for the materialization-strategy optimizer (§4.2): how many
  /// future update batches the developer anticipates.
  int anticipated_changes = 0;
  /// Fraction of labeled candidates held out of training for Fig. 5's
  /// test-set calibration (0 = train on all labels).
  double holdout_fraction = 0.0;
  /// Force a strategy instead of consulting the optimizer.
  enum class Strategy { kAuto, kSampling, kVariational };
  Strategy strategy = Strategy::kAuto;
  /// Re-run weight learning on incremental updates (full runs always
  /// learn). Off by default: incremental updates reuse learned weights.
  bool relearn_on_update = false;
  bool html_documents = false;
};

/// The end-to-end DeepDive system (§3): documents in, probabilistic
/// database out. Usage:
///
///   DeepDivePipeline pipeline(options);
///   pipeline.LoadProgram(ddlog_source);
///   pipeline.RegisterExtractor(my_candidate_extractor);
///   pipeline.AddDocument("doc1", text);
///   pipeline.Run();
///   auto output = pipeline.Extractions("MarriedCandidate");
///
/// Adding more documents (or calling ApplyBaseDeltas) after the first
/// Run() triggers the incremental path: DRed grounding plus warm-started
/// inference, exactly the engineering-loop workflow of §5.
class DeepDivePipeline {
 public:
  explicit DeepDivePipeline(PipelineOptions options = PipelineOptions());
  ~DeepDivePipeline();

  DeepDivePipeline(const DeepDivePipeline&) = delete;
  DeepDivePipeline& operator=(const DeepDivePipeline&) = delete;

  /// Parse + analyze the DDlog program. Must precede Run().
  Status LoadProgram(std::string_view ddlog_source);

  /// Register custom weight UDFs before Run().
  UdfRegistry* udfs() { return &udfs_; }
  /// Direct access to the relational store (e.g. to bulk-load KB tables
  /// used by distant supervision rules).
  Catalog* catalog() { return &catalog_; }

  void RegisterExtractor(Extractor extractor);

  /// Queue a document for (incremental) processing on the next Run().
  Status AddDocument(std::string id, const std::string& text);

  /// Queue raw base-relation deltas (insertions/deletions) for the next
  /// Run() — the path for non-document updates such as a grown KB.
  void QueueDelta(const std::string& relation, Tuple tuple, int64_t count);

  /// Execute: extraction -> grounding -> learning -> inference ->
  /// thresholding. First call runs everything; later calls run the
  /// incremental path over queued documents/deltas.
  Status Run();

  /// Marginal probability of every live tuple of a query relation.
  Result<std::vector<std::pair<Tuple, double>>> Marginals(
      const std::string& relation) const;

  /// Tuples whose marginal clears the threshold — the output database.
  Result<std::vector<Tuple>> Extractions(const std::string& relation) const;

  /// Marginal of one tuple; NotFound if it is not a live candidate.
  Result<double> ProbabilityOf(const std::string& relation, const Tuple& tuple) const;

  /// Write `<relation>__marginals` tables (schema + prob column) so the
  /// output is queryable like any other relation (§3.4).
  Status WriteMarginalTables();

  /// Fig. 5's two diagrams for one query relation: `test` is built from
  /// the held-out labeled candidates (requires holdout_fraction > 0),
  /// `train` from the clamped evidence candidates.
  struct CalibrationPair {
    CalibrationReport test;
    CalibrationReport train;
    size_t num_test = 0;
    size_t num_train = 0;
  };
  Result<CalibrationPair> Calibration(const std::string& relation) const;

  /// §8 failure-mode scan: features nearly identical to a supervision
  /// rule (training places all weight on them and generalization dies).
  /// Returns the human-readable warning report ("" when clean).
  Result<std::string> SupervisionWarnings() const;

  const PhaseTimings& timings() const { return timings_; }
  const GroundingStats& grounding_stats() const;
  Grounder* grounder() { return grounder_.get(); }
  const std::vector<Document>& documents() const { return documents_; }
  MaterializationStrategy chosen_strategy() const { return chosen_strategy_; }
  bool has_run() const { return has_run_; }

 private:
  Status RunExtraction(std::map<std::string, DeltaSet>* deltas);
  Status RunInference();
  MaterializationStrategy PickStrategy() const;

  PipelineOptions options_;
  DdlogProgram program_;
  bool program_loaded_ = false;
  Catalog catalog_;
  UdfRegistry udfs_;
  std::vector<Extractor> extractors_;
  std::vector<Document> documents_;
  size_t next_document_ = 0;  ///< first unprocessed document
  std::map<std::string, DeltaSet> queued_deltas_;
  std::unique_ptr<Grounder> grounder_;
  std::unique_ptr<IncrementalInference> inference_;
  std::vector<double> marginals_;
  MaterializationStrategy chosen_strategy_ = MaterializationStrategy::kSampling;
  PhaseTimings timings_;
  bool has_run_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_PIPELINE_H_
