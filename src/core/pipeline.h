#ifndef DEEPDIVE_CORE_PIPELINE_H_
#define DEEPDIVE_CORE_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/checkpoint.h"
#include "core/udf.h"
#include "ddlog/ast.h"
#include "dist/coordinator.h"
#include "grounding/grounder.h"
#include "inference/incremental.h"
#include "inference/learner.h"
#include "nlp/document.h"
#include "storage/catalog.h"
#include "util/result.h"

namespace dd {

class StreamIngester;  // stream/ingester.h
class ByteSource;      // stream/stream.h

/// Collects the tuples a candidate-generation extractor produces. On the
/// first Run() emissions are bulk-loaded; on later runs they become
/// base-relation deltas for incremental grounding (§4.1).
class TupleEmitter {
 public:
  /// Queue an insertion into `relation`. Type checking happens when the
  /// batch is applied.
  void Emit(const std::string& relation, Tuple tuple);

  const std::map<std::string, std::vector<Tuple>>& emitted() const { return emitted_; }

 private:
  std::map<std::string, std::vector<Tuple>> emitted_;
};

/// A candidate-generation / supervision UDF (§3 phase 1 and 2): reads an
/// annotated document, writes tuples. Must be deterministic.
using Extractor = std::function<Status(const Document&, TupleEmitter*)>;

/// Per-phase wall-clock breakdown (the quantities of Figure 2).
struct PhaseTimings {
  double extraction_seconds = 0;  ///< candidate generation + feature extraction UDFs
  double grounding_seconds = 0;   ///< datalog evaluation + factor-graph build
  double learning_seconds = 0;
  double inference_seconds = 0;
  double calibration_seconds = 0;  ///< Fig. 5 probability bucketing per query relation

  double total_seconds() const {
    return extraction_seconds + grounding_seconds + learning_seconds +
           inference_seconds + calibration_seconds;
  }
};

/// One document whose extractors failed twice (initial run + one retry)
/// and was therefore skipped rather than allowed to kill the run.
struct QuarantinedDocument {
  std::string document_id;
  Status error;  ///< the second (post-retry) failure
};

/// Robustness counters for the last Run() (§3's observation that UDFs
/// are the least reliable part of a KBC system).
struct RunStats {
  size_t documents_processed = 0;   ///< documents whose extractors succeeded
  size_t documents_quarantined = 0;
  size_t extractor_retries = 0;     ///< documents that needed a second attempt
  std::vector<QuarantinedDocument> quarantined;
};

struct PipelineOptions {
  LearnOptions learn;
  IncrementalOptions inference;
  /// Output threshold (§3.4): tuples with marginal >= threshold go into
  /// the output database.
  double threshold = 0.9;
  /// Hint for the materialization-strategy optimizer (§4.2): how many
  /// future update batches the developer anticipates.
  int anticipated_changes = 0;
  /// Fraction of labeled candidates held out of training for Fig. 5's
  /// test-set calibration (0 = train on all labels).
  double holdout_fraction = 0.0;
  /// Force a strategy instead of consulting the optimizer.
  enum class Strategy { kAuto, kSampling, kVariational };
  Strategy strategy = Strategy::kAuto;
  /// Re-run weight learning on incremental updates (full runs always
  /// learn). Off by default: incremental updates reuse learned weights.
  bool relearn_on_update = false;
  bool html_documents = false;
  /// Extractor hardening: a document whose extractors fail is retried
  /// once and then quarantined (skipped, counted, reported). When more
  /// than this fraction of a batch ends up quarantined the run itself
  /// fails with the first quarantine error — a systematically broken
  /// extractor should not silently produce an empty KB.
  double max_quarantine_fraction = 0.5;
  /// Worker threads shared by the run's phase scheduler and the
  /// grounding morsel scans (one pool). 0 = hardware concurrency; 1 =
  /// strictly sequential phases — the oracle the differential tests
  /// compare against. Results (factor-graph bytes, learned weights,
  /// marginals) are byte-identical at every setting.
  size_t num_threads = 0;
};

/// The end-to-end DeepDive system (§3): documents in, probabilistic
/// database out. Usage:
///
///   DeepDivePipeline pipeline(options);
///   pipeline.LoadProgram(ddlog_source);
///   pipeline.RegisterExtractor(my_candidate_extractor);
///   pipeline.AddDocument("doc1", text);
///   pipeline.Run();
///   auto output = pipeline.Extractions("MarriedCandidate");
///
/// Adding more documents (or calling ApplyBaseDeltas) after the first
/// Run() triggers the incremental path: DRed grounding plus warm-started
/// inference, exactly the engineering-loop workflow of §5.
class DeepDivePipeline {
 public:
  explicit DeepDivePipeline(PipelineOptions options = PipelineOptions());
  ~DeepDivePipeline();

  DeepDivePipeline(const DeepDivePipeline&) = delete;
  DeepDivePipeline& operator=(const DeepDivePipeline&) = delete;

  /// Parse + analyze the DDlog program. Must precede Run().
  Status LoadProgram(std::string_view ddlog_source);

  /// Register custom weight UDFs before Run().
  UdfRegistry* udfs() { return &udfs_; }
  /// Direct access to the relational store (e.g. to bulk-load KB tables
  /// used by distant supervision rules).
  Catalog* catalog() { return &catalog_; }

  void RegisterExtractor(Extractor extractor);

  /// Queue a document for (incremental) processing on the next Run().
  Status AddDocument(std::string id, const std::string& text);

  /// Queue raw base-relation deltas (insertions/deletions) for the next
  /// Run() — the path for non-document updates such as a grown KB.
  void QueueDelta(const std::string& relation, Tuple tuple, int64_t count);

  /// Streaming ingestion (DESIGN.md §14): drive `ingester` over `source`
  /// with bounded memory and backpressure, folding every extracted tuple
  /// into the pipeline's queued base-relation deltas. The next Run()
  /// then grounds them exactly as if QueueDelta had been called once per
  /// emission — the batch/stream differential contract.
  Status IngestStream(StreamIngester* ingester, ByteSource* source);

  /// Durability: give the pipeline a run directory. Run() then
  /// checkpoints learning and inference into it (crash-consistent
  /// snapshots + manifest) and starts from a clean slate, clearing any
  /// stale snapshots. Call before Run().
  Status SetRunDirectory(const std::string& dir);

  /// Recovery: like SetRunDirectory, but existing snapshots are kept and
  /// reused, so a run killed mid-learning/mid-inference continues where
  /// it stopped — bit-identical to an uninterrupted run. Set up the same
  /// program/extractors/documents first, then call ResumeFrom() followed
  /// by Run(). The manifest's graph fingerprint is verified once the
  /// graph is grounded; a mismatch fails with InvalidArgument.
  Status ResumeFrom(const std::string& dir);

  /// Execute: extraction -> grounding -> learning -> inference ->
  /// thresholding. First call runs everything; later calls run the
  /// incremental path over queued documents/deltas.
  Status Run();

  /// Like Run(), but learning + inference execute as a sharded
  /// distributed run (DESIGN.md §15): the grounded graph is partitioned,
  /// one worker per shard runs epoch-synchronous learning with model
  /// averaging followed by exchange-synchronous sampling, and the
  /// assembled marginals land exactly where Run()'s would. Only the
  /// topology fields of `dist` are honored (num_shards, launch mode,
  /// endpoint, partition, sweeps_per_exchange, restart budget, fault
  /// specs); the learning/inference schedule always comes from
  /// PipelineOptions, so a num_shards == 1 call is bit-identical to
  /// Run() with the sampling strategy. With a run directory set, shards
  /// checkpoint into it and a killed shard resumes bit-identically.
  /// Learning + inference wall-clock is reported jointly under
  /// timings().inference_seconds.
  Result<DistributedResult> RunDistributed(const DistributedOptions& dist);

  /// Robustness counters for the last Run().
  const RunStats& run_stats() const { return run_stats_; }

  /// Human-readable one-screen report of the last Run(): phase timings,
  /// documents processed/retried/quarantined, and each quarantined
  /// document's error.
  std::string RunSummary() const;

  /// Marginal probability of every live tuple of a query relation.
  Result<std::vector<std::pair<Tuple, double>>> Marginals(
      const std::string& relation) const;

  /// Tuples whose marginal clears the threshold — the output database.
  Result<std::vector<Tuple>> Extractions(const std::string& relation) const;

  /// Marginal of one tuple; NotFound if it is not a live candidate.
  Result<double> ProbabilityOf(const std::string& relation, const Tuple& tuple) const;

  /// Write `<relation>__marginals` tables (schema + prob column) so the
  /// output is queryable like any other relation (§3.4).
  Status WriteMarginalTables();

  /// Publish the last Run()'s graph + marginals as a serving epoch into
  /// `dir` (created if missing). The epoch id is one past the
  /// directory's CURRENT, so repeated runs produce a monotone sequence a
  /// KbcServer can follow. Requires a completed Run().
  Status PublishEpoch(const std::string& dir);

  /// Fig. 5's two diagrams for one query relation: `test` is built from
  /// the held-out labeled candidates (requires holdout_fraction > 0),
  /// `train` from the clamped evidence candidates.
  struct CalibrationPair {
    CalibrationReport test;
    CalibrationReport train;
    size_t num_test = 0;
    size_t num_train = 0;
  };
  Result<CalibrationPair> Calibration(const std::string& relation) const;

  /// Calibration pairs computed by Run()'s calibration phase, one per
  /// query relation (the per-run Fig. 5 inputs).
  const std::map<std::string, CalibrationPair>& run_calibration() const {
    return run_calibration_;
  }

  /// §8 failure-mode scan: features nearly identical to a supervision
  /// rule (training places all weight on them and generalization dies).
  /// Returns the human-readable warning report ("" when clean).
  Result<std::string> SupervisionWarnings() const;

  const PhaseTimings& timings() const { return timings_; }
  const GroundingStats& grounding_stats() const;
  Grounder* grounder() { return grounder_.get(); }
  const std::vector<Document>& documents() const { return documents_; }
  MaterializationStrategy chosen_strategy() const { return chosen_strategy_; }
  bool has_run() const { return has_run_; }

 private:
  Status RunExtraction(std::map<std::string, DeltaSet>* deltas);
  Status ExtractDocument(const Document& doc, TupleEmitter* emitter);
  /// Bulk-load + ground the first batch, or apply deltas incrementally —
  /// the body of Run()'s grounding node, shared with RunDistributed().
  Status RunGrounding(const std::map<std::string, DeltaSet>& deltas);
  Status RunInference();
  Status RunCalibration();
  MaterializationStrategy PickStrategy() const;
  /// Fresh run: reset the run directory; resume: verify the manifest's
  /// graph fingerprint. Called once the graph is grounded.
  Status PrepareRunDirectory();
  Status UpdateManifestPhase(const std::string& phase);

  PipelineOptions options_;
  DdlogProgram program_;
  bool program_loaded_ = false;
  Catalog catalog_;
  UdfRegistry udfs_;
  std::vector<Extractor> extractors_;
  std::vector<Document> documents_;
  size_t next_document_ = 0;  ///< first unprocessed document
  std::map<std::string, DeltaSet> queued_deltas_;
  std::unique_ptr<ThreadPool> pool_;  ///< phase scheduler + grounding morsels
  std::unique_ptr<Grounder> grounder_;
  std::unique_ptr<IncrementalInference> inference_;
  /// True once inference_ holds materialized state for the current
  /// pipeline (gates Materialize-vs-Update; a merely prewarmed instance
  /// is rebuilt freely).
  bool inference_materialized_ = false;
  std::vector<double> marginals_;
  MaterializationStrategy chosen_strategy_ = MaterializationStrategy::kSampling;
  PhaseTimings timings_;
  RunStats run_stats_;
  std::map<std::string, CalibrationPair> run_calibration_;
  std::unique_ptr<RunDirectory> run_dir_;
  bool resuming_ = false;
  bool has_run_ = false;
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_PIPELINE_H_
