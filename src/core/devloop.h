#ifndef DEEPDIVE_CORE_DEVLOOP_H_
#define DEEPDIVE_CORE_DEVLOOP_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/error_analysis.h"
#include "core/pipeline.h"

namespace dd {

/// One pass around Figure 1's engineering iteration loop.
struct IterationRecord {
  int iteration = 0;
  std::string action;  ///< what the engineer changed ("added phrase features")
  EvaluationResult metrics;
  double seconds = 0.0;
  size_t num_factors = 0;
  size_t num_weights = 0;
};

/// Drives the §5 improvement iteration loop in scripted form: each
/// iteration the "engineer" (a pipeline factory parameterized by the
/// iteration number) enables one more fix — a new feature rule, a new
/// supervision rule, a candidate-generator repair — then the loop
/// reruns the system and records precision/recall. The paper's claim is
/// that this process *reliably* improves quality; bench_iteration_quality
/// regenerates that curve.
class DevelopmentLoop {
 public:
  /// Builds the pipeline as it exists at iteration `i` (0-based) and
  /// returns it ready to Run().
  using PipelineFactory =
      std::function<Result<std::unique_ptr<DeepDivePipeline>>(int iteration)>;

  DevelopmentLoop(PipelineFactory factory, std::string relation,
                  std::unordered_set<Tuple, TupleHash> truth)
      : factory_(std::move(factory)),
        relation_(std::move(relation)),
        truth_(std::move(truth)) {}

  /// Run iteration `history().size()` with a description of the change.
  /// Returns the record (also appended to history()).
  Result<IterationRecord> RunIteration(const std::string& action);

  const std::vector<IterationRecord>& history() const { return history_; }

  /// The last iteration's pipeline (for error analysis drill-down).
  DeepDivePipeline* last_pipeline() { return last_pipeline_.get(); }

  /// Render the quality-over-iterations table.
  std::string ToText() const;

 private:
  PipelineFactory factory_;
  std::string relation_;
  std::unordered_set<Tuple, TupleHash> truth_;
  std::vector<IterationRecord> history_;
  std::unique_ptr<DeepDivePipeline> last_pipeline_;
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_DEVLOOP_H_
