#ifndef DEEPDIVE_CORE_DIAGNOSTICS_H_
#define DEEPDIVE_CORE_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "grounding/grounder.h"

namespace dd {

/// Per-feature label-correlation statistics over the evidence variables.
struct FeatureLabelStats {
  uint32_t weight_id = 0;
  std::string key;               ///< weight tying key (feature name)
  uint64_t on_positive = 0;      ///< labeled-true variables carrying it
  uint64_t on_negative = 0;      ///< labeled-false variables carrying it
  uint64_t on_unlabeled = 0;
  double positive_coverage = 0;  ///< fraction of ALL positives it covers
  double purity = 0;             ///< max(pos, neg) / (pos + neg)
  bool suspicious = false;
};

/// Detector for the §8 engineering failure mode: "if the distant
/// supervision rule is identical to or extremely similar to a feature
/// function, standard statistical training procedures will fail badly
/// ... the training procedure will build a model that places all weight
/// on the single feature that overlaps with the supervision rule."
///
/// A feature is flagged when it is (a) observed often enough to matter,
/// (b) label-pure (appears on positives xor negatives), and (c) covers
/// most of one label class — i.e. it *is* the supervision rule in
/// disguise. The fix is the user's (drop the feature or the rule); the
/// point, per the paper, is that the failure is otherwise "extremely
/// hard to detect".
class SupervisionDiagnostics {
 public:
  struct Options {
    uint64_t min_observations = 10;
    double min_coverage = 0.9;  ///< of the label class it is pure for
    double min_purity = 0.999;
  };

  /// Analyze the grounder's current graph. Returns stats for every
  /// weight with at least one labeled observation, suspicious first.
  static std::vector<FeatureLabelStats> Analyze(const Grounder& grounder,
                                                const Options& options);
  static std::vector<FeatureLabelStats> Analyze(const Grounder& grounder) {
    return Analyze(grounder, Options());
  }

  /// Render a warning report ("" when nothing is suspicious).
  static std::string Report(const std::vector<FeatureLabelStats>& stats);
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_DIAGNOSTICS_H_
