#include "core/udf.h"

#include <cmath>

#include "util/string_util.h"

namespace dd {

UdfRegistry::UdfRegistry() { RegisterBuiltinUdfs(this); }

void UdfRegistry::Register(const std::string& name, UdfFn fn) {
  fns_[name] = std::move(fn);
}

Result<Value> UdfRegistry::Call(const std::string& name,
                                const std::vector<Value>& args) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound(StrFormat("no such UDF: '%s' (called with %zu args)",
                                      name.c_str(), args.size()));
  }
  Result<Value> result = it->second(args);
  if (!result.ok()) {
    // Grounding calls UDFs deep inside rule evaluation; without the name
    // and arity the error is undebuggable from the caller's side.
    return Status(result.status().code(),
                  StrFormat("UDF '%s' (%zu args): %s", name.c_str(), args.size(),
                            result.status().message().c_str()));
  }
  return result;
}

void RegisterBuiltinUdfs(UdfRegistry* registry) {
  registry->Register("identity", [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return Status::InvalidArgument("identity expects 1 arg");
    return args[0];
  });
  registry->Register("lower", [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || args[0].type() != ValueType::kString) {
      return Status::InvalidArgument("lower expects 1 string arg");
    }
    return Value::String(ToLower(args[0].AsString()));
  });
  registry->Register("concat", [](const std::vector<Value>& args) -> Result<Value> {
    std::string out;
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += '|';
      out += args[i].ToString();
    }
    return Value::String(std::move(out));
  });
  registry->Register("bucket", [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return Status::InvalidArgument("bucket expects 1 arg");
    double x = 0;
    if (args[0].type() == ValueType::kInt) {
      x = static_cast<double>(args[0].AsInt());
    } else if (args[0].type() == ValueType::kDouble) {
      x = args[0].AsDouble();
    } else {
      return Status::InvalidArgument("bucket expects a numeric arg");
    }
    if (x <= 0) return Value::String("nonpositive");
    int magnitude = static_cast<int>(std::floor(std::log10(x)));
    return Value::String(StrFormat("1e%d", magnitude));
  });
}

}  // namespace dd
