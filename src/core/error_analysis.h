#ifndef DEEPDIVE_CORE_ERROR_ANALYSIS_H_
#define DEEPDIVE_CORE_ERROR_ANALYSIS_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "grounding/grounder.h"
#include "storage/tuple.h"

namespace dd {

/// Precision/recall of an extraction against ground truth.
struct EvaluationResult {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Score `extracted` against the complete `truth` set. Truth tuples the
/// system never extracted count as false negatives — including those the
/// candidate generator missed entirely (§5.2 bug category 1).
EvaluationResult Evaluate(const std::vector<Tuple>& extracted,
                          const std::unordered_set<Tuple, TupleHash>& truth);

/// One failure-mode bucket of the error analysis document (§5.2): a
/// semantic tag applied by the engineer (here: a tagging function),
/// an error count, and sampled examples.
struct FailureBucket {
  std::string tag;
  size_t count = 0;
  std::vector<std::string> examples;  ///< rendered sample errors
};

/// The error analysis document of §5.2 — the engineer's "performance
/// instrumentation tool": true precision/recall, failure modes sorted by
/// frequency, and (when a Grounder is supplied) the per-feature weight
/// and observation-count statistics of §2.5.
class ErrorAnalysis {
 public:
  /// Classifies one error into a failure-mode bucket tag.
  /// `is_false_positive` distinguishes wrong extractions from misses.
  using TagFn = std::function<std::string(const Tuple&, bool is_false_positive)>;

  /// `marginals` holds every candidate with its probability; extractions
  /// are those >= threshold. Truth is the complete gold set.
  static ErrorAnalysis Build(const std::vector<std::pair<Tuple, double>>& marginals,
                             double threshold,
                             const std::unordered_set<Tuple, TupleHash>& truth,
                             const TagFn& tag_fn, size_t examples_per_bucket = 5);

  const EvaluationResult& metrics() const { return metrics_; }

  /// Buckets in descending error-count order — the engineer always
  /// attacks the largest bucket first (§5.2).
  const std::vector<FailureBucket>& buckets() const { return buckets_; }

  /// Render the document; with a grounder, append the feature statistics
  /// (weight value + observation count per feature, flagging features
  /// with very few observations — the §5.2 "insufficient training data"
  /// diagnostic).
  std::string ToText(const Grounder* grounder = nullptr,
                     size_t max_features = 20) const;

 private:
  EvaluationResult metrics_;
  std::vector<FailureBucket> buckets_;
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_ERROR_ANALYSIS_H_
