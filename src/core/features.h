#ifndef DEEPDIVE_CORE_FEATURES_H_
#define DEEPDIVE_CORE_FEATURES_H_

#include <string>
#include <vector>

#include "nlp/document.h"
#include "nlp/ner.h"

namespace dd {

/// The feature library (§5.3): human-understandable feature generators
/// over sentence structure. Every feature is a readable string — that is
/// a deliberate design choice of the system (§2.5 "debuggable decisions")
/// — which becomes a weight-tying key during grounding.

/// Tokens strictly between two mentions, joined by spaces; empty string
/// if the mentions touch or overlap. Order-normalized (left one first).
std::string PhraseBetween(const Sentence& sentence, const Mention& m1,
                          const Mention& m2);

/// "word=<w>" features for every token between the mentions.
std::vector<std::string> BagOfWordsBetween(const Sentence& sentence, const Mention& m1,
                                           const Mention& m2);

/// Window features: "left1=<w>", "left2=<w>", "right1=<w>"... up to
/// `window` tokens on each side of the mention.
std::vector<std::string> WindowFeatures(const Sentence& sentence, const Mention& m,
                                        int window);

/// POS-tag sequence between mentions, e.g. "pos_between=CC PRP$ NN".
std::string PosSequenceBetween(const Sentence& sentence, const Mention& m1,
                               const Mention& m2);

/// Distance bucket between the mentions: "dist=adjacent" (0 tokens),
/// "dist=short" (1-3), "dist=medium" (4-8), "dist=long" (9+).
std::string DistanceFeature(const Mention& m1, const Mention& m2);

/// A feature-template expansion (the "feature library system" of §5.3):
/// the union of phrase-between, bag-of-words, POS-sequence, distance,
/// and window features for a candidate pair. Massive and noisy by
/// design — statistical regularization (L2 in the learner) prunes it.
std::vector<std::string> RelationFeatureTemplates(const Sentence& sentence,
                                                  const Mention& m1, const Mention& m2,
                                                  int window = 2);

}  // namespace dd

#endif  // DEEPDIVE_CORE_FEATURES_H_
