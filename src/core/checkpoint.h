#ifndef DEEPDIVE_CORE_CHECKPOINT_H_
#define DEEPDIVE_CORE_CHECKPOINT_H_

#include <map>
#include <string>

#include "factor/graph.h"
#include "util/result.h"

namespace dd {

/// A pipeline run directory — the durable home of one KBC run:
///
///   <dir>/manifest.snap   META-only snapshot: graph fingerprint, the
///                         last phase known to have completed, seed
///   <dir>/learn.snap      learner checkpoint (written by Learner)
///   <dir>/infer.snap      inference-materialization checkpoint
///   <dir>/shard<k>.snap   distributed shard k's epoch checkpoint
///                         (written by the shard worker, dist/shard.cc)
///
/// Every file is written with the crash-consistent snapshot protocol
/// (temp + fsync + atomic rename), so at any kill point the directory
/// holds a consistent prefix of the run. RunDirectory itself only
/// manages the directory and the manifest; the phase engines own their
/// snapshot formats.
class RunDirectory {
 public:
  explicit RunDirectory(std::string path) : path_(std::move(path)) {}

  /// mkdir if missing (parent must exist). Idempotent.
  Status Create() const;

  const std::string& path() const { return path_; }
  std::string ManifestPath() const { return path_ + "/manifest.snap"; }
  std::string LearnSnapshotPath() const { return path_ + "/learn.snap"; }
  std::string InferenceSnapshotPath() const { return path_ + "/infer.snap"; }
  std::string ShardSnapshotPath(int shard) const {
    return path_ + "/shard" + std::to_string(shard) + ".snap";
  }

  bool HasManifest() const;
  /// Atomic manifest replacement (key=value map, CRC-protected).
  Status WriteManifest(const std::map<std::string, std::string>& kv) const;
  Result<std::map<std::string, std::string>> ReadManifest() const;

  /// Delete all snapshots + manifest — the fresh-run reset that keeps a
  /// stale checkpoint from leaking into an unrelated run.
  Status Clear() const;

  /// Delete only the distributed shard checkpoints (shard<k>.snap for
  /// any k — the shard count of the previous run is unknown, so scan).
  /// The distributed coordinator calls this at the start of a fresh run;
  /// manifest and single-node snapshots are left alone.
  Status ClearShardSnapshots() const;

 private:
  std::string path_;
};

/// Content fingerprint of a factor graph (CRC32C of its text
/// serialization). ResumeFrom() compares this against the manifest to
/// refuse resuming a run directory that belongs to a different graph.
uint32_t GraphFingerprint(const FactorGraph& graph);

}  // namespace dd

#endif  // DEEPDIVE_CORE_CHECKPOINT_H_
