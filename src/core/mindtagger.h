#ifndef DEEPDIVE_CORE_MINDTAGGER_H_
#define DEEPDIVE_CORE_MINDTAGGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/error_analysis.h"
#include "storage/tuple.h"
#include "util/result.h"
#include "util/rng.h"

namespace dd {

/// One item queued for human annotation.
struct AnnotationItem {
  Tuple tuple;
  double probability = 0.0;
  /// -1 = not yet annotated, 0 = marked incorrect, 1 = marked correct.
  int label = -1;
};

/// A Mindtagger-style annotation session (§5.2, ref [45]): DeepDive's
/// precision/recall estimates come from a human marking ~100 sampled
/// extractions (precision sample) and ~100 known-true facts (recall
/// sample). This class manages those samples and turns the annotations
/// into estimates with binomial standard errors — the numbers at the
/// top of the error-analysis document.
class AnnotationSession {
 public:
  /// Sample `sample_size` extractions (probability >= threshold) for
  /// precision annotation, uniformly at random with a fixed seed.
  static AnnotationSession ForPrecision(
      const std::vector<std::pair<Tuple, double>>& marginals, double threshold,
      size_t sample_size, uint64_t seed);

  /// Sample `sample_size` known-true facts for recall annotation (the
  /// human marks whether the system extracted each one — here prefilled
  /// from the marginals, with the human able to override).
  static AnnotationSession ForRecall(
      const std::vector<Tuple>& known_true,
      const std::vector<std::pair<Tuple, double>>& marginals, double threshold,
      size_t sample_size, uint64_t seed);

  const std::vector<AnnotationItem>& items() const { return items_; }
  size_t num_annotated() const;
  size_t num_pending() const { return items_.size() - num_annotated(); }

  /// Record a human judgment for item `index`.
  Status Annotate(size_t index, bool correct);

  /// Fraction marked correct among annotated items, with the binomial
  /// standard error; fails if nothing is annotated yet.
  Result<std::pair<double, double>> Estimate() const;

  /// Render the session for a terminal annotator.
  std::string ToText() const;

 private:
  std::vector<AnnotationItem> items_;
};

}  // namespace dd

#endif  // DEEPDIVE_CORE_MINDTAGGER_H_
