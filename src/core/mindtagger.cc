#include "core/mindtagger.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace dd {

namespace {

/// Reservoir-sample `k` indexes from [0, n).
std::vector<size_t> SampleIndexes(size_t n, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> out;
  for (size_t i = 0; i < n; ++i) {
    if (out.size() < k) {
      out.push_back(i);
    } else {
      size_t j = static_cast<size_t>(rng.NextBounded(i + 1));
      if (j < k) out[j] = i;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

AnnotationSession AnnotationSession::ForPrecision(
    const std::vector<std::pair<Tuple, double>>& marginals, double threshold,
    size_t sample_size, uint64_t seed) {
  std::vector<std::pair<Tuple, double>> extracted;
  for (const auto& [tuple, prob] : marginals) {
    if (prob >= threshold) extracted.emplace_back(tuple, prob);
  }
  AnnotationSession session;
  for (size_t i : SampleIndexes(extracted.size(), sample_size, seed)) {
    session.items_.push_back(AnnotationItem{extracted[i].first, extracted[i].second,
                                            -1});
  }
  return session;
}

AnnotationSession AnnotationSession::ForRecall(
    const std::vector<Tuple>& known_true,
    const std::vector<std::pair<Tuple, double>>& marginals, double threshold,
    size_t sample_size, uint64_t seed) {
  AnnotationSession session;
  for (size_t i : SampleIndexes(known_true.size(), sample_size, seed)) {
    const Tuple& fact = known_true[i];
    double prob = 0.0;
    for (const auto& [tuple, p] : marginals) {
      if (tuple == fact) {
        prob = p;
        break;
      }
    }
    // Prefill: extracted iff above threshold; the human may override.
    session.items_.push_back(AnnotationItem{fact, prob, prob >= threshold ? 1 : 0});
  }
  return session;
}

size_t AnnotationSession::num_annotated() const {
  size_t n = 0;
  for (const AnnotationItem& item : items_) n += item.label >= 0;
  return n;
}

Status AnnotationSession::Annotate(size_t index, bool correct) {
  if (index >= items_.size()) {
    return Status::OutOfRange(StrFormat("item %zu of %zu", index, items_.size()));
  }
  items_[index].label = correct ? 1 : 0;
  return Status::OK();
}

Result<std::pair<double, double>> AnnotationSession::Estimate() const {
  size_t annotated = 0, correct = 0;
  for (const AnnotationItem& item : items_) {
    if (item.label < 0) continue;
    ++annotated;
    correct += item.label == 1;
  }
  if (annotated == 0) return Status::Internal("no annotations yet");
  double p = static_cast<double>(correct) / annotated;
  double stderr_ = std::sqrt(p * (1 - p) / annotated);
  return std::make_pair(p, stderr_);
}

std::string AnnotationSession::ToText() const {
  std::string out = StrFormat("annotation session: %zu items (%zu annotated)\n",
                              items_.size(), num_annotated());
  for (size_t i = 0; i < items_.size(); ++i) {
    const AnnotationItem& item = items_[i];
    out += StrFormat("  [%3zu] %-8s p=%.3f %s\n", i,
                     item.label < 0 ? "?" : (item.label == 1 ? "correct" : "wrong"),
                     item.probability, item.tuple.ToString().c_str());
  }
  auto estimate = Estimate();
  if (estimate.ok()) {
    out += StrFormat("estimate: %.3f +/- %.3f\n", estimate->first, estimate->second);
  }
  return out;
}

}  // namespace dd
