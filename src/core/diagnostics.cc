#include "core/diagnostics.h"

#include <algorithm>

#include "util/string_util.h"

namespace dd {

std::vector<FeatureLabelStats> SupervisionDiagnostics::Analyze(
    const Grounder& grounder, const Options& options) {
  const FactorGraph& graph = grounder.graph();
  const size_t nw = graph.num_weights();

  std::vector<FeatureLabelStats> stats(nw);
  for (uint32_t w = 0; w < nw; ++w) {
    stats[w].weight_id = w;
    stats[w].key = grounder.WeightKey(w);
  }

  uint64_t total_positive = 0;
  uint64_t total_negative = 0;
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    if (!graph.is_evidence(v)) continue;
    if (graph.evidence_value(v)) {
      ++total_positive;
    } else {
      ++total_negative;
    }
  }

  // Attribute each factor to the evidence status of its first literal's
  // variable (feature factors are unary istrue factors on the candidate).
  for (uint32_t f = 0; f < graph.num_factors(); ++f) {
    size_t arity = 0;
    const Literal* literals = graph.factor_literals(f, &arity);
    if (arity == 0) continue;
    uint32_t v = literals[0].var;
    FeatureLabelStats& s = stats[graph.factor_weight(f)];
    if (!graph.is_evidence(v)) {
      ++s.on_unlabeled;
    } else if (graph.evidence_value(v)) {
      ++s.on_positive;
    } else {
      ++s.on_negative;
    }
  }

  for (FeatureLabelStats& s : stats) {
    uint64_t labeled = s.on_positive + s.on_negative;
    if (labeled > 0) {
      s.purity = static_cast<double>(std::max(s.on_positive, s.on_negative)) / labeled;
    }
    if (total_positive > 0 && s.on_positive >= s.on_negative) {
      s.positive_coverage = static_cast<double>(s.on_positive) / total_positive;
    } else if (total_negative > 0) {
      s.positive_coverage = static_cast<double>(s.on_negative) / total_negative;
    }
    s.suspicious = labeled >= options.min_observations &&
                   s.purity >= options.min_purity &&
                   s.positive_coverage >= options.min_coverage;
  }

  // Suspicious first, then by labeled observations.
  std::sort(stats.begin(), stats.end(),
            [](const FeatureLabelStats& a, const FeatureLabelStats& b) {
              if (a.suspicious != b.suspicious) return a.suspicious;
              return a.on_positive + a.on_negative > b.on_positive + b.on_negative;
            });
  // Drop never-labeled features from the report.
  stats.erase(std::remove_if(stats.begin(), stats.end(),
                             [](const FeatureLabelStats& s) {
                               return s.on_positive + s.on_negative == 0;
                             }),
              stats.end());
  return stats;
}

std::string SupervisionDiagnostics::Report(
    const std::vector<FeatureLabelStats>& stats) {
  std::string out;
  for (const FeatureLabelStats& s : stats) {
    if (!s.suspicious) continue;
    if (out.empty()) {
      out += "WARNING: features nearly identical to a supervision rule "
             "(training will place all weight on them; see paper §8):\n";
    }
    out += StrFormat("  %s  (pos %llu, neg %llu, covers %.0f%% of its class)\n",
                     s.key.c_str(), static_cast<unsigned long long>(s.on_positive),
                     static_cast<unsigned long long>(s.on_negative),
                     100.0 * s.positive_coverage);
  }
  return out;
}

}  // namespace dd
