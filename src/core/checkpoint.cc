#include "core/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "factor/io.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace dd {

Status RunDirectory::Create() const {
  if (mkdir(path_.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + path_ + ": " + std::strerror(errno));
  }
  struct stat st;
  if (stat(path_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IoError("run directory path is not a directory: " + path_);
  }
  return Status::OK();
}

bool RunDirectory::HasManifest() const { return FileExists(ManifestPath()); }

Status RunDirectory::WriteManifest(
    const std::map<std::string, std::string>& kv) const {
  Status injected;
  DD_FAILPOINT("checkpoint.manifest", &injected);
  if (!injected.ok()) return injected;
  GraphSnapshot snap;
  snap.meta = kv;
  snap.meta["kind"] = "pipeline-manifest";
  return WriteGraphSnapshot(snap, ManifestPath());
}

Result<std::map<std::string, std::string>> RunDirectory::ReadManifest() const {
  DD_ASSIGN_OR_RETURN(GraphSnapshot snap, ReadGraphSnapshot(ManifestPath()));
  auto kind = snap.meta.find("kind");
  if (kind == snap.meta.end() || kind->second != "pipeline-manifest") {
    return Status::InvalidArgument("not a pipeline manifest: " + ManifestPath());
  }
  return snap.meta;
}

Status RunDirectory::Clear() const {
  for (const std::string& path :
       {ManifestPath(), LearnSnapshotPath(), InferenceSnapshotPath()}) {
    if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("remove " + path + ": " + std::strerror(errno));
    }
  }
  return ClearShardSnapshots();
}

Status RunDirectory::ClearShardSnapshots() const {
  DIR* dir = opendir(path_.c_str());
  if (dir == nullptr) {
    return Status::IoError("opendir " + path_ + ": " + std::strerror(errno));
  }
  Status status;
  while (struct dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind("shard", 0) != 0 || name.size() < 11 ||
        name.compare(name.size() - 5, 5, ".snap") != 0) {
      continue;
    }
    const std::string path = path_ + "/" + name;
    if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
      status = Status::IoError("remove " + path + ": " + std::strerror(errno));
      break;
    }
  }
  closedir(dir);
  return status;
}

uint32_t GraphFingerprint(const FactorGraph& graph) {
  std::string text = SerializeGraph(graph);
  return Crc32c(text.data(), text.size());
}

}  // namespace dd
