// EXP-METRICS — overhead of the observability layer (src/util/metrics.h,
// src/util/trace.h). The layer's contract is "near-zero when off": a
// disabled instrumentation site costs one relaxed load plus a branch
// (or nothing at all under -DDD_METRICS_OFF), and an enabled counter
// increment is a single relaxed fetch_add on a thread-striped shard.
//
// After the google-benchmark run, main() times each primitive with a
// plain Stopwatch loop, subtracts the empty-loop baseline, and writes
// BENCH_metrics.json so the numbers are diffable in CI.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace dd {
namespace {

void BM_CounterAddEnabled(benchmark::State& state) {
  MetricsRegistry::SetEnabled(true);
  for (auto _ : state) {
    DD_COUNTER_ADD("bench.counter", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddEnabled);

void BM_CounterAddDisabled(benchmark::State& state) {
  MetricsRegistry::SetEnabled(false);
  for (auto _ : state) {
    DD_COUNTER_ADD("bench.counter", 1);
  }
  MetricsRegistry::SetEnabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry::SetEnabled(true);
  double v = 0.001;
  for (auto _ : state) {
    DD_HISTOGRAM_OBSERVE("bench.histogram", v);
    v = v < 1000.0 ? v * 1.001 : 0.001;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpan(benchmark::State& state) {
  MetricsRegistry::SetEnabled(true);
  RunMetrics::Reset();  // make room under Tracer::kMaxRecords
  for (auto _ : state) {
    DD_TRACE_SPAN("bench.span");
  }
  RunMetrics::Reset();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan);

/// One Stopwatch-timed loop of `iters` calls to `op`; returns ns/op.
template <typename Op>
double TimeNs(uint64_t iters, Op op) {
  Stopwatch watch;
  for (uint64_t i = 0; i < iters; ++i) op(i);
  return watch.Seconds() * 1e9 / static_cast<double>(iters);
}

void RunOverheadReport() {
  const uint64_t kOps = 20'000'000;
  const uint64_t kHistOps = 5'000'000;
  const uint64_t kSpanOps = 500'000;  // < Tracer::kMaxRecords per batch

#ifdef DD_METRICS_OFF
  const bool compiled_off = true;
#else
  const bool compiled_off = false;
#endif

  // Empty-loop baseline: the loop bookkeeping itself, subtracted from
  // every raw number below so a fully-compiled-away site reports ~0.
  volatile uint64_t sink = 0;
  const double baseline_ns = TimeNs(kOps, [&](uint64_t i) { sink = sink + i; });

  MetricsRegistry::SetEnabled(false);
  const double disabled_raw_ns = TimeNs(kOps, [&](uint64_t i) {
    sink = sink + i;
    DD_COUNTER_ADD("bench.report.counter", 1);
  });
  MetricsRegistry::SetEnabled(true);

  const double counter_raw_ns = TimeNs(kOps, [&](uint64_t i) {
    sink = sink + i;
    DD_COUNTER_ADD("bench.report.counter", 1);
  });
  const double gauge_raw_ns = TimeNs(kOps, [&](uint64_t i) {
    sink = sink + i;
    DD_GAUGE_SET("bench.report.gauge", static_cast<double>(i));
  });
  const double hist_raw_ns = TimeNs(kHistOps, [&](uint64_t i) {
    sink = sink + i;
    DD_HISTOGRAM_OBSERVE("bench.report.histogram",
                         static_cast<double>(i % 1024) * 1e-3);
  });
  RunMetrics::Reset();
  const double span_raw_ns = TimeNs(kSpanOps, [&](uint64_t i) {
    sink = sink + i;
    DD_TRACE_SPAN("bench.report.span");
  });
  RunMetrics::Reset();

  auto net = [&](double raw) { return raw > baseline_ns ? raw - baseline_ns : 0.0; };
  const double disabled_ns = net(disabled_raw_ns);
  const double counter_ns = net(counter_raw_ns);
  const double gauge_ns = net(gauge_raw_ns);
  const double hist_ns = net(hist_raw_ns);
  const double span_ns = net(span_raw_ns);

  std::printf("\n=== observability overhead (net of %.2f ns loop baseline) ===\n",
              baseline_ns);
  std::printf("compiled off: %s\n", compiled_off ? "yes (DD_METRICS_OFF)" : "no");
  std::printf("counter disabled: %.3f ns/op   enabled: %.3f ns/op\n", disabled_ns,
              counter_ns);
  std::printf("gauge set: %.3f ns/op   histogram observe: %.3f ns/op   "
              "trace span: %.1f ns/span\n",
              gauge_ns, hist_ns, span_ns);

  FILE* out = std::fopen("BENCH_metrics.json", "w");
  if (out) {
    std::fprintf(out,
                 "{\n"
                 "  \"experiment\": \"EXP-METRICS overhead\",\n"
                 "  \"metrics_compiled_off\": %s,\n"
                 "  \"loop_baseline_ns_per_op\": %.3f,\n"
                 "  \"counter_disabled_ns_per_op\": %.3f,\n"
                 "  \"counter_enabled_ns_per_op\": %.3f,\n"
                 "  \"gauge_set_ns_per_op\": %.3f,\n"
                 "  \"histogram_observe_ns_per_op\": %.3f,\n"
                 "  \"trace_span_ns_per_span\": %.1f\n"
                 "}\n",
                 compiled_off ? "true" : "false", baseline_ns, disabled_ns,
                 counter_ns, gauge_ns, hist_ns, span_ns);
    std::fclose(out);
    std::printf("wrote BENCH_metrics.json\n");
  }
}

}  // namespace
}  // namespace dd

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dd::RunOverheadReport();
  return 0;
}
