// EXP-LOOP — §5: the improvement iteration loop "reliably" raises
// quality, and experienced engineers reach high accuracy in few
// iterations. We script six iterations of the spouse application — each
// applying the fix the error analysis points at — over THREE corpus
// seeds, and report precision/recall/F1 per iteration. The claim holds
// if the F1 trajectory climbs toward ~1.0 on every seed (fitful dips
// allowed mid-loop; the paper notes progress is systematic, not
// monotone per step).
//
// Also reproduces the distant-supervision claim of §5.3: labels from
// rules beat a small hand-labeled sample (simulated by restricting the
// KB to very few pairs).

#include <cstdio>

#include "core/devloop.h"
#include "testdata/spouse_app.h"

namespace {

dd::SpouseAppOptions AppAtIteration(int iteration) {
  dd::SpouseAppOptions app;
  app.min_name_tokens = 1;
  app.use_distance_features = true;
  app.use_bow_features = false;
  app.use_phrase_features = false;
  app.use_pos_features = false;
  app.use_window_features = false;
  app.use_sibling_negatives = true;
  app.use_closure_negatives = false;
  if (iteration >= 1) app.use_bow_features = true;
  if (iteration >= 2) app.min_name_tokens = 2;
  if (iteration >= 3) app.use_closure_negatives = true;
  if (iteration >= 4) app.use_phrase_features = true;
  if (iteration >= 5) {
    app.use_pos_features = true;
    app.use_window_features = true;
  }
  return app;
}

dd::PipelineOptions FastOptions() {
  dd::PipelineOptions options;
  options.learn.epochs = 150;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.threshold = 0.7;
  options.strategy = dd::PipelineOptions::Strategy::kSampling;
  return options;
}

}  // namespace

int main() {
  std::printf("=== EXP-LOOP: quality across development iterations ===\n");

  for (uint64_t seed : {21, 22, 23}) {
    dd::SpouseCorpusOptions corpus_options;
    corpus_options.num_documents = 120;
    corpus_options.seed = seed;
    dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);

    dd::DevelopmentLoop loop(
        [&](int iteration) {
          return dd::MakeSpousePipeline(corpus, AppAtIteration(iteration),
                                        FastOptions());
        },
        "MarriedPair", dd::SpouseTruthTuples(corpus));
    for (int i = 0; i < 6; ++i) {
      auto record = loop.RunIteration("iteration fix " + std::to_string(i));
      if (!record.ok()) {
        std::fprintf(stderr, "%s\n", record.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("\n[seed %llu]\n%s", static_cast<unsigned long long>(seed),
                loop.ToText().c_str());
  }

  // Distant supervision vs a small hand-labeled set (§5.3): shrink the KB
  // to 2 pairs ("hand labels") vs the full incomplete KB ("rules").
  std::printf("\n--- distant supervision vs small hand-labeled set ---\n");
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 120;
  corpus_options.seed = 25;
  dd::SpouseCorpus full = dd::GenerateSpouseCorpus(corpus_options);
  dd::SpouseCorpus tiny = full;
  if (tiny.kb_married.size() > 2) tiny.kb_married.resize(2);
  tiny.kb_siblings.clear();

  for (const auto* setup : {"tiny hand-labeled KB (2 pairs, no negatives)",
                            "distant supervision (full incomplete KB)"}) {
    const dd::SpouseCorpus& corpus =
        setup[0] == 't' ? tiny : full;
    auto pipeline = dd::MakeSpousePipeline(corpus, dd::SpouseAppOptions(),
                                           FastOptions());
    if (!pipeline.ok() || !(*pipeline)->Run().ok()) {
      std::fprintf(stderr, "pipeline failed\n");
      return 1;
    }
    auto extractions = (*pipeline)->Extractions("MarriedPair");
    auto metrics = dd::Evaluate(*extractions, dd::SpouseTruthTuples(full));
    std::printf("%-48s precision %.3f recall %.3f F1 %.3f\n", setup,
                metrics.precision, metrics.recall, metrics.f1);
  }
  std::printf("\npaper shape check: F1 climbs to ~1.0 within six iterations on\n"
              "every seed, and rule-generated labels beat the tiny hand set.\n");
  return 0;
}
