// EXP-STORE — dictionary-encoded columnar storage + zero-copy snapshots.
//
// Three measurements backing DESIGN.md §12:
//
//  1. Scan throughput: aggregate over every live row of a large table,
//     once through the columnar payload/tag arrays (the storage engine's
//     native layout) and once through a row-oriented replica
//     (vector<Tuple>, one heap allocation per row — the layout this
//     engine replaced). Both scans must produce bit-identical aggregates;
//     the ratio is the cache-locality win.
//
//  2. Snapshot load: the paper-scale spouse graph serialized as the ddfg
//     text oracle vs. the binary GRBN/DICT snapshot opened with
//     MappedSnapshot (mmap + validate + typed views, no per-element
//     materialization). The mmap-loaded graph must serialize to exactly
//     the oracle text; the ratio is the zero-copy win.
//
//  3. Memory: structural bytes (columnar arrays vs. per-row heap tuples)
//     plus the measured resident-set growth while building each.
//
// Writes BENCH_storage.json (ratcheted by ci/bench_gate.py storage mode).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/udf.h"
#include "ddlog/parser.h"
#include "factor/io.h"
#include "grounding/grounder.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "storage/table.h"
#include "testdata/spouse_app.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// Resident-set size in bytes from /proc/self/statm (0 where absent).
size_t ResidentBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0, resident = 0;
  int n = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return resident * 4096;
}

// ---- Scan workload ------------------------------------------------------

// xorshift64: deterministic column contents without <random> overhead.
uint64_t Next(uint64_t* s) {
  uint64_t x = *s;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *s = x;
}

void FillScanTable(dd::Table* table, size_t rows) {
  table->Reserve(rows);
  uint64_t s = 0x1234abcd;
  for (size_t i = 0; i < rows; ++i) {
    uint64_t r = Next(&s);
    table->InsertUnchecked(dd::Tuple({
        dd::Value::Int(static_cast<int64_t>(i)),
        dd::Value::Double(static_cast<double>(r % 1000) / 16.0),
        dd::Value::Bool((r & 1) != 0),
        dd::Value::Int(static_cast<int64_t>(r % 4096)),
    }));
  }
  // Tombstone a slice so both scans must honor liveness.
  for (size_t i = 0; i < rows; i += 16) {
    table->Erase(table->row(static_cast<int64_t>(i)));
  }
}

struct ScanChecksum {
  uint64_t sum = 0;
  uint64_t mix = 0;
  size_t rows = 0;
  bool operator==(const ScanChecksum& o) const {
    return sum == o.sum && mix == o.mix && rows == o.rows;
  }
};

/// Native path: walk the flat payload arrays and the liveness bitmap.
ScanChecksum ScanColumnar(const dd::Table& table) {
  ScanChecksum c;
  const size_t n = table.capacity();
  const uint64_t* col0 = table.column(0).payload_data();
  const uint64_t* col1 = table.column(1).payload_data();
  const uint64_t* col3 = table.column(3).payload_data();
  const dd::Bitmap& live = table.live_bitmap();
  for (size_t i = 0; i < n; ++i) {
    if (!live.Get(i)) continue;
    c.sum += col0[i] + col3[i];
    c.mix ^= col1[i] + 0x9e3779b97f4a7c15ull + (c.mix << 6);
    ++c.rows;
  }
  return c;
}

/// Replica path: the same aggregate over materialized heap tuples.
ScanChecksum ScanRowStore(const std::vector<dd::Tuple>& rows) {
  ScanChecksum c;
  for (const dd::Tuple& t : rows) {
    c.sum += t.at(0).payload_bits() + t.at(3).payload_bits();
    c.mix ^= t.at(1).payload_bits() + 0x9e3779b97f4a7c15ull + (c.mix << 6);
    ++c.rows;
  }
  return c;
}

/// Heap bytes a vector<Tuple> row store pins (vector headers + Value
/// payloads), the structural counterpart of Table::MemoryBytes().
size_t RowStoreBytes(const std::vector<dd::Tuple>& rows) {
  size_t bytes = rows.capacity() * sizeof(dd::Tuple);
  for (const dd::Tuple& t : rows) bytes += t.size() * sizeof(dd::Value);
  return bytes;
}

// ---- Spouse graph workload ----------------------------------------------

bool GroundSpouseGraph(size_t num_docs, dd::FactorGraph* graph) {
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = num_docs;
  corpus_options.seed = 51;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);
  dd::SpouseAppOptions app;
  dd::Extractor extractor = dd::MakeSpouseExtractor(app);
  auto parsed = dd::ParseDdlog(dd::SpouseDdlog(app));
  if (!parsed.ok()) return false;

  dd::Catalog catalog;
  auto insert = [&](const std::string& relation, const dd::Tuple& t) {
    const dd::RelationDecl* decl = parsed->FindDecl(relation);
    if (decl == nullptr) return;
    auto table = catalog.GetOrCreateTable(relation, decl->schema);
    if (table.ok()) (void)(*table)->Insert(t);
  };
  for (size_t d = 0; d < corpus.documents.size(); ++d) {
    dd::Document doc = dd::AnnotateDocument(corpus.documents[d].first,
                                            corpus.documents[d].second);
    dd::TupleEmitter emitter;
    if (!extractor(doc, &emitter).ok()) continue;
    for (const auto& [relation, tuples] : emitter.emitted()) {
      for (const dd::Tuple& t : tuples) insert(relation, t);
    }
  }
  for (const auto& [a, b] : corpus.kb_married) {
    insert("KbMarried", dd::Tuple({dd::Value::String(a), dd::Value::String(b)}));
  }
  for (const auto& [a, b] : corpus.kb_siblings) {
    insert("KbSiblings", dd::Tuple({dd::Value::String(a), dd::Value::String(b)}));
  }

  dd::UdfRegistry udfs;
  dd::GroundingOptions gopt;
  dd::Grounder grounder(&catalog, &*parsed, &udfs, gopt);
  if (!grounder.Initialize().ok()) return false;
  *graph = grounder.graph();
  return true;
}

}  // namespace

int main() {
  const size_t hw = dd::HardwareThreads();
  const int repeats = EnvInt("DD_BENCH_REPEATS", 5);
  const size_t rows = static_cast<size_t>(EnvInt("DD_BENCH_STORE_ROWS", 2000000));
  const size_t docs = static_cast<size_t>(EnvInt("DD_BENCH_STORE_DOCS", 200));

  std::printf("=== EXP-STORE: columnar storage + zero-copy snapshots ===\n");
  std::printf("hardware_concurrency: %zu  repeats (best-of): %d\n\n", hw, repeats);

  // --- 1. Scan throughput + 3. memory footprint.
  size_t rss0 = ResidentBytes();
  dd::Table table("scan", dd::Schema({{"id", dd::ValueType::kInt},
                                      {"score", dd::ValueType::kDouble},
                                      {"flag", dd::ValueType::kBool},
                                      {"bucket", dd::ValueType::kInt}}));
  FillScanTable(&table, rows);
  size_t rss_columnar = ResidentBytes();

  std::vector<dd::Tuple> row_store = table.Scan();
  size_t rss_rows = ResidentBytes();

  double col_best = 0, row_best = 0;
  ScanChecksum col_sum, row_sum;
  for (int rep = 0; rep < repeats; ++rep) {
    dd::Stopwatch w1;
    col_sum = ScanColumnar(table);
    double cs = w1.Seconds();
    dd::Stopwatch w2;
    row_sum = ScanRowStore(row_store);
    double rs = w2.Seconds();
    if (rep == 0 || cs < col_best) col_best = cs;
    if (rep == 0 || rs < row_best) row_best = rs;
  }
  const bool scans_agree = col_sum == row_sum;
  const double live_rows = static_cast<double>(col_sum.rows);
  const double col_mtps = live_rows / col_best / 1e6;
  const double row_mtps = live_rows / row_best / 1e6;
  const double scan_speedup = row_best / col_best;

  const size_t columnar_bytes = table.MemoryBytes();
  const size_t row_bytes = RowStoreBytes(row_store);
  const double memory_reduction =
      columnar_bytes > 0 ? static_cast<double>(row_bytes) / columnar_bytes : 0;
  const size_t rss_columnar_delta = rss_columnar - rss0;
  const size_t rss_row_delta = rss_rows - rss_columnar;

  std::printf("scan (%zu live rows, best of %d):\n", col_sum.rows, repeats);
  std::printf("  columnar  %8.1f Mtuples/s  (%.4fs)\n", col_mtps, col_best);
  std::printf("  row store %8.1f Mtuples/s  (%.4fs)\n", row_mtps, row_best);
  std::printf("  speedup   %8.2fx  checksums %s\n", scan_speedup,
              scans_agree ? "agree" : "DISAGREE");
  std::printf("memory: columnar %.1f MiB vs row store %.1f MiB (%.2fx), "
              "RSS deltas %.1f / %.1f MiB\n\n",
              columnar_bytes / 1048576.0, row_bytes / 1048576.0,
              memory_reduction, rss_columnar_delta / 1048576.0,
              rss_row_delta / 1048576.0);

  // --- 2. Spouse-graph snapshot load: text oracle vs. mapped binary.
  dd::FactorGraph graph;
  if (!GroundSpouseGraph(docs, &graph)) {
    std::fprintf(stderr, "spouse grounding failed\n");
    return 1;
  }
  const std::string text = dd::SerializeGraph(graph);

  dd::GraphSnapshot snap;
  snap.has_graph = true;
  snap.graph = graph;
  const std::string snapshot_path = "bench_storage_snapshot.ddsn";
  dd::Status wst = dd::WriteGraphSnapshot(snap, snapshot_path);
  if (!wst.ok()) {
    std::fprintf(stderr, "%s\n", wst.ToString().c_str());
    return 1;
  }

  double text_best = 0, mmap_best = 0;
  bool graph_identical = true;
  for (int rep = 0; rep < repeats; ++rep) {
    dd::Stopwatch w1;
    auto parsed = dd::DeserializeGraph(text);
    double ts = w1.Seconds();
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }

    dd::Stopwatch w2;
    auto mapped = dd::MappedSnapshot::Open(snapshot_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
      return 1;
    }
    auto pool = mapped->Pool();
    auto view = pool.ok() ? mapped->Graph(*pool)
                          : dd::Result<dd::BinaryGraphView>(pool.status());
    double ms = w2.Seconds();
    if (!view.ok()) {
      std::fprintf(stderr, "%s\n", view.status().ToString().c_str());
      return 1;
    }
    if (rep == 0 || ts < text_best) text_best = ts;
    if (rep == 0 || ms < mmap_best) mmap_best = ms;
    if (rep == 0) {
      // Identity (outside the timed region): the mapped view must
      // describe exactly the graph the text oracle describes.
      auto rebuilt = dd::GraphFromBinary(*view, *pool);
      graph_identical = rebuilt.ok() && dd::SerializeGraph(*rebuilt) == text &&
                        view->num_variables == graph.num_variables() &&
                        view->num_factors == graph.num_factors();
    }
  }
  std::remove(snapshot_path.c_str());

  const double load_speedup = mmap_best > 0 ? text_best / mmap_best : 0;
  std::printf("spouse graph (%zu vars, %zu factors, %zu docs):\n",
              graph.num_variables(), graph.num_factors(), docs);
  std::printf("  text DeserializeGraph %10.4fs  (%zu bytes)\n", text_best,
              text.size());
  std::printf("  mmap open+views       %10.4fs\n", mmap_best);
  std::printf("  speedup               %10.1fx  graph %s\n\n", load_speedup,
              graph_identical ? "identical" : "DIFFERENT");

  FILE* out = std::fopen("BENCH_storage.json", "w");
  if (out) {
    std::fprintf(
        out,
        "{\n"
        "  \"experiment\": \"EXP-STORE columnar storage + mmap snapshots\",\n"
        "  \"hardware_concurrency\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"scan_rows\": %zu,\n"
        "  \"columnar_scan_mtuples_per_sec\": %.1f,\n"
        "  \"row_scan_mtuples_per_sec\": %.1f,\n"
        "  \"columnar_scan_speedup\": %.3f,\n"
        "  \"scans_agree\": %s,\n"
        "  \"columnar_bytes\": %zu,\n"
        "  \"row_store_bytes\": %zu,\n"
        "  \"memory_reduction\": %.3f,\n"
        "  \"rss_delta_columnar_bytes\": %zu,\n"
        "  \"rss_delta_row_store_bytes\": %zu,\n"
        "  \"spouse_num_variables\": %zu,\n"
        "  \"spouse_num_factors\": %zu,\n"
        "  \"text_load_seconds\": %.6f,\n"
        "  \"mmap_load_seconds\": %.6f,\n"
        "  \"mmap_load_speedup\": %.2f,\n"
        "  \"graph_identical\": %s\n"
        "}\n",
        hw, repeats, rows, col_mtps, row_mtps, scan_speedup,
        scans_agree ? "true" : "false", columnar_bytes, row_bytes,
        memory_reduction, rss_columnar_delta, rss_row_delta,
        graph.num_variables(), graph.num_factors(), text_best, mmap_best,
        load_speedup, graph_identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_storage.json\n");
  }
  return (scans_agree && graph_identical) ? 0 : 2;
}
