// EXP-SERVE — resilient epoch-swapped KBC serving.
//
// Measurements backing DESIGN.md §13:
//
//  1. Steady state: closed-loop load generator against one epoch —
//     sustained answered QPS plus p50/p99 latency of answered requests.
//  2. Mid-run swaps: the same load while fresh epochs are published and
//     swapped in every few hundred milliseconds. Identity gates: every
//     issued request is accounted for (answered or explicitly shed —
//     nothing dropped), per-client epoch ids never regress, and sampled
//     responses are bitwise-identical to the epoch file they claim to
//     come from (no torn epochs).
//  3. Epoch load+validate+index latency for the benchmark graph.
//
// Writes BENCH_serving.json (gated by ci/bench_gate.py serving mode).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "factor/graph.h"
#include "factor/io.h"
#include "serve/epoch.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

constexpr int kNumRelations = 4;

// Bitwise-deterministic marginal per (epoch, var) — the consistency
// oracle, same construction as the serving chaos test.
double ExpectedMarginal(uint64_t epoch, uint32_t var) {
  uint64_t h = epoch * 1000003ULL + var * 2654435761ULL;
  h ^= h >> 13;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return static_cast<double>(h % 100000ULL) / 99999.0;
}

std::string RelationName(int idx) { return "rel" + std::to_string(idx); }

std::string BuildEpochBytes(uint64_t epoch_id, size_t num_vars) {
  dd::FactorGraph graph;
  uint32_t weight = graph.AddWeight(1.0, false, "bench-serving-weight");
  for (size_t v = 0; v < num_vars; ++v) {
    uint32_t id = graph.AddVariable(v % 5 == 0, v % 2 == 0);
    (void)graph.AddFactor(dd::FactorFunc::kIsTrue, weight,
                          {{id, true}});
  }
  (void)graph.Finalize();
  std::vector<double> marginals(num_vars);
  std::vector<dd::EpochVarEntry> vars(num_vars);
  for (uint32_t v = 0; v < num_vars; ++v) {
    marginals[v] = ExpectedMarginal(epoch_id, v);
    vars[v] = dd::EpochVarEntry{RelationName(v % kNumRelations),
                                static_cast<int64_t>(v / kNumRelations), true};
  }
  return dd::EncodeEpochSnapshot(graph, marginals, vars, epoch_id);
}

// Sampled bitwise consistency check: the server's answers must equal the
// oracle for the epoch each response claims.
bool VerifyConsistency(dd::KbcServer* server, size_t num_vars) {
  for (uint32_t var = 0; var < num_vars; var += 997) {
    dd::QueryRequest request;
    request.relation = RelationName(var % kNumRelations);
    request.row = static_cast<int64_t>(var / kNumRelations);
    auto response = server->Query(request);
    if (!response.ok()) return false;
    if (response->probability != ExpectedMarginal(response->epoch, var)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const size_t hw = dd::HardwareThreads();
  const size_t num_vars =
      static_cast<size_t>(EnvInt("DD_BENCH_SERVE_VARS", 100000));
  const double duration_ms = EnvInt("DD_BENCH_SERVE_MS", 1200);
  const size_t clients =
      static_cast<size_t>(EnvInt("DD_BENCH_SERVE_CLIENTS", 4));
  const uint64_t kEpochs = 4;  // mid-run swap phase publishes 2..kEpochs

  std::printf("=== EXP-SERVE: epoch-swapped snapshot serving ===\n");
  std::printf("hardware_concurrency: %zu  vars: %zu  clients: %zu\n\n", hw,
              num_vars, clients);

  dd::EpochDirectory dir("bench_serving_epochs");
  (void)std::system("rm -rf bench_serving_epochs");
  if (!dir.Create().ok()) {
    std::fprintf(stderr, "cannot create epoch directory\n");
    return 1;
  }
  for (uint64_t e = 1; e <= kEpochs; ++e) {
    dd::Status st = dir.Publish(e, BuildEpochBytes(e, num_vars));
    if (!st.ok()) {
      std::fprintf(stderr, "publish %llu: %s\n",
                   static_cast<unsigned long long>(e), st.ToString().c_str());
      return 1;
    }
    if (e == 1) break;  // later epochs published during the swap phase
  }

  // --- 3. Epoch load+validate+index latency.
  dd::Stopwatch load_watch;
  auto first = dd::ServingEpoch::Load(dir.EpochFilePath(1));
  const double load_seconds = load_watch.Seconds();
  if (!first.ok()) {
    std::fprintf(stderr, "%s\n", first.status().ToString().c_str());
    return 1;
  }

  dd::ServerOptions options;
  options.num_workers = hw > 1 ? hw : 1;
  options.max_queue = 1024;
  options.queue_budget_ms = 0;  // closed loop: measure, don't shed
  options.cache_entries = 4096;
  dd::KbcServer server(options);
  if (!server.Start().ok() || !server.LoadCurrent(dir).ok()) {
    std::fprintf(stderr, "server startup failed\n");
    return 1;
  }

  dd::LoadgenOptions load;
  load.num_clients = clients;
  load.duration_ms = duration_ms;
  load.row_space = static_cast<int64_t>(num_vars / kNumRelations);
  for (int r = 0; r < kNumRelations; ++r) load.relations.push_back(RelationName(r));

  // --- 1. Steady state (no swaps).
  dd::LoadgenReport steady = dd::RunLoadgen(&server, load);
  const bool steady_consistent = VerifyConsistency(&server, num_vars);

  // --- 2. The same load with epochs swapping mid-run.
  std::thread swapper([&] {
    const double gap_ms = duration_ms / (kEpochs + 1);
    for (uint64_t e = 2; e <= kEpochs; ++e) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(gap_ms));
      if (!dir.Publish(e, BuildEpochBytes(e, num_vars)).ok()) return;
      if (!server.LoadCurrent(dir).ok()) return;
    }
  });
  load.seed += 1000;  // fresh streams; keep the run independent
  dd::LoadgenReport swapped = dd::RunLoadgen(&server, load);
  swapper.join();
  const bool swap_consistent = VerifyConsistency(&server, num_vars);
  const dd::ServerStats stats = server.stats();
  server.Stop();

  const bool responses_consistent = steady_consistent && swap_consistent;
  const bool accounted = steady.Accounted() && swapped.Accounted() &&
                         steady.other_errors == 0 && swapped.other_errors == 0;
  const bool epochs_monotone = steady.epochs_monotone && swapped.epochs_monotone;
  const uint64_t swap_dropped =
      swapped.issued - (swapped.ok + swapped.not_found + swapped.shed +
                        swapped.deadline_exceeded + swapped.other_errors);

  std::printf("epoch load+validate+index: %.4fs (%zu vars)\n\n", load_seconds,
              num_vars);
  std::printf("steady:  %9.0f qps  p50 %7.3fms  p99 %7.3fms  (%llu issued)\n",
              steady.qps, steady.p50_ms, steady.p99_ms,
              static_cast<unsigned long long>(steady.issued));
  std::printf("swapped: %9.0f qps  p50 %7.3fms  p99 %7.3fms  (%llu issued, "
              "%llu swaps)\n",
              swapped.qps, swapped.p50_ms, swapped.p99_ms,
              static_cast<unsigned long long>(swapped.issued),
              static_cast<unsigned long long>(stats.swaps - 1));
  std::printf("identity: consistent=%s accounted=%s monotone=%s dropped=%llu\n",
              responses_consistent ? "true" : "false",
              accounted ? "true" : "false", epochs_monotone ? "true" : "false",
              static_cast<unsigned long long>(swap_dropped));

  (void)std::system("rm -rf bench_serving_epochs");

  FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out) {
    std::fprintf(
        out,
        "{\n"
        "  \"experiment\": \"EXP-SERVE epoch-swapped snapshot serving\",\n"
        "  \"hardware_concurrency\": %zu,\n"
        "  \"num_variables\": %zu,\n"
        "  \"num_clients\": %zu,\n"
        "  \"epoch_load_seconds\": %.6f,\n"
        "  \"serving_qps\": %.1f,\n"
        "  \"p50_ms\": %.4f,\n"
        "  \"p99_ms\": %.4f,\n"
        "  \"swap_qps\": %.1f,\n"
        "  \"swap_p50_ms\": %.4f,\n"
        "  \"swap_p99_ms\": %.4f,\n"
        "  \"swaps_during_run\": %llu,\n"
        "  \"cache_hits\": %llu,\n"
        "  \"cache_misses\": %llu,\n"
        "  \"responses_consistent\": %s,\n"
        "  \"requests_accounted\": %s,\n"
        "  \"epochs_monotone\": %s,\n"
        "  \"swap_dropped_requests\": %llu\n"
        "}\n",
        hw, num_vars, clients, load_seconds, steady.qps, steady.p50_ms,
        steady.p99_ms, swapped.qps, swapped.p50_ms, swapped.p99_ms,
        static_cast<unsigned long long>(stats.swaps - 1),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_misses),
        responses_consistent ? "true" : "false", accounted ? "true" : "false",
        epochs_monotone ? "true" : "false",
        static_cast<unsigned long long>(swap_dropped));
    std::fclose(out);
    std::printf("wrote BENCH_serving.json\n");
  }
  return (responses_consistent && accounted && epochs_monotone &&
          swap_dropped == 0)
             ? 0
             : 2;
}
