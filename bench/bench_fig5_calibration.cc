// EXP FIG5 — Figure 5: calibration plot and probability histograms.
//
// DeepDive emits three diagrams after every training run: (a) predicted
// probability vs empirical accuracy on a held-out (test) sample, (b) the
// probability histogram on the test set, (c) the same on the training
// set. Healthy systems hug the diagonal in (a) and are U-shaped in
// (b)/(c). We reproduce the panels twice: once for a well-featured
// extractor (healthy) and once for a feature-starved one — the
// "worrisome" middle-heavy histogram the paper shows.

#include <cstdio>
#include <set>

#include "core/calibration.h"
#include "testdata/spouse_app.h"

namespace {

void RunPanel(const char* title, const dd::SpouseAppOptions& app) {
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 150;
  corpus_options.seed = 41;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);

  dd::PipelineOptions options;
  options.learn.epochs = 200;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 200;
  options.inference.num_samples = 1000;
  options.strategy = dd::PipelineOptions::Strategy::kSampling;

  auto pipeline = dd::MakeSpousePipeline(corpus, app, options);
  if (!pipeline.ok() || !(*pipeline)->Run().ok()) {
    std::fprintf(stderr, "pipeline failed\n");
    return;
  }

  // "Training set" = mention candidates that received a distant label;
  // "test set" = the unlabeled ones. Truth at mention level: is the
  // underlying entity pair married?
  std::set<std::pair<std::string, std::string>> married(
      corpus.married_truth.begin(), corpus.married_truth.end());
  auto mention_table = (*pipeline)->catalog()->GetTable("MentionPair");
  auto ev_table = (*pipeline)->catalog()->GetTable("MarriedMention_Ev");
  std::set<dd::Tuple> labeled;
  if (ev_table.ok()) {
    for (const dd::Tuple& row : (*ev_table)->Scan()) {
      dd::Tuple key;
      for (size_t c = 0; c < 4; ++c) key.Append(row.at(c));
      labeled.insert(key);
    }
  }

  std::vector<double> train_probs, test_probs;
  std::vector<int> train_truth, test_truth;
  auto marginals = (*pipeline)->Marginals("MarriedMention");
  for (const auto& [tuple, prob] : *marginals) {
    // Resolve the names for truth lookup.
    int truth_label = -1;
    for (const dd::Tuple& row : (*mention_table)->Scan()) {
      bool match = true;
      for (size_t c = 0; c < 4 && match; ++c) match = row.at(c) == tuple.at(c);
      if (!match) continue;
      auto pair = std::make_pair(row.at(4).AsString(), row.at(5).AsString());
      truth_label = married.count(pair) > 0 ? 1 : 0;
      break;
    }
    if (labeled.count(tuple) > 0) {
      train_probs.push_back(prob);
      train_truth.push_back(truth_label);
    } else {
      test_probs.push_back(prob);
      test_truth.push_back(truth_label);
    }
  }

  std::printf("---- %s ----\n", title);
  std::printf("train candidates: %zu, test candidates: %zu\n", train_probs.size(),
              test_probs.size());
  auto test_report = dd::CalibrationReport::Build(test_probs, test_truth);
  std::printf("[test set]\n%s", test_report.ToText().c_str());
  auto train_report = dd::CalibrationReport::Build(train_probs, train_truth);
  std::printf("[training set]\n%s", train_report.ToText().c_str());
  std::printf("test: max calibration gap %.3f, extreme-bucket mass %.2f\n",
              test_report.MaxCalibrationGap(), test_report.ExtremeMassFraction());
  std::printf("train: max calibration gap %.3f, extreme-bucket mass %.2f\n\n",
              train_report.MaxCalibrationGap(), train_report.ExtremeMassFraction());
}

}  // namespace

int main() {
  std::printf("=== FIG5: calibration plots and probability histograms ===\n\n");

  dd::SpouseAppOptions healthy;
  RunPanel("well-featured extractor (expect diagonal + U-shape)", healthy);

  dd::SpouseAppOptions starved;
  starved.use_bow_features = false;
  starved.use_phrase_features = false;
  starved.use_pos_features = false;
  starved.use_window_features = false;  // only the distance feature remains
  RunPanel("feature-starved extractor (expect middle-heavy histogram)", starved);

  std::printf("paper shape check: the starved run parks mass away from the 0/1\n"
              "buckets (not enough evidence to push beliefs to certainty), the\n"
              "healthy run is U-shaped and near-diagonal.\n");
  return 0;
}
