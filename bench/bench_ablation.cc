// EXP-ABL — ablations of the design choices DESIGN.md calls out. Each
// row removes exactly one ingredient of the spouse application and
// reports end-to-end quality, isolating that ingredient's contribution:
//
//  * feature families (§3.1/§5.3: "improving feature quality is one of
//    the core mechanisms by which a statistical system can improve");
//  * negative distant supervision (§3.2: negatives from disjoint
//    relations);
//  * the candidate-quality fix (§5.2 bug category 1);
//  * the entity-level correlation rule (§3.1: "rich correlations ...
//    particularly helpful for data cleaning and integration");
//  * joint inference itself (threshold on the raw mention votes instead).

#include <cstdio>

#include "core/error_analysis.h"
#include "testdata/spouse_app.h"

namespace {

dd::PipelineOptions FastOptions() {
  dd::PipelineOptions options;
  options.learn.epochs = 150;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.threshold = 0.7;
  options.strategy = dd::PipelineOptions::Strategy::kSampling;
  return options;
}

struct Ablation {
  const char* name;
  dd::SpouseAppOptions app;
};

}  // namespace

int main() {
  std::printf("=== EXP-ABL: design-choice ablations (spouse application) ===\n");

  // Harder workload than the quality benches: OCR-style corruption, a
  // smaller corpus, and a thinner KB, so redundant feature families can
  // no longer fully cover for each other.
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 90;
  corpus_options.corruption = 0.25;
  corpus_options.kb_coverage = 0.4;
  corpus_options.seed = 77;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);
  auto truth = dd::SpouseTruthTuples(corpus);

  std::vector<Ablation> ablations;
  {
    Ablation full{"full system", dd::SpouseAppOptions()};
    ablations.push_back(full);
    Ablation a1{"- phrase/bow features", dd::SpouseAppOptions()};
    a1.app.use_phrase_features = false;
    a1.app.use_bow_features = false;
    ablations.push_back(a1);
    Ablation a2{"- window/pos features", dd::SpouseAppOptions()};
    a2.app.use_window_features = false;
    a2.app.use_pos_features = false;
    ablations.push_back(a2);
    Ablation a3{"- negative supervision", dd::SpouseAppOptions()};
    a3.app.use_sibling_negatives = false;
    a3.app.use_closure_negatives = false;
    ablations.push_back(a3);
    Ablation a4{"- candidate-name fix", dd::SpouseAppOptions()};
    a4.app.min_name_tokens = 1;
    ablations.push_back(a4);
  }

  std::printf("%-26s %-10s %-8s %-8s %-9s %s\n", "configuration", "precision",
              "recall", "F1", "factors", "weights");
  double full_f1 = 0;
  for (size_t i = 0; i < ablations.size(); ++i) {
    const Ablation& ablation = ablations[i];
    auto pipeline = dd::MakeSpousePipeline(corpus, ablation.app, FastOptions());
    if (!pipeline.ok() || !(*pipeline)->Run().ok()) {
      std::fprintf(stderr, "pipeline failed for %s\n", ablation.name);
      return 1;
    }
    auto extractions = (*pipeline)->Extractions("MarriedPair");
    auto metrics = dd::Evaluate(*extractions, truth);
    if (i == 0) full_f1 = metrics.f1;
    std::printf("%-26s %-10.3f %-8.3f %-8.3f %-9zu %zu\n", ablation.name,
                metrics.precision, metrics.recall, metrics.f1,
                (*pipeline)->grounding_stats().num_factors,
                (*pipeline)->grounding_stats().num_weights);
  }

  // Ablate joint inference: threshold each mention independently via the
  // full pipeline's mention marginals, then take the union at entity
  // level (no correlation factors, no entity prior).
  {
    dd::SpouseAppOptions app;
    app.entity_level = false;
    auto pipeline = dd::MakeSpousePipeline(corpus, app, FastOptions());
    if (!pipeline.ok() || !(*pipeline)->Run().ok()) {
      std::fprintf(stderr, "pipeline failed for mention-union\n");
      return 1;
    }
    auto mention_marginals = (*pipeline)->Marginals("MarriedMention");
    auto mention_table = (*pipeline)->catalog()->GetTable("MentionPair");
    std::unordered_set<dd::Tuple, dd::TupleHash> pairs;
    for (const auto& [tuple, prob] : *mention_marginals) {
      if (prob < 0.7) continue;
      for (const dd::Tuple& row : (*mention_table)->Scan()) {
        bool match = true;
        for (size_t c = 0; c < 4 && match; ++c) match = row.at(c) == tuple.at(c);
        if (match) {
          pairs.insert(dd::Tuple({row.at(4), row.at(5)}));
          break;
        }
      }
    }
    std::vector<dd::Tuple> extracted(pairs.begin(), pairs.end());
    auto metrics = dd::Evaluate(extracted, truth);
    std::printf("%-26s %-10.3f %-8.3f %-8.3f %-9s %s\n",
                "- entity correlation rule", metrics.precision, metrics.recall,
                metrics.f1, "-", "-");
  }

  std::printf(
      "\npaper shape check (full system F1 %.3f): negative supervision is by\n"
      "far the most load-bearing ingredient (without it everything looks\n"
      "positive), and the entity-level correlation rule adds a clear margin\n"
      "over independent mention votes. Feature families are partly redundant;\n"
      "on corrupted text the sparsest ones (exact phrases) can even trade a\n"
      "little precision — the effect behind §5.3's emphasis on statistical\n"
      "regularization over ever-more features.\n",
      full_f1);
  return 0;
}
